"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e . --no-use-pep517`` works in offline environments
where the ``wheel`` package (needed for PEP 517 editable installs) is
unavailable.
"""

from setuptools import setup

setup()
