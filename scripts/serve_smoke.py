#!/usr/bin/env python
"""CI smoke check for the ``repro serve`` trace-checking service.

Four subcommands, all exercised by the ``serve-smoke`` CI job:

1. ``python scripts/serve_smoke.py gen N BATCH.jsonl`` — write a
   deterministic N-item mixed batch: even indices are admitted
   write/read chains (growing sizes), odd indices are violating
   serialization cycles under rotating relabellings.  The corpus
   repeats shapes heavily on purpose — the dedupe layer is part of
   what the job gates.
2. ``python scripts/serve_smoke.py verify VERDICTS.jsonl --items N
   [--trace-id HEX]`` — every verdict line is ``ok``, indices cover
   0..N-1 exactly once, the admitted/rejected split matches the
   generator's parity rule, every rejection carries a witness with
   structured block ids, and the dedupe hit count collapses the corpus
   to its canonical classes.  With ``--trace-id``, every verdict must
   additionally echo that ``trace_id`` plus a distinct per-item
   ``request_id`` — the end-to-end propagation contract for a batch
   posted with a ``traceparent`` header.
3. ``python scripts/serve_smoke.py metrics METRICS.txt --items N`` —
   the live Prometheus exposition carries the serve counters
   (``repro_serve_items`` == N, verdict counters sum to N, dedupe hits
   > 0) and the per-check latency histogram.
4. ``python scripts/serve_smoke.py ledger LEDGER.json --items N
   [--expect-torn]`` — the ``repro serve --replay-ledger`` output
   accounts for every accepted item (``pending`` == 0), with
   ``--expect-torn`` additionally requiring a non-clean shutdown (the
   SIGKILL leg: accepted work must still reconcile).

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import itertools
import json
import sys


def _chain_trace(n: int):
    from repro.core import Computation, R, W
    from repro.dag import Dag
    from repro.runtime import ExecutionTrace, ReadEvent
    from repro.runtime.scheduler import Schedule

    ops = tuple(W("x") if i % 2 == 0 else R("x") for i in range(n))
    comp = Computation(Dag(n, [(i, i + 1) for i in range(n - 1)]), ops)
    sched = Schedule(comp, (0,) * n, tuple(range(n)), 1)
    reads = [ReadEvent(i, "x", i - 1) for i in range(1, n) if i % 2 == 1]
    return ExecutionTrace(comp, sched, "smoke", reads)


def _cycle_trace(perm):
    from repro.core import Computation, R, W
    from repro.dag import Dag
    from repro.runtime import ExecutionTrace, ReadEvent
    from repro.runtime.scheduler import Schedule

    edges = [(perm[2], perm[0]), (perm[0], perm[1])]
    ops = [None, None, None]
    ops[perm[0]], ops[perm[1]], ops[perm[2]] = W("x"), R("x"), W("x")
    comp = Computation(Dag(3, edges), tuple(ops))
    order = {perm[1]: 2, perm[2]: 0, perm[0]: 1}
    sched = Schedule(comp, (0, 0, 0), tuple(order[i] for i in range(3)), 1)
    return ExecutionTrace(
        comp, sched, "smoke", [ReadEvent(perm[1], "x", perm[2])]
    )


#: Chains of 2..7 nodes (6 classes) + one cycle class = 7 canonical
#: classes total, however large the batch.
UNIQUE_CLASSES = 7


def gen_batch(count: int, out_path: str) -> int:
    from repro.io import dump_trace

    chains = [_chain_trace(n) for n in range(2, 8)]
    cycles = [_cycle_trace(p) for p in itertools.permutations((0, 1, 2))]
    with open(out_path, "w", encoding="utf-8") as f:
        for i in range(count):
            trace = (
                chains[(i // 2) % len(chains)]
                if i % 2 == 0
                else cycles[(i // 2) % len(cycles)]
            )
            f.write(json.dumps(dump_trace(trace)) + "\n")
    print(f"serve-smoke: wrote {count} request(s) to {out_path}")
    return 0


def check_verdicts(
    path: str, items: int, trace_id: str | None = None
) -> int:
    with open(path, encoding="utf-8") as f:
        verdicts = [json.loads(line) for line in f if line.strip()]
    if len(verdicts) != items:
        print(
            f"serve-smoke: {len(verdicts)} verdict line(s), expected {items}",
            file=sys.stderr,
        )
        return 1
    indices = sorted(v["index"] for v in verdicts)
    if indices != list(range(items)):
        print(
            "serve-smoke: verdict indices do not cover the batch "
            f"(got {len(set(indices))} distinct of {items})",
            file=sys.stderr,
        )
        return 1
    bad = [v for v in verdicts if not v.get("ok")]
    if bad:
        print(
            f"serve-smoke: {len(bad)} item(s) errored, first: "
            f"{bad[0].get('error')!r}",
            file=sys.stderr,
        )
        return 1
    for v in verdicts:
        expect_admitted = v["index"] % 2 == 0
        if v["admitted"] is not expect_admitted:
            print(
                f"serve-smoke: item {v['index']} admitted={v['admitted']}, "
                f"generator says {expect_admitted}",
                file=sys.stderr,
            )
            return 1
        if not expect_admitted:
            witness = v.get("witness")
            if not witness or not witness.get("blocks"):
                print(
                    f"serve-smoke: rejected item {v['index']} carries no "
                    "structured witness blocks",
                    file=sys.stderr,
                )
                return 1
    if trace_id is not None:
        wrong = [
            v["index"] for v in verdicts if v.get("trace_id") != trace_id
        ]
        if wrong:
            print(
                f"serve-smoke: item(s) {wrong[:5]} do not echo trace_id "
                f"{trace_id}",
                file=sys.stderr,
            )
            return 1
        request_ids = [v.get("request_id") for v in verdicts]
        if len(set(request_ids)) != items or not all(request_ids):
            print(
                "serve-smoke: request_ids are missing or not distinct "
                f"({len(set(request_ids))} distinct of {items})",
                file=sys.stderr,
            )
            return 1
    cached = sum(1 for v in verdicts if v.get("cached"))
    if cached < items - UNIQUE_CLASSES:
        print(
            f"serve-smoke: only {cached} dedupe hit(s); the corpus has "
            f"{UNIQUE_CLASSES} canonical classes so at least "
            f"{items - UNIQUE_CLASSES} were expected",
            file=sys.stderr,
        )
        return 1
    print(
        f"serve-smoke: verdicts OK — {items} item(s), "
        f"{sum(1 for v in verdicts if v['admitted'])} admitted, "
        f"{cached} dedupe hit(s)"
    )
    return 0


def _prom_samples(path: str) -> dict[str, float]:
    samples: dict[str, float] = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            try:
                samples[name] = float(value)
            except ValueError:
                continue
    return samples


def check_metrics(path: str, items: int) -> int:
    samples = _prom_samples(path)

    def get(name: str) -> float:
        if name not in samples:
            print(
                f"serve-smoke: exposition is missing {name}",
                file=sys.stderr,
            )
            raise KeyError(name)
        return samples[name]

    try:
        got_items = get("repro_serve_items")
        admitted = get("repro_serve_verdicts_admitted")
        rejected = get("repro_serve_verdicts_rejected")
        hits = get("repro_serve_dedupe_hits")
        misses = get("repro_serve_dedupe_misses")
        batches = get("repro_serve_batches")
        requests = get("repro_serve_requests")
        check_count = get("repro_serve_check_seconds_count")
    except KeyError:
        return 1
    if got_items != items:
        print(
            f"serve-smoke: repro_serve_items is {got_items}, "
            f"expected {items}",
            file=sys.stderr,
        )
        return 1
    if admitted + rejected != items:
        print(
            f"serve-smoke: verdict counters sum to {admitted + rejected}, "
            f"expected {items}",
            file=sys.stderr,
        )
        return 1
    if hits <= 0 or hits + misses != items:
        print(
            f"serve-smoke: dedupe counters hits={hits} misses={misses} "
            f"do not account for {items} item(s)",
            file=sys.stderr,
        )
        return 1
    if batches < 1 or requests < 1:
        print(
            f"serve-smoke: batches={batches} requests={requests}; "
            "expected at least one of each",
            file=sys.stderr,
        )
        return 1
    if check_count != items:
        print(
            f"serve-smoke: check_seconds histogram observed {check_count} "
            f"item(s), expected {items}",
            file=sys.stderr,
        )
        return 1
    print(
        f"serve-smoke: metrics OK — {int(got_items)} items "
        f"({int(admitted)} admitted / {int(rejected)} rejected), "
        f"{int(hits)} dedupe hit(s), {int(check_count)} timed check(s)"
    )
    return 0


def check_ledger(path: str, items: int, expect_torn: bool) -> int:
    with open(path, encoding="utf-8") as f:
        ledger = json.load(f)
    if ledger["items_accepted"] != items or ledger["items_done"] != items:
        print(
            f"serve-smoke: ledger accounts for "
            f"{ledger['items_done']}/{ledger['items_accepted']} item(s), "
            f"expected {items}/{items}",
            file=sys.stderr,
        )
        return 1
    if ledger["pending"] != 0:
        print(
            f"serve-smoke: {ledger['pending']} item(s) pending — accepted "
            "work was abandoned",
            file=sys.stderr,
        )
        return 1
    if ledger["admitted"] + ledger["rejected"] + ledger["errors"] != items:
        print(
            "serve-smoke: ledger verdict counts do not sum to "
            f"{items}: {ledger}",
            file=sys.stderr,
        )
        return 1
    if expect_torn and ledger["clean"]:
        print(
            "serve-smoke: ledger closed cleanly but a torn (kill -9) "
            "journal was expected",
            file=sys.stderr,
        )
        return 1
    if not expect_torn and not ledger["clean"]:
        print(
            "serve-smoke: ledger is torn but a clean shutdown was expected",
            file=sys.stderr,
        )
        return 1
    shutdown = "clean" if ledger["clean"] else "torn"
    print(
        f"serve-smoke: ledger OK — {ledger['items_done']} item(s) done "
        f"({shutdown} shutdown), {ledger['admitted']} admitted, "
        f"{ledger['rejected']} rejected, {ledger['cached']} cached"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[0] == "gen" and argv[1].isdigit():
        return gen_batch(int(argv[1]), argv[2])
    if (
        len(argv) == 4
        and argv[0] in ("verify", "metrics")
        and argv[2] == "--items"
        and argv[3].isdigit()
    ):
        check = check_verdicts if argv[0] == "verify" else check_metrics
        return check(argv[1], int(argv[3]))
    if (
        len(argv) == 6
        and argv[0] == "verify"
        and argv[2] == "--items"
        and argv[3].isdigit()
        and argv[4] == "--trace-id"
    ):
        return check_verdicts(argv[1], int(argv[3]), trace_id=argv[5])
    if (
        len(argv) >= 4
        and argv[0] == "ledger"
        and argv[2] == "--items"
        and argv[3].isdigit()
        and argv[4:] in ([], ["--expect-torn"])
    ):
        return check_ledger(argv[1], int(argv[3]), bool(argv[4:]))
    print(
        "usage: serve_smoke.py gen N BATCH.jsonl | "
        "serve_smoke.py verify VERDICTS.jsonl --items N [--trace-id HEX] | "
        "serve_smoke.py metrics METRICS.txt --items N | "
        "serve_smoke.py ledger LEDGER.json --items N [--expect-torn]",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
