#!/usr/bin/env python
"""CI smoke check for the observability layer.

Two checks, both exercised by the ``obs-smoke`` CI job:

1. ``python scripts/obs_smoke.py validate TRACE.json`` — the file is a
   structurally valid trace document (``repro.obs.validate_trace``),
   contains at least one sweep span with shard children, and the shard
   telemetry sums to the global sweep counters (the ``--trace`` /
   ``SweepStats`` consistency contract).  Chrome trace-event documents
   (``--trace-format chrome``) are auto-detected by their
   ``traceEvents`` key and checked with
   ``repro.obs.validate_chrome_trace`` (every event carries
   ph/ts/pid/tid, ts are non-negative and monotone, X events have a
   duration); ``--min-pids N`` additionally requires the events to span
   at least N distinct pid tracks (a multi-worker sweep must not
   collapse onto one row).
2. ``python scripts/obs_smoke.py uncached`` — the cache-propagation
   invariant: a ``sweep_caching(False)`` sweep dispatched to a process
   pool must report **zero** cache consultations from its workers (the
   flag travels inside each ``ShardSpec``; before the fix workers
   silently re-enabled caching, poisoning uncached baselines).

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import json
import sys


def _iter_spans(spans):
    stack = list(spans)
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(sp.get("children", ()))


def check_chrome_trace(doc: dict, min_pids: int) -> int:
    from repro.obs import validate_chrome_trace

    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid chrome trace: {p}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    complete = [ev for ev in events if ev.get("ph") == "X"]
    pids = {ev["pid"] for ev in complete}
    if len(pids) < min_pids:
        print(
            f"obs-smoke: chrome trace spans only {len(pids)} pid track(s) "
            f"({sorted(pids)}); expected at least {min_pids} — worker "
            "spans did not land on their own tracks",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: chrome trace OK — {len(events)} events, "
        f"{len(complete)} complete spans across {len(pids)} pid track(s)"
    )
    return 0


def check_trace(path: str, min_pids: int = 1) -> int:
    from repro.obs import validate_trace

    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" in doc:
        return check_chrome_trace(doc, min_pids)
    problems = validate_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid trace: {p}", file=sys.stderr)
        return 1

    spans = list(_iter_spans(doc.get("spans", [])))
    sweeps = [sp for sp in spans if sp["name"].startswith("sweep:")]
    if not sweeps:
        print("obs-smoke: trace contains no sweep spans", file=sys.stderr)
        return 1
    shards = [
        child
        for sweep in sweeps
        for child in sweep["children"]
        if child["name"] == "shard"
    ]
    if not shards:
        print("obs-smoke: sweep spans carry no shard children", file=sys.stderr)
        return 1

    counters = doc["counters"]
    shard_pairs = sum(sp["attrs"]["pairs"] for sp in shards)
    if shard_pairs != counters.get("sweep.pairs"):
        print(
            f"obs-smoke: shard spans sum to {shard_pairs} pairs but the "
            f"sweep.pairs counter says {counters.get('sweep.pairs')}",
            file=sys.stderr,
        )
        return 1
    consultations = sum(
        info["hits"] + info["misses"]
        for sp in shards
        for info in sp["attrs"]["caches"].values()
    )
    if consultations != counters.get("sweep.cache.consultations"):
        print(
            f"obs-smoke: shard telemetry sums to {consultations} cache "
            "consultations but the sweep.cache.consultations counter says "
            f"{counters.get('sweep.cache.consultations')}",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: trace OK — {len(spans)} spans, {len(sweeps)} sweeps, "
        f"{len(shards)} shards, {shard_pairs} pairs, "
        f"{consultations} cache consultations"
    )
    return 0


def check_uncached() -> int:
    from repro._caching import sweep_caching
    from repro.models import LC, SC, Universe
    from repro.runtime.parallel import parallel_inclusion_matrix

    universe = Universe(max_nodes=3, locations=("x",))
    with sweep_caching(False):
        _, stats = parallel_inclusion_matrix(
            (SC, LC), universe, jobs=2, parallel_threshold=0
        )
    if not stats.mode.startswith("process-pool"):
        print(
            f"obs-smoke: expected a pool sweep, got mode {stats.mode!r}",
            file=sys.stderr,
        )
        return 1
    flags = {s.cache_enabled for s in stats.shards}
    consultations = stats.cache_consultations()
    if flags != {False} or consultations != 0:
        print(
            "obs-smoke: sweep_caching(False) leaked — workers reported "
            f"cache_enabled={flags}, {consultations} consultations",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: uncached invariant OK — {stats.mode}, "
        f"{len(stats.shards)} shards, 0 worker cache consultations"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) >= 2 and argv[0] == "validate":
        min_pids = 1
        rest = argv[2:]
        if rest[:1] == ["--min-pids"] and len(rest) == 2 and rest[1].isdigit():
            min_pids = int(rest[1])
        elif rest:
            print(f"obs-smoke: unknown arguments {rest}", file=sys.stderr)
            return 2
        return check_trace(argv[1], min_pids)
    if argv == ["uncached"]:
        return check_uncached()
    print(
        "usage: obs_smoke.py validate TRACE.json [--min-pids N] | "
        "obs_smoke.py uncached",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
