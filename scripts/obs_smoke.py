#!/usr/bin/env python
"""CI smoke check for the observability layer.

Four checks, all exercised by the ``obs-smoke`` CI job:

1. ``python scripts/obs_smoke.py validate TRACE.json`` — the file is a
   structurally valid trace document (``repro.obs.validate_trace``),
   contains at least one sweep span with shard children, and the shard
   telemetry sums to the global sweep counters (the ``--trace`` /
   ``SweepStats`` consistency contract).  Chrome trace-event documents
   (``--trace-format chrome``) are auto-detected by their
   ``traceEvents`` key and checked with
   ``repro.obs.validate_chrome_trace`` (every event carries
   ph/ts/pid/tid, ts are non-negative and monotone, X events have a
   duration); ``--min-pids N`` additionally requires the events to span
   at least N distinct pid tracks (a multi-worker sweep must not
   collapse onto one row).
2. ``python scripts/obs_smoke.py uncached`` — the cache-propagation
   invariant: a ``sweep_caching(False)`` sweep dispatched to a process
   pool must report **zero** cache consultations from its workers (the
   flag travels inside each ``ShardSpec``; before the fix workers
   silently re-enabled caching, poisoning uncached baselines).
3. ``python scripts/obs_smoke.py replay JOURNAL.jsonl [--expect-aborted]``
   — the crash-recovery contract: ``repro.obs.replay_journal`` must turn
   the journal (including one torn mid-record by ``kill -9``) into a
   trace that passes ``validate_trace`` *and* ``validate_chrome_trace``;
   with ``--expect-aborted`` the journal must additionally be a torn one
   (non-clean shutdown, at least one span recovered as ``aborted``).
4. ``python scripts/obs_smoke.py prom METRICS.txt`` — the Prometheus
   exposition shape: at least one ``# TYPE`` line, every ``# TYPE`` is
   counter/gauge/histogram, every sample line parses with a finite
   non-negative value, and histogram ``_bucket`` series are cumulative
   (monotone non-decreasing in ``le``, capped by ``+Inf``).
5. ``python scripts/obs_smoke.py sarif REPORT.sarif [--min-results N]``
   — the ``repro lint --format sarif`` artifact is structurally valid
   SARIF 2.1.0 (``repro.analysis.validate_sarif``), its driver is
   ``repro-lint``, every result carries a ``reproLint/v1``
   fingerprint, and (with ``--min-results``) the run reported at
   least N results.
6. ``python scripts/obs_smoke.py flow CHROME.json [--min-pids N]
   [--trace-id HEX]`` — the cross-process trace-stitching contract:
   the Chrome export of a traced serve/sweep run must contain spans
   annotated with ``trace_id``/``span_id``, every cross-pid
   parent link must come with a matching flow-arrow pair (``ph: "s"``
   on the parent's track, ``ph: "f"`` on the child's, shared id), the
   linked spans must cover at least N distinct pids, and (with
   ``--trace-id``) the spans must carry exactly that trace id — one
   ``traceparent``-stamped request stitches into one tree.
7. ``python scripts/obs_smoke.py speedscope PROFILE.json`` — the
   ``--profile-sample`` artifact is a structurally valid speedscope
   document (``repro.obs.profile.validate_speedscope``) with at least
   one profile containing at least one sample.
8. ``python scripts/obs_smoke.py hier RUNS.jsonl CHROME.json`` — the
   ``repro hier sweep`` contract: every faithful run record carries
   ``lc_verified: true`` (the post-mortem streaming check passed),
   every fault probe is rejected with a rendered violation, per-level
   counters are present on every record, miss-latency p50s are
   monotone in level depth within each record, and the Chrome trace is
   valid with at least two ``hier p<proc> L<level>`` process tracks
   spanning at least two levels.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import json
import sys


def _iter_spans(spans):
    stack = list(spans)
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(sp.get("children", ()))


def check_chrome_trace(doc: dict, min_pids: int) -> int:
    from repro.obs import validate_chrome_trace

    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid chrome trace: {p}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    complete = [ev for ev in events if ev.get("ph") == "X"]
    pids = {ev["pid"] for ev in complete}
    if len(pids) < min_pids:
        print(
            f"obs-smoke: chrome trace spans only {len(pids)} pid track(s) "
            f"({sorted(pids)}); expected at least {min_pids} — worker "
            "spans did not land on their own tracks",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: chrome trace OK — {len(events)} events, "
        f"{len(complete)} complete spans across {len(pids)} pid track(s)"
    )
    return 0


def check_trace(path: str, min_pids: int = 1) -> int:
    from repro.obs import validate_trace

    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" in doc:
        return check_chrome_trace(doc, min_pids)
    problems = validate_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid trace: {p}", file=sys.stderr)
        return 1

    spans = list(_iter_spans(doc.get("spans", [])))
    sweeps = [sp for sp in spans if sp["name"].startswith("sweep:")]
    if not sweeps:
        print("obs-smoke: trace contains no sweep spans", file=sys.stderr)
        return 1
    shards = [
        child
        for sweep in sweeps
        for child in sweep["children"]
        if child["name"] == "shard"
    ]
    if not shards:
        print("obs-smoke: sweep spans carry no shard children", file=sys.stderr)
        return 1

    counters = doc["counters"]
    shard_pairs = sum(sp["attrs"]["pairs"] for sp in shards)
    if shard_pairs != counters.get("sweep.pairs"):
        print(
            f"obs-smoke: shard spans sum to {shard_pairs} pairs but the "
            f"sweep.pairs counter says {counters.get('sweep.pairs')}",
            file=sys.stderr,
        )
        return 1
    consultations = sum(
        info["hits"] + info["misses"]
        for sp in shards
        for info in sp["attrs"]["caches"].values()
    )
    if consultations != counters.get("sweep.cache.consultations"):
        print(
            f"obs-smoke: shard telemetry sums to {consultations} cache "
            "consultations but the sweep.cache.consultations counter says "
            f"{counters.get('sweep.cache.consultations')}",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: trace OK — {len(spans)} spans, {len(sweeps)} sweeps, "
        f"{len(shards)} shards, {shard_pairs} pairs, "
        f"{consultations} cache consultations"
    )
    return 0


def check_uncached() -> int:
    from repro._caching import sweep_caching
    from repro.models import LC, SC, Universe
    from repro.runtime.parallel import parallel_inclusion_matrix

    universe = Universe(max_nodes=3, locations=("x",))
    with sweep_caching(False):
        _, stats = parallel_inclusion_matrix(
            (SC, LC), universe, jobs=2, parallel_threshold=0
        )
    if not stats.mode.startswith("process-pool"):
        print(
            f"obs-smoke: expected a pool sweep, got mode {stats.mode!r}",
            file=sys.stderr,
        )
        return 1
    flags = {s.cache_enabled for s in stats.shards}
    consultations = stats.cache_consultations()
    if flags != {False} or consultations != 0:
        print(
            "obs-smoke: sweep_caching(False) leaked — workers reported "
            f"cache_enabled={flags}, {consultations} consultations",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-smoke: uncached invariant OK — {stats.mode}, "
        f"{len(stats.shards)} shards, 0 worker cache consultations"
    )
    return 0


def check_replay(path: str, expect_aborted: bool) -> int:
    from repro.obs import (
        replay_journal,
        validate_chrome_trace,
        validate_trace,
    )
    from repro.obs.export import export_chrome

    replay = replay_journal(path)
    problems = validate_trace(replay.to_trace_dict())
    if problems:
        for p in problems:
            print(f"obs-smoke: replayed trace invalid: {p}", file=sys.stderr)
        return 1
    chrome = json.loads(export_chrome(replay.obs))
    problems = validate_chrome_trace(chrome)
    if problems:
        for p in problems:
            print(
                f"obs-smoke: replayed chrome trace invalid: {p}",
                file=sys.stderr,
            )
        return 1
    if expect_aborted:
        if replay.clean:
            print(
                "obs-smoke: journal closed cleanly but a torn (kill -9) "
                "journal was expected — the crash did not land mid-sweep",
                file=sys.stderr,
            )
            return 1
        if not replay.aborted:
            print(
                "obs-smoke: torn journal recovered but no span was marked "
                "aborted — the crash left no dangling work?",
                file=sys.stderr,
            )
            return 1
    shutdown = "clean" if replay.clean else "torn"
    print(
        f"obs-smoke: replay OK — {replay.records} records ({shutdown} "
        f"shutdown), {replay.dropped} dropped line(s), "
        f"{len(replay.aborted)} span(s) recovered as aborted "
        f"{replay.aborted}"
    )
    return 0


def check_prom(path: str) -> int:
    with open(path) as f:
        text = f.read()
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram"
            ):
                print(
                    f"obs-smoke: bad TYPE line {lineno}: {line!r}",
                    file=sys.stderr,
                )
                return 1
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            print(
                f"obs-smoke: unparsable sample line {lineno}: {line!r}",
                file=sys.stderr,
            )
            return 1
        if value != value or value < 0:
            print(
                f"obs-smoke: negative/NaN sample on line {lineno}: {line!r}",
                file=sys.stderr,
            )
            return 1
        samples += 1
        if "_bucket{le=" in name_part:
            metric, le_part = name_part.split("_bucket{le=", 1)
            le_text = le_part.rstrip("}").strip('"')
            le = float("inf") if le_text == "+Inf" else float(le_text)
            buckets.setdefault(metric, []).append((le, value))
    if not types:
        print("obs-smoke: no # TYPE lines in exposition", file=sys.stderr)
        return 1
    if not samples:
        print("obs-smoke: no sample lines in exposition", file=sys.stderr)
        return 1
    for metric, series in buckets.items():
        ordered = sorted(series, key=lambda pair: pair[0])
        counts = [count for _, count in ordered]
        if counts != sorted(counts):
            print(
                f"obs-smoke: histogram {metric} buckets are not cumulative: "
                f"{ordered}",
                file=sys.stderr,
            )
            return 1
        if ordered[-1][0] != float("inf"):
            print(
                f"obs-smoke: histogram {metric} is missing its +Inf bucket",
                file=sys.stderr,
            )
            return 1
    print(
        f"obs-smoke: prometheus exposition OK — {len(types)} metrics "
        f"({sum(1 for t in types.values() if t == 'histogram')} histograms), "
        f"{samples} samples, all buckets cumulative"
    )
    return 0


def check_sarif(path: str, min_results: int = 0) -> int:
    from repro.analysis import validate_sarif

    with open(path) as f:
        doc = json.load(f)
    try:
        validate_sarif(doc)
    except ValueError as exc:
        print(f"obs-smoke: {exc}", file=sys.stderr)
        return 1
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    if driver["name"] != "repro-lint":
        print(
            f"obs-smoke: sarif driver is {driver['name']!r}, "
            "expected 'repro-lint'",
            file=sys.stderr,
        )
        return 1
    results = run["results"]
    missing_fp = [
        i
        for i, res in enumerate(results)
        if "reproLint/v1" not in res.get("partialFingerprints", {})
    ]
    if missing_fp:
        print(
            f"obs-smoke: sarif results {missing_fp} carry no "
            "reproLint/v1 fingerprint — baseline matching would break",
            file=sys.stderr,
        )
        return 1
    if len(results) < min_results:
        print(
            f"obs-smoke: sarif run has {len(results)} result(s), "
            f"expected at least {min_results}",
            file=sys.stderr,
        )
        return 1
    suppressed = sum(1 for res in results if res.get("suppressions"))
    print(
        f"obs-smoke: sarif OK — {len(driver['rules'])} rules, "
        f"{len(results)} results ({suppressed} suppressed), "
        "all fingerprinted"
    )
    return 0


def check_flow(path: str, min_pids: int, trace_id: str | None) -> int:
    from repro.obs import validate_chrome_trace

    with open(path) as f:
        doc = json.load(f)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid chrome trace: {p}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    spans = [ev for ev in events if ev.get("ph") == "X"]
    traced = [
        ev for ev in spans if ev.get("args", {}).get("trace_id")
    ]
    if not traced:
        print(
            "obs-smoke: chrome trace has no trace_id-annotated spans — "
            "trace-context propagation did not reach the exporter",
            file=sys.stderr,
        )
        return 1
    if trace_id is not None:
        foreign = {
            ev["args"]["trace_id"]
            for ev in traced
            if ev["args"]["trace_id"] != trace_id
        }
        mine = [
            ev for ev in traced if ev["args"]["trace_id"] == trace_id
        ]
        if not mine:
            print(
                f"obs-smoke: no span carries trace_id {trace_id} "
                f"(saw {sorted(foreign)})",
                file=sys.stderr,
            )
            return 1
        traced = mine
    by_span = {
        ev["args"]["span_id"]: ev
        for ev in traced
        if ev.get("args", {}).get("span_id")
    }
    # Cross-pid parent links that must each be stitched by a flow pair.
    cross = []
    for ev in traced:
        parent_sid = ev.get("args", {}).get("parent_span_id")
        src = by_span.get(parent_sid) if parent_sid else None
        if src is not None and src["pid"] != ev["pid"]:
            cross.append((src, ev))
    if not cross:
        print(
            "obs-smoke: no cross-pid parent links among traced spans — "
            "the request never crossed the pool fork boundary",
            file=sys.stderr,
        )
        return 1
    starts = {
        (ev["pid"], ev["tid"], ev.get("id"))
        for ev in events
        if ev.get("ph") == "s"
    }
    finishes = {
        (ev["pid"], ev["tid"], ev.get("id"))
        for ev in events
        if ev.get("ph") == "f"
    }
    flow_ids_start = {fid for _, _, fid in starts}
    flow_ids_finish = {fid for _, _, fid in finishes}
    if flow_ids_start != flow_ids_finish:
        print(
            "obs-smoke: unpaired flow events — starts "
            f"{sorted(flow_ids_start)} vs finishes {sorted(flow_ids_finish)}",
            file=sys.stderr,
        )
        return 1
    if len(flow_ids_start) < len(cross):
        print(
            f"obs-smoke: {len(cross)} cross-pid parent link(s) but only "
            f"{len(flow_ids_start)} flow pair(s) — arrows are missing",
            file=sys.stderr,
        )
        return 1
    linked_pids = {ev["pid"] for src, ev in cross} | {
        src["pid"] for src, ev in cross
    }
    if len(linked_pids) < min_pids:
        print(
            f"obs-smoke: stitched trace covers only {len(linked_pids)} "
            f"pid(s) ({sorted(linked_pids)}); expected at least {min_pids}",
            file=sys.stderr,
        )
        return 1
    tids = {ev["args"]["trace_id"] for ev in traced}
    print(
        f"obs-smoke: flow OK — {len(traced)} traced spans "
        f"(trace ids {sorted(tids)}), {len(cross)} cross-pid link(s) "
        f"stitched by {len(flow_ids_start)} flow pair(s) across "
        f"{len(linked_pids)} pid(s)"
    )
    return 0


def check_speedscope(path: str) -> int:
    from repro.obs.profile import validate_speedscope_file

    problems = validate_speedscope_file(path)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid speedscope: {p}", file=sys.stderr)
        return 1
    with open(path) as f:
        doc = json.load(f)
    profiles = doc.get("profiles", [])
    samples = sum(len(p.get("samples", [])) for p in profiles)
    if samples == 0:
        print(
            "obs-smoke: speedscope document has zero samples — the "
            "SIGPROF sampler never fired",
            file=sys.stderr,
        )
        return 1
    frames = len(doc.get("shared", {}).get("frames", []))
    print(
        f"obs-smoke: speedscope OK — {len(profiles)} profile(s), "
        f"{samples} sample(s), {frames} distinct frame(s)"
    )
    return 0


_LEVEL_KEYS = (
    "fetches",
    "hits",
    "writebacks",
    "evictions",
    "false_sharing",
    "miss_latency_p50",
    "miss_count",
)


def check_hier(runs_path: str, chrome_path: str) -> int:
    from repro.obs import validate_chrome_trace

    with open(runs_path) as f:
        records = [json.loads(line) for line in f if line.strip()]
    if not records:
        print("obs-smoke: hier runs file is empty", file=sys.stderr)
        return 1
    faithful = [r for r in records if r.get("faithful")]
    probes = [r for r in records if not r.get("faithful")]
    if not faithful:
        print("obs-smoke: no faithful hier runs recorded", file=sys.stderr)
        return 1
    if not probes:
        print("obs-smoke: no hier fault probes recorded", file=sys.stderr)
        return 1
    for i, rec in enumerate(records):
        levels = rec.get("levels")
        if not levels:
            print(
                f"obs-smoke: hier record {i} has no per-level counters",
                file=sys.stderr,
            )
            return 1
        for lv in levels:
            missing = [k for k in _LEVEL_KEYS if k not in lv]
            if missing:
                print(
                    f"obs-smoke: hier record {i} level {lv.get('level')} "
                    f"is missing counters {missing}",
                    file=sys.stderr,
                )
                return 1
        # Miss latency grows with depth: a deeper level only sees
        # requests that already paid every shallower level's probe.
        p50s = [
            lv["miss_latency_p50"] for lv in levels if lv["miss_count"] > 0
        ]
        if p50s != sorted(p50s):
            print(
                f"obs-smoke: hier record {i} "
                f"({rec.get('shape')}/{rec.get('workload')}) has "
                f"non-monotone per-level miss-latency p50s: {p50s}",
                file=sys.stderr,
            )
            return 1
    bad = [r for r in faithful if not r.get("lc_verified")]
    if bad:
        print(
            f"obs-smoke: {len(bad)} faithful hier run(s) failed the "
            "post-mortem LC check: "
            f"{[(r['shape'], r['workload']) for r in bad]}",
            file=sys.stderr,
        )
        return 1
    unrejected = [
        r for r in probes if r.get("lc_verified") or not r.get("violation")
    ]
    if unrejected:
        print(
            f"obs-smoke: {len(unrejected)} fault probe(s) were not "
            "rejected with a violation: "
            f"{[r['workload'] for r in unrejected]}",
            file=sys.stderr,
        )
        return 1

    with open(chrome_path) as f:
        doc = json.load(f)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"obs-smoke: invalid chrome trace: {p}", file=sys.stderr)
        return 1
    track_names = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    hier_tracks = {n for n in track_names if n.startswith("hier p")}
    if len(hier_tracks) < 2:
        print(
            f"obs-smoke: chrome trace has {len(hier_tracks)} hier track(s) "
            f"({sorted(hier_tracks)}); expected per-(processor, level) "
            "tracks",
            file=sys.stderr,
        )
        return 1
    levels_seen = {n.rsplit("L", 1)[-1] for n in hier_tracks}
    if len(levels_seen) < 2:
        print(
            f"obs-smoke: hier tracks cover only level(s) "
            f"{sorted(levels_seen)}; expected at least two levels",
            file=sys.stderr,
        )
        return 1
    shapes = sorted({r["shape"] for r in faithful})
    workloads = sorted({r["workload"] for r in faithful})
    print(
        f"obs-smoke: hier OK — {len(faithful)} faithful run(s) "
        f"({len(shapes)} shapes × {len(workloads)} workloads) all "
        f"LC-verified, {len(probes)} fault probe(s) all rejected, "
        f"monotone per-level miss latencies, {len(hier_tracks)} hier "
        f"track(s) over {len(levels_seen)} level(s)"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) >= 2 and argv[0] == "validate":
        min_pids = 1
        rest = argv[2:]
        if rest[:1] == ["--min-pids"] and len(rest) == 2 and rest[1].isdigit():
            min_pids = int(rest[1])
        elif rest:
            print(f"obs-smoke: unknown arguments {rest}", file=sys.stderr)
            return 2
        return check_trace(argv[1], min_pids)
    if argv == ["uncached"]:
        return check_uncached()
    if len(argv) >= 2 and argv[0] == "replay":
        rest = argv[2:]
        if rest not in ([], ["--expect-aborted"]):
            print(f"obs-smoke: unknown arguments {rest}", file=sys.stderr)
            return 2
        return check_replay(argv[1], expect_aborted=bool(rest))
    if len(argv) == 2 and argv[0] == "prom":
        return check_prom(argv[1])
    if len(argv) >= 2 and argv[0] == "flow":
        min_pids = 2
        trace_id: str | None = None
        rest = argv[2:]
        while rest:
            if rest[:1] == ["--min-pids"] and len(rest) >= 2 and rest[1].isdigit():
                min_pids = int(rest[1])
                rest = rest[2:]
            elif rest[:1] == ["--trace-id"] and len(rest) >= 2:
                trace_id = rest[1]
                rest = rest[2:]
            else:
                print(f"obs-smoke: unknown arguments {rest}", file=sys.stderr)
                return 2
        return check_flow(argv[1], min_pids, trace_id)
    if len(argv) == 2 and argv[0] == "speedscope":
        return check_speedscope(argv[1])
    if len(argv) == 3 and argv[0] == "hier":
        return check_hier(argv[1], argv[2])
    if len(argv) >= 2 and argv[0] == "sarif":
        min_results = 0
        rest = argv[2:]
        if (
            rest[:1] == ["--min-results"]
            and len(rest) == 2
            and rest[1].isdigit()
        ):
            min_results = int(rest[1])
        elif rest:
            print(f"obs-smoke: unknown arguments {rest}", file=sys.stderr)
            return 2
        return check_sarif(argv[1], min_results)
    print(
        "usage: obs_smoke.py validate TRACE.json [--min-pids N] | "
        "obs_smoke.py uncached | "
        "obs_smoke.py replay JOURNAL.jsonl [--expect-aborted] | "
        "obs_smoke.py prom METRICS.txt | "
        "obs_smoke.py sarif REPORT.sarif [--min-results N] | "
        "obs_smoke.py flow CHROME.json [--min-pids N] [--trace-id HEX] | "
        "obs_smoke.py speedscope PROFILE.json | "
        "obs_smoke.py hier RUNS.jsonl CHROME.json",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
