#!/usr/bin/env python
"""CI regression gate over the performance ledger.

Reads ``BENCH_LEDGER.jsonl`` (see ``repro bench``) and decides whether
the newest record of each benchmark regressed against its own history:
the baseline is the *median* wall-p50 of the last K records (default 5)
and the noise floor is their MAD — a candidate only fails when it is
both ``--threshold`` (default 25%) slower than the baseline *and* more
than ``max(3 × MAD, 5 ms)`` outside it, so neither noisy benchmarks nor
millisecond-scale quick benchmarks flap the gate.

Two shapes:

* ``bench_gate.py LEDGER`` — gate the last record per benchmark in the
  file against the earlier ones (the local re-run shape);
* ``bench_gate.py LEDGER --candidates FRESH.jsonl`` — gate every record
  of a fresh run against the whole committed trajectory (the CI shape).

Exit codes: 0 clean, 1 on a bad invocation or unreadable ledger, 2 on
at least one regression.  ``--format markdown`` renders the report as a
GitHub-flavored table (for job summaries); intentional regressions are
blessed by simply appending the new records to the committed ledger —
the gate always measures against recent history, not a frozen number
(see EXPERIMENTS.md, "Tracking the trajectory").
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.obs.ledger import (
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        gate_ledger,
    )

    parser = argparse.ArgumentParser(
        prog="bench_gate.py",
        description="noise-aware perf-regression gate over a benchmark ledger",
    )
    parser.add_argument("ledger", help="JSONL ledger file (the history)")
    parser.add_argument(
        "--candidates", default=None, metavar="FILE",
        help="gate this fresh run's records instead of the ledger's last "
             "record per benchmark",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"history records per benchmark (default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative wall-p50 regression threshold "
             f"(default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--format", choices=["text", "markdown"], default="text",
        help="report format",
    )
    args = parser.parse_args(argv)

    try:
        report = gate_ledger(
            args.ledger,
            candidate_path=args.candidates,
            window=args.window,
            threshold=args.threshold,
        )
    except (OSError, ValueError) as exc:
        print(f"bench-gate: error: {exc}", file=sys.stderr)
        return 1
    print(report.render(markdown=args.format == "markdown"))
    return 0 if report.ok else 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
