#!/usr/bin/env python3
"""Classify classical litmus-test outcomes against the model zoo.

Embeds processor-centric litmus programs (store buffering, message
passing, coherence-of-reads, IRIW, load buffering) into the
computation-centric framework — one dependency chain per processor —
and asks each model whether the "interesting" weak outcome is allowed.

The table shows the paper's lattice at work on concrete programs:
sequential consistency forbids everything weak; location consistency
(= NN*, the model BACKER maintains) additionally forbids only the
coherence violation CoRR; the weaker dag-consistency models WW/WN/NW
allow even that.

Run:  python examples/litmus_outcomes.py
"""

from repro.lang import LITMUS_TESTS, litmus_outcome_allowed
from repro.verify import find_races

MODELS = ("SC", "CC", "LC", "NN", "NW", "WN", "WW")


def main() -> None:
    print(f"{'test':8}" + "".join(f"{m:>6}" for m in MODELS) + "   races")
    print("-" * (8 + 6 * len(MODELS) + 8))
    for test in LITMUS_TESTS:
        comp, _ = test.build()
        races = sum(1 for _ in find_races(comp))
        row = "".join(
            f"{'yes' if litmus_outcome_allowed(test, m) else 'no':>6}"
            for m in MODELS
        )
        print(f"{test.name:8}{row}   {races:>5}")
    print()
    for test in LITMUS_TESTS:
        print(f"{test.name:6} — {test.description}")


if __name__ == "__main__":
    main()
