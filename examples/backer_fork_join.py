#!/usr/bin/env python3
"""BACKER on Cilk-style fork/join programs, with post-mortem verification.

Unfolds real parallel algorithms (fib, blocked matmul, tree-sum) into
computations, schedules them with randomized work stealing on simulated
processors, runs them through the BACKER coherence protocol, and then
verifies post mortem that every trace is location consistent — the
companion theorem the paper builds on ("BACKER maintains LC", Luchangco
1997, identified with NN* by Theorem 23).

Also demonstrates the store-buffer litmus: the same protocol yields
traces that are LC but provably *not* SC, showing the gap between the
two models on real (simulated) hardware rather than on paper examples.

Run:  python examples/backer_fork_join.py
"""

from repro.lang import (
    fib_computation,
    matmul_computation,
    store_buffer_computation,
    tree_sum_computation,
)
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import lc_completion, trace_admits_lc, trace_admits_sc


def run_and_verify(name, comp, procs, seed) -> None:
    sched = work_stealing_schedule(comp, procs, rng=seed)
    mem = BackerMemory()
    trace = execute(sched, mem)
    partial = trace.partial_observer()
    ok = trace_admits_lc(partial)
    phi = lc_completion(partial) if ok else None
    print(
        f"  {name:<22} P={procs}  nodes={comp.num_nodes:>4}  "
        f"makespan={sched.makespan:>4}  reads={len(trace.reads):>4}  "
        f"fetches={mem.stats.fetches:>4}  reconciles={mem.stats.reconciles:>3}  "
        f"LC={'ok' if ok else 'VIOLATED'}"
        + ("  (certificate observer constructed)" if phi is not None else "")
    )
    assert ok, "faithful BACKER must maintain LC"


def main() -> None:
    print("BACKER + work stealing, post-mortem LC verification")
    print("-" * 72)
    fib, _ = fib_computation(8)
    mm, _ = matmul_computation(blocks=3)
    ts, _ = tree_sum_computation(16)
    for procs in (1, 2, 4, 8):
        run_and_verify("fib(8)", fib, procs, seed=procs)
        run_and_verify("matmul 3x3 blocks", mm, procs, seed=procs)
        run_and_verify("tree-sum(16)", ts, procs, seed=procs)
    print()

    print("Store-buffer litmus under BACKER (P=2): LC holds, SC usually not")
    comp, _ = store_buffer_computation()
    non_sc = 0
    runs = 20
    for seed in range(runs):
        sched = work_stealing_schedule(comp, 2, rng=seed)
        trace = execute(sched, BackerMemory())
        partial = trace.partial_observer()
        assert trace_admits_lc(partial)
        if trace_admits_sc(partial) is None:
            non_sc += 1
    print(
        f"  {runs} runs: all location consistent; "
        f"{non_sc} produced behaviour impossible under sequential consistency"
    )


if __name__ == "__main__":
    main()
