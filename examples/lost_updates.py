#!/usr/bin/env python3
"""Lost updates, counted: concrete values under weak memory.

The library's memories tag values with writer node ids, which lets us
*interpret* an execution after the fact and compute the concrete values
a real program would have produced.  This example interprets the racy
counter (each task does ``ctr = ctr + 1`` without locks) and counts how
many increments survive under each memory system:

* on one processor everything serializes and all increments survive;
* with concurrency, updates vanish **under SC and LC alike**: the read
  and the write of an increment are separate nodes, so tasks interleave
  between them — sequential consistency does not make read-modify-write
  atomic.  Lost updates are a *race* problem (fixed by the locks of
  ``locked_counter.py``), not a coherence problem, and the numbers below
  make that textbook point measurable.

Run:  python examples/lost_updates.py
"""

from repro.lang import racy_counter_computation
from repro.runtime import BackerMemory, SerialMemory, execute, work_stealing_schedule
from repro.verify import trace_admits_lc


def interpret_counter(trace) -> int:
    """Compute the final counter value of the racy-counter program.

    Each task node pair is (read, write); the write stores
    ``value(read) + 1``.  Values are reconstructed from the reads-from
    relation: the init write holds 0, every task write holds one more
    than the write its paired read observed.
    """
    comp = trace.comp
    observed = {e.node: e.observed for e in trace.reads}
    init = comp.writers("ctr")[0]
    values: dict[int, int] = {init: 0}

    def value_of(write_node: int) -> int:
        if write_node in values:
            return values[write_node]
        # The task's read is the write's immediate predecessor chain-mate.
        preds = [p for p in comp.dag.predecessors(write_node)]
        read_node = next(p for p in preds if comp.op(p).reads("ctr"))
        seen = observed[read_node]
        values[write_node] = 1 + (0 if seen is None else value_of(seen))
        return values[write_node]

    final_read = comp.readers("ctr")[-1]
    seen = observed[final_read]
    return 0 if seen is None else value_of(seen)


def main() -> None:
    n_tasks, increments = 4, 3
    expected = n_tasks * increments
    comp, _ = racy_counter_computation(n_tasks, increments)
    print(
        f"racy counter: {n_tasks} tasks x {increments} increments "
        f"(expected {expected} if atomic)"
    )
    print(f"{'memory':>10} {'P':>3} {'final value':>12} {'lost':>6} {'LC?':>5}")
    for memory_name, factory in [
        ("serial", lambda s: SerialMemory()),
        ("backer", lambda s: BackerMemory()),
    ]:
        for procs in (1, 4):
            worst = expected
            for seed in range(20):
                sched = work_stealing_schedule(comp, procs, rng=seed)
                trace = execute(sched, factory(seed))
                assert trace_admits_lc(trace.partial_observer())
                worst = min(worst, interpret_counter(trace))
            print(
                f"{memory_name:>10} {procs:>3} {worst:>12} "
                f"{expected - worst:>6} {'yes':>5}"
            )
    print()
    print("Both memories are location consistent — LC permits lost updates;")
    print("they are a *race* problem, fixed by locks (see locked_counter.py),")
    print("not a coherence problem.")


if __name__ == "__main__":
    main()
