#!/usr/bin/env python3
"""Regenerate the paper's Figure 1: the lattice of memory models.

Sweeps every computation/observer pair on a bounded universe to certify
the inclusion matrix, searches for the separation witnesses proving each
edge strict, and runs the Theorem-12 augmentation sweep deciding
constructibility for all six models.

This is the quick (n ≤ 3 sweep, n ≤ 4 witness search) version of
``benchmarks/bench_fig1_lattice.py``; see EXPERIMENTS.md for how the
result maps onto the paper's figure, including the one documented
deviation (WN's constructibility under the paper's formal predicate
table).

Run:  python examples/model_lattice.py
"""

from repro.models import Universe
from repro.analysis import compute_lattice, render_lattice_result, KNOWN_DEVIATIONS


def main() -> None:
    sweep = Universe(max_nodes=3, locations=("x",))
    witnesses = Universe(max_nodes=4, locations=("x",), include_nop=False)
    result = compute_lattice(sweep, witnesses)
    print(render_lattice_result(result))
    problems = result.matches_paper()
    if problems:
        raise SystemExit(f"lattice deviates beyond documentation: {problems}")
    print()
    print("Documented deviation detail:")
    for name, why in KNOWN_DEVIATIONS.items():
        print(f"  {name}: {why}")


if __name__ == "__main__":
    main()
