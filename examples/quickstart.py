#!/usr/bin/env python3
"""Quickstart: computations, observer functions, and memory models.

Builds a small computation with the fluent builder, constructs observer
functions, and asks the model zoo — SC, LC, NN, NW, WN, WW — which
behaviours each allows.  Finishes with a taste of constructibility:
extending an observer function to an augmented computation online.

Run:  python examples/quickstart.py
"""

from repro import LC, NN, NW, SC, WN, WW, ComputationBuilder, ObserverFunction, R
from repro.analysis import render_pair
from repro.models import augmentation_extensions

MODELS = (SC, LC, NN, NW, WN, WW)


def main() -> None:
    # A diamond: one writer, two concurrent readers, a joining reader.
    #       A: W(x)
    #      /       \
    #   B: R(x)   C: W(x)
    #      \       /
    #       D: R(x)
    b = ComputationBuilder()
    a = b.write("x", name="A")
    rb = b.read("x", name="B", after=[a])
    c = b.write("x", name="C", after=[a])
    d = b.read("x", name="D", after=[rb, c])
    comp = b.build()

    print("The computation:")
    print(render_pair(comp, ObserverFunction(comp, {"x": (0, 0, 2, 2)})))
    print()

    # Behaviour 1: B sees A; D sees the newer write C.  Sequentially
    # consistent — the serial order A, B, C, D explains everything.
    phi1 = ObserverFunction(
        comp, {"x": (a.node_id, a.node_id, c.node_id, c.node_id)}
    )
    # Behaviour 2: D sees A even though the write C precedes it.
    # No topological sort explains that (C is between A and D in every
    # sort), and the stale value also violates every dag-consistent
    # model: the chain A ≺ C ≺ D has Φ(A) = Φ(D) = A but Φ(C) = C.
    phi2 = ObserverFunction(
        comp, {"x": (a.node_id, a.node_id, c.node_id, a.node_id)}
    )

    for label, phi in [("fresh read at D", phi1), ("stale read at D", phi2)]:
        verdicts = ", ".join(
            f"{m.name}={'yes' if m.contains(comp, phi) else 'NO'}" for m in MODELS
        )
        print(f"{label}: {verdicts}")
    print()

    # Constructibility in action: an online memory that produced phi1 so
    # far must be able to keep going whatever node arrives next.  LC can:
    print("Extending the fresh behaviour to aug(C) by R(x) within LC:")
    for aug, phi_ext in augmentation_extensions(comp, phi1, R("x")):
        if LC.contains(aug, phi_ext):
            final = aug.num_nodes - 1
            print(
                f"  final node may observe {phi_ext.value('x', final)!r} "
                "(node id of the write, or None for ⊥)"
            )
    print()
    print("Certificates: LC returns the per-location serializations")
    orders = LC.witness_orders(comp, phi1)
    assert orders is not None
    for loc, order in orders.items():
        print(f"  location {loc!r}: topological sort {order}")
    sc_order = SC.witness_order(comp, phi1)
    print(f"  single SC witness order: {sc_order}")


if __name__ == "__main__":
    main()
