#!/usr/bin/env python3
"""Locks and release consistency — the paper's §7 future work, running.

Compares three versions of a concurrent counter:

1. **properly locked** — every increment inside a critical section on
   one lock: data-race free under every serialization; the LockRC model
   accepts exactly the atomic behaviours and the DRF guarantee makes
   reads SC-explainable;
2. **unlocked** — the determinacy race detector lights up, and weak
   (lost-update) behaviours are genuinely reachable;
3. **wrongly locked** — two different locks: looks synchronized, is not
   (the race detector still finds the conflict).

Run:  python examples/locked_counter.py
"""

from repro.core import ObserverFunction, last_writer_function
from repro.lang import unfold
from repro.locks import LockRC, LockedComputation
from repro.verify import find_races


def make(kind: str) -> LockedComputation:
    def task(ctx, lock_name):
        if lock_name is None:
            ctx.read("ctr")
            ctx.write("ctr")
        else:
            with ctx.lock(lock_name):
                ctx.read("ctr")
                ctx.write("ctr")

    def main(ctx):
        ctx.write("ctr")
        if kind == "locked":
            ctx.spawn(task, "L")
            ctx.spawn(task, "L")
        elif kind == "unlocked":
            ctx.spawn(task, None)
            ctx.spawn(task, None)
        else:  # wrong-locks
            ctx.spawn(task, "L1")
            ctx.spawn(task, "L2")
        ctx.sync()
        ctx.read("ctr")

    comp, info = unfold(main)
    return LockedComputation.from_unfold(comp, info)


def main() -> None:
    for kind in ("locked", "unlocked", "wrong-locks"):
        locked = make(kind)
        races_bare = sum(1 for _ in find_races(locked.comp))
        n_ser = len(list(locked.induced_computations()))
        drf = locked.is_drf() if n_ser else False
        print(
            f"{kind:12}  sections={locked.section_count()}  "
            f"admissible serializations={n_ser}  "
            f"races(bare dag)={races_bare}  DRF={drf}"
        )
    print()

    locked = make("locked")
    ser, induced = next(locked.induced_computations())
    atomic = last_writer_function(induced, induced.dag.topological_order)
    phi_atomic = ObserverFunction(
        locked.comp, {loc: atomic.row(loc) for loc in atomic.locations}
    )
    print(
        "atomic counter behaviour accepted by LockRC:",
        LockRC.contains(locked, phi_atomic),
    )

    # Lost update: both tasks read the initial value.
    comp = locked.comp
    init = comp.writers("ctr")[0]
    reads = comp.readers("ctr")
    writes = [w for w in comp.writers("ctr") if w != init]
    row: list = [None] * comp.num_nodes
    for w in comp.writers("ctr"):
        row[w] = w
    for r in reads[:-1]:
        row[r] = init
    row[reads[-1]] = writes[-1]
    for u in comp.nodes():
        if row[u] is None and not comp.precedes(u, init):
            row[u] = init
    phi_lost = ObserverFunction(comp, {"ctr": tuple(row)})
    print(
        "lost-update behaviour accepted by LockRC:",
        LockRC.contains(locked, phi_lost),
        "(serialized critical sections forbid it)",
    )


if __name__ == "__main__":
    main()
