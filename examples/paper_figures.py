#!/usr/bin/env python3
"""The paper's Figures 2–4, verified mechanically.

Prints each reconstructed figure pair, its membership profile across the
model zoo, and — for Figure 4 — the non-constructibility argument for
NN-dag consistency, replayed by exhaustive extension search.

Run:  python examples/paper_figures.py
"""

from repro import LC, NN, NW, SC, WN, WW, W
from repro.analysis import render_pair
from repro.models import can_extend_to_augmentation
from repro.paperfigures import (
    LOC,
    figure2_pair,
    figure3_pair,
    figure4_blocking_ops,
    figure4_pair,
    lc_not_sc_pair,
)

MODELS = (SC, LC, NN, NW, WN, WW)


def profile(comp, phi) -> str:
    return ", ".join(
        f"{m.name}={'∈' if m.contains(comp, phi) else '∉'}" for m in MODELS
    )


def main() -> None:
    print("=" * 72)
    print("Figure 2 — claimed: in WW and NW but not WN or NN")
    comp, phi = figure2_pair()
    print(render_pair(comp, phi))
    print(f"  profile: {profile(comp, phi)}")
    print()

    print("=" * 72)
    print("Figure 3 — claimed: in WW and WN but not NW or NN")
    comp, phi = figure3_pair()
    print(render_pair(comp, phi))
    print(f"  profile: {profile(comp, phi)}")
    print()

    print("=" * 72)
    print("Figure 4 — NN-dag consistency is not constructible")
    comp, phi = figure4_pair()
    print(render_pair(comp, phi))
    print(f"  profile: {profile(comp, phi)}")
    print()
    print("  Augment with a final node F succeeding everything:")
    for o in figure4_blocking_ops():
        ok = can_extend_to_augmentation(NN, comp, phi, o)
        print(
            f"    o = {o!r}: extension within NN "
            f"{'EXISTS (unexpected!)' if ok else 'impossible — stuck, as the paper argues'}"
        )
    o = W(LOC)
    ok = can_extend_to_augmentation(NN, comp, phi, o)
    print(f"    o = {o!r}: extension within NN {'exists' if ok else 'impossible'} "
          "(the paper: 'unless F writes to the memory location')")
    print()

    print("=" * 72)
    print("Store buffer — separates SC from LC (two locations)")
    comp, phi = lc_not_sc_pair()
    print(render_pair(comp, phi))
    print(f"  profile: {profile(comp, phi)}")


if __name__ == "__main__":
    main()
