#!/usr/bin/env python3
"""Fault injection: catching coherence-protocol bugs post mortem.

The paper motivates computations as a vehicle for *post mortem analysis*
— checking after the fact whether a memory system met its specification.
This example breaks the BACKER protocol on purpose (randomly dropping
reconcile and flush events) and shows the LC verifier catching the
resulting inconsistent executions, while the faithful protocol never
trips it.

Run:  python examples/fault_injection.py
"""

from repro.lang import racy_counter_computation, stencil_computation
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import trace_admits_lc


def violation_rate(comp, procs, drop_prob, runs=60) -> tuple[int, int]:
    caught = 0
    for seed in range(runs):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        mem = BackerMemory(
            drop_reconcile_probability=drop_prob,
            drop_flush_probability=drop_prob,
            rng=seed,
        )
        trace = execute(sched, mem)
        if not trace_admits_lc(trace.partial_observer()):
            caught += 1
    return caught, runs


def main() -> None:
    workloads = [
        ("racy counter (4 tasks x 3)", racy_counter_computation(4, 3)[0]),
        ("stencil 6x3", stencil_computation(6, 3)[0]),
    ]
    print("LC violations caught by the post-mortem verifier")
    print(f"{'workload':<28} {'drop prob':>9}  {'violations':>12}")
    print("-" * 56)
    for name, comp in workloads:
        for drop in (0.0, 0.3, 0.7, 1.0):
            caught, runs = violation_rate(comp, procs=4, drop_prob=drop)
            print(f"{name:<28} {drop:>9.1f}  {caught:>5} / {runs}")
            if drop == 0.0:
                assert caught == 0, "faithful BACKER must never violate LC"
    print()
    print("drop prob 0.0 is the faithful protocol: zero violations, always.")


if __name__ == "__main__":
    main()
