#!/usr/bin/env python3
"""Define your own memory model and let the library characterize it.

Definition 20 of the paper is a schema: any predicate ``Q(l, u, v, w)``
over precedence triples yields a dag-consistency model.  This example
defines two models the paper does not consider and runs the exploration
battery on each: lattice position relative to the zoo, completeness,
monotonicity, Theorem-12 constructibility, and the minimal non-SC
anomalies it admits.

* ``NR`` — the condition applies when the *middle* node reads the
  location (the mirror image of NW): turns out nonconstructible, like
  every middle-anchored predicate that fires with u = ⊥.
* ``SAME-WRITER`` — applies only when u and v observe the same value
  already; a vacuous-looking predicate that actually collapses to a
  much stronger model (exploration shows where it lands).

Run:  python examples/custom_model.py
"""

from repro.analysis import characterize_model, render_characterization
from repro.models import QDagConsistency, Universe


def middle_reads(comp, loc, u, v, w) -> bool:
    """Q ≡ op(v) = R(l): the unexplored mirror of NW."""
    return comp.op(v).reads(loc)


def middle_accesses(comp, loc, u, v, w) -> bool:
    """Q ≡ v accesses l at all (reads or writes)."""
    op = comp.op(v)
    return op.reads(loc) or op.writes(loc)


def main() -> None:
    universe = Universe(max_nodes=3, locations=("x",))
    for name, predicate in [
        ("NR (middle reads)", middle_reads),
        ("NA (middle accesses)", middle_accesses),
    ]:
        model = QDagConsistency(predicate, name)
        result = characterize_model(model, universe)
        print(render_characterization(result))
        if result.stuck_witness is not None:
            from repro.analysis import render_pair

            wit = result.stuck_witness
            print("  the stuck pair:")
            print(render_pair(wit.comp, wit.phi, indent="    "))
        print()


if __name__ == "__main__":
    main()
