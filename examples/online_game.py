#!/usr/bin/env python3
"""Constructibility as a game you can watch (paper, Section 3).

An adversary reveals a computation one node at a time; an online memory
must commit observer-function values immediately.  Constructible models
(SC, LC, WW — and WN under the formal predicate table) can always
continue; NN-dag consistency walks into Figure 4's trap and gets stuck.

Run:  python examples/online_game.py
"""

from repro.models import LC, NN, NW, SC, WN, WW, OnlineGame
from repro.core.ops import R, W

MOVES = [
    ("reveal W(x) — first concurrent write", W("x"), []),
    ("reveal W(x) — second concurrent write", W("x"), []),
    ("reveal R(x) after the first write", R("x"), [0]),
    ("reveal R(x) after the second write", R("x"), [1]),
    ("reveal R(x) after everything", R("x"), [0, 1, 2, 3]),
]

# The adversary's preferred commitments: the cross-observation trap.
PREFERRED = [None, None, {"x": 1}, {"x": 0}, None]


def play(model) -> None:
    print(f"--- playing against {model.name}")
    game = OnlineGame(model, strict=False)
    for (label, op, preds), pref in zip(MOVES, PREFERRED):
        cands = game.reveal(op, preds)
        if cands is None:
            print(f"  {label}")
            print(f"  ✗ {model.name} is STUCK: no observer value works.")
            print("    (the paper's Figure 4: NN is not constructible)")
            return
        shown = {loc: vals for loc, vals in cands.items()}
        take = None
        if pref is not None:
            take = {
                loc: v for loc, v in pref.items() if v in cands.get(loc, [])
            } or None
        game.commit(take)
        committed = {
            loc: game.observer().value(loc, game.num_nodes - 1)
            for loc in shown
        }
        note = ""
        if pref is not None and take is None:
            note = "  (model refused the adversary's trap value!)"
        print(f"  {label}: candidates {shown} → committed {committed}{note}")
    print(f"  ✓ {model.name} survived; final pair verified in the model:",
          model.contains(game.computation(), game.observer()))


def main() -> None:
    for model in (LC, NN, NW, WN, WW, SC):
        play(model)
        print()


if __name__ == "__main__":
    main()
