"""Tests for post-mortem trace verification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Computation, ObserverFunction, R, W
from repro.dag import Dag
from repro.models import LC, NN, SC, WW
from repro.runtime import PartialObserver
from repro.verify import (
    find_completion,
    lc_completion,
    trace_admits_lc,
    trace_admits_sc,
)
from tests.conftest import computations_with_observer


def sb_partial(missed: bool) -> tuple[Computation, PartialObserver]:
    comp = Computation(
        Dag(4, [(0, 1), (2, 3)]), (W("x"), R("y"), W("y"), R("x"))
    )
    if missed:
        cons = {"x": {0: 0, 3: None}, "y": {2: 2, 1: None}}
    else:
        cons = {"x": {0: 0, 3: 0}, "y": {2: 2, 1: 2}}
    return comp, PartialObserver(comp, cons)


class TestLCCheck:
    def test_store_buffer_weak_outcome_is_lc(self):
        comp, po = sb_partial(missed=True)
        assert trace_admits_lc(po)

    def test_store_buffer_weak_outcome_not_sc(self):
        comp, po = sb_partial(missed=True)
        assert trace_admits_sc(po) is None

    def test_store_buffer_strong_outcome_is_sc(self):
        comp, po = sb_partial(missed=False)
        assert trace_admits_sc(po) is not None

    def test_stale_read_rejected(self):
        # W -> W -> R with the read observing the older write.
        comp = Computation.serial([W("x"), W("x"), R("x")])
        po = PartialObserver(comp, {"x": {2: 0}})
        assert not trace_admits_lc(po)

    def test_bottom_read_after_write_rejected(self):
        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {1: None}})
        assert not trace_admits_lc(po)

    def test_cross_observation_rejected(self):
        # The Figure 4 shape, as a trace.
        comp = Computation(
            Dag(4, [(0, 2), (1, 3)]), (W("x"), W("x"), R("x"), R("x"))
        )
        po = PartialObserver(comp, {"x": {2: 1, 3: 0}})
        assert not trace_admits_lc(po)

    def test_unconstrained_nodes_flexible(self):
        # An unconstrained no-op between incompatible-looking reads is
        # fine — it belongs to no block.
        comp = Computation(
            Dag(3, [(0, 1), (1, 2)]), (W("x"), R("y"), R("x"))
        )
        po = PartialObserver(comp, {"x": {0: 0, 2: 0}})
        assert trace_admits_lc(po)

    def test_no_constraints_trivially_lc(self):
        comp = Computation(Dag(2), (R("x"), R("x")))
        po = PartialObserver(comp, {})
        assert trace_admits_lc(po)


class TestLCCompletion:
    def test_certificate_is_lc_member(self):
        comp, po = sb_partial(missed=True)
        phi = lc_completion(po)
        assert phi is not None
        assert LC.contains(comp, phi)
        assert po.is_completion(phi)

    def test_none_for_violation(self):
        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {1: None}})
        assert lc_completion(po) is None

    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_total_observer_roundtrip(self, pair):
        """A total LC observer, viewed as constraints, passes and completes
        back to an LC member agreeing on every constraint."""
        comp, phi = pair
        cons = {
            loc: {u: phi.value(loc, u) for u in comp.nodes()}
            for loc in comp.locations
        }
        po = PartialObserver(comp, cons)
        member = LC.contains(comp, phi)
        assert trace_admits_lc(po) == member
        if member:
            completed = lc_completion(po)
            assert completed is not None
            for loc in comp.locations:
                assert completed.row(loc) == phi.row(loc)


class TestSCCheck:
    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=50, deadline=None)
    def test_total_constraints_match_sc_model(self, pair):
        comp, phi = pair
        cons = {
            loc: {u: phi.value(loc, u) for u in comp.nodes()}
            for loc in comp.locations
        }
        po = PartialObserver(comp, cons)
        assert (trace_admits_sc(po) is not None) == SC.contains(comp, phi)

    def test_witness_order_is_topological(self):
        comp, po = sb_partial(missed=False)
        order = trace_admits_sc(po)
        assert order is not None
        pos = {u: i for i, u in enumerate(order)}
        for (u, v) in comp.dag.edges:
            assert pos[u] < pos[v]

    def test_empty_computation(self):
        from repro.core import EMPTY_COMPUTATION

        po = PartialObserver(EMPTY_COMPUTATION, {})
        assert trace_admits_sc(po) == ()


class TestFindCompletion:
    def test_completion_within_ww(self):
        # A stale-⊥ read violates LC/NN but completes within WW/WN.
        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {1: None}})
        assert find_completion(NN, po) is None
        assert find_completion(WW, po) is not None

    def test_respects_constraints(self):
        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {1: 0}})
        phi = find_completion(LC, po)
        assert phi is not None and phi.value("x", 1) == 0

    def test_budget_guard(self):
        import pytest

        comp = Computation(
            Dag(12), tuple([W("x")] * 6 + [R("x")] * 6)
        )
        po = PartialObserver(comp, {})
        with pytest.raises(ValueError):
            find_completion(LC, po, max_candidates=10)

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=30, deadline=None)
    def test_lc_search_agrees_with_polynomial(self, pair):
        """find_completion(LC) agrees with the polynomial partial check
        when constraints come from reads/writes only (trace shape)."""
        comp, phi = pair
        cons = {}
        for loc in comp.locations:
            row = {}
            for u in comp.nodes():
                op = comp.op(u)
                if op.reads(loc) or op.writes(loc):
                    row[u] = phi.value(loc, u)
            if row:
                cons[loc] = row
        po = PartialObserver(comp, cons)
        found = find_completion(LC, po, max_candidates=500_000)
        assert (found is not None) == trace_admits_lc(po)


class TestLcTraceOrders:
    def test_certificates_reproduce_constraints(self):
        from repro.core.last_writer import last_writer_row
        from repro.verify import lc_trace_orders

        comp, po = sb_partial(missed=True)
        orders = lc_trace_orders(po)
        assert orders is not None
        for loc, order in orders.items():
            row = last_writer_row(comp, order, loc)
            for node, want in po.constrained(loc).items():
                assert row[node] == want

    def test_none_on_violation(self):
        from repro.verify import lc_trace_orders

        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {1: None}})
        assert lc_trace_orders(po) is None

    def test_orders_are_topological(self):
        from repro.dag.toposort import is_topological_sort
        from repro.verify import lc_trace_orders

        comp, po = sb_partial(missed=True)
        orders = lc_trace_orders(po)
        for order in orders.values():
            assert is_topological_sort(comp.dag, order)
