"""Tests for deterministic trace replay."""

from repro.io import dumps, loads
from repro.lang import racy_counter_computation, store_buffer_computation
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    replay,
    work_stealing_schedule,
)


def make_trace(comp, memory, procs=2, seed=0):
    sched = work_stealing_schedule(comp, procs, rng=seed)
    return execute(sched, memory)


class TestReplay:
    def test_same_protocol_identical(self):
        comp = racy_counter_computation(3, 2)[0]
        trace = make_trace(comp, BackerMemory(), procs=4, seed=3)
        result = replay(trace, BackerMemory())
        assert result.identical
        assert result.divergences == []

    def test_replay_after_serialization_roundtrip(self):
        comp = store_buffer_computation()[0]
        trace = make_trace(comp, BackerMemory())
        again = loads(dumps(trace))
        result = replay(again, BackerMemory())
        assert result.identical

    def test_cross_protocol_divergence_localized(self):
        """Replaying a weak SB execution against an eager memory diverges
        exactly at the two litmus reads."""
        comp = store_buffer_computation()[0]
        trace = make_trace(comp, BackerMemory(), procs=2, seed=0)
        weak_reads = {e.observed for e in trace.reads}
        result = replay(trace, SerialMemory())
        if None in weak_reads:  # the weak outcome occurred
            assert not result.identical
            assert 1 <= len(result.divergences) <= 2
            for d in result.divergences:
                assert d.original is None and d.replayed is not None

    def test_replayed_trace_attached(self):
        comp = racy_counter_computation(2, 1)[0]
        trace = make_trace(comp, BackerMemory())
        result = replay(trace, SerialMemory())
        assert result.replayed_trace is not None
        assert result.replayed_trace.memory_name == "serial"
