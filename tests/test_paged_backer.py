"""Tests for page-granular BACKER (false sharing, twin/diff fix)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import matmul_computation, tree_sum_computation
from repro.runtime import (
    BackerMemory,
    PagedBackerMemory,
    execute,
    modulo_pager,
    work_stealing_schedule,
)
from repro.verify import trace_admits_lc
from tests.conftest import computations


class TestUnit:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PagedBackerMemory(reconcile_mode="yolo")

    def test_read_own_write(self):
        m = PagedBackerMemory(page_of=modulo_pager(1))
        m.attach(2)
        m.write(0, 1, "x")
        assert m.read(0, 2, "x") == 1

    def test_diff_preserves_concurrent_updates_on_one_page(self):
        """Two processors write different locations of one page; diff
        reconciliation merges both into the backing store."""
        m = PagedBackerMemory(page_of=lambda loc: "P", reconcile_mode="diff")
        m.attach(3)
        m.write(0, 1, "a")
        m.write(1, 2, "b")
        m.node_completed(0, 1, cross_succ=True)
        m.node_completed(1, 2, cross_succ=True)
        m.node_starting(2, 3, cross_pred=True)
        assert m.read(2, 3, "a") == 1
        assert m.read(2, 3, "b") == 2

    def test_clobber_loses_concurrent_update(self):
        """Whole-page writeback: the second reconcile destroys the first
        processor's update to the shared page."""
        m = PagedBackerMemory(page_of=lambda loc: "P", reconcile_mode="clobber")
        m.attach(3)
        # Both procs fetch the (empty) page first, then write disjoint words.
        assert m.read(0, 0, "a") is None
        assert m.read(1, 0, "b") is None
        m.write(0, 1, "a")
        m.write(1, 2, "b")
        m.node_completed(0, 1, cross_succ=True)
        m.node_completed(1, 2, cross_succ=True)  # clobbers a's update
        m.node_starting(2, 3, cross_pred=True)
        assert m.read(2, 3, "b") == 2
        assert m.read(2, 3, "a") is None  # the lost update

    def test_stats_tracked(self):
        m = PagedBackerMemory(page_of=modulo_pager(1), reconcile_mode="diff")
        m.attach(2)
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        assert m.stats.page_writebacks == 1
        assert m.stats.diffed_words == 1
        assert m.stats.page_fetches >= 1

    def test_name_reflects_mode(self):
        assert "diff" in PagedBackerMemory().name
        assert "clobber" in PagedBackerMemory(reconcile_mode="clobber").name


class TestEquivalenceWithPlainBacker:
    @given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_per_location_pages_match_plain_backer(self, comp, procs, seed):
        """One location per page (the default) reproduces BACKER's reads
        exactly, in either reconcile mode."""
        sched = work_stealing_schedule(comp, procs, rng=seed)
        plain = execute(sched, BackerMemory())
        for mode in ("diff", "clobber"):
            paged = execute(sched, PagedBackerMemory(reconcile_mode=mode))
            assert [
                (e.node, e.loc, e.observed) for e in paged.reads
            ] == [(e.node, e.loc, e.observed) for e in plain.reads]


class TestFalseSharing:
    def test_clobber_violates_lc_under_false_sharing(self):
        comp = matmul_computation(2)[0]
        violations = 0
        for seed in range(10):
            sched = work_stealing_schedule(comp, 4, rng=seed)
            mem = PagedBackerMemory(
                page_of=modulo_pager(2), reconcile_mode="clobber"
            )
            trace = execute(sched, mem)
            if not trace_admits_lc(trace.partial_observer()):
                violations += 1
        assert violations > 0

    def test_diff_maintains_lc_under_false_sharing(self):
        for comp in (matmul_computation(2)[0], tree_sum_computation(8)[0]):
            for seed in range(10):
                sched = work_stealing_schedule(comp, 4, rng=seed)
                mem = PagedBackerMemory(
                    page_of=modulo_pager(2), reconcile_mode="diff"
                )
                trace = execute(sched, mem)
                assert trace_admits_lc(trace.partial_observer())

    @given(computations(max_nodes=8), st.integers(2, 4), st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_diff_lc_on_random_dags(self, comp, procs, seed):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        mem = PagedBackerMemory(page_of=modulo_pager(2), reconcile_mode="diff")
        trace = execute(sched, mem)
        assert trace_admits_lc(trace.partial_observer())

    def test_pager_deterministic(self):
        p = modulo_pager(4)
        assert p(("C", 1, 2)) == p(("C", 1, 2))
        assert 0 <= p("anything") < 4


class TestTimedIntegration:
    def test_timed_simulation_prices_paged_transfers(self):
        from repro.lang import tree_sum_computation
        from repro.runtime import simulate_timed
        from repro.verify import trace_admits_lc

        comp = tree_sum_computation(8)[0]
        cheap = simulate_timed(
            comp, 4,
            memory=PagedBackerMemory(page_of=modulo_pager(4)),
            miss_cost=0, rng=1,
        )
        costly = simulate_timed(
            comp, 4,
            memory=PagedBackerMemory(page_of=modulo_pager(4)),
            miss_cost=8, rng=1,
        )
        assert costly.makespan > cheap.makespan  # transfers were priced
        assert trace_admits_lc(costly.partial_observer())
