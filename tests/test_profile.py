"""The SIGPROF sampling profiler: sampling, fork safety, exports.

The profiler's contract is threefold: it samples real CPU work when
armed, it costs literally nothing when off (no handler, no timer, no
state), and a fork during profiling can neither crash the child nor
corrupt the parent's sample table — pool workers are forked from a
profiling parent all the time.
"""

from __future__ import annotations

import os
import signal
import sys

import pytest

from repro.obs.profile import (
    DEFAULT_HZ,
    SamplingProfiler,
    active_worker_profiler,
    export_speedscope,
    merge_folded,
    merge_folded_dir,
    render_collapsed,
    set_worker_spec,
    start_worker_profiler,
    validate_speedscope,
    validate_speedscope_file,
    worker_spec,
)


@pytest.fixture(autouse=True)
def _no_worker_spec():
    set_worker_spec(None)
    yield
    set_worker_spec(None)


def _burn_cpu(seconds: float) -> None:
    import time

    t0 = time.process_time()
    x = 0
    while time.process_time() - t0 < seconds:
        x += 1
        x %= 1000003


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_busy_loop_produces_samples(self):
        prof = SamplingProfiler(hz=499)
        prof.start()
        try:
            _burn_cpu(0.2)
        finally:
            prof.stop()
        assert prof.sample_count > 0
        folded = prof.folded()
        assert folded
        # Every folded stack ends in a frame of this test module.
        assert any("test_profile" in stack for stack in folded)
        assert sum(folded.values()) == prof.sample_count

    def test_stop_disarms_timer_and_restores_handler(self):
        before = signal.getsignal(signal.SIGPROF)
        prof = SamplingProfiler(hz=97)
        prof.start()
        prof.stop()
        assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)
        assert signal.getsignal(signal.SIGPROF) == before
        count = prof.sample_count
        _burn_cpu(0.05)
        assert prof.sample_count == count  # no ticks after stop

    def test_profiler_off_is_stateless(self):
        # The zero-overhead claim when --profile-sample is absent: no
        # handler installed, no timer armed, no worker spec published.
        assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)
        assert worker_spec() is None
        prof = SamplingProfiler(hz=97)
        assert prof.running is False
        assert prof.sample_count == 0
        prof.stop()  # idempotent, never started

    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-97)


# ---------------------------------------------------------------------------
# Fork safety
# ---------------------------------------------------------------------------


class TestForkSafety:
    def test_fork_during_profiling_is_safe(self):
        """The POSIX contract the pool relies on: a child forked while
        the parent profiles inherits the handler but NOT the itimer,
        and the pid guard keeps a synthetic tick in the child out of
        the (copied) sample table."""
        prof = SamplingProfiler(hz=199)
        prof.start()
        try:
            _burn_cpu(0.05)
            pid = os.fork()
            if pid == 0:  # child
                code = 1
                try:
                    inherited = prof.sample_count
                    if signal.getitimer(signal.ITIMER_PROF) != (0.0, 0.0):
                        code = 2  # itimer leaked across fork
                    else:
                        # Deliver a tick by hand: the pid guard must
                        # drop it on the floor.
                        prof._on_sigprof(signal.SIGPROF, sys._getframe())
                        if prof.sample_count != inherited:
                            code = 3  # child accounted CPU to parent
                        else:
                            code = 0
                finally:
                    os._exit(code)
            _, status = os.waitpid(pid, 0)
        finally:
            prof.stop()
        assert os.WIFEXITED(status)
        assert os.WEXITSTATUS(status) == 0
        assert prof.sample_count > 0  # parent kept sampling normally

    def test_worker_profiler_spills_for_the_parent(self, tmp_path):
        set_worker_spec({"hz": 499, "dir": str(tmp_path)})
        spec = worker_spec()
        assert spec == {"hz": 499, "dir": str(tmp_path)}
        pid = os.fork()
        if pid == 0:  # the "pool worker"
            code = 1
            try:
                prof = start_worker_profiler(spec)
                if start_worker_profiler(spec) is prof:  # idempotent
                    _burn_cpu(0.1)
                    prof.spill()
                    code = 0
            finally:
                os._exit(code)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 0
        profiles = merge_folded_dir(str(tmp_path))
        assert list(profiles) == [pid]
        assert sum(profiles[pid].values()) > 0
        # Parent process never armed anything for itself.
        assert active_worker_profiler() is None
        assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)


# ---------------------------------------------------------------------------
# Merge + exports
# ---------------------------------------------------------------------------


class TestExports:
    def test_spill_and_merge_folded_dir_roundtrip(self, tmp_path):
        prof = SamplingProfiler(
            hz=97, spill_path=str(tmp_path / "profile-123.folded")
        )
        prof.samples = {("a:f", "b:g"): 3, ("a:f",): 2}
        prof.sample_count = 5
        prof.spill()
        profiles = merge_folded_dir(str(tmp_path))
        assert profiles == {123: {"a:f;b:g": 3, "a:f": 2}}

    def test_merge_folded_dir_ignores_foreign_files(self, tmp_path):
        (tmp_path / "profile-1.folded").write_text("a:f 1\n")
        (tmp_path / "profile-x.folded").write_text("a:f 1\n")
        (tmp_path / "notes.txt").write_text("hi\n")
        (tmp_path / "profile-2.folded.tmp.9").write_text("torn")
        assert list(merge_folded_dir(str(tmp_path))) == [1]
        assert merge_folded_dir(str(tmp_path / "missing")) == {}

    def test_merge_folded_sums_tables(self):
        merged = merge_folded([{"a;b": 2, "c": 1}, {"a;b": 3}])
        assert merged == {"a;b": 5, "c": 1}

    def test_render_collapsed_format(self):
        text = render_collapsed({"main;work;leaf": 4, "main": 1})
        assert text == "main 1\nmain;work;leaf 4\n"
        assert render_collapsed({}) == ""

    def test_speedscope_export_validates_and_shares_frames(self):
        doc = export_speedscope(
            {10: {"main;work": 2}, 20: {"main;other": 1}}, hz=100
        )
        assert validate_speedscope(doc) == []
        names = [p["name"] for p in doc["profiles"]]
        assert names == ["repro pid=10", "repro pid=20"]
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert frames.count("main") == 1  # shared, not duplicated
        assert doc["profiles"][0]["weights"] == [2 / 100.0]

    def test_validate_speedscope_rejects_broken_documents(self, tmp_path):
        assert validate_speedscope([]) != []
        assert validate_speedscope({"$schema": "nope"}) != []
        good = export_speedscope({1: {"a": 1}}, hz=DEFAULT_HZ)
        bad = dict(good)
        bad["profiles"] = [
            {**good["profiles"][0], "samples": [[99]]}  # frame out of range
        ]
        assert any("out-of-range" in p for p in validate_speedscope(bad))
        missing = validate_speedscope_file(str(tmp_path / "nope.json"))
        assert missing and "cannot load" in missing[0]
