"""Isomorphism invariance: node names never matter.

The universes enumerate only dags whose id order is topological; that
covers every behaviour *because* all the models are invariant under node
relabelling.  These property tests pin that license down for all six
models, the race detector, and the dag metrics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import relabel_computation, relabel_observer
from repro.errors import InvalidComputationError
from repro.models import LC, NN, NW, SC, WN, WW
from tests.conftest import computations, computations_with_observer

MODELS = (SC, LC, NN, NW, WN, WW)


def random_perm(n: int, seed: int) -> list[int]:
    perm = list(range(n))
    random.Random(seed).shuffle(perm)
    return perm


class TestRelabeling:
    def test_relabel_requires_permutation(self):
        from repro.core import Computation, W
        from repro.dag import Dag

        comp = Computation(Dag(2), (W("x"), W("x")))
        with pytest.raises(InvalidComputationError):
            relabel_computation(comp, [0, 0])

    @given(computations(max_nodes=6), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_relabel_preserves_structure(self, comp, seed):
        perm = random_perm(comp.num_nodes, seed)
        moved = relabel_computation(comp, perm)
        assert moved.num_nodes == comp.num_nodes
        assert sorted(map(repr, moved.ops)) == sorted(map(repr, comp.ops))
        for (u, v) in comp.dag.edges:
            assert moved.precedes(perm[u], perm[v])

    @given(computations(max_nodes=6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_double_relabel_roundtrip(self, comp, seed):
        perm = random_perm(comp.num_nodes, seed)
        inverse = [0] * comp.num_nodes
        for u, p in enumerate(perm):
            inverse[p] = u
        assert relabel_computation(relabel_computation(comp, perm), inverse) == comp


class TestModelInvariance:
    @given(computations_with_observer(max_nodes=5), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_all_models_iso_invariant(self, pair, seed):
        comp, phi = pair
        perm = random_perm(comp.num_nodes, seed)
        moved_comp = relabel_computation(comp, perm)
        moved_phi = relabel_observer(phi, perm, moved_comp)
        for m in MODELS:
            assert m.contains(comp, phi) == m.contains(
                moved_comp, moved_phi
            ), m.name

    @given(computations(max_nodes=6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_races_iso_invariant(self, comp, seed):
        from repro.verify import find_races

        perm = random_perm(comp.num_nodes, seed)
        moved = relabel_computation(comp, perm)
        original = {
            (repr(r.loc), frozenset((perm[r.u], perm[r.v])))
            for r in find_races(comp)
        }
        relabeled = {
            (repr(r.loc), frozenset((r.u, r.v))) for r in find_races(moved)
        }
        assert original == relabeled

    @given(computations(max_nodes=6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_metrics_iso_invariant(self, comp, seed):
        from repro.dag.metrics import span, width, work

        perm = random_perm(comp.num_nodes, seed)
        moved = relabel_computation(comp, perm)
        assert work(moved.dag) == work(comp.dag)
        assert span(moved.dag) == span(comp.dag)
        assert width(moved.dag) == width(comp.dag)
