"""Tests for the canonical program workloads."""

import pytest

from repro.dag import is_series_parallel
from repro.lang import (
    fib_computation,
    iriw_computation,
    matmul_computation,
    racy_counter_computation,
    scan_computation,
    stencil_computation,
    store_buffer_computation,
    tree_sum_computation,
)

ALL_PROGRAMS = [
    ("fib", lambda: fib_computation(5)),
    ("matmul", lambda: matmul_computation(2)),
    ("scan", lambda: scan_computation(4)),
    ("stencil", lambda: stencil_computation(4, 2)),
    ("tree_sum", lambda: tree_sum_computation(4)),
    ("racy", lambda: racy_counter_computation(3, 2)),
    ("store_buffer", store_buffer_computation),
    ("iriw", iriw_computation),
]


@pytest.mark.parametrize("name,factory", ALL_PROGRAMS)
def test_all_programs_are_series_parallel(name, factory):
    comp, _ = factory()
    assert is_series_parallel(comp.dag), name


@pytest.mark.parametrize("name,factory", ALL_PROGRAMS)
def test_all_programs_nonempty_with_memory_ops(name, factory):
    comp, _ = factory()
    assert comp.num_nodes > 0
    assert comp.locations, name


class TestFib:
    def test_base_case(self):
        comp, info = fib_computation(1)
        assert comp.num_nodes == 1
        assert info.spawn_count == 0  # a leaf call spawns nothing

    def test_reads_follow_writes(self):
        comp, _ = fib_computation(6)
        # Every read of a fib cell is preceded by its write.
        for loc in comp.locations:
            writers = comp.writers(loc)
            for r in comp.readers(loc):
                assert any(comp.precedes(w, r) for w in writers)

    def test_spawn_structure(self):
        _, info = fib_computation(5)
        assert info.spawn_count > 0 and info.sync_count > 0


class TestMatmul:
    def test_block_counts(self):
        comp, _ = matmul_computation(2)
        # 4 C-blocks each written by init + 2 accumulation steps.
        assert len(comp.writers(("C", 0, 0))) == 3

    def test_final_reads_joined(self):
        comp, _ = matmul_computation(2)
        # The final read of each C block follows every write to it.
        for i in range(2):
            for j in range(2):
                loc = ("C", i, j)
                final_read = comp.readers(loc)[-1]
                for w in comp.writers(loc):
                    assert comp.precedes(w, final_read)


class TestScan:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            scan_computation(6)

    def test_upsweep_feeds_downsweep(self):
        comp, _ = scan_computation(4)
        # The root sum is written before the root prefix is consumed.
        root_sum_w = comp.writers(("s", 2, 0))[0]
        prefix_readers = comp.readers(("p", 2, 0))
        assert prefix_readers
        assert all(comp.precedes(root_sum_w, r) for r in prefix_readers)


class TestStencil:
    def test_generation_dependencies(self):
        comp, _ = stencil_computation(4, 2)
        # Generation-2 cells read generation-1 cells.
        r = comp.readers(("g", 1, 1))
        w = comp.writers(("g", 1, 1))[0]
        assert all(comp.precedes(w, x) for x in r)

    def test_node_scaling(self):
        small, _ = stencil_computation(4, 1)
        big, _ = stencil_computation(4, 3)
        assert big.num_nodes > small.num_nodes


class TestTreeSum:
    def test_root_read_after_all_leaves(self):
        comp, _ = tree_sum_computation(8)
        final = comp.readers(("t", 0, 8))[0]
        for lo in range(8):
            leaf_w = comp.writers(("t", lo, lo + 1))[0]
            assert comp.precedes(leaf_w, final)


class TestLitmus:
    def test_store_buffer_shape(self):
        comp, _ = store_buffer_computation()
        assert comp.num_nodes == 4
        (wx,) = comp.writers("x")
        (ry,) = comp.readers("y")
        assert comp.precedes(wx, ry)
        (wy,) = comp.writers("y")
        (rx,) = comp.readers("x")
        assert comp.precedes(wy, rx)
        # The two tasks are mutually concurrent.
        assert not comp.precedes(wx, wy) and not comp.precedes(wy, wx)

    def test_iriw_shape(self):
        comp, _ = iriw_computation()
        assert comp.num_nodes == 6
        assert len(comp.readers("x")) == 2
        assert len(comp.readers("y")) == 2

    def test_racy_counter_counts(self):
        comp, _ = racy_counter_computation(3, 2)
        assert len(comp.writers("ctr")) == 1 + 3 * 2
        assert len(comp.readers("ctr")) == 3 * 2 + 1
