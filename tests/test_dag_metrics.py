"""Tests for dag metrics: work, span, parallelism, width."""

from hypothesis import given, settings

from repro.dag import Dag, all_antichains, chain_dag, empty_dag, fork_join_dag
from repro.dag.metrics import level_sizes, parallelism, span, width, work
from tests.conftest import dags


class TestWorkSpan:
    def test_empty(self):
        d = Dag(0)
        assert work(d) == 0 and span(d) == 0 and parallelism(d) == 0.0

    def test_chain(self):
        d = chain_dag(5)
        assert work(d) == 5 and span(d) == 5
        assert parallelism(d) == 1.0

    def test_antichain(self):
        d = empty_dag(6)
        assert span(d) == 1
        assert parallelism(d) == 6.0

    def test_diamond(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert span(d) == 3

    def test_fork_join(self):
        d = fork_join_dag(2)
        # fork, fork, leaf, leaf, join, fork, leaf, leaf, join, join
        assert span(d) == 5  # fork-fork-leaf-join-join

    def test_span_takes_longest_branch(self):
        d = Dag(5, [(0, 1), (1, 2), (2, 3), (0, 4)])
        assert span(d) == 4


class TestLevels:
    def test_chain_levels(self):
        assert level_sizes(chain_dag(4)) == [1, 1, 1, 1]

    def test_antichain_levels(self):
        assert level_sizes(empty_dag(4)) == [4]

    def test_diamond_levels(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert level_sizes(d) == [1, 2, 1]

    def test_empty(self):
        assert level_sizes(Dag(0)) == []

    def test_levels_sum_to_work(self):
        d = fork_join_dag(3)
        assert sum(level_sizes(d)) == work(d)


class TestWidth:
    def test_chain(self):
        assert width(chain_dag(6)) == 1

    def test_antichain(self):
        assert width(empty_dag(6)) == 6

    def test_diamond(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert width(d) == 2

    def test_empty(self):
        assert width(Dag(0)) == 0

    def test_fork_join_width_equals_fanout(self):
        assert width(fork_join_dag(1, fanout=4)) == 4

    @given(dags(max_nodes=7))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce_antichains(self, d):
        brute = max((len(a) for a in all_antichains(d)), default=0)
        assert width(d) == brute

    @given(dags(max_nodes=7))
    @settings(max_examples=30, deadline=None)
    def test_width_at_least_level_max(self, d):
        levels = level_sizes(d)
        if levels:
            assert width(d) >= max(levels)
