"""Tests for the MSI directory protocol."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    DirectoryMemory,
    execute,
    greedy_schedule,
    work_stealing_schedule,
)
from repro.verify import trace_admits_sc
from tests.conftest import computations


class TestProtocolUnit:
    def test_read_unwritten(self):
        m = DirectoryMemory()
        m.attach(2)
        assert m.read(0, 0, "x") is None
        assert m.stats.fetches == 1

    def test_read_own_modified_hits(self):
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        assert m.read(0, 2, "x") == 1
        assert m.stats.cache_hits == 1
        assert m.stats.fetches == 0

    def test_remote_read_forces_writeback(self):
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        assert m.read(1, 2, "x") == 1  # sees the latest write immediately
        assert m.stats.writebacks == 1
        assert m.stats.fetches == 1

    def test_write_invalidates_sharers(self):
        m = DirectoryMemory()
        m.attach(3)
        m.write(0, 1, "x")
        m.read(1, 2, "x")
        m.read(2, 3, "x")
        m.write(1, 4, "x")  # invalidates procs 0 and 2
        assert m.stats.invalidations == 2
        # Everyone now sees the new value on (re)fetch.
        assert m.read(0, 5, "x") == 4
        assert m.read(2, 6, "x") == 4

    def test_write_write_migration(self):
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        m.write(1, 2, "x")  # takes ownership from proc 0
        assert m.read(0, 3, "x") == 2

    def test_sharers_no_invalidation_on_reads(self):
        m = DirectoryMemory()
        m.attach(3)
        m.write(0, 1, "x")
        m.read(1, 2, "x")
        m.read(2, 3, "x")
        assert m.stats.invalidations == 0

    def test_attach_resets(self):
        m = DirectoryMemory()
        m.attach(1)
        m.write(0, 1, "x")
        m.attach(1)
        assert m.read(0, 2, "x") is None
        assert m.stats.fetches == 1

    def test_messages_property(self):
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        m.read(1, 2, "x")
        assert m.stats.messages == m.stats.fetches + m.stats.invalidations + m.stats.writebacks


class TestEndToEnd:
    @given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_directory_traces_always_sc(self, comp, procs, seed):
        """Eager coherence + serialized execution = SC, on any dag."""
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, DirectoryMemory())
        assert trace_admits_sc(trace.partial_observer()) is not None

    def test_workloads_sc(self):
        from repro.lang import racy_counter_computation, store_buffer_computation

        for comp in (
            racy_counter_computation(3, 2)[0],
            store_buffer_computation()[0],
        ):
            sched = greedy_schedule(comp, 4, rng=2)
            trace = execute(sched, DirectoryMemory())
            assert trace_admits_sc(trace.partial_observer()) is not None


class TestObsWiring:
    """The directory reports to repro.obs on the same terms as BACKER."""

    def test_counters_published_when_enabled(self):
        from repro import obs
        from repro.lang import racy_counter_computation

        obs.disable()
        obs.reset()
        obs.enable()
        try:
            comp = racy_counter_computation(3, 2)[0]
            sched = work_stealing_schedule(comp, 4, rng=2)
            mem = DirectoryMemory()
            execute(sched, mem)
            counters = obs.get().counters
            assert counters.get("directory.fetches") == mem.stats.fetches
            assert counters.get("directory.cache_hits") == mem.stats.cache_hits
            assert (
                counters.get("directory.invalidations")
                == mem.stats.invalidations
            )
            assert mem.stats.invalidations > 0
        finally:
            obs.disable()
            obs.reset()

    def test_no_state_while_disabled(self):
        from repro import obs

        obs.disable()
        obs.reset()
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        m.read(1, 2, "x")
        assert obs.get().counters == {}

    def test_message_split(self):
        m = DirectoryMemory()
        m.attach(2)
        m.write(0, 1, "x")
        m.read(1, 2, "x")
        m.write(1, 3, "x")
        st_ = m.stats
        assert st_.data_messages == st_.fetches + st_.writebacks
        assert st_.control_messages == st_.invalidations
        assert st_.messages == st_.data_messages + st_.control_messages
        assert st_.invalidations > 0
