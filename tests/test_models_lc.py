"""Tests for location consistency: polynomial algorithm vs. Definition 18."""

from hypothesis import given, settings

from repro.core import (
    EMPTY_COMPUTATION,
    Computation,
    ObserverFunction,
    R,
    W,
    last_writer_function,
    last_writer_row,
)
from repro.dag import Dag, all_topological_sorts
from repro.models import LC
from repro.paperfigures import lc_not_sc_pair, nn_not_lc_pair
from tests.conftest import computations, computations_with_observer


class TestBasics:
    def test_empty_pair_is_member(self):
        phi = ObserverFunction(EMPTY_COMPUTATION, {})
        assert LC.contains(EMPTY_COMPUTATION, phi)

    def test_serial_last_writer_in_lc(self):
        c = Computation.serial([W("x"), R("x"), W("x"), R("x")])
        phi = last_writer_function(c, (0, 1, 2, 3))
        assert LC.contains(c, phi)

    def test_stale_read_after_write_rejected(self):
        # W(x) -> W(x) -> R(x) with the read observing the first write.
        c = Computation.serial([W("x"), W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, 1, 0)})
        assert not LC.contains(c, phi)

    def test_concurrent_writes_either_order(self):
        # Two concurrent writes; a following read may see either.
        c = Computation(Dag(3, [(0, 2), (1, 2)]), (W("x"), W("x"), R("x")))
        for observed in (0, 1):
            phi = ObserverFunction(c, {"x": (0, 1, observed)})
            assert LC.contains(c, phi)

    def test_cross_observation_rejected(self):
        comp, phi = nn_not_lc_pair()
        assert not LC.contains(comp, phi)

    def test_store_buffer_accepted(self):
        comp, phi = lc_not_sc_pair()
        assert LC.contains(comp, phi)

    def test_bottom_read_before_any_write(self):
        c = Computation(Dag(2), (R("x"), W("x")))
        phi = ObserverFunction(c, {"x": (None, 1)})
        assert LC.contains(c, phi)

    def test_bottom_read_after_write_rejected(self):
        c = Computation.serial([W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, None)})
        assert not LC.contains(c, phi)


class TestWitnessOrders:
    def test_certificate_reproduces_rows(self):
        comp, phi = lc_not_sc_pair()
        orders = LC.witness_orders(comp, phi)
        assert orders is not None
        for loc, order in orders.items():
            assert last_writer_row(comp, order, loc) == phi.row(loc)

    def test_none_for_nonmember(self):
        comp, phi = nn_not_lc_pair()
        assert LC.witness_orders(comp, phi) is None

    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=60)
    def test_certificate_matches_membership(self, pair):
        comp, phi = pair
        member = LC.contains(comp, phi)
        orders = LC.witness_orders(comp, phi)
        assert (orders is not None) == member
        if orders is not None:
            for loc, order in orders.items():
                assert last_writer_row(comp, order, loc) == phi.row(loc)


@given(computations_with_observer(max_nodes=4))
@settings(max_examples=80, deadline=None)
def test_polynomial_matches_bruteforce(pair):
    """The block algorithm agrees with enumerating TS(C) (Definition 18)."""
    comp, phi = pair
    assert LC.contains(comp, phi) == LC.contains_bruteforce(comp, phi)


@given(computations(max_nodes=4))
@settings(max_examples=30, deadline=None)
def test_every_last_writer_is_lc_member(comp):
    """Per-location last-writer functions built from one sort are in LC."""
    for order in all_topological_sorts(comp.dag):
        phi = last_writer_function(comp, order, check_order=False)
        assert LC.contains(comp, phi)


@given(computations_with_observer(max_nodes=4, locations=("x", "y")))
@settings(max_examples=40, deadline=None)
def test_two_locations_decided_independently(pair):
    """LC membership is the conjunction of per-location admissibility."""
    from repro.models import location_blocks_admissible

    comp, phi = pair
    expected = all(
        location_blocks_admissible(comp, loc, phi.row(loc))
        for loc in set(comp.locations) | set(phi.locations)
    )
    assert LC.contains(comp, phi) == expected
