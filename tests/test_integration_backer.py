"""Integration tests: program → schedule → memory → trace → verifier.

The end-to-end statement under test is the paper's §7 payoff: BACKER
maintains location consistency (Luchangco 1997), which Theorem 23
identifies with NN*.  Every workload, scheduler, processor count and
seed must produce an LC-verifiable trace under the faithful protocol;
the serialized memory must additionally be SC; and fault injection must
produce violations that the verifier catches (never false positives at
drop probability zero).
"""

import pytest

from repro.lang import (
    fib_computation,
    iriw_computation,
    matmul_computation,
    racy_counter_computation,
    scan_computation,
    stencil_computation,
    store_buffer_computation,
    tree_sum_computation,
)
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    greedy_schedule,
    serial_schedule,
    work_stealing_schedule,
)
from repro.verify import lc_completion, trace_admits_lc, trace_admits_sc

WORKLOADS = [
    ("fib", lambda: fib_computation(6)[0]),
    ("matmul", lambda: matmul_computation(2)[0]),
    ("scan", lambda: scan_computation(4)[0]),
    ("stencil", lambda: stencil_computation(4, 2)[0]),
    ("tree_sum", lambda: tree_sum_computation(8)[0]),
    ("racy", lambda: racy_counter_computation(3, 2)[0]),
    ("sb", lambda: store_buffer_computation()[0]),
    ("iriw", lambda: iriw_computation()[0]),
]


@pytest.mark.parametrize("name,factory", WORKLOADS)
@pytest.mark.parametrize("procs", [1, 2, 4])
def test_backer_always_lc(name, factory, procs):
    comp = factory()
    for seed in range(3):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, BackerMemory())
        po = trace.partial_observer()
        assert trace_admits_lc(po), (name, procs, seed)
        # And the completion certificate is a genuine LC member.
        phi = lc_completion(po)
        assert phi is not None


@pytest.mark.parametrize("name,factory", WORKLOADS)
def test_serial_memory_always_sc(name, factory):
    comp = factory()
    sched = greedy_schedule(comp, 3, rng=1)
    trace = execute(sched, SerialMemory())
    assert trace_admits_sc(trace.partial_observer()) is not None, name


@pytest.mark.parametrize("name,factory", WORKLOADS)
def test_single_processor_backer_is_sc(name, factory):
    """With one processor there are no cross edges: BACKER degenerates to
    a single cache, and every trace is sequentially consistent."""
    comp = factory()
    trace = execute(serial_schedule(comp), BackerMemory())
    assert trace_admits_sc(trace.partial_observer()) is not None, name


def test_backer_spontaneous_reconciles_still_lc():
    comp = racy_counter_computation(4, 2)[0]
    for seed in range(5):
        sched = work_stealing_schedule(comp, 4, rng=seed)
        mem = BackerMemory(spontaneous_reconcile_probability=0.7, rng=seed)
        trace = execute(sched, mem)
        assert trace_admits_lc(trace.partial_observer())


def test_store_buffer_weak_behaviour_reachable_and_lc():
    comp = store_buffer_computation()[0]
    weak_seen = False
    for seed in range(10):
        sched = work_stealing_schedule(comp, 2, rng=seed)
        trace = execute(sched, BackerMemory())
        po = trace.partial_observer()
        assert trace_admits_lc(po)
        if trace_admits_sc(po) is None:
            weak_seen = True
    assert weak_seen, "SB under BACKER should exhibit non-SC outcomes"


def test_fault_injection_caught_often():
    comp = racy_counter_computation(4, 3)[0]
    violations = 0
    runs = 30
    for seed in range(runs):
        sched = work_stealing_schedule(comp, 4, rng=seed)
        mem = BackerMemory(
            drop_reconcile_probability=0.9,
            drop_flush_probability=0.9,
            rng=seed,
        )
        trace = execute(sched, mem)
        if not trace_admits_lc(trace.partial_observer()):
            violations += 1
    assert violations > runs // 3


def test_no_false_positives_at_zero_drop():
    comp = stencil_computation(4, 2)[0]
    for seed in range(10):
        sched = work_stealing_schedule(comp, 4, rng=seed)
        mem = BackerMemory(
            drop_reconcile_probability=0.0, drop_flush_probability=0.0, rng=seed
        )
        trace = execute(sched, mem)
        assert trace_admits_lc(trace.partial_observer())


def test_schedule_independence_of_verdicts():
    """The paper's thesis: semantics attach to the computation, not the
    schedule.  A dataflow-correct program's reads-from relation — hence
    its verification verdict — is schedule-invariant under BACKER when
    every read is dataflow-determined (single writer per location)."""
    comp = tree_sum_computation(8)[0]
    verdicts = set()
    reads_from = set()
    for procs in (1, 2, 4):
        for seed in range(3):
            sched = work_stealing_schedule(comp, procs, rng=seed)
            trace = execute(sched, BackerMemory())
            po = trace.partial_observer()
            verdicts.add(trace_admits_lc(po))
            reads_from.add(
                frozenset((e.node, e.loc, e.observed) for e in trace.reads)
            )
    assert verdicts == {True}
    assert len(reads_from) == 1  # deterministic dataflow program
