"""Tests for the executor and trace/partial-observer plumbing."""

import pytest

from repro.core import Computation, N, R, W
from repro.dag import Dag
from repro.errors import InvalidObserverError
from repro.runtime import (
    BackerMemory,
    PartialObserver,
    SerialMemory,
    execute,
    greedy_schedule,
    serial_schedule,
)


def sb_comp():
    # 0:W(x) -> 1:R(y);  2:W(y) -> 3:R(x)
    return Computation(
        Dag(4, [(0, 1), (2, 3)]), (W("x"), R("y"), W("y"), R("x"))
    )


class TestExecute:
    def test_reads_recorded(self):
        comp = Computation.serial([W("x"), R("x"), R("x")])
        trace = execute(serial_schedule(comp), SerialMemory())
        assert [(e.node, e.loc, e.observed) for e in trace.reads] == [
            (1, "x", 0),
            (2, "x", 0),
        ]

    def test_serial_memory_last_writer(self):
        comp = Computation.serial([W("x"), R("x"), W("x"), R("x")])
        trace = execute(serial_schedule(comp), SerialMemory())
        assert trace.reads[0].observed == 0
        assert trace.reads[1].observed == 2

    def test_memory_name_recorded(self):
        comp = Computation.serial([W("x")])
        trace = execute(serial_schedule(comp), BackerMemory())
        assert trace.memory_name == "backer"

    def test_backer_hooks_fire_on_cross_edges(self):
        comp = sb_comp()
        # Force the two chains onto different processors.
        from repro.runtime import Schedule

        sched = Schedule(comp, (0, 0, 1, 1), (0, 1, 0, 1), 2)
        mem = BackerMemory()
        trace = execute(sched, mem)
        # No cross edges here (chains are per-proc), so no reconciles.
        assert mem.stats.reconciles == 0
        observed = {e.node: e.observed for e in trace.reads}
        # Each read misses the other chain's write: the SB weak outcome.
        assert observed[1] is None and observed[3] is None

    def test_cross_edge_reconciles(self):
        # 0:W(x) on p0, 1:R(x) on p1, with an edge 0 -> 1.
        comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        from repro.runtime import Schedule

        sched = Schedule(comp, (0, 1), (0, 1), 2)
        mem = BackerMemory()
        trace = execute(sched, mem)
        assert mem.stats.reconciles >= 1
        assert trace.reads[0].observed == 0  # coherence preserved


class TestPartialObserver:
    def test_from_trace(self):
        comp = Computation.serial([W("x"), R("x")])
        trace = execute(serial_schedule(comp), SerialMemory())
        po = trace.partial_observer()
        assert po.constrained("x") == {0: 0, 1: 0}
        assert po.num_constraints() == 2

    def test_writes_self_constrained(self):
        comp = Computation.serial([W("x"), W("x")])
        trace = execute(serial_schedule(comp), SerialMemory())
        po = trace.partial_observer()
        assert po.constrained("x") == {0: 0, 1: 1}

    def test_invalid_constraint_not_a_write(self):
        comp = Computation.serial([R("x"), R("x")])
        with pytest.raises(InvalidObserverError):
            PartialObserver(comp, {"x": {1: 0}})  # node 0 is a read

    def test_invalid_constraint_forward(self):
        comp = Computation.serial([R("x"), W("x")])
        with pytest.raises(InvalidObserverError):
            PartialObserver(comp, {"x": {0: 1}})  # observes its successor

    def test_invalid_write_self(self):
        comp = Computation.serial([W("x"), W("x")])
        with pytest.raises(InvalidObserverError):
            PartialObserver(comp, {"x": {1: 0}})

    def test_is_completion(self):
        from repro.core import ObserverFunction

        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {0: 0, 1: 0}})
        phi = ObserverFunction(comp, {"x": (0, 0)})
        assert po.is_completion(phi)

    def test_is_not_completion(self):
        from repro.core import ObserverFunction

        comp = Computation(Dag(2), (W("x"), R("x")))
        po = PartialObserver(comp, {"x": {1: None}})
        phi = ObserverFunction(comp, {"x": (0, 0)})
        assert not po.is_completion(phi)

    def test_entries_iteration(self):
        comp = Computation.serial([W("x"), R("x")])
        po = PartialObserver(comp, {"x": {0: 0, 1: None}})
        entries = set(po.entries())
        assert entries == {("x", 0, 0), ("x", 1, None)}

    def test_locations(self):
        comp = Computation(Dag(2), (W("x"), W("y")))
        po = PartialObserver(comp, {"x": {0: 0}, "y": {1: 1}})
        assert po.locations == ("x", "y")


class TestSchedulesTimesMemories:
    def test_greedy_plus_backer_runs(self):
        comp = sb_comp()
        for p in (1, 2, 4):
            sched = greedy_schedule(comp, p, rng=p)
            trace = execute(sched, BackerMemory())
            assert len(trace.reads) == 2
