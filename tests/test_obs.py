"""The observability substrate: spans, counters, export, validation.

``repro.obs`` promises (a) zero state and a shared no-op context manager
while disabled, (b) correct span nesting and counter arithmetic while
enabled, and (c) a JSON document that round-trips and validates.  These
tests pin all three on private :class:`Observability` instances plus a
reset-guarded pass over the module-level collector the library wiring
uses.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    Observability,
    Span,
    export_json,
    iter_trace_spans,
    render_text,
    validate_trace,
)


@pytest.fixture(autouse=True)
def _clean_global_collector():
    """Every test starts and ends with the global collector off + empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Disabled: zero overhead, zero state
# ---------------------------------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    o = Observability()
    assert o.span("anything", key=1) is NULL_SPAN
    assert obs.span("anything") is NULL_SPAN
    with o.span("x") as sp:
        assert sp is None


def test_disabled_collector_records_nothing():
    o = Observability()
    with o.span("a"):
        o.add("c", 5)
        o.set_gauge("g", 1.5)
        o.attach(Span("orphan"))
    assert o.roots == []
    assert o.counters == {}
    assert o.gauges == {}
    assert o.events == []


def test_warning_always_logs_even_when_disabled(caplog):
    o = Observability()
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        o.warning("pool broke", shards=3)
    assert "pool broke" in caplog.text
    assert "shards=3" in caplog.text
    assert o.events == []  # not recorded while disabled


def test_warning_recorded_when_enabled(caplog):
    o = Observability()
    o.enable()
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        o.warning("pool broke", shards=3)
    assert "pool broke" in caplog.text
    (ev,) = o.events
    assert ev["kind"] == "warning"
    assert ev["message"] == "pool broke"
    assert ev["attrs"] == {"shards": 3}


# ---------------------------------------------------------------------------
# Enabled: nesting, counters, gauges, attach
# ---------------------------------------------------------------------------


def test_span_nesting_builds_the_tree():
    o = Observability()
    o.enable()
    with o.span("outer", label="L") as outer:
        with o.span("mid") as mid:
            with o.span("inner"):
                pass
        with o.span("mid2"):
            pass
    assert [r.name for r in o.roots] == ["outer"]
    assert outer.attrs == {"label": "L"}
    assert [c.name for c in outer.children] == ["mid", "mid2"]
    assert [c.name for c in mid.children] == ["inner"]
    assert outer.duration >= mid.duration >= 0.0
    assert outer.start >= 0.0


def test_span_duration_set_even_on_exception():
    o = Observability()
    o.enable()
    with pytest.raises(RuntimeError):
        with o.span("boom") as sp:
            raise RuntimeError("x")
    assert sp.duration >= 0.0
    assert o._stack == []  # stack unwound


def test_counter_math():
    o = Observability()
    o.enable()
    o.add("a")
    o.add("a", 4)
    o.add("b", 0)
    o.add_many({"a": 5, "c": 2})
    assert o.counters == {"a": 10, "b": 0, "c": 2}
    with pytest.raises(ValueError):
        o.add("a", -1)


def test_gauges_last_write_wins():
    o = Observability()
    o.enable()
    o.set_gauge("g", 1)
    o.set_gauge("g", 2.5)
    assert o.gauges == {"g": 2.5}


def test_attach_grafts_under_current_span():
    o = Observability()
    o.enable()
    pre_built = Span("shard", attrs={"n": 3}, duration=0.5)
    with o.span("sweep"):
        o.attach(pre_built)
    (root,) = o.roots
    assert root.children == [pre_built]
    o.attach(Span("toplevel"))
    assert [r.name for r in o.roots] == ["sweep", "toplevel"]


def test_span_walk_and_find():
    root = Span("a", children=[Span("b", children=[Span("b")]), Span("c")])
    assert [s.name for s in root.walk()] == ["a", "b", "b", "c"]
    assert len(root.find("b")) == 2
    assert root.find("missing") == []


def test_reset_clears_everything():
    o = Observability()
    o.enable()
    with o.span("x"):
        o.add("c")
    o.warning("w")
    o.reset()
    assert (o.roots, o.counters, o.gauges, o.events) == ([], {}, {}, [])
    assert o.enabled  # reset clears state, not the switch


# ---------------------------------------------------------------------------
# Export: JSON round-trip, validation, rendering
# ---------------------------------------------------------------------------


def _populated() -> Observability:
    o = Observability()
    o.enable()
    with o.span("outer", label="L"):
        with o.span("inner", n=3):
            o.add("hits", 7)
    o.set_gauge("wall", 0.25)
    o.warning("note", k=1)
    return o


def test_json_round_trip_and_validation():
    o = _populated()
    doc = json.loads(export_json(o))
    assert validate_trace(doc) == []
    assert doc["counters"] == {"hits": 7}
    assert doc["gauges"] == {"wall": 0.25}
    (root,) = doc["spans"]
    rebuilt = Span.from_dict(root)
    assert rebuilt.to_dict() == root
    names = sorted(sp["name"] for sp in iter_trace_spans(doc))
    assert names == ["inner", "outer"]


def test_validate_trace_rejects_malformed_documents():
    assert validate_trace([]) != []
    assert validate_trace({"version": 2}) != []
    base = json.loads(export_json(_populated()))

    bad = json.loads(json.dumps(base))
    bad["spans"][0]["duration"] = -1
    assert any("duration" in p for p in validate_trace(bad))

    bad = json.loads(json.dumps(base))
    bad["spans"][0]["children"][0]["name"] = ""
    assert any("name" in p for p in validate_trace(bad))

    bad = json.loads(json.dumps(base))
    bad["counters"]["hits"] = -3
    assert any("hits" in p for p in validate_trace(bad))

    bad = json.loads(json.dumps(base))
    bad["counters"]["flag"] = True  # bools are not counters
    assert any("flag" in p for p in validate_trace(bad))

    bad = json.loads(json.dumps(base))
    bad["events"] = [{"message": "no kind"}]
    assert any("events[0]" in p for p in validate_trace(bad))


def test_render_text_shows_spans_counters_events():
    o = _populated()
    text = render_text(o)
    assert "outer" in text and "inner" in text
    assert "hits" in text and "7" in text
    assert "wall" in text
    assert "[warning] note" in text
    assert render_text(Observability()) == "(empty trace)"


# ---------------------------------------------------------------------------
# The module-level collector
# ---------------------------------------------------------------------------


def test_global_collector_wiring():
    obs.enable()
    assert obs.enabled()
    with obs.span("g", k=1) as sp:
        obs.add("n", 2)
        obs.set_gauge("w", 1.0)
    assert sp.name == "g"
    assert obs.counters() == {"n": 2}
    assert obs.gauges() == {"w": 1.0}
    assert obs.get().roots[0] is sp
    doc = json.loads(export_json())
    assert validate_trace(doc) == []
    obs.disable()
    assert obs.span("after") is NULL_SPAN
    obs.add("n", 100)
    assert obs.counters() == {"n": 2}  # disabled adds are dropped


def test_global_now_is_monotonic():
    t0 = obs.now()
    t1 = obs.now()
    assert 0.0 <= t0 <= t1


# ---------------------------------------------------------------------------
# Histograms: streaming log-bucket percentiles vs a brute-force oracle
# ---------------------------------------------------------------------------


def _oracle_percentile(samples, q):
    """Nearest-rank percentile (q in [0, 100]) over the exact samples."""
    import math

    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize(
    "samples",
    [
        [0.001 * (i % 97 + 1) for i in range(1, 500)],
        [10.0 ** (i % 7 - 3) for i in range(200)],
        [1e-9, 1.0, 1e9],
        [42.0],
    ],
)
def test_histogram_percentiles_match_sorted_oracle(samples):
    from repro.obs import Histogram

    h = Histogram()
    for s in samples:
        h.record(s)
    assert h.count == len(samples)
    assert h.min == min(samples)
    assert h.max == max(samples)
    assert h.total == pytest.approx(sum(samples))
    # One log-bucket spans a factor of 2**(1/8), so a bucket-midpoint
    # readback is within ~4.5% relative error of the exact rank value.
    for q in (50.0, 90.0, 99.0):
        exact = _oracle_percentile(samples, q)
        approx = h.percentile(q)
        assert approx == pytest.approx(exact, rel=Histogram.BASE - 1.0)


def test_histogram_zeros_merge_and_round_trip():
    from repro.obs import Histogram

    a, b = Histogram(), Histogram()
    for v in (0.0, -1.0, 0.5, 2.0):
        a.record(v)
    for v in (4.0, 8.0):
        b.record(v)
    a.merge(b)
    assert a.count == 6 and a.zeros == 2
    assert a.max == 8.0 and a.min == -1.0
    back = Histogram.from_dict(a.to_dict())
    assert back.to_dict() == a.to_dict()
    assert back.percentile(50.0) == a.percentile(50.0)


def test_observe_creates_named_histograms_only_while_enabled():
    o = Observability()
    o.observe("h", 1.0)
    assert o.histograms == {}
    o.enable()
    o.observe("h", 1.0)
    o.observe("h", 2.0)
    assert o.histograms["h"].count == 2
    assert "histograms" in o.to_dict()


# ---------------------------------------------------------------------------
# Memory spans: double-gated, peak >= net, no-op when disabled
# ---------------------------------------------------------------------------


def test_mem_span_is_noop_without_collector_and_without_mem():
    assert obs.mem_span("x") is NULL_SPAN  # collector disabled
    obs.enable()
    try:
        with obs.mem_span("x") as sp:
            pass
        # Memory gate off: plain span, no tracemalloc attribution.
        assert "mem_peak_bytes" not in sp.attrs
    finally:
        obs.disable()


def test_mem_span_attributes_peak_at_least_net():
    obs.enable()
    obs.enable_memory()
    try:
        with obs.mem_span("alloc") as sp:
            block = [bytearray(64 * 1024) for _ in range(8)]
            del block  # freed before exit: net falls, peak stays
        assert sp.attrs["mem_peak_bytes"] >= sp.attrs["mem_net_bytes"]
        assert sp.attrs["mem_peak_bytes"] >= 8 * 64 * 1024
    finally:
        obs.disable_memory()
        obs.disable()


def test_memory_delta_yields_zeros_when_disabled():
    assert not obs.mem_enabled()
    with obs.memory_delta() as mem:
        _ = bytearray(1024)
    assert mem == {"peak_bytes": 0, "net_bytes": 0}


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def _worker_span(pid, seconds, **attrs):
    return Span(
        name="shard",
        attrs={"pid": pid, **attrs},
        start=0.0,
        duration=seconds,
    )


def test_chrome_export_places_workers_on_their_own_tracks():
    from repro.obs import export_chrome, validate_chrome_trace

    o = Observability()
    o.enable()
    with o.span("sweep:test") as sweep:
        pass
    sweep.children.extend(
        [
            _worker_span(101, 0.25, n=3),
            _worker_span(102, 0.50, n=3),
            _worker_span(101, 0.10, n=2),
        ]
    )
    o.add("sweep.pairs", 7)
    doc = json.loads(export_chrome(o))
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    complete = [ev for ev in events if ev["ph"] == "X"]
    pids = {ev["pid"] for ev in complete}
    assert {101, 102} <= pids, "worker spans must land on per-pid tracks"
    # Same-worker spans lay head-to-tail: no overlap on track 101.
    w101 = sorted(
        (ev for ev in complete if ev["pid"] == 101), key=lambda e: e["ts"]
    )
    assert len(w101) == 2
    assert w101[0]["ts"] + w101[0]["dur"] <= w101[1]["ts"]
    # Counters ride along as "C" events, metadata names the processes.
    assert any(ev["ph"] == "C" for ev in events)
    assert any(ev["ph"] == "M" for ev in events)


def test_chrome_export_timestamps_non_negative_and_monotonic():
    from repro.obs import export_chrome, validate_chrome_trace

    obs.enable()
    try:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.warning("something happened", code=7)
        doc = json.loads(export_chrome())
    finally:
        obs.disable()
    assert validate_chrome_trace(doc) == []
    ts = [ev["ts"] for ev in doc["traceEvents"]]
    assert all(t >= 0 for t in ts)
    assert ts == sorted(ts)


def test_validate_chrome_trace_rejects_malformed_documents():
    from repro.obs import validate_chrome_trace

    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    no_dur = {
        "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
    }
    assert any("dur" in p for p in validate_chrome_trace(no_dur))
    backwards = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
        ]
    }
    assert any("backwards" in p for p in validate_chrome_trace(backwards))


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


def test_prom_name_sanitization():
    from repro.obs.metrics import prom_name

    assert prom_name("sweep.cache.hits") == "repro_sweep_cache_hits"
    assert prom_name("a-b c!d") == "repro_a_b_c_d"
    assert prom_name("9lives", prefix="") == "_9lives"


def test_render_prometheus_counters_gauges_histograms():
    from repro.obs.metrics import render_prometheus

    collector = Observability()
    collector.enable()
    collector.add("sweep.pairs", 42)
    collector.set_gauge("executor.nodes_done", 7.0)
    for v in (0.5, 1.5, 1.5, 8.0):
        collector.observe("step.seconds", v)
    text = render_prometheus(collector)
    lines = text.splitlines()
    assert "# TYPE repro_sweep_pairs counter" in lines
    assert "repro_sweep_pairs 42" in lines
    assert "# TYPE repro_executor_nodes_done gauge" in lines
    assert "repro_executor_nodes_done 7" in lines
    assert "# TYPE repro_step_seconds histogram" in lines
    assert "repro_step_seconds_count 4" in lines
    assert any(ln.startswith("repro_step_seconds_sum ") for ln in lines)
    assert 'repro_step_seconds_bucket{le="+Inf"} 4' in lines
    assert text.endswith("\n")


def test_prometheus_histogram_buckets_are_cumulative_monotone():
    import re

    from repro.obs.metrics import render_prometheus

    collector = Observability()
    collector.enable()
    for v in (0.0, 0.0, 0.25, 1.0, 3.0, 3.0, 100.0):
        collector.observe("h.x", v)
    text = render_prometheus(collector)
    pat = re.compile(r'repro_h_x_bucket\{le="([^"]+)"\} (\d+)')
    buckets = [(le, int(c)) for le, c in pat.findall(text)]
    counts = [c for _, c in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert buckets[0][1] >= 2, "zeros count under the smallest bound"
    assert buckets[-1] == ("+Inf", 7)
    bounds = [float(le) for le, _ in buckets[:-1]]
    assert bounds == sorted(bounds), "bucket bounds must ascend"


def test_render_prometheus_empty_collector_is_valid():
    from repro.obs.metrics import render_prometheus

    assert render_prometheus(Observability()) == "\n"


def test_metrics_server_serves_collector_over_http():
    import urllib.error
    import urllib.request

    from repro.obs.metrics import PROM_CONTENT_TYPE, MetricsServer

    collector = Observability()
    collector.enable()
    collector.add("served.count", 3)
    server = MetricsServer(0, obs=collector).start()
    try:
        assert server.port > 0
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == PROM_CONTENT_TYPE
            body = resp.read().decode()
        assert "repro_served_count 3" in body
        # Live view: a later increment shows up on the next scrape.
        collector.add("served.count", 2)
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert "repro_served_count 5" in resp.read().decode()
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(
                server.url.replace("/metrics", "/nope"), timeout=5
            )
        assert exc_info.value.code == 404
    finally:
        server.stop()
    # The bound port (and so ``url``) stays readable after stop — a
    # stopped server still answers "where was it serving?".
    assert server.port > 0
    assert not server.running


def test_metrics_server_lifecycle_is_reentrant():
    import urllib.request

    from repro.obs.metrics import MetricsServer

    collector = Observability()
    collector.enable()
    collector.add("cycles", 1)
    server = MetricsServer(0, obs=collector)
    assert server.port == 0  # requested, not yet bound
    # Repeated start/stop cycles in one process must neither raise
    # EADDRINUSE nor leak endpoints; each start re-resolves port 0.
    ports = []
    for _ in range(3):
        server.start()
        assert server.running
        ports.append(server.port)
        assert server.port > 0
        # Double-start is a no-op on the live endpoint (same port).
        assert server.start() is server
        assert server.port == ports[-1]
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert "repro_cycles 1" in resp.read().decode()
        server.stop()
        server.stop()  # idempotent
        assert not server.running
        assert server.port == ports[-1]  # last bound port survives stop


def test_metrics_server_context_manager():
    import urllib.request

    from repro.obs.metrics import MetricsServer

    collector = Observability()
    collector.enable()
    collector.add("scoped", 7)
    with MetricsServer(0, obs=collector) as server:
        assert server.running
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert "repro_scoped 7" in resp.read().decode()
    assert not server.running


# ----------------------------------------------------------------------
# Live TTY status board
# ----------------------------------------------------------------------


def _fake_clock(start=0.0):
    state = {"t": start}

    def clock():
        return state["t"]

    clock.advance = lambda dt: state.__setitem__("t", state["t"] + dt)
    return clock


def test_live_board_auto_disabled_off_tty():
    import io as io_mod

    from repro.obs.live import LiveBoard

    stream = io_mod.StringIO()  # isatty() is False
    board = LiveBoard(stream=stream)
    assert not board.enabled
    board.on_sweep_start("lab", 4, 2)
    board.on_heartbeat({"pid": 1, "pairs_done": 5})
    board.on_sweep_done("lab", 1.0)
    board.finish()
    assert stream.getvalue() == ""


def test_live_board_renders_worker_rows_and_eta():
    import io as io_mod

    from repro.obs.live import LiveBoard, format_eta

    clock = _fake_clock()
    stream = io_mod.StringIO()
    board = LiveBoard(
        stream=stream, force=True, min_redraw_seconds=0.0, clock=clock
    )
    board.on_sweep_start("lattice", 4, 2)
    clock.advance(1.0)
    board.on_heartbeat(
        {
            "pid": 11,
            "n": 4,
            "mask_lo": 0,
            "mask_hi": 32,
            "pairs_done": 500,
            "elapsed": 2.0,
            "cache_hits": 75,
            "cache_misses": 25,
        }
    )
    clock.advance(1.0)
    board.on_shard_done({"pid": 11, "seconds": 3.0, "n": 4, "pairs": 900})
    lines = board.render()
    assert "sweep lattice" in lines[0]
    assert "1/4 shards" in lines[0]
    # 3 remaining shards at a 3.0s median over min(jobs=2, 3) lanes.
    assert board.eta_seconds() == pytest.approx(3 * 3.0 / 2)
    assert f"ETA {format_eta(4.5)}" in lines[0]
    assert any("pid 11" in ln and "(idle)" in ln for ln in lines)
    board.on_sweep_done("lattice", 9.0)
    out = stream.getvalue()
    assert "sweep lattice: 1/4 shards in 9.00s" in out


def test_live_board_heartbeat_row_shows_rate_and_hit_ratio():
    import io as io_mod

    from repro.obs.live import LiveBoard

    board = LiveBoard(
        stream=io_mod.StringIO(),
        force=True,
        min_redraw_seconds=0.0,
        clock=_fake_clock(),
    )
    board.on_sweep_start("s", 1, 1)
    board.on_heartbeat(
        {
            "pid": 7,
            "n": 3,
            "mask_lo": 0,
            "mask_hi": 8,
            "pairs_done": 100,
            "elapsed": 4.0,
            "cache_hits": 9,
            "cache_misses": 1,
        }
    )
    row = board.workers[7]
    assert row["rate"] == pytest.approx(25.0)
    assert row["hit_ratio"] == pytest.approx(0.9)
    (line,) = [ln for ln in board.render() if "pid 7" in ln]
    assert "25/s" in line and "cache  90%" in line


def test_live_board_redraw_rate_limited():
    import io as io_mod

    from repro.obs.live import LiveBoard

    clock = _fake_clock()
    stream = io_mod.StringIO()
    board = LiveBoard(
        stream=stream, force=True, min_redraw_seconds=10.0, clock=clock
    )
    board.on_sweep_start("s", 2, 1)
    first = stream.getvalue()
    board.on_heartbeat({"pid": 1, "pairs_done": 1})
    assert stream.getvalue() == first, "redraw inside the window suppressed"
    clock.advance(11.0)
    board.on_heartbeat({"pid": 1, "pairs_done": 2})
    assert len(stream.getvalue()) > len(first)


def test_format_eta():
    from repro.obs.live import format_eta

    assert format_eta(0) == "00:00"
    assert format_eta(61) == "01:01"
    assert format_eta(3723) == "1:02:03"
