"""Tests pinning the paper figures to their claimed membership profiles."""

from repro.models import LC, NN, NW, SC, WN, WW
from repro.paperfigures import (
    figure2_pair,
    figure3_pair,
    figure4_blocking_ops,
    figure4_pair,
    lc_not_sc_pair,
    nn_not_lc_pair,
)

ALL = (SC, LC, NN, NW, WN, WW)


def profile(comp, phi):
    return {m.name: m.contains(comp, phi) for m in ALL}


class TestFigure2:
    def test_exact_profile(self):
        comp, phi = figure2_pair()
        assert profile(comp, phi) == {
            "SC": False,
            "LC": False,
            "NN": False,
            "NW": True,
            "WN": False,
            "WW": True,
        }

    def test_four_nodes_like_paper(self):
        comp, _ = figure2_pair()
        assert comp.num_nodes == 4


class TestFigure3:
    def test_exact_profile(self):
        comp, phi = figure3_pair()
        assert profile(comp, phi) == {
            "SC": False,
            "LC": False,
            "NN": False,
            "NW": False,
            "WN": True,
            "WW": True,
        }

    def test_four_nodes_like_paper(self):
        comp, _ = figure3_pair()
        assert comp.num_nodes == 4


class TestFigure4:
    def test_in_nn(self):
        comp, phi = figure4_pair()
        assert NN.contains(comp, phi)

    def test_not_in_lc(self):
        comp, phi = nn_not_lc_pair()
        assert not LC.contains(comp, phi)

    def test_blocking_ops_are_non_writes(self):
        ops = figure4_blocking_ops()
        assert all(not op.is_write for op in ops)
        assert len(ops) == 2


class TestStoreBuffer:
    def test_lc_yes_sc_no(self):
        comp, phi = lc_not_sc_pair()
        assert LC.contains(comp, phi)
        assert not SC.contains(comp, phi)

    def test_in_all_dag_models(self):
        comp, phi = lc_not_sc_pair()
        for m in (NN, NW, WN, WW):
            assert m.contains(comp, phi), m.name

    def test_uses_two_locations(self):
        comp, _ = lc_not_sc_pair()
        assert len(comp.locations) == 2


class TestMutualStructure:
    def test_figures_2_3_witness_incomparability(self):
        """Figures 2 and 3 jointly prove NW and WN incomparable."""
        c2, p2 = figure2_pair()
        c3, p3 = figure3_pair()
        assert NW.contains(c2, p2) and not WN.contains(c2, p2)
        assert WN.contains(c3, p3) and not NW.contains(c3, p3)

    def test_figure4_witnesses_theorem_22_strictness(self):
        comp, phi = figure4_pair()
        assert NN.contains(comp, phi) and not LC.contains(comp, phi)
