"""Cross-cutting property-based tests.

These tie several subsystems together: every property here is a theorem
of the paper (or a corollary this reproduction surfaced) quantified over
random computations, observer functions, schedules, and memories.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ObserverFunction, last_writer_function
from repro.dag.metrics import span, width, work
from repro.dag.toposort import random_topological_sort
from repro.models import LC, NN, NW, SC, WN, WW
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    greedy_schedule,
    work_stealing_schedule,
)
from repro.verify import lc_completion, trace_admits_lc, trace_admits_sc
from tests.conftest import computations, computations_with_observer

MODELS = (SC, LC, NN, NW, WN, WW)


# ---------------------------------------------------------------------------
# Model-theoretic properties
# ---------------------------------------------------------------------------


@given(computations(max_nodes=6), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_last_writer_of_any_sort_is_in_every_model(comp, seed):
    """W_T ∈ SC for every sort T, and SC is the strongest model here."""
    order = random_topological_sort(comp.dag, random.Random(seed))
    phi = last_writer_function(comp, order, check_order=False)
    for m in MODELS:
        assert m.contains(comp, phi), m.name


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=80, deadline=None)
def test_full_inclusion_chain(pair):
    """SC ⊆ LC ⊆ NN ⊆ NW ⊆ WW and NN ⊆ WN ⊆ WW on every single pair."""
    comp, phi = pair
    member = {m.name: m.contains(comp, phi) for m in MODELS}
    chain = [("SC", "LC"), ("LC", "NN"), ("NN", "NW"), ("NN", "WN"),
             ("NW", "WW"), ("WN", "WW")]
    for a, b in chain:
        if member[a]:
            assert member[b], f"{a} ⊆ {b} violated"


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=60, deadline=None)
def test_sc_equals_lc_on_single_location(pair):
    """With one location, SC and LC coincide (a corollary of Defs 17/18:
    there is only one location to serialize)."""
    comp, phi = pair
    assert SC.contains(comp, phi) == LC.contains(comp, phi)


@given(computations_with_observer(max_nodes=4))
@settings(max_examples=40, deadline=None)
def test_observer_restriction_preserves_memberships_downward(pair):
    """Restricting an LC pair to a prefix keeps it in LC (the paper's
    online reading: prefixes of valid behaviours are valid)."""
    comp, phi = pair
    if not LC.contains(comp, phi):
        return
    full = (1 << comp.num_nodes) - 1
    for mask in comp.prefix_masks():
        if mask == full:
            continue
        prefix, old_ids = comp.restrict(mask)
        try:
            sub = phi.relabel(prefix, old_ids)
        except Exception:
            continue  # prefix drops an observed write: not a restriction
        assert LC.contains(prefix, sub)


# ---------------------------------------------------------------------------
# Runtime properties
# ---------------------------------------------------------------------------


@given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_serial_memory_traces_always_sc(comp, procs, seed):
    sched = greedy_schedule(comp, procs, rng=seed)
    trace = execute(sched, SerialMemory())
    assert trace_admits_sc(trace.partial_observer()) is not None


@given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_backer_traces_always_lc_on_random_dags(comp, procs, seed):
    """BACKER maintains LC on arbitrary dags, not just fork/join ones."""
    sched = work_stealing_schedule(comp, procs, rng=seed)
    trace = execute(sched, BackerMemory())
    po = trace.partial_observer()
    assert trace_admits_lc(po)
    phi = lc_completion(po)
    assert phi is not None and LC.contains(comp, phi)


@given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_schedules_valid_and_bounded(comp, procs, seed):
    """Greedy schedules satisfy the work/span laws and Graham's bound."""
    sched = greedy_schedule(comp, procs, rng=seed)
    t1, tinf = work(comp.dag), span(comp.dag)
    if t1 == 0:
        assert sched.makespan == 0
        return
    assert sched.makespan >= max(tinf, -(-t1 // procs))
    assert sched.makespan <= t1 / procs + tinf


@given(computations(max_nodes=7))
@settings(max_examples=30, deadline=None)
def test_width_bounds_parallel_time(comp):
    """No schedule can use more than `width` processors at once, so a
    width-processor greedy schedule already achieves the span bound
    within Graham's envelope."""
    w = width(comp.dag)
    if w == 0:
        return
    sched = greedy_schedule(comp, w, rng=0)
    assert sched.makespan >= span(comp.dag)


# ---------------------------------------------------------------------------
# Serialization properties
# ---------------------------------------------------------------------------


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=40, deadline=None)
def test_model_verdicts_survive_serialization(pair):
    from repro.io import dumps, loads

    comp, phi = pair
    again = loads(dumps(phi))
    for m in MODELS:
        assert m.contains(comp, phi) == m.contains(again.computation, again)


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=40, deadline=None)
def test_augmented_observer_extends(pair):
    """Every augmentation extension restricts back to the original
    (the Galois-style relationship behind Theorem 12)."""
    from repro.core.ops import R
    from repro.models import augmentation_extensions

    comp, phi = pair
    for aug, phi2 in augmentation_extensions(comp, phi, R("x")):
        restricted = phi2.restrict_to_prefix(comp)
        assert restricted == ObserverFunction(
            comp, {loc: phi.row(loc) for loc in phi.locations}, validate=False
        )
