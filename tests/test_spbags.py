"""SP-bags race detection, SP realizers/decomposition, locksets.

The central property: the near-linear SP-bags detector agrees with the
exact closure sweep — same racy-location set, and every pair it reports
is a genuine race — on *every* series-parallel computation in the
exhaustive universes and on hundreds of random SP dags.  (SP-bags
reports at least one race per racy location, not all pairs; that is the
Feng–Leiserson guarantee the agreement check encodes.)
"""

import itertools

from repro.core import Computation, N, R, W
from repro.dag import Dag
from repro.dag.sp import (
    SPNode,
    all_sp_trees,
    random_sp,
    sp_decompose,
    sp_leaves,
    sp_orders,
    sp_precedes,
    sp_to_dag,
)
from repro.lang import (
    fib_computation,
    iriw_computation,
    locked_counter_computation,
    matmul_computation,
    racy_counter_computation,
    scan_computation,
    stencil_computation,
    store_buffer_computation,
    tree_sum_computation,
    unfold,
)
from repro.verify import (
    classify_races,
    find_races,
    node_locksets,
    spbags_races,
)

OPS = (R("x"), W("x"), R("y"), W("y"), N)

ALL_PROGRAMS = (
    lambda: fib_computation(6),
    lambda: matmul_computation(2),
    lambda: scan_computation(8),
    lambda: stencil_computation(),
    lambda: tree_sum_computation(8),
    lambda: racy_counter_computation(),
    lambda: locked_counter_computation(),
    lambda: store_buffer_computation(),
    lambda: iriw_computation(),
)


def assert_agrees(comp: Computation, sp: SPNode | None) -> None:
    exact = {(repr(r.loc), r.u, r.v, r.kind) for r in find_races(comp)}
    reported = {
        (repr(r.loc), r.u, r.v, r.kind) for r in spbags_races(comp, sp)
    }
    assert reported <= exact, "SP-bags reported a non-race"
    assert {t[0] for t in reported} == {t[0] for t in exact}, (
        "racy-location sets differ"
    )


class TestAgreement:
    def test_exhaustive_sp_universes(self):
        """Every SP shape × op labelling with ≤ 4 nodes (26k cases)."""
        checked = 0
        for n in range(1, 5):
            for tree in all_sp_trees(n):
                dag, _ = sp_to_dag(tree)
                for ops in itertools.product(OPS, repeat=n):
                    assert_agrees(Computation(dag, ops), tree)
                    checked += 1
        assert checked >= 26000

    def test_random_sp_dags(self):
        """≥200 random SP dags, up to 40 nodes, three locations."""
        import random

        alphabet = OPS + (R("z"), W("z"))
        for seed in range(200):
            rng = random.Random(seed)
            n = rng.randint(2, 40)
            tree = random_sp(n, rng_seed=seed)
            dag, _ = sp_to_dag(tree)
            ops = tuple(rng.choice(alphabet) for _ in range(n))
            assert_agrees(Computation(dag, ops), tree)

    def test_unfolded_programs(self):
        for factory in ALL_PROGRAMS:
            comp, info = factory()
            assert info.sp is not None
            assert_agrees(comp, info.sp)

    def test_decomposition_fallback(self):
        """Without an SP expression, sp_decompose recovers one."""
        comp, _ = racy_counter_computation(3, 2)
        assert_agrees(comp, None)

    def test_non_sp_dag_rejected(self):
        # The N shape: 0≺2, 1≺2, 1≺3 — the forbidden substructure.
        comp = Computation(
            Dag(4, [(0, 2), (1, 2), (1, 3)]),
            (W("x"), W("x"), R("x"), R("x")),
        )
        import pytest

        with pytest.raises(ValueError, match="not series-parallel"):
            spbags_races(comp)


class TestRealizer:
    def test_exhaustive_orders_match_closure(self):
        """The 2-linear-extension realizer equals the dag order, n ≤ 5."""
        trees = 0
        for n in range(1, 6):
            for tree in all_sp_trees(n):
                dag, _ = sp_to_dag(tree)
                orders = sp_orders(tree)
                for u in range(n):
                    for v in range(n):
                        assert sp_precedes(orders, u, v) == (
                            u != v and dag.precedes(u, v)
                        )
                trees += 1
        assert trees >= 275

    def test_unfold_records_sp_matching_dag(self):
        """unfold's recorded SP expression realizes the dag's order."""
        for factory in ALL_PROGRAMS:
            comp, info = factory()
            n = comp.dag.num_nodes
            leaves = sorted(e.payload for e in sp_leaves(info.sp))
            assert leaves == list(range(n))
            assert len(info.node_paths) == n
            orders = sp_orders(info.sp)
            for u in range(n):
                for v in range(n):
                    if u != v:
                        assert sp_precedes(orders, u, v) == (
                            comp.dag.precedes(u, v)
                        )

    def test_decompose_roundtrip(self):
        for seed in range(40):
            tree = random_sp(1 + seed % 17, rng_seed=seed)
            dag, _ = sp_to_dag(tree)
            recovered = sp_decompose(dag)
            assert recovered is not None
            orders = sp_orders(recovered)
            for u in range(dag.num_nodes):
                for v in range(dag.num_nodes):
                    if u != v:
                        assert sp_precedes(orders, u, v) == dag.precedes(
                            u, v
                        )

    def test_decompose_rejects_non_sp(self):
        assert sp_decompose(Dag(4, [(0, 2), (1, 2), (1, 3)])) is None


class TestLocksets:
    def test_locked_counter_is_lock_mediated(self):
        comp, info = locked_counter_computation(3, 2)
        races = spbags_races(comp, info.sp)
        assert races, "the bare dag must still race"
        locksets = node_locksets(comp, info.lock_sections)
        classified = classify_races(races, locksets)
        assert all(c.classification == "lock-mediated" for c in classified)
        assert all("L" in c.locks_u and "L" in c.locks_v for c in classified)

    def test_unlocked_counter_is_data_race(self):
        comp, info = racy_counter_computation(3, 2)
        races = spbags_races(comp, info.sp)
        classified = classify_races(
            races, node_locksets(comp, info.lock_sections)
        )
        assert classified
        assert all(c.classification == "data-race" for c in classified)

    def test_wrong_locks_stay_data_races(self):
        """Two different locks look synchronized but are not."""

        def task(ctx, lock_name):
            with ctx.lock(lock_name):
                ctx.read("ctr")
                ctx.write("ctr")

        def main(ctx):
            ctx.write("ctr")
            ctx.spawn(task, "L1")
            ctx.spawn(task, "L2")
            ctx.sync()
            ctx.read("ctr")

        comp, info = unfold(main)
        classified = classify_races(
            spbags_races(comp, info.sp),
            node_locksets(comp, info.lock_sections),
        )
        assert classified
        assert all(c.classification == "data-race" for c in classified)
        assert any(c.locks_u and c.locks_v for c in classified), (
            "both sides hold locks — just not a common one"
        )

    def test_unsynced_spawn_escapes_section(self):
        """A child spawned inside a section is not covered by the lock."""

        def child(ctx):
            ctx.write("x")

        def main(ctx):
            with ctx.lock("L"):
                ctx.spawn(child)  # no sync before release: escapes
                ctx.write("x")
            ctx.sync()

        comp, info = unfold(main)
        locksets = node_locksets(comp, info.lock_sections)
        (escaped,) = [
            u for u in range(comp.num_nodes) if "s0" in info.node_paths[u]
        ]
        assert locksets[escaped] == frozenset()
        classified = classify_races(
            spbags_races(comp, info.sp), locksets
        )
        assert any(c.classification == "data-race" for c in classified)
