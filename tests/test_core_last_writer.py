"""Tests for last-writer functions (Definition 13, Theorems 14–16)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    Computation,
    N,
    R,
    W,
    last_writer_function,
    last_writer_row,
    satisfies_last_writer_conditions,
)
from repro.dag import Dag, all_topological_sorts
from repro.errors import InvalidObserverError
from tests.conftest import computations


class TestLastWriterRow:
    def test_serial(self):
        c = Computation.serial([W("x"), R("x"), W("x"), R("x")])
        row = last_writer_row(c, (0, 1, 2, 3), "x")
        assert row == (0, 0, 2, 2)

    def test_no_writes(self):
        c = Computation.serial([R("x"), R("x")])
        assert last_writer_row(c, (0, 1), "x") == (None, None)

    def test_write_is_own_last_writer(self):
        c = Computation.serial([W("x"), W("x")])
        assert last_writer_row(c, (0, 1), "x") == (0, 1)

    def test_order_dependence(self):
        c = Computation(Dag(3), (W("x"), W("x"), R("x")))
        assert last_writer_row(c, (0, 1, 2), "x") == (0, 1, 1)
        assert last_writer_row(c, (1, 0, 2), "x") == (0, 1, 0)
        assert last_writer_row(c, (2, 0, 1), "x")[2] is None

    def test_other_location_ignored(self):
        c = Computation.serial([W("y"), R("x")])
        assert last_writer_row(c, (0, 1), "x") == (None, None)


class TestLastWriterFunction:
    def test_is_observer(self):
        c = Computation(Dag(3, [(0, 1)]), (W("x"), R("x"), W("x")))
        for order in all_topological_sorts(c.dag):
            phi = last_writer_function(c, order)
            # Validation happens inside; also spot-check 2.3.
            assert phi.value("x", 0) == 0
            assert phi.value("x", 2) == 2

    def test_rejects_bad_order(self):
        c = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        with pytest.raises(InvalidObserverError):
            last_writer_function(c, (1, 0))

    def test_explicit_locations(self):
        c = Computation.serial([W("x"), R("x")])
        phi = last_writer_function(c, (0, 1), locations=["x", "y"])
        assert phi.row("y") == (None, None)


@given(computations(max_nodes=5))
@settings(max_examples=40)
def test_theorem_16_always_observer(c):
    """W_T is an observer function for every computation and sort."""
    order = c.dag.topological_order
    last_writer_function(c, order)  # validates internally; must not raise


@given(computations(max_nodes=5))
@settings(max_examples=40)
def test_definition_13_conditions_hold(c):
    order = c.dag.topological_order
    for loc in c.locations:
        row = last_writer_row(c, order, loc)
        assert satisfies_last_writer_conditions(c, order, loc, row)


@given(computations(max_nodes=4))
@settings(max_examples=30)
def test_theorem_14_uniqueness(c):
    """Any row satisfying Definition 13 equals the computed one."""
    from itertools import product

    order = c.dag.topological_order
    for loc in c.locations:
        computed = last_writer_row(c, order, loc)
        writers = c.writers(loc)
        candidates = [None] + writers
        matching = [
            row
            for row in product(candidates, repeat=c.num_nodes)
            if satisfies_last_writer_conditions(c, order, loc, row)
        ]
        assert matching == [computed]


@given(computations(max_nodes=5))
@settings(max_examples=40)
def test_theorem_15_between_property(c):
    """W_T(l,u) ≺_T v ⪯_T u implies W_T(l,v) = W_T(l,u)."""
    order = c.dag.topological_order
    pos = {u: i for i, u in enumerate(order)}
    for loc in c.locations:
        row = last_writer_row(c, order, loc)
        for u in c.nodes():
            w = row[u]
            if w is None:
                continue
            for v in c.nodes():
                if pos[w] < pos[v] <= pos[u]:
                    assert row[v] == w
