"""Tests for sequential consistency (Definition 17)."""

from hypothesis import given, settings

from repro.core import (
    EMPTY_COMPUTATION,
    Computation,
    ObserverFunction,
    R,
    W,
    last_writer_function,
)
from repro.dag import Dag, all_topological_sorts
from repro.models import LC, SC
from repro.paperfigures import lc_not_sc_pair
from tests.conftest import computations, computations_with_observer


def sc_bruteforce(comp, phi) -> bool:
    """Definition 17 by enumeration: one sort explaining every location."""
    locs = sorted(set(comp.locations) | set(phi.locations), key=repr)
    for order in all_topological_sorts(comp.dag):
        w = last_writer_function(comp, order, locs, check_order=False)
        if all(w.row(loc) == phi.row(loc) for loc in locs):
            return True
    return False


class TestBasics:
    def test_empty_member(self):
        phi = ObserverFunction(EMPTY_COMPUTATION, {})
        assert SC.contains(EMPTY_COMPUTATION, phi)

    def test_serial_program(self):
        c = Computation.serial([W("x"), R("x"), W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, 0, 2, 2)})
        assert SC.contains(c, phi)
        assert SC.witness_order(c, phi) == (0, 1, 2, 3)

    def test_store_buffer_rejected(self):
        comp, phi = lc_not_sc_pair()
        assert not SC.contains(comp, phi)
        assert SC.witness_order(comp, phi) is None

    def test_sc_subset_lc(self):
        comp, phi = lc_not_sc_pair()
        assert LC.contains(comp, phi) and not SC.contains(comp, phi)

    def test_concurrent_reads_see_different_writes_single_loc(self):
        # Two concurrent writes, two concurrent readers each seeing a
        # different one: impossible under any single serialization if the
        # readers are ordered after both writes... here readers are
        # concurrent with everything, so each can sit next to "its" write.
        c = Computation(Dag(4), (W("x"), W("x"), R("x"), R("x")))
        phi = ObserverFunction(c, {"x": (0, 1, 0, 1)})
        assert SC.contains(c, phi)

    def test_fresh_diamond(self):
        c = Computation(
            Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
            (W("x"), R("x"), W("x"), R("x")),
        )
        phi = ObserverFunction(c, {"x": (0, 0, 2, 2)})
        assert SC.contains(c, phi)

    def test_stale_diamond_rejected(self):
        c = Computation(
            Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
            (W("x"), R("x"), W("x"), R("x")),
        )
        phi = ObserverFunction(c, {"x": (0, 0, 2, 0)})
        assert not SC.contains(c, phi)


class TestWitness:
    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_witness_reproduces_phi(self, pair):
        comp, phi = pair
        order = SC.witness_order(comp, phi)
        if order is not None:
            locs = sorted(set(comp.locations) | set(phi.locations), key=repr)
            w = last_writer_function(comp, order, locs)
            for loc in locs:
                assert w.row(loc) == phi.row(loc)


@given(computations_with_observer(max_nodes=4))
@settings(max_examples=80, deadline=None)
def test_search_matches_bruteforce(pair):
    comp, phi = pair
    assert SC.contains(comp, phi) == sc_bruteforce(comp, phi)


@given(computations_with_observer(max_nodes=4, locations=("x", "y"), include_nop=False))
@settings(max_examples=40, deadline=None)
def test_search_matches_bruteforce_two_locations(pair):
    comp, phi = pair
    assert SC.contains(comp, phi) == sc_bruteforce(comp, phi)


@given(computations(max_nodes=4))
@settings(max_examples=30, deadline=None)
def test_observers_generator_matches_filter(comp):
    """SC.observers (sort-based) equals filtering all observer functions."""
    direct = set(SC.observers(comp))
    filtered = {
        phi
        for phi in ObserverFunction.enumerate_all(comp)
        if SC.contains(comp, phi)
    }
    assert direct == filtered


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=60, deadline=None)
def test_sc_stronger_than_lc(pair):
    comp, phi = pair
    if SC.contains(comp, phi):
        assert LC.contains(comp, phi)
