"""Tests for random dag generators, SP algebra, and dag enumeration."""

import random

import pytest

from repro.dag import (
    Dag,
    balanced_sp,
    canonical_form,
    chain_dag,
    empty_dag,
    fork_join_dag,
    gnp_dag,
    is_series_parallel,
    layered_dag,
    leaf,
    ordered_dags,
    parallel,
    random_sp,
    series,
    sp_to_dag,
    unique_dags,
)


class TestGnp:
    def test_p_zero_no_edges(self):
        assert gnp_dag(10, 0.0, rng=1).num_edges == 0

    def test_p_one_complete(self):
        d = gnp_dag(6, 1.0, rng=1)
        assert d.num_edges == 15  # 6 choose 2

    def test_deterministic_by_seed(self):
        assert gnp_dag(8, 0.4, rng=5).edges == gnp_dag(8, 0.4, rng=5).edges

    def test_seed_variation(self):
        results = {frozenset(gnp_dag(8, 0.5, rng=s).edges) for s in range(5)}
        assert len(results) > 1


class TestLayered:
    def test_barrier_layers(self):
        d = layered_dag([2, 3, 2], connect_all=True)
        assert d.num_nodes == 7
        assert d.num_edges == 2 * 3 + 3 * 2

    def test_edges_only_adjacent(self):
        d = layered_dag([2, 2, 2], connect_all=True)
        # No edge skips a layer: nodes 0,1 never directly reach 4,5.
        for u in (0, 1):
            for v in (4, 5):
                assert (u, v) not in d.edges


class TestForkJoin:
    def test_depth_zero(self):
        assert fork_join_dag(0).num_nodes == 1

    def test_node_count_depth(self):
        # f(d) = 2 + fanout * f(d-1); f(0) = 1.
        d = fork_join_dag(2, fanout=2)
        assert d.num_nodes == 2 + 2 * (2 + 2 * 1)

    def test_single_source_sink(self):
        d = fork_join_dag(3)
        assert len(d.sources()) == 1
        assert len(d.sinks()) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fork_join_dag(-1)
        with pytest.raises(ValueError):
            fork_join_dag(1, fanout=0)


class TestBasicShapes:
    def test_chain(self):
        d = chain_dag(4)
        assert d.precedes(0, 3)
        assert d.num_edges == 3

    def test_empty(self):
        assert empty_dag(5).num_edges == 0


class TestSPAlgebra:
    def test_leaf(self):
        d, payloads = sp_to_dag(leaf("a"))
        assert d.num_nodes == 1
        assert payloads == ["a"]

    def test_series(self):
        d, _ = sp_to_dag(series(leaf(), leaf(), leaf()))
        assert d.edges == {(0, 1), (1, 2)}

    def test_parallel(self):
        d, _ = sp_to_dag(parallel(leaf(), leaf()))
        assert d.num_edges == 0

    def test_nested(self):
        expr = series(leaf(), parallel(leaf(), leaf()), leaf())
        d, _ = sp_to_dag(expr)
        assert d.edges == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_single_part_passthrough(self):
        assert series(leaf()).kind == "leaf"
        assert parallel(leaf()).kind == "leaf"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series()
        with pytest.raises(ValueError):
            parallel()

    def test_leaf_count(self):
        assert balanced_sp(2).leaf_count() == 2 + 2 * (2 + 2)


class TestSPRecognizer:
    def test_diamond_is_sp(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert is_series_parallel(d)

    def test_chain_is_sp(self):
        assert is_series_parallel(chain_dag(5))

    def test_n_graph_not_sp(self):
        # The "N" shape is the forbidden minor of SP dags.
        d = Dag(4, [(0, 2), (0, 3), (1, 3)])
        assert not is_series_parallel(d)

    def test_fork_join_is_sp(self):
        assert is_series_parallel(fork_join_dag(3))

    def test_sp_algebra_output_is_sp(self):
        for seed in range(10):
            expr = random_sp(8, rng_seed=seed)
            d, _ = sp_to_dag(expr)
            assert is_series_parallel(d)

    def test_empty_is_sp(self):
        assert is_series_parallel(Dag(0))


class TestEnumeration:
    def test_ordered_counts(self):
        assert len(list(ordered_dags(0))) == 1
        assert len(list(ordered_dags(2))) == 2
        assert len(list(ordered_dags(3))) == 8
        assert len(list(ordered_dags(4))) == 64

    def test_all_ordered(self):
        for d in ordered_dags(4):
            for (u, v) in d.edges:
                assert u < v

    def test_unique_counts(self):
        # Unlabeled dags (iso classes): 1, 1, 2, 6, 31 for n = 0..4.
        assert len(list(unique_dags(0))) == 1
        assert len(list(unique_dags(1))) == 1
        assert len(list(unique_dags(2))) == 2
        assert len(list(unique_dags(3))) == 6
        assert len(list(unique_dags(4))) == 31

    def test_canonical_form_invariant(self):
        a = Dag(3, [(0, 1)])
        b = Dag(3, [(1, 2)])  # isomorphic relabelling
        assert canonical_form(a) == canonical_form(b)

    def test_canonical_form_distinguishes(self):
        a = Dag(3, [(0, 1)])
        b = Dag(3, [(0, 1), (0, 2)])
        assert canonical_form(a) != canonical_form(b)


class TestRngCoercion:
    def test_random_instance_passthrough(self):
        from repro.dag.random_dags import as_rng

        r = random.Random(1)
        assert as_rng(r) is r

    def test_seed(self):
        from repro.dag.random_dags import as_rng

        assert as_rng(5).random() == random.Random(5).random()
