"""Tests for bounded enumeration universes."""

import pytest

from repro.core import N, R, W
from repro.models import LC, NN, Universe, default_alphabet
from repro.errors import UniverseError


class TestAlphabet:
    def test_default_alphabet(self):
        assert default_alphabet(["x"]) == (R("x"), W("x"), N)

    def test_without_nop(self):
        assert default_alphabet(["x"], include_nop=False) == (R("x"), W("x"))

    def test_two_locations(self):
        a = default_alphabet(["x", "y"])
        assert len(a) == 5

    def test_universe_alphabet(self):
        u = Universe(max_nodes=2, locations=("x", "y"), include_nop=False)
        assert len(u.alphabet) == 4


class TestEnumeration:
    def test_size_zero(self):
        u = Universe(max_nodes=2, locations=("x",))
        comps = list(u.computations_of_size(0))
        assert len(comps) == 1
        assert comps[0].is_empty

    def test_size_counts(self):
        u = Universe(max_nodes=3, locations=("x",))
        # n=1: 1 dag x 3 ops; n=2: 2 dags x 9; n=3: 8 x 27.
        assert len(list(u.computations_of_size(1))) == 3
        assert len(list(u.computations_of_size(2))) == 18
        assert len(list(u.computations_of_size(3))) == 216

    def test_count_computations_formula(self):
        u = Universe(max_nodes=3, locations=("x",))
        for n in range(4):
            assert u.count_computations(n) == len(
                list(u.computations_of_size(n))
            )

    def test_computations_all_sizes(self):
        u = Universe(max_nodes=2, locations=("x",))
        assert len(list(u.computations())) == 1 + 3 + 18

    def test_out_of_range(self):
        u = Universe(max_nodes=2, locations=("x",))
        with pytest.raises(UniverseError):
            list(u.computations_of_size(3))
        with pytest.raises(UniverseError):
            list(u.computations_of_size(-1))

    def test_count_pairs_matches(self):
        u = Universe(max_nodes=2, locations=("x",))
        assert u.count_pairs(2) == sum(1 for _ in u.pairs(2))


class TestModelPairs:
    def test_model_pairs_subset(self):
        u = Universe(max_nodes=2, locations=("x",))
        nn_pairs = set()
        for comp, phi in u.model_pairs(NN):
            nn_pairs.add((comp, phi))
            assert NN.contains(comp, phi)
        # LC pairs are a subset of NN pairs (Theorem 22).
        for comp, phi in u.model_pairs(LC):
            assert (comp, phi) in nn_pairs

    def test_pairs_include_empty(self):
        u = Universe(max_nodes=1, locations=("x",))
        comps = [comp for comp, _ in u.pairs()]
        assert any(c.is_empty for c in comps)
