"""Shared test fixtures and hypothesis strategies.

The strategies build random dags, computations, and observer functions of
bounded size.  They are deliberately small (n ≤ 6): most properties under
test are universally quantified, and the interesting structure (the
paper's witnesses) already appears at 4 nodes.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction, candidate_values
from repro.core.ops import N, R, W
from repro.dag.digraph import Dag

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def dags(draw, max_nodes: int = 6) -> Dag:
    """Random dag with node ids in topological order (edges u < v)."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return Dag(n, edges)


@st.composite
def computations(
    draw, max_nodes: int = 6, locations: tuple = ("x",), include_nop: bool = True
) -> Computation:
    """Random computation over the given locations."""
    dag = draw(dags(max_nodes=max_nodes))
    alphabet = [R(loc) for loc in locations] + [W(loc) for loc in locations]
    if include_nop:
        alphabet.append(N)
    ops = draw(
        st.lists(
            st.sampled_from(alphabet),
            min_size=dag.num_nodes,
            max_size=dag.num_nodes,
        )
    )
    return Computation(dag, ops)


@st.composite
def computations_with_observer(
    draw, max_nodes: int = 5, locations: tuple = ("x",), include_nop: bool = True
) -> tuple[Computation, ObserverFunction]:
    """Random (computation, valid observer function) pair.

    The observer is drawn pointwise from the legal candidates of
    Definition 2, so every draw is valid by construction.
    """
    comp = draw(
        computations(
            max_nodes=max_nodes, locations=locations, include_nop=include_nop
        )
    )
    mapping = {}
    for loc in comp.locations:
        row = []
        for u in comp.nodes():
            cands = candidate_values(comp, loc, u)
            row.append(draw(st.sampled_from(cands)))
        mapping[loc] = tuple(row)
    return comp, ObserverFunction(comp, mapping)


# ---------------------------------------------------------------------------
# Plain helpers (importable from tests via conftest)
# ---------------------------------------------------------------------------


def brute_force_sorts(dag: Dag) -> list[tuple[int, ...]]:
    """All topological sorts by filtering permutations (n ≤ 7 only)."""
    from itertools import permutations

    out = []
    for perm in permutations(range(dag.num_nodes)):
        pos = {u: i for i, u in enumerate(perm)}
        if all(pos[u] < pos[v] for (u, v) in dag.edges):
            out.append(perm)
    return out
