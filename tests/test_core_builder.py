"""Tests for the fluent ComputationBuilder."""

import pytest

from repro.core import ComputationBuilder, N, R, W
from repro.errors import InvalidComputationError


class TestBuilding:
    def test_basic_chain(self):
        b = ComputationBuilder()
        a = b.write("x", name="A")
        c = b.read("x", name="C", after=[a])
        comp = b.build()
        assert comp.num_nodes == 2
        assert comp.op(0) == W("x")
        assert comp.op(1) == R("x")
        assert comp.precedes(a.node_id, c.node_id)

    def test_nop(self):
        b = ComputationBuilder()
        b.nop(name="sync")
        comp = b.build()
        assert comp.op(0) == N

    def test_after_multiple(self):
        b = ComputationBuilder()
        x = b.write("x")
        y = b.write("y")
        j = b.read("x", after=[x, y])
        comp = b.build()
        assert comp.precedes(x.node_id, j.node_id)
        assert comp.precedes(y.node_id, j.node_id)

    def test_after_accepts_ints(self):
        b = ComputationBuilder()
        b.write("x")
        b.read("x", after=[0])
        assert b.build().precedes(0, 1)

    def test_empty_build(self):
        assert ComputationBuilder().build().is_empty

    def test_creation_order_is_topological(self):
        b = ComputationBuilder()
        n0 = b.nop()
        n1 = b.nop(after=[n0])
        n2 = b.nop(after=[n1])
        comp = b.build()
        assert comp.dag.topological_order == (0, 1, 2) or list(
            comp.dag.topological_order
        ) == sorted(comp.dag.topological_order)
        assert n2.node_id == 2


class TestNames:
    def test_lookup(self):
        b = ComputationBuilder()
        b.write("x", name="A")
        assert b["A"].node_id == 0
        assert b.name_of(0) == "A"
        assert b.names() == {"A": 0}

    def test_duplicate_rejected(self):
        b = ComputationBuilder()
        b.write("x", name="A")
        with pytest.raises(InvalidComputationError):
            b.write("x", name="A")

    def test_unnamed(self):
        b = ComputationBuilder()
        b.write("x")
        assert b.name_of(0) is None

    def test_handle_repr(self):
        b = ComputationBuilder()
        h = b.write("x", name="A")
        assert "A" in repr(h)


class TestEdges:
    def test_forward_only(self):
        b = ComputationBuilder()
        b.nop()
        b.nop()
        with pytest.raises(InvalidComputationError):
            b.add_edge(1, 0)

    def test_self_edge_rejected(self):
        b = ComputationBuilder()
        b.nop()
        with pytest.raises(InvalidComputationError):
            b.add_edge(0, 0)

    def test_unknown_node(self):
        b = ComputationBuilder()
        b.nop()
        with pytest.raises(InvalidComputationError):
            b.add_edge(0, 5)

    def test_num_nodes(self):
        b = ComputationBuilder()
        assert b.num_nodes == 0
        b.nop()
        assert b.num_nodes == 1
