"""Tests for the processor-centric bridge and the litmus suite."""

import pytest

from repro.core import R, W
from repro.lang import (
    LITMUS_TESTS,
    LitmusTest,
    from_processor_streams,
    litmus_outcome_allowed,
)


class TestFromStreams:
    def test_program_order_chains(self):
        comp, ids = from_processor_streams([[W("x"), R("x")], [R("x")]])
        assert comp.num_nodes == 3
        assert comp.precedes(ids[0][0], ids[0][1])
        a, b = ids[0][0], ids[1][0]
        assert not comp.precedes(a, b) and not comp.precedes(b, a)

    def test_sync_edges(self):
        comp, ids = from_processor_streams(
            [[W("x")], [R("x")]], sync_edges=[((0, 0), (1, 0))]
        )
        assert comp.precedes(ids[0][0], ids[1][0])

    def test_empty_streams(self):
        comp, ids = from_processor_streams([[], []])
        assert comp.is_empty
        assert ids == [[], []]

    def test_node_table(self):
        comp, ids = from_processor_streams([[W("x"), W("y")], [R("x")]])
        assert ids == [[0, 1], [2]]
        assert comp.op(2) == R("x")


class TestLitmusStructure:
    @pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
    def test_builds(self, test):
        comp, partial = test.build()
        assert comp.num_nodes >= 3
        assert partial.num_constraints() >= 2

    def test_outcomes_constrain_reads_only(self):
        for test in LITMUS_TESTS:
            comp, ids = from_processor_streams(test.streams)
            for (p, i) in test.outcome:
                assert comp.op(ids[p][i]).is_read

    def test_names_unique(self):
        names = [t.name for t in LITMUS_TESTS]
        assert len(set(names)) == len(names)


# The textbook table: which weak outcomes each model allows.
EXPECTED = {
    # name: (SC, LC, NN, NW, WN, WW)
    "SB": (False, True, True, True, True, True),
    "MP": (False, True, True, True, True, True),
    "CoRR": (False, False, False, True, True, True),
    "IRIW": (False, True, True, True, True, True),
    "LB": (False, True, True, True, True, True),
    "WRC": (False, True, True, True, True, True),
    "SB+sync": (False, False, False, False, True, True),
}

MODELS = ("SC", "LC", "NN", "NW", "WN", "WW")


class TestLitmusTable:
    @pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
    def test_expected_row(self, test):
        expected = EXPECTED[test.name]
        got = tuple(litmus_outcome_allowed(test, m) for m in MODELS)
        assert got == expected, f"{test.name}: {dict(zip(MODELS, got))}"

    def test_sc_forbids_all_weak_outcomes(self):
        for test in LITMUS_TESTS:
            assert not litmus_outcome_allowed(test, "SC"), test.name

    def test_corr_separates_coherent_from_incoherent(self):
        corr = next(t for t in LITMUS_TESTS if t.name == "CoRR")
        assert not litmus_outcome_allowed(corr, "LC")
        assert not litmus_outcome_allowed(corr, "NN")
        assert litmus_outcome_allowed(corr, "WW")

    def test_custom_litmus(self):
        # A trivially satisfiable outcome: the read sees the only write
        # that precedes it.
        t = LitmusTest(
            name="custom",
            description="read after write, same processor",
            streams=((W("x"), R("x")),),
            outcome={(0, 1): (0, 0)},
        )
        for m in MODELS:
            assert litmus_outcome_allowed(t, m), m
