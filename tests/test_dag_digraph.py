"""Unit tests for the Dag class: construction, reachability, derived graphs."""

import pytest
from hypothesis import given, settings

from repro.dag import Dag, bit_indices, bits
from repro.errors import CycleError, InvalidComputationError
from tests.conftest import dags


class TestConstruction:
    def test_empty(self):
        d = Dag(0)
        assert d.num_nodes == 0
        assert d.num_edges == 0
        assert list(d.nodes()) == []

    def test_basic(self):
        d = Dag(3, [(0, 1), (1, 2)])
        assert d.num_nodes == 3
        assert d.num_edges == 2
        assert d.edges == {(0, 1), (1, 2)}

    def test_duplicate_edges_collapse(self):
        d = Dag(2, [(0, 1), (0, 1)])
        assert d.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            Dag(2, [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            Dag(3, [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            Dag(2, [(0, 1), (1, 0)])

    def test_out_of_range_edge(self):
        with pytest.raises(InvalidComputationError):
            Dag(2, [(0, 2)])

    def test_negative_nodes(self):
        with pytest.raises(InvalidComputationError):
            Dag(-1)


class TestBitsHelpers:
    def test_roundtrip(self):
        assert list(bit_indices(bits([0, 3, 5]))) == [0, 3, 5]

    def test_empty(self):
        assert bits([]) == 0
        assert list(bit_indices(0)) == []


class TestAdjacency:
    def setup_method(self):
        # diamond 0 -> {1, 2} -> 3
        self.d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_successors(self):
        assert sorted(self.d.successors(0)) == [1, 2]
        assert list(self.d.successors(3)) == []

    def test_predecessors(self):
        assert sorted(self.d.predecessors(3)) == [1, 2]
        assert list(self.d.predecessors(0)) == []

    def test_degrees(self):
        assert self.d.in_degree(0) == 0
        assert self.d.out_degree(0) == 2
        assert self.d.in_degree(3) == 2

    def test_sources_sinks(self):
        assert self.d.sources() == [0]
        assert self.d.sinks() == [3]


class TestReachability:
    def setup_method(self):
        self.d = Dag(5, [(0, 1), (0, 2), (1, 3), (2, 3)])  # node 4 isolated

    def test_precedes_transitive(self):
        assert self.d.precedes(0, 3)
        assert self.d.precedes(0, 1)
        assert not self.d.precedes(3, 0)
        assert not self.d.precedes(1, 2)

    def test_precedes_strict(self):
        assert not self.d.precedes(0, 0)
        assert self.d.precedes_eq(0, 0)

    def test_isolated_node(self):
        for u in range(4):
            assert not self.d.comparable(4, u) or u == 4

    def test_descendants_ancestors(self):
        assert sorted(self.d.descendants(0)) == [1, 2, 3]
        assert sorted(self.d.ancestors(3)) == [0, 1, 2]

    def test_between(self):
        assert sorted(bit_indices(self.d.between_mask(0, 3))) == [1, 2]
        assert self.d.between_mask(1, 2) == 0

    def test_comparable(self):
        assert self.d.comparable(0, 3)
        assert self.d.comparable(2, 2)
        assert not self.d.comparable(1, 2)


@given(dags(max_nodes=6))
@settings(max_examples=60)
def test_closure_matches_floyd_warshall(d):
    """Bitset closure agrees with a reference O(n^3) computation."""
    n = d.num_nodes
    reach = [[False] * n for _ in range(n)]
    for (u, v) in d.edges:
        reach[u][v] = True
    for k in range(n):
        for i in range(n):
            if reach[i][k]:
                for j in range(n):
                    if reach[k][j]:
                        reach[i][j] = True
    for u in range(n):
        for v in range(n):
            assert d.precedes(u, v) == reach[u][v]


@given(dags(max_nodes=6))
@settings(max_examples=40)
def test_topological_order_is_valid(d):
    order = d.topological_order
    pos = {u: i for i, u in enumerate(order)}
    assert sorted(order) == list(range(d.num_nodes))
    for (u, v) in d.edges:
        assert pos[u] < pos[v]


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        d = Dag(4, [(0, 1), (1, 2), (2, 3)])
        sub, old = d.induced_subgraph([0, 2, 3])
        assert old == [0, 2, 3]
        assert sub.num_nodes == 3
        assert sub.edges == {(1, 2)}  # only 2->3 survives, renumbered

    def test_induced_subgraph_duplicates(self):
        d = Dag(3, [(0, 1)])
        with pytest.raises(InvalidComputationError):
            d.induced_subgraph([0, 0])

    def test_with_edges_removed(self):
        d = Dag(3, [(0, 1), (1, 2)])
        r = d.with_edges_removed([(0, 1)])
        assert r.edges == {(1, 2)}

    def test_add_final_node(self):
        d = Dag(2, [(0, 1)])
        a = d.add_final_node()
        assert a.num_nodes == 3
        assert (0, 2) in a.edges and (1, 2) in a.edges
        assert a.precedes(0, 2)

    def test_add_final_node_empty(self):
        a = Dag(0).add_final_node()
        assert a.num_nodes == 1
        assert a.num_edges == 0

    def test_transitive_reduction(self):
        d = Dag(3, [(0, 1), (1, 2), (0, 2)])
        assert d.transitive_reduction_edges() == {(0, 1), (1, 2)}

    def test_transitive_reduction_keeps_needed(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert d.transitive_reduction_edges() == d.edges

    def test_is_prefix_node_set(self):
        d = Dag(3, [(0, 1), (1, 2)])
        assert d.is_prefix_node_set(0b001)
        assert d.is_prefix_node_set(0b011)
        assert not d.is_prefix_node_set(0b010)
        assert not d.is_prefix_node_set(0b100)
        assert d.is_prefix_node_set(0)


class TestEqualityHashing:
    def test_equal(self):
        assert Dag(2, [(0, 1)]) == Dag(2, [(0, 1)])
        assert hash(Dag(2, [(0, 1)])) == hash(Dag(2, [(0, 1)]))

    def test_unequal_edges(self):
        assert Dag(2, [(0, 1)]) != Dag(2)

    def test_unequal_sizes(self):
        assert Dag(2) != Dag(3)

    def test_not_equal_other_type(self):
        assert Dag(1) != "dag"
