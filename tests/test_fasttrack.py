"""FastTrack-on-dags: detector agreement and chain-decomposition laws.

The differential property anchoring rule ``RACE002``: the epoch/
vector-clock detector reports the same racy-location set as the exact
closure sweep and SP-bags — on every series-parallel computation in
the exhaustive ≤4-node universes, on hundreds of random SP dags, on
random *general* dags (where SP-bags does not even apply), and on every
bundled program — and every pair it reports is a genuine race.  On
recorded executions the sweep runs in execution order, where the
verdict must be order-independent; on fault-injected traces the
sanitizer's violating locations must be racy locations FastTrack sees.
"""

import itertools
import random

from repro.analysis import (
    chain_decomposition,
    fasttrack_races,
    fasttrack_trace_races,
)
from repro.core import Computation, N, R, W
from repro.dag import Dag
from repro.dag.sp import all_sp_trees, random_sp, sp_to_dag
from repro.lang import (
    deadlock_computation,
    fib_computation,
    iriw_computation,
    locked_counter_computation,
    matmul_computation,
    racy_counter_computation,
    scan_computation,
    stencil_computation,
    store_buffer_computation,
    tree_sum_computation,
)
from repro.runtime import (
    BackerMemory,
    execute,
    work_stealing_schedule,
)
from repro.verify import (
    TraceSanitizer,
    find_races,
    spbags_races,
    trace_admits_lc,
)

OPS = (R("x"), W("x"), R("y"), W("y"), N)

ALL_PROGRAMS = (
    lambda: fib_computation(6),
    lambda: matmul_computation(2),
    lambda: scan_computation(8),
    lambda: stencil_computation(),
    lambda: tree_sum_computation(8),
    lambda: racy_counter_computation(),
    lambda: locked_counter_computation(),
    lambda: deadlock_computation(),
    lambda: store_buffer_computation(),
    lambda: iriw_computation(),
)


def assert_agrees(comp: Computation) -> None:
    exact = {(repr(r.loc), r.u, r.v, r.kind) for r in find_races(comp)}
    reported = {
        (repr(r.loc), r.u, r.v, r.kind) for r in fasttrack_races(comp)
    }
    assert reported <= exact, "FastTrack reported a non-race"
    assert {t[0] for t in reported} == {t[0] for t in exact}, (
        "racy-location sets differ"
    )


def _random_general_dag(rng: random.Random, n: int) -> Dag:
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.25
    ]
    return Dag(n, edges)


class TestChainDecomposition:
    def test_chains_are_hb_paths(self):
        """Within a chain, clock order must coincide with dag precedence."""
        for factory in ALL_PROGRAMS:
            comp, _ = factory()
            chain_of, clock_of = chain_decomposition(comp)
            by_chain: dict[int, list[int]] = {}
            for u in comp.nodes():
                by_chain.setdefault(chain_of[u], []).append(u)
            for members in by_chain.values():
                members.sort(key=lambda u: clock_of[u])
                assert [clock_of[u] for u in members] == list(
                    range(1, len(members) + 1)
                )
                for a, b in zip(members, members[1:]):
                    assert comp.dag.precedes(a, b)

    def test_chain_count_bounded_by_width(self):
        """No more chains than nodes; a path collapses to one chain."""
        path = Dag(5, [(i, i + 1) for i in range(4)])
        comp = Computation(path, (W("x"), R("x"), N, R("x"), W("x")))
        chain_of, _ = chain_decomposition(comp)
        assert set(chain_of) == {0}


class TestAgreement:
    def test_exhaustive_sp_universes(self):
        """Every SP shape × op labelling with ≤ 4 nodes (26k cases)."""
        checked = 0
        for n in range(1, 5):
            for tree in all_sp_trees(n):
                dag, _ = sp_to_dag(tree)
                for ops in itertools.product(OPS, repeat=n):
                    assert_agrees(Computation(dag, ops))
                    checked += 1
        assert checked >= 26000

    def test_random_sp_dags(self):
        """≥200 random SP dags, up to 40 nodes, three locations."""
        alphabet = OPS + (R("z"), W("z"))
        for seed in range(200):
            rng = random.Random(seed)
            n = rng.randint(2, 40)
            tree = random_sp(n, rng_seed=seed)
            dag, _ = sp_to_dag(tree)
            ops = tuple(rng.choice(alphabet) for _ in range(n))
            assert_agrees(Computation(dag, ops))

    def test_random_general_dags(self):
        """Non-SP dags — beyond what SP-bags can analyze at all."""
        alphabet = OPS + (R("z"), W("z"))
        for seed in range(100):
            rng = random.Random(1000 + seed)
            n = rng.randint(2, 30)
            dag = _random_general_dag(rng, n)
            ops = tuple(rng.choice(alphabet) for _ in range(n))
            assert_agrees(Computation(dag, ops))

    def test_unfolded_programs(self):
        for factory in ALL_PROGRAMS:
            comp, _ = factory()
            assert_agrees(comp)

    def test_three_detectors_same_locations(self):
        """FastTrack, SP-bags, closure: one racy-location set."""
        for factory in ALL_PROGRAMS:
            comp, info = factory()
            exact = {repr(r.loc) for r in find_races(comp)}
            assert {
                repr(r.loc) for r in fasttrack_races(comp)
            } == exact
            assert {
                repr(r.loc) for r in spbags_races(comp, info.sp)
            } == exact


class TestTraceOrder:
    def _trace(self, comp, drop, seed):
        sched = work_stealing_schedule(comp, 4, rng=seed)
        mem = BackerMemory(
            drop_reconcile_probability=drop,
            drop_flush_probability=drop,
            rng=seed,
        )
        return execute(sched, mem)

    def test_execution_order_is_verdict_independent(self):
        """Any topological order yields the same racy locations."""
        comp, _ = racy_counter_computation(4, 3)
        exact = {repr(r.loc) for r in find_races(comp)}
        for seed in range(10):
            trace = self._trace(comp, 0.0, seed)
            races = fasttrack_trace_races(trace)
            assert {repr(r.loc) for r in races} == exact
            for r in races:
                assert not comp.dag.comparable(r.u, r.v)

    def test_agrees_with_sanitizer_on_fault_battery(self):
        """The 180 fault-injected traces from the sanitizer suite.

        Per trace, both detectors must agree with their ground truths:
        FastTrack's racy-location verdict is invariant under the
        recorded execution order (a race is a dag property — the
        interleaving, faulty memory or not, cannot change it), and the
        keep-going sanitizer's verdict matches both the halting
        sanitizer and the batch LC checker (empty ⇔ consistent, same
        first violation).  On a faithful memory neither flags anything
        race-freedom would forbid: the race-free stencil lints clean
        under FastTrack while the sanitizer stays silent at drop 0.
        """
        workloads = [
            racy_counter_computation(4, 3)[0],
            stencil_computation(6, 3)[0],
        ]
        flagged = 0
        for comp in workloads:
            racy_locs = {repr(r.loc) for r in fasttrack_races(comp)}
            for drop in (0.0, 0.5, 1.0):
                for seed in range(30):
                    trace = self._trace(comp, drop, seed)
                    assert {
                        repr(r.loc)
                        for r in fasttrack_trace_races(trace)
                    } == racy_locs
                    violations = TraceSanitizer.collect_violations(trace)
                    first = TraceSanitizer.check_trace(trace)
                    batch_ok = trace_admits_lc(trace.partial_observer())
                    assert (not violations) == batch_ok
                    if violations:
                        flagged += 1
                        assert first is not None
                        assert violations[0].node == first.node
                        assert violations[0].loc == first.loc
                        assert (
                            violations[0].event_index == first.event_index
                        )
                    else:
                        assert first is None
                    if drop == 0.0:
                        assert not violations
        assert flagged >= 40


class TestReportedPairs:
    def test_first_racing_access_per_location_caught(self):
        """The FastTrack guarantee: when the first race on a location
        happens (the earliest access in processing order that conflicts
        with a concurrent earlier one), *some* race ending at that
        access is reported — races cannot be detected late."""
        comp, _ = racy_counter_computation(3, 2)
        order = comp.dag.topological_order
        pos = {u: i for i, u in enumerate(order)}
        exact = list(find_races(comp))
        reported = fasttrack_races(comp)
        by_loc: dict[str, list] = {}
        for r in exact:
            by_loc.setdefault(repr(r.loc), []).append(r)
        for loc, rs in by_loc.items():
            first_node = min(
                (max((r.u, r.v), key=pos.__getitem__) for r in rs),
                key=pos.__getitem__,
            )
            assert any(
                repr(r.loc) == loc
                and max((r.u, r.v), key=pos.__getitem__) == first_node
                for r in reported
            )

    def test_dedup_and_normalization(self):
        comp, _ = racy_counter_computation(4, 3)
        races = fasttrack_races(comp)
        keys = [(repr(r.loc), r.u, r.v) for r in races]
        assert len(keys) == len(set(keys))
        for r in races:
            assert r.u < r.v
            assert r.kind in ("read-write", "write-write")
