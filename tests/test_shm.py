"""Shared-memory universe: decode parity and segment lifecycle.

Two contracts.  **Parity**: pairs decoded from a packed block are equal
(values *and* canonical order) to regenerated ones, so sharing the
universe can never change a sweep's result.  **Lifecycle**: the
dispatcher alone owns the segment and unlinks it no matter how the
sweep ends — success, worker crash + serial retry, or
``KeyboardInterrupt`` — while a vanished or corrupt segment degrades a
worker to regeneration instead of failing the shard.
"""

from __future__ import annotations

import dataclasses
import glob
import os
from multiprocessing import shared_memory

import pytest

from repro import obs
from repro.models import SC, Universe
from repro.runtime import shm as shm_mod
from repro.runtime.parallel import (
    inclusion_kernel,
    make_shards,
    parallel_inclusion_matrix,
    run_shards,
)
from repro.runtime.shm import ShmSlice, SharedUniverse, share_universe, shm_mode

UNIVERSE = Universe(max_nodes=3, locations=("x",), include_nop=True)

_MAIN_PID = os.getpid()


def _segments() -> set[str]:
    """The visible POSIX shared-memory segment names (Linux)."""
    return set(glob.glob("/dev/shm/psm_*"))


def _attached_specs(shards):
    handle, slices = share_universe(shards)
    return handle, [
        dataclasses.replace(s, shm=sl) for s, sl in zip(shards, slices)
    ]


# ---------------------------------------------------------------------------
# Decode parity
# ---------------------------------------------------------------------------


def test_decoded_pairs_equal_regenerated():
    shards = make_shards(UNIVERSE, jobs=2)
    handle, specs = _attached_specs(shards)
    try:
        for plain, shared in zip(shards, specs):
            regenerated = list(
                plain.universe().pairs(plain.n, (plain.mask_lo, plain.mask_hi))
            )
            decoded = list(shm_mod.shard_pairs(shared))
            assert len(decoded) == len(regenerated)
            for (c_dec, p_dec), (c_ref, p_ref) in zip(decoded, regenerated):
                assert c_dec == c_ref
                assert p_dec == p_ref
                assert hash(p_dec) == hash(p_ref)
    finally:
        handle.close()


def test_decoded_pairs_two_locations():
    universe = Universe(max_nodes=2, locations=("x", "y"), include_nop=False)
    shards = make_shards(universe, jobs=1)
    handle, specs = _attached_specs(shards)
    try:
        for plain, shared in zip(shards, specs):
            regenerated = list(
                plain.universe().pairs(plain.n, (plain.mask_lo, plain.mask_hi))
            )
            assert list(shm_mod.shard_pairs(shared)) == regenerated
    finally:
        handle.close()


def test_sweep_results_identical_with_and_without_shm(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "1")
    with_shm, stats_on = parallel_inclusion_matrix([SC], UNIVERSE, jobs=1)
    assert stats_on.shm_used
    monkeypatch.setenv("REPRO_SHM", "0")
    without, stats_off = parallel_inclusion_matrix([SC], UNIVERSE, jobs=1)
    assert not stats_off.shm_used
    assert with_shm == without


def test_shm_mode_validation(monkeypatch):
    from repro.errors import ConfigError

    for raw, want in (("auto", "auto"), ("on", "1"), ("off", "0"), ("", "auto")):
        monkeypatch.setenv("REPRO_SHM", raw)
        assert shm_mode() == want
    monkeypatch.setenv("REPRO_SHM", "sideways")
    with pytest.raises(ConfigError):
        shm_mode()


def test_share_universe_rejects_mixed_universes():
    a = make_shards(UNIVERSE, jobs=1)
    b = make_shards(Universe(max_nodes=2, locations=("y",)), jobs=1)
    with pytest.raises(ValueError):
        share_universe(a + b)


# ---------------------------------------------------------------------------
# Lifecycle: guaranteed unlink
# ---------------------------------------------------------------------------


def test_unlink_on_success():
    handle, _specs = _attached_specs(make_shards(UNIVERSE, jobs=1))
    name = handle.name
    handle.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    handle.close()  # idempotent


def test_run_shards_leaves_no_segment(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "1")
    before = _segments()
    _, stats = run_shards(
        lambda s: inclusion_kernel(s, ("SC",)),
        make_shards(UNIVERSE, jobs=1),
        jobs=1,
        label="shm-clean",
    )
    assert stats.shm_used
    assert _segments() <= before


def test_unlink_survives_keyboard_interrupt(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "1")
    before = _segments()

    def interrupted_kernel(shard):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_shards(
            interrupted_kernel,
            make_shards(UNIVERSE, jobs=1),
            jobs=1,
            label="shm-interrupt",
        )
    assert _segments() <= before


def test_unlink_survives_worker_crash_retry(monkeypatch, caplog):
    """A BrokenProcessPool retry still ends with the segment unlinked,
    and the retried shards (decoding in the parent, after their worker
    died) produce the same payloads as a serial run."""
    import logging

    monkeypatch.setenv("REPRO_SHM", "1")
    shards = make_shards(UNIVERSE, jobs=2)
    serial_payloads, _ = run_shards(
        _crashy_kernel, shards, jobs=1, label="shm-crash"
    )
    before = _segments()
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        pool_payloads, stats = run_shards(
            _crashy_kernel, shards, jobs=2, label="shm-crash"
        )
    assert stats.retried_shards >= 1
    assert stats.shm_used
    assert pool_payloads == serial_payloads
    assert _segments() <= before


def _crashy_kernel(shard):
    """Dies abruptly in any worker; behaves normally in the parent."""
    if os.getpid() != _MAIN_PID:
        os._exit(17)
    return inclusion_kernel(shard, ("SC",))


# ---------------------------------------------------------------------------
# Degraded modes: fallback to regeneration
# ---------------------------------------------------------------------------


def test_vanished_segment_falls_back_to_regeneration():
    shards = make_shards(UNIVERSE, jobs=1)
    handle, specs = _attached_specs(shards)
    handle.close()  # unlink before any decode: every attach must fail
    spec = specs[0]
    regenerated = list(
        spec.universe().pairs(spec.n, (spec.mask_lo, spec.mask_hi))
    )
    obs.enable()
    try:
        assert list(spec.iter_pairs()) == regenerated
        counters = dict(obs.counters())
    finally:
        obs.disable()
        obs.reset()
    assert counters.get("shm.fallback", 0) >= 1


def test_truncated_segment_is_rejected_eagerly():
    seg = shared_memory.SharedMemory(create=True, size=8)
    try:
        handle = SharedUniverse(seg, rows=0)
        spec = make_shards(UNIVERSE, jobs=1)[0]
        lying = dataclasses.replace(
            spec, shm=ShmSlice(name=seg.name, rows=10**6, start=0, stop=1)
        )
        with pytest.raises(ValueError):
            shm_mod.shard_pairs(lying)
        # And the public path degrades instead of raising.
        assert list(lying.iter_pairs()) == list(
            spec.universe().pairs(spec.n, (spec.mask_lo, spec.mask_hi))
        )
    finally:
        handle.close()


def test_packing_failure_degrades_to_regeneration(monkeypatch):
    """If the universe cannot be packed, the sweep still runs (shm off)."""
    monkeypatch.setenv("REPRO_SHM", "1")
    monkeypatch.setattr(shm_mod, "MAX_ENCODABLE_NODES", -1)
    monkeypatch.setattr(
        "repro.runtime.parallel.share_universe",
        shm_mod.share_universe,
    )
    included, stats = parallel_inclusion_matrix([SC], UNIVERSE, jobs=1)
    assert not stats.shm_used
    assert included[("SC", "SC")]
