"""Tests for lock-augmented computations and the LockRC model."""

import pytest

from repro.core import Computation, ObserverFunction, R, W
from repro.dag import Dag
from repro.errors import InvalidComputationError
from repro.lang import unfold
from repro.locks import LockRC, LockedComputation
from repro.models import LC, SC
from repro.verify import is_race_free


def locked_counter(n_tasks: int = 2) -> LockedComputation:
    """n tasks each doing a locked read-modify-write of one counter."""

    def task(ctx):
        with ctx.lock("L"):
            ctx.read("ctr")
            ctx.write("ctr")

    def main(ctx):
        ctx.write("ctr")
        for _ in range(n_tasks):
            ctx.spawn(task)
        ctx.sync()
        ctx.read("ctr")

    comp, info = unfold(main)
    return LockedComputation.from_unfold(comp, info)


def unlocked_counter(n_tasks: int = 2) -> Computation:
    def task(ctx):
        ctx.read("ctr")
        ctx.write("ctr")

    def main(ctx):
        ctx.write("ctr")
        for _ in range(n_tasks):
            ctx.spawn(task)
        ctx.sync()
        ctx.read("ctr")

    return unfold(main)[0]


class TestLockedComputation:
    def test_structure(self):
        lc = locked_counter(2)
        assert lc.locks == ("L",)
        assert len(lc.sections_of("L")) == 2
        assert lc.section_count() == 2

    def test_invalid_section_order(self):
        comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        with pytest.raises(InvalidComputationError):
            LockedComputation(comp, {"L": [(1, 0)]})  # release before acquire

    def test_invalid_node(self):
        comp = Computation(Dag(1), (W("x"),))
        with pytest.raises(InvalidComputationError):
            LockedComputation(comp, {"L": [(0, 5)]})

    def test_serializations_count(self):
        lc = locked_counter(3)
        assert len(list(lc.serializations())) == 6  # 3! orders

    def test_induced_computations_admissible(self):
        lc = locked_counter(2)
        induced = list(lc.induced_computations())
        assert len(induced) == 2  # both orders acyclic (tasks concurrent)
        for ser, comp in induced:
            assert comp.num_nodes == lc.comp.num_nodes
            assert len(comp.dag.edges) > len(lc.comp.dag.edges)

    def test_nested_sections_same_lock_deadlock_detected(self):
        # Two sections on one lock where one lies inside the other:
        # serializing them either way adds a cycle-producing edge.
        comp = Computation.serial([W("x"), R("x"), R("x"), R("x")])
        lc = LockedComputation(comp, {"L": [(0, 3), (1, 2)]})
        assert not lc.has_admissible_serialization()

    def test_serialization_edges(self):
        lc = locked_counter(2)
        (s0,) = [lc.sections_of("L")[0]]
        ser = {"L": (0, 1)}
        edges = lc.serialization_edges(ser)
        assert edges == [(s0.release, lc.sections_of("L")[1].acquire)]


class TestDRF:
    def test_locked_counter_is_drf(self):
        assert locked_counter(2).is_drf()
        assert locked_counter(3).is_drf()

    def test_unlocked_counter_races(self):
        assert not is_race_free(unlocked_counter(2))

    def test_partially_locked_not_drf(self):
        # One task locks, the other doesn't: still racy.
        def locked_task(ctx):
            with ctx.lock("L"):
                ctx.read("ctr")
                ctx.write("ctr")

        def rogue_task(ctx):
            ctx.write("ctr")

        def main(ctx):
            ctx.write("ctr")
            ctx.spawn(locked_task)
            ctx.spawn(rogue_task)
            ctx.sync()

        comp, info = unfold(main)
        lc = LockedComputation.from_unfold(comp, info)
        assert not lc.is_drf()
        assert list(lc.racy_serializations())

    def test_wrong_lock_not_drf(self):
        # Two tasks lock *different* locks: no mutual exclusion.
        def task(ctx, lock_name):
            with ctx.lock(lock_name):
                ctx.read("ctr")
                ctx.write("ctr")

        def main(ctx):
            ctx.write("ctr")
            ctx.spawn(task, "L1")
            ctx.spawn(task, "L2")
            ctx.sync()

        comp, info = unfold(main)
        lc = LockedComputation.from_unfold(comp, info)
        assert not lc.is_drf()


class TestLockRC:
    def test_serialized_behaviour_accepted(self):
        lc = locked_counter(2)
        # Take any admissible serialization's last-writer observer.
        from repro.core import last_writer_function

        ser, induced = next(lc.induced_computations())
        phi_induced = last_writer_function(
            induced, induced.dag.topological_order
        )
        phi = ObserverFunction(
            lc.comp, {loc: phi_induced.row(loc) for loc in phi_induced.locations}
        )
        assert LockRC.contains(lc, phi)
        assert LockRC.witness_serialization(lc, phi) is not None

    def test_atomicity_violation_rejected(self):
        """Both tasks observing the initial write is a lost update —
        impossible once critical sections serialize."""
        lc = locked_counter(2)
        comp = lc.comp
        init = comp.writers("ctr")[0]
        reads = comp.readers("ctr")
        task_reads = [r for r in reads if r != reads[-1]]
        writes = [w for w in comp.writers("ctr") if w != init]
        # Build Φ: both task reads observe the initial write; task writes
        # self-observe; final read observes the second task's write.
        row = [None] * comp.num_nodes
        for w in comp.writers("ctr"):
            row[w] = w
        for r in task_reads:
            row[r] = init
        row[reads[-1]] = writes[-1]
        # Fill the remaining (no-op) nodes with the initial write where
        # valid, else ⊥ — their values don't affect the conclusion, but
        # LC membership needs a total function; choose observations that
        # keep the *bare* computation LC-consistent so the rejection is
        # attributable to the lock serialization alone.
        for u in comp.nodes():
            if row[u] is None and not comp.precedes(u, init):
                row[u] = init
        phi = ObserverFunction(comp, {"ctr": tuple(row)})
        # Under some serialization-free reading this may or may not be
        # plain-LC; under every *serialization* one task's read follows
        # the other task's write, so LockRC must reject it.
        assert not LockRC.contains(lc, phi)

    def test_drf_guarantee_reads_are_sc(self):
        """DRF theorem: for a properly synchronized locked computation,
        every LockRC observer's reads match an SC execution of the
        witnessing induced computation."""
        lc = locked_counter(2)
        assert lc.is_drf()
        hits = 0
        for ser, induced in lc.induced_computations():
            for phi in LC.observers(induced):
                hits += 1
                # The same rows, viewed on the induced computation, must
                # describe SC-explainable reads: race freedom forces the
                # last-writer at every read, so some SC observer agrees
                # on all reads.
                sc_match = False
                for psi in SC.observers(induced):
                    if all(
                        psi.value(loc, r) == phi.value(loc, r)
                        for loc in induced.locations
                        for r in induced.readers(loc)
                    ):
                        sc_match = True
                        break
                assert sc_match
        assert hits > 0

    def test_base_model_parameter(self):
        from repro.locks import LockReleaseConsistency
        from repro.models import WW

        weak = LockReleaseConsistency(WW)
        assert weak.name == "LockRC[WW]"
        lc = locked_counter(2)
        from repro.core import last_writer_function

        ser, induced = next(lc.induced_computations())
        phi_induced = last_writer_function(induced, induced.dag.topological_order)
        phi = ObserverFunction(
            lc.comp, {loc: phi_induced.row(loc) for loc in phi_induced.locations}
        )
        assert weak.contains(lc, phi)  # LC ⊆ WW

    def test_inadmissible_everything_rejected(self):
        comp = Computation.serial([W("x"), R("x"), R("x"), R("x")])
        locked = LockedComputation(comp, {"L": [(0, 3), (1, 2)]})
        phi = ObserverFunction(comp, {"x": (0, 0, 0, 0)})
        assert not LockRC.contains(locked, phi)


class TestLockedRuntime:
    def test_execute_locked_end_to_end(self):
        from repro.locks import execute_locked
        from repro.runtime import BackerMemory

        locked = locked_counter(3)
        for seed in range(5):
            result = execute_locked(locked, 4, BackerMemory(), rng=seed)
            assert result.lock_consistent()
            # The committed serialization is admissible.
            assert locked.induce(result.serialization) is not None

    def test_atomicity_preserved_at_runtime(self):
        """Locked increments never interleave: each task's read observes
        either the init write or another task's *complete* write — and
        under the committed serialization the reads-from chain respects
        the lock order."""
        from repro.locks import execute_locked
        from repro.runtime import BackerMemory

        locked = locked_counter(2)
        comp = locked.comp
        init = comp.writers("ctr")[0]
        for seed in range(10):
            result = execute_locked(locked, 4, BackerMemory(), rng=seed)
            induced = locked.induce(result.serialization)
            observed = {e.node: e.observed for e in result.trace.reads}
            secs = locked.sections_of("L")
            order = result.serialization["L"]
            # The first section's read sees init; the second sees the
            # first section's write (BACKER reconciles at lock edges).
            first, second = secs[order[0]], secs[order[1]]

            def section_read(sec):
                return next(
                    r for r in comp.readers("ctr")
                    if comp.precedes(sec.acquire, r) and comp.precedes(r, sec.release)
                )

            assert observed[section_read(first)] == init
            first_write = next(
                w for w in comp.writers("ctr")
                if comp.precedes(first.acquire, w) and comp.precedes(w, first.release)
            )
            assert observed[section_read(second)] == first_write
            _ = induced

    def test_deadlocked_structure_raises(self):
        import pytest
        from repro.core import Computation, R, W
        from repro.locks import LockedComputation, execute_locked
        from repro.runtime import BackerMemory

        comp = Computation.serial([W("x"), R("x"), R("x"), R("x")])
        locked = LockedComputation(comp, {"L": [(0, 3), (1, 2)]})
        with pytest.raises(ValueError):
            execute_locked(locked, 2, BackerMemory(), rng=0)

    def test_pick_serialization_deterministic(self):
        from repro.locks import pick_serialization

        locked = locked_counter(3)
        assert pick_serialization(locked, 5) == pick_serialization(locked, 5)

    def test_serializations_vary_with_seed(self):
        from repro.locks import pick_serialization

        locked = locked_counter(3)
        seen = {
            tuple(pick_serialization(locked, s)["L"]) for s in range(20)
        }
        assert len(seen) > 1
