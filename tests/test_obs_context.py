"""Propagated trace context: ids, sampling, exemplars, rate limiting.

:mod:`repro.obs.context` is the correlation-id substrate under the
serve front-end and the sharded engine; these tests pin the wire
format (W3C ``traceparent``), the head-sampling decision, the ambient
ContextVar scoping, span annotation, histogram exemplars, the
warning rate limiter, and the Prometheus scrape-hook registry.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import WarningLimiter, context
from repro.obs.context import TraceContext, mint, parse_traceparent
from repro.obs.core import Histogram
from repro.obs.metrics import (
    add_scrape_hook,
    clear_scrape_hooks,
    render_prometheus,
    run_scrape_hooks,
)

TP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    context.set_current(None)
    clear_scrape_hooks()
    yield
    obs.disable()
    obs.reset()
    context.set_current(None)
    clear_scrape_hooks()


# ---------------------------------------------------------------------------
# traceparent wire format
# ---------------------------------------------------------------------------


class TestParseTraceparent:
    def test_valid_header_roundtrips(self):
        ctx = parse_traceparent(TP)
        assert ctx is not None
        assert ctx.trace_id == "0af7651916cd43dd8448eb211c80319c"
        assert ctx.span_id == "b7ad6b7169203331"
        assert ctx.sampled is True
        assert ctx.to_traceparent() == TP

    def test_unsampled_flag_honored(self):
        ctx = parse_traceparent(TP[:-2] + "00")
        assert ctx is not None
        assert ctx.sampled is False

    def test_case_and_whitespace_normalized(self):
        ctx = parse_traceparent("  " + TP.upper() + "  ")
        assert ctx is not None
        assert ctx.trace_id == "0af7651916cd43dd8448eb211c80319c"

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "not-a-traceparent",
            "00-" + "0" * 32 + "-b7ad6b7169203331-01",  # zero trace id
            "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-short-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
        ],
    )
    def test_malformed_headers_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_tuple_roundtrip(self):
        ctx = parse_traceparent(TP).child()
        assert TraceContext.from_tuple(ctx.as_tuple()) == ctx
        # The 3-field legacy form gets an empty parent.
        legacy = TraceContext.from_tuple(("a" * 32, "b" * 16, True))
        assert legacy.parent_span_id == ""


class TestMint:
    def test_inbound_header_wins(self):
        ctx = mint(TP, sample_rate=0.0)
        assert ctx.trace_id == "0af7651916cd43dd8448eb211c80319c"
        assert ctx.sampled is True  # upstream decision, not ours

    def test_generated_ids_are_fresh(self):
        a, b = mint(None), mint(None)
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32
        assert a.span_id == ""  # generated root has no caller span

    def test_head_sampling_rates(self):
        assert mint(None, sample_rate=1.0).sampled is True
        assert mint(None, sample_rate=0.0).sampled is False
        assert mint(None, sample_rate=0.5, _rand=lambda: 0.4).sampled is True
        assert mint(None, sample_rate=0.5, _rand=lambda: 0.6).sampled is False

    def test_child_links_to_parent(self):
        root = parse_traceparent(TP)
        child = root.child()
        grandchild = child.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert grandchild.parent_span_id == child.span_id
        assert child.span_id != grandchild.span_id

    def test_unsampled_propagates_to_children(self):
        root = mint(None, sample_rate=0.0)
        assert root.child().sampled is False


class TestAmbientContext:
    def test_activate_scopes_and_restores(self):
        ctx = mint(TP)
        assert context.current() is None
        with context.activate(ctx):
            assert context.current() is ctx
            with context.activate(None):  # deliberate clearing
                assert context.current() is None
            assert context.current() is ctx
        assert context.current() is None

    def test_spans_join_the_request_tree(self):
        obs.enable()
        with context.activate(mint(TP)):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        (outer,) = obs.get().roots
        (inner,) = outer.children
        assert outer.attrs["trace_id"] == "0af7651916cd43dd8448eb211c80319c"
        assert outer.attrs["parent_span_id"] == "b7ad6b7169203331"
        assert inner.attrs["parent_span_id"] == outer.attrs["span_id"]

    def test_unsampled_context_annotates_nothing(self):
        obs.enable()
        with context.activate(mint(None, sample_rate=0.0)):
            with obs.span("quiet"):
                pass
        (sp,) = obs.get().roots
        assert "trace_id" not in sp.attrs


# ---------------------------------------------------------------------------
# Histogram exemplars
# ---------------------------------------------------------------------------


class TestExemplars:
    def test_observe_records_exemplar_under_sampled_context(self):
        obs.enable()
        with context.activate(mint(TP)):
            obs.observe("latency", 0.25)
        hist = obs.get().histograms["latency"]
        assert hist.exemplars
        (tid, val) = next(iter(hist.exemplars.values()))
        assert tid == "0af7651916cd43dd8448eb211c80319c"
        assert val == 0.25

    def test_no_exemplar_without_context_or_sampling(self):
        obs.enable()
        obs.observe("latency", 0.25)
        with context.activate(mint(None, sample_rate=0.0)):
            obs.observe("latency", 0.5)
        assert obs.get().histograms["latency"].exemplars == {}

    def test_exemplars_survive_merge_and_round_trip(self):
        a, b = Histogram(), Histogram()
        a.record(0.1)
        a.note_exemplar(0.1, "a" * 32)
        b.record(10.0)
        b.note_exemplar(10.0, "b" * 32)
        a.merge(b)
        assert len(a.exemplars) == 2
        assert Histogram.from_dict(a.to_dict()).exemplars == a.exemplars

    def test_prometheus_rendering_is_gated(self):
        obs.enable()
        with context.activate(mint(TP)):
            obs.observe("latency_seconds", 0.25)
        plain = render_prometheus(obs.get())
        assert "trace_id" not in plain  # 0.0.4 parsers stay happy
        rich = render_prometheus(obs.get(), exemplars=True)
        assert '# {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.25' in rich


# ---------------------------------------------------------------------------
# Warning rate limiting
# ---------------------------------------------------------------------------


class TestWarningLimiter:
    def test_burst_then_suppression_then_refill(self):
        now = [0.0]
        lim = WarningLimiter(rate=1.0, burst=3, clock=lambda: now[0])
        assert [lim.admit("stall")[0] for _ in range(3)] == [True] * 3
        for _ in range(5):
            assert lim.admit("stall") == (False, 0)
        now[0] = 1.0  # one token refilled
        assert lim.admit("stall") == (True, 5)
        # The suppressed count was consumed, not double-reported.
        now[0] = 2.0
        assert lim.admit("stall") == (True, 0)

    def test_messages_have_independent_buckets(self):
        lim = WarningLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        assert lim.admit("a")[0] is True
        assert lim.admit("a")[0] is False
        assert lim.admit("b")[0] is True

    def test_repeated_warnings_rate_limited_through_collector(self, caplog):
        import logging

        o = obs.Observability()
        o.enable()
        now = [0.0]
        o.warn_limiter = WarningLimiter(rate=1.0, burst=2, clock=lambda: now[0])
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for _ in range(10):
                o.warning("worker wedged", shard=3)
            now[0] = 1.0
            o.warning("worker wedged", shard=3)
        assert len(o.events) == 3
        assert o.events[-1]["attrs"]["suppressed_count"] == 8
        assert caplog.text.count("worker wedged") == 3

    def test_warning_carries_ambient_trace_id(self):
        o = obs.Observability()
        o.enable()
        with context.activate(mint(TP)):
            o.warning("pool broke")
        (ev,) = o.events
        assert ev["attrs"]["trace_id"] == "0af7651916cd43dd8448eb211c80319c"


# ---------------------------------------------------------------------------
# Scrape hooks (gauges republished per scrape)
# ---------------------------------------------------------------------------


class TestScrapeHooks:
    def test_hooks_run_and_clear(self):
        calls = []
        add_scrape_hook(lambda: calls.append(1))
        run_scrape_hooks()
        run_scrape_hooks()
        assert calls == [1, 1]
        clear_scrape_hooks()
        run_scrape_hooks()
        assert calls == [1, 1]

    def test_hook_exceptions_do_not_break_the_scrape(self):
        calls = []

        def boom():
            raise RuntimeError("hook bug")

        add_scrape_hook(boom)
        add_scrape_hook(lambda: calls.append(1))
        run_scrape_hooks()  # must not raise
        assert calls == [1]

    def test_cache_gauges_refresh_per_scrape(self):
        # The regression this pins: publish_cache_gauges() used to run
        # once at startup, so /metrics reported frozen hit counters for
        # the rest of the process lifetime.
        from repro.runtime import parallel

        obs.enable()
        add_scrape_hook(parallel.publish_cache_gauges)
        run_scrape_hooks()
        assert "cache.entries" in obs.get().gauges
        obs.get().gauges.clear()  # a stale scrape snapshot
        run_scrape_hooks()
        assert "cache.entries" in obs.get().gauges


def test_journal_open_record_stamps_ambient_trace(tmp_path):
    import json

    from repro.obs.journal import Journal

    path = str(tmp_path / "j.jsonl")
    with context.activate(mint(TP)):
        Journal(path).close()
    records = [json.loads(ln) for ln in open(path, encoding="utf-8")]
    opened = next(r for r in records if r["kind"] == "journal_open")
    assert opened["trace_id"] == "0af7651916cd43dd8448eb211c80319c"
