"""Tests for the streaming LC verifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import N, R, W
from repro.lang import racy_counter_computation, store_buffer_computation
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    work_stealing_schedule,
)
from repro.verify import trace_admits_lc
from repro.verify.streaming import StreamingLCVerifier
from tests.conftest import computations


class TestEventInterface:
    def test_empty_consistent(self):
        v = StreamingLCVerifier()
        assert v.consistent_so_far

    def test_simple_chain_ok(self):
        v = StreamingLCVerifier()
        assert v.add_node(W("x"), []) is None          # node 0
        assert v.add_node(R("x"), [0], observed=0) is None
        assert v.consistent_so_far

    def test_stale_bottom_detected(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        violation = v.add_node(R("x"), [0], observed=None)
        assert violation is not None
        assert violation.loc == "x"
        assert "⊥" in violation.reason

    def test_stale_read_detected(self):
        # W0 -> W1 -> R(observes W0): serialization cycle.
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        v.add_node(W("x"), [0])
        violation = v.add_node(R("x"), [1], observed=0)
        assert violation is not None
        assert "cycle" in violation.reason

    def test_cross_observation_detected(self):
        # Figure 4's shape, streamed.
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])            # 0
        v.add_node(W("x"), [])            # 1
        assert v.add_node(R("x"), [0], observed=1) is None  # 2: sees other
        violation = v.add_node(R("x"), [1], observed=0)     # 3: cycle
        assert violation is not None

    def test_violation_latches(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        first = v.add_node(R("x"), [0], observed=None)
        later = v.add_node(N, [])
        assert later is first

    def test_nops_unconstrained(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        v.add_node(N, [0])
        assert v.add_node(R("x"), [1], observed=0) is None

    def test_independent_locations(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        v.add_node(W("y"), [0])
        assert v.add_node(R("y"), [1], observed=1) is None
        # ⊥ read of x after the x-write: violation at x, not y.
        violation = v.add_node(R("x"), [2], observed=None)
        assert violation is not None and violation.loc == "x"


class TestTraceAgreement:
    @given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_on_faithful_backer(self, comp, procs, seed):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, BackerMemory())
        assert StreamingLCVerifier.check_trace(trace) is None
        assert trace_admits_lc(trace.partial_observer())

    @given(computations(max_nodes=8), st.integers(2, 4), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_on_faulty_backer(self, comp, procs, seed):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        mem = BackerMemory(
            drop_reconcile_probability=0.7,
            drop_flush_probability=0.7,
            rng=seed,
        )
        trace = execute(sched, mem)
        streaming = StreamingLCVerifier.check_trace(trace)
        batch = trace_admits_lc(trace.partial_observer())
        assert (streaming is None) == batch

    def test_localizes_violating_node(self):
        """The reported node really is a witness: the trace truncated
        just before it is still LC."""
        comp = racy_counter_computation(4, 3)[0]
        found = False
        for seed in range(40):
            sched = work_stealing_schedule(comp, 4, rng=seed)
            mem = BackerMemory(
                drop_reconcile_probability=0.9,
                drop_flush_probability=0.9,
                rng=seed,
            )
            trace = execute(sched, mem)
            violation = StreamingLCVerifier.check_trace(trace)
            if violation is None:
                continue
            found = True
            # Rebuild the stream up to (but excluding) the violator.
            order = trace.schedule.execution_order()
            cut = order.index(violation.node)
            observed = {e.node: e.observed for e in trace.reads}
            new_id = {u: i for i, u in enumerate(order)}
            v = StreamingLCVerifier()
            for u in order[:cut]:
                obs = observed.get(u)
                assert (
                    v.add_node(
                        comp.op(u),
                        [new_id[p] for p in comp.dag.predecessors(u)],
                        None if obs is None else new_id[obs],
                    )
                    is None
                )
        assert found

    def test_serial_memory_never_flagged(self):
        comp = store_buffer_computation()[0]
        for seed in range(5):
            sched = work_stealing_schedule(comp, 2, rng=seed)
            trace = execute(sched, SerialMemory())
            assert StreamingLCVerifier.check_trace(trace) is None


class TestWitnessIds:
    """Witnesses handed to clients must name trace node ids, never the
    verifier's internal feed-order ids (regression: the reason string
    used to embed feed-order block ids even though ``node`` was
    translated)."""

    def _violating_trace(self):
        # Execution order ≠ node ids: node 2 runs first, then 0, then 1.
        # Node 1 reads x observing node 2's write while node 0's write
        # sits between them in the dag — a serialization cycle between
        # the blocks of writes 0 and 2.
        from repro.core import Computation
        from repro.dag import Dag
        from repro.runtime import ExecutionTrace, ReadEvent
        from repro.runtime.scheduler import Schedule

        comp = Computation(
            Dag(3, [(2, 0), (0, 1)]), (W("x"), R("x"), W("x"))
        )
        sched = Schedule(comp, (0, 0, 0), (1, 2, 0), 1)
        assert sched.execution_order() == [2, 0, 1]
        return ExecutionTrace(
            comp, sched, "hand-built", [ReadEvent(1, "x", 2)]
        )

    def test_cycle_witness_blocks_are_trace_node_ids(self):
        violation = StreamingLCVerifier.check_trace(self._violating_trace())
        assert violation is not None
        assert violation.node == 1  # the read, in trace ids
        # Structured block ids are writer *trace* ids (feed-order ids
        # would have been 1 and 0 here).
        assert violation.blocks == (0, 2)
        assert "write 0" in violation.reason
        assert "write 2" in violation.reason
        assert "1" not in violation.reason.replace(
            "write 0", ""
        ).replace("write 2", "")

    def test_bottom_witness_carries_none_block(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        violation = v.add_node(R("x"), [0], observed=None)
        assert violation is not None
        assert violation.blocks == (0, None)
        translated = violation.translated(9, {0: 7}.__getitem__)
        assert translated.node == 9
        assert translated.blocks == (7, None)
        assert "write 7" in translated.reason
        assert "⊥" in translated.reason

    def test_translated_rerenders_reason(self):
        v = StreamingLCVerifier()
        v.add_node(W("x"), [])
        v.add_node(W("x"), [0])
        violation = v.add_node(R("x"), [1], observed=0)
        assert violation is not None
        assert violation.blocks == (1, 0)
        moved = violation.translated(30, [10, 20, 30])
        assert moved.blocks == (20, 10)
        assert "write 20" in moved.reason and "write 10" in moved.reason
