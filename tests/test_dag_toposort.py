"""Tests for topological-sort enumeration, counting, and sampling."""

import random

from hypothesis import given, settings

from repro.dag import (
    Dag,
    all_topological_sorts,
    chain_dag,
    count_topological_sorts,
    empty_dag,
    is_topological_sort,
    random_topological_sort,
)
from tests.conftest import brute_force_sorts, dags


class TestIsTopologicalSort:
    def test_valid(self):
        d = Dag(3, [(0, 1), (1, 2)])
        assert is_topological_sort(d, (0, 1, 2))

    def test_violates_edge(self):
        d = Dag(3, [(0, 1), (1, 2)])
        assert not is_topological_sort(d, (1, 0, 2))

    def test_not_a_permutation(self):
        d = Dag(3, [(0, 1)])
        assert not is_topological_sort(d, (0, 1))
        assert not is_topological_sort(d, (0, 0, 1))


class TestEnumeration:
    def test_chain_has_one_sort(self):
        assert list(all_topological_sorts(chain_dag(4))) == [(0, 1, 2, 3)]

    def test_empty_dag_has_factorial(self):
        assert len(list(all_topological_sorts(empty_dag(3)))) == 6

    def test_empty_graph(self):
        assert list(all_topological_sorts(Dag(0))) == [()]

    def test_diamond(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        sorts = list(all_topological_sorts(d))
        assert sorted(sorts) == [(0, 1, 2, 3), (0, 2, 1, 3)]

    def test_no_duplicates(self):
        d = Dag(4, [(0, 2)])
        sorts = list(all_topological_sorts(d))
        assert len(sorts) == len(set(sorts))


@given(dags(max_nodes=5))
@settings(max_examples=50)
def test_enumeration_matches_brute_force(d):
    enumerated = sorted(all_topological_sorts(d))
    brute = sorted(brute_force_sorts(d))
    assert enumerated == brute


@given(dags(max_nodes=6))
@settings(max_examples=50)
def test_count_matches_enumeration(d):
    assert count_topological_sorts(d) == len(list(all_topological_sorts(d)))


class TestCounting:
    def test_empty(self):
        assert count_topological_sorts(Dag(0)) == 1

    def test_chain(self):
        assert count_topological_sorts(chain_dag(10)) == 1

    def test_antichain(self):
        import math

        assert count_topological_sorts(empty_dag(6)) == math.factorial(6)

    def test_fork_join(self):
        # 0 -> {1,2,3} -> 4: middle layer permutes freely.
        d = Dag(5, [(0, i) for i in (1, 2, 3)] + [(i, 4) for i in (1, 2, 3)])
        assert count_topological_sorts(d) == 6


class TestRandomSort:
    @given(dags(max_nodes=6))
    @settings(max_examples=50)
    def test_always_valid(self, d):
        order = random_topological_sort(d, random.Random(7))
        assert is_topological_sort(d, order)

    def test_deterministic_given_seed(self):
        d = empty_dag(8)
        a = random_topological_sort(d, random.Random(3))
        b = random_topological_sort(d, random.Random(3))
        assert a == b

    def test_covers_multiple_sorts(self):
        d = empty_dag(4)
        seen = {random_topological_sort(d, random.Random(s)) for s in range(40)}
        assert len(seen) > 3
