"""Tests for model inference and conformance campaigns."""

import pytest

from repro.lang import (
    racy_counter_computation,
    store_buffer_computation,
    tree_sum_computation,
)
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    work_stealing_schedule,
)
from repro.verify.inference import (
    InferenceResult,
    conformance_campaign,
    infer_models,
)


def collect_traces(comp, memory_factory, procs, seeds):
    out = []
    for seed in seeds:
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, memory_factory(seed))
        out.append(trace.partial_observer())
    return out


class TestInference:
    def test_serial_memory_keeps_sc(self):
        comp = racy_counter_computation(3, 2)[0]
        traces = collect_traces(comp, lambda s: SerialMemory(), 4, range(5))
        result = infer_models(traces)
        assert result.consistent["SC"]
        assert result.strongest_consistent() == "SC"

    def test_backer_on_store_buffer_eliminates_sc_keeps_lc(self):
        comp = store_buffer_computation()[0]
        traces = collect_traces(comp, lambda s: BackerMemory(), 2, range(5))
        result = infer_models(traces)
        assert not result.consistent["SC"]
        assert result.consistent["LC"]
        assert result.strongest_consistent() == "LC"
        assert "SC" in result.eliminated_by

    def test_faulty_backer_eliminates_lc(self):
        comp = racy_counter_computation(4, 3)[0]
        traces = collect_traces(
            comp,
            lambda s: BackerMemory(
                drop_reconcile_probability=0.9,
                drop_flush_probability=0.9,
                rng=s,
            ),
            4,
            range(15),
        )
        result = infer_models(traces)
        assert not result.consistent["LC"]
        # Weak models may or may not survive, but WW is very permissive:
        # the verdict ordering must respect the lattice.
        order = ["SC", "LC", "NN", "NW", "WN", "WW"]
        seen_true = False
        for name in order:
            if result.consistent[name]:
                seen_true = True
            else:
                assert not seen_true or name in ("NW", "WN"), (
                    "a weaker model eliminated while a stronger survived"
                )

    def test_elimination_index_recorded(self):
        comp = store_buffer_computation()[0]
        traces = collect_traces(comp, lambda s: BackerMemory(), 2, range(3))
        result = infer_models(traces)
        if not result.consistent["SC"]:
            assert result.eliminated_by["SC"] < result.traces_seen

    def test_empty_batch(self):
        result = infer_models([])
        assert result.traces_seen == 0
        assert result.strongest_consistent() == "SC"

    def test_result_dataclass(self):
        r = InferenceResult()
        assert all(r.consistent.values())


class TestConformance:
    WORKLOADS = [
        tree_sum_computation(8)[0],
        racy_counter_computation(3, 2)[0],
    ]

    def test_faithful_backer_conforms_to_lc(self):
        report = conformance_campaign(
            lambda s: BackerMemory(),
            self.WORKLOADS,
            target="LC",
            procs=(2, 4),
            seeds=range(5),
        )
        assert report.ok
        assert report.runs == len(self.WORKLOADS) * 2 * 5

    def test_faulty_backer_fails_lc(self):
        report = conformance_campaign(
            lambda s: BackerMemory(
                drop_reconcile_probability=0.9,
                drop_flush_probability=0.9,
                rng=s,
            ),
            [racy_counter_computation(4, 3)[0]],
            target="LC",
            procs=(4,),
            seeds=range(10),
        )
        assert not report.ok
        v = report.violations[0]
        # The violation's reproduction parameters actually reproduce it.
        from repro.runtime import work_stealing_schedule
        from repro.verify import trace_admits_lc
        import random

        comp = racy_counter_computation(4, 3)[0]
        sched = work_stealing_schedule(comp, v.procs, rng=random.Random(v.seed))
        mem = BackerMemory(
            drop_reconcile_probability=0.9,
            drop_flush_probability=0.9,
            rng=v.seed,
        )
        trace = execute(sched, mem)
        assert not trace_admits_lc(trace.partial_observer())

    def test_serial_memory_conforms_to_sc(self):
        report = conformance_campaign(
            lambda s: SerialMemory(),
            self.WORKLOADS,
            target="SC",
            procs=(3,),
            seeds=range(4),
        )
        assert report.ok

    def test_backer_fails_sc_conformance(self):
        report = conformance_campaign(
            lambda s: BackerMemory(),
            [store_buffer_computation()[0]],
            target="SC",
            procs=(2,),
            seeds=range(5),
        )
        assert not report.ok  # SB weak outcomes are reachable

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            conformance_campaign(lambda s: SerialMemory(), [], target="XX")
