"""Kernel backend parity: numpy packed-bit kernels vs the python oracle.

The contract of :mod:`repro.kernels` is that the numpy backend is
*sequence-equal* to the pure-python oracle — same values, same order,
same python types — for every dispatch function, so that switching
``REPRO_KERNEL`` can never change a result, only its speed.  These
tests pin that contract on exhaustive small inputs (every ordered dag
up to n = 4), on random dags crossing the 64-bit word boundary
(n = 63/64/65 and beyond), and on the degenerate masks (empty, full)
where word-packing bugs live.  Dispatch-level behaviour — mode
validation, the forced-numpy-without-numpy error, the ``use_kernel``
override — is pinned alongside.
"""

from __future__ import annotations

import random

import pytest

from repro import kernels
from repro.core.ops import R, W
from repro.dag.digraph import Dag, bits
from repro.dag.enumerate import ordered_dags
from repro.errors import ConfigError, ReproError
from repro.kernels import pybits, use_kernel
from repro.models import Universe

numpy_missing = not kernels.numpy_available()
needs_numpy = pytest.mark.skipif(
    numpy_missing, reason="numpy backend not importable"
)

if not numpy_missing:
    from repro.kernels import npbits


def _random_dag(rng: random.Random, n: int, density: float) -> Dag:
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < density
    ]
    return Dag(n, edges)


def _closure_inputs(dag: Dag):
    return (
        dag.num_nodes,
        [dag.successor_mask(u) for u in range(dag.num_nodes)],
        [dag.predecessor_mask(u) for u in range(dag.num_nodes)],
        dag.topological_order,
    )


# ---------------------------------------------------------------------------
# Closure parity
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
def test_closure_parity_exhaustive_small(n):
    """Every ordered dag up to n = 4: numpy closure == oracle closure."""
    for dag in ordered_dags(n):
        args = _closure_inputs(dag)
        assert npbits.closure(*args) == pybits.closure(*args)


@needs_numpy
@pytest.mark.parametrize(
    "n", [1, 5, 17, 63, 64, 65, 100, 130], ids=lambda n: f"n{n}"
)
def test_closure_parity_word_boundaries(n):
    """Random dags at sizes straddling the 64-bit word packing."""
    rng = random.Random(0xC105 + n)
    for density in (0.02, 0.15, 0.5, 0.9):
        dag = _random_dag(rng, n, density)
        args = _closure_inputs(dag)
        py = pybits.closure(*args)
        np_ = npbits.closure(*args)
        assert np_ == py
        # Value transparency: plain python ints, not numpy scalars.
        assert all(type(x) is int for row in np_ for x in row)


@needs_numpy
def test_closure_parity_random_dags():
    """200 random dags across sizes and densities (the property sweep)."""
    rng = random.Random(0xDA6)
    for _ in range(200):
        n = rng.randint(0, 40)
        dag = _random_dag(rng, n, rng.choice((0.05, 0.2, 0.5, 0.8)))
        args = _closure_inputs(dag)
        assert npbits.closure(*args) == pybits.closure(*args)


@needs_numpy
def test_closure_parity_extreme_densities():
    """The empty and the complete dag — all-zero and all-ones rows."""
    for n in (4, 64, 65):
        empty = Dag(n, ())
        full = Dag(n, [(u, v) for u in range(n) for v in range(u + 1, n)])
        for dag in (empty, full):
            args = _closure_inputs(dag)
            assert npbits.closure(*args) == pybits.closure(*args)


# ---------------------------------------------------------------------------
# Race-pair parity
# ---------------------------------------------------------------------------


def _random_loc_masks(rng: random.Random, n: int, locs: int):
    universe = (1 << n) - 1
    masks = []
    for _ in range(locs):
        amask = rng.getrandbits(n) if n else 0
        wmask = amask & rng.getrandbits(n) if n else 0
        if wmask:
            masks.append((amask, wmask))
    return masks or [(universe, universe)]


@needs_numpy
@pytest.mark.parametrize(
    "n", [1, 5, 17, 63, 64, 65, 100], ids=lambda n: f"n{n}"
)
def test_race_pairs_parity(n):
    rng = random.Random(0xACE5 + n)
    for density in (0.1, 0.5):
        dag = _random_dag(rng, n, density)
        desc, anc = pybits.closure(*_closure_inputs(dag))
        loc_masks = _random_loc_masks(rng, n, 3)
        assert npbits.race_pairs(n, desc, anc, loc_masks) == pybits.race_pairs(
            n, desc, anc, loc_masks
        )


@needs_numpy
def test_race_pairs_parity_empty_and_full_masks():
    n = 70
    dag = _random_dag(random.Random(7), n, 0.3)
    desc, anc = pybits.closure(*_closure_inputs(dag))
    universe = (1 << n) - 1
    for loc_masks in (
        [],
        [(universe, universe)],  # everything writes: all write-write
        [(universe, 1)],  # single writer, everyone else reads
        [(bits([0, 64, 69]), bits([64]))],  # straddles the word boundary
    ):
        assert npbits.race_pairs(n, desc, anc, loc_masks) == pybits.race_pairs(
            n, desc, anc, loc_masks
        )


@needs_numpy
def test_find_races_identical_across_backends():
    """End-to-end: the race oracle's output is backend-independent."""
    from repro.core.computation import Computation
    from repro.verify.races import _find_races_impl

    rng = random.Random(21)
    for _ in range(20):
        n = rng.randint(1, 9)
        dag = _random_dag(rng, n, 0.4)
        ops = [rng.choice((R("x"), W("x"), R("y"), W("y"))) for _ in range(n)]
        with use_kernel("python"):
            want = _find_races_impl(Computation(dag, ops))
        with use_kernel("numpy"):
            # A fresh Computation so the closure is recomputed, not reused.
            got = _find_races_impl(Computation(Dag(n, dag.edges), ops))
        assert got == want


# ---------------------------------------------------------------------------
# Inclusion-fold and quotient parity
# ---------------------------------------------------------------------------


@needs_numpy
def test_inclusion_fold_parity():
    rng = random.Random(0xF01D)
    for num_models in (1, 2, 7):
        for rows in (0, 1, 5, 4097):  # 4097 crosses the numpy chunk size
            verdicts = [
                tuple(rng.random() < 0.5 for _ in range(num_models))
                for _ in range(rows)
            ]
            assert npbits.inclusion_fold(
                num_models, iter(verdicts)
            ) == pybits.inclusion_fold(num_models, iter(verdicts))


@needs_numpy
def test_inclusion_fold_matches_direct_product():
    """bad[i] bit j set iff some row has i true and j false."""
    verdicts = [(True, False, True), (True, True, True), (False, True, False)]
    want = pybits.inclusion_fold(3, iter(verdicts))
    for i in range(3):
        for j in range(3):
            expect = any(row[i] and not row[j] for row in verdicts)
            assert bool((want[i] >> j) & 1) == expect
    assert npbits.inclusion_fold(3, iter(verdicts)) == want


@needs_numpy
def test_quotient_is_acyclic_parity():
    rng = random.Random(0xACDC)
    for _ in range(100):
        k = rng.randint(0, 12)
        edges = [
            (rng.randrange(k), rng.randrange(k))
            for _ in range(rng.randint(0, 3 * k))
            if k
        ]
        srcs = [u for u, _ in edges]
        dsts = [v for _, v in edges]
        assert npbits.quotient_is_acyclic(k, srcs, dsts) == (
            pybits.quotient_is_acyclic(k, srcs, dsts)
        )


def test_quotient_oracle_basics():
    assert pybits.quotient_is_acyclic(0, [], [])
    assert pybits.quotient_is_acyclic(3, [0, 1], [1, 2])
    assert not pybits.quotient_is_acyclic(2, [0, 1], [1, 0])
    assert not pybits.quotient_is_acyclic(1, [0], [0])  # self-loop


# ---------------------------------------------------------------------------
# Whole-universe parity (the exhaustive n ≤ 4 sweep of the issue)
# ---------------------------------------------------------------------------


@needs_numpy
def test_inclusion_matrix_backend_independent():
    """The full serial inclusion sweep agrees across forced backends."""
    from repro.models import CC, LC, SC
    from repro.models.relations import inclusion_matrix

    universe = Universe(max_nodes=3, locations=("x",))
    with use_kernel("python"):
        want = inclusion_matrix([SC, LC, CC], universe)
    with use_kernel("numpy"):
        got = inclusion_matrix([SC, LC, CC], universe)
    assert got == want
    assert want[("SC", "LC")]  # SC is strongest; always included upward


# ---------------------------------------------------------------------------
# Dispatch behaviour
# ---------------------------------------------------------------------------


def test_invalid_mode_raises_config_error(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "cuda")
    with pytest.raises(ConfigError):
        kernels.backend_name()
    with pytest.raises(ValueError):  # ConfigError is a ValueError too
        kernels.closure(*_closure_inputs(Dag(2, [(0, 1)])))


def test_blank_mode_means_auto(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "  ")
    assert kernels.backend_name() in ("python", "numpy")


def test_python_mode_forces_oracle(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    assert kernels.backend_name() == "python"
    assert kernels.backend_name(10**6) == "python"


def test_use_kernel_overrides_environment(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "python")
    with use_kernel("auto"):
        assert kernels.backend_name(4) == (
            "python"  # below the size gate either way
        )
    with pytest.raises(ConfigError):
        with use_kernel("fortran"):
            pass  # pragma: no cover - the context must not be entered
    assert kernels.backend_name() == "python"  # restored


def test_numpy_forced_but_missing_is_config_error(monkeypatch):
    """REPRO_KERNEL=numpy on a numpy-less install fails loudly, not with
    an ImportError from some call stack deep inside a sweep."""
    monkeypatch.setattr(kernels, "_NP_CACHE", None)
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    with pytest.raises(ConfigError):
        kernels.backend_name()
    with pytest.raises(ConfigError):
        kernels.closure(*_closure_inputs(Dag(2, [(0, 1)])))
    with pytest.raises(ConfigError):
        kernels.race_pairs(1, [0], [0], [])
    assert isinstance(ConfigError("x"), ReproError)


def test_auto_without_numpy_falls_back(monkeypatch):
    monkeypatch.setattr(kernels, "_NP_CACHE", None)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert not kernels.numpy_available()
    assert kernels.backend_name() == "python"
    assert kernels.kernel_info()["kernel"] == "python"
    assert kernels.kernel_info()["numpy"] is None
    dag = Dag(3, [(0, 1), (1, 2)])
    desc, anc = kernels.closure(*_closure_inputs(dag))
    assert desc == [0b110, 0b100, 0]
    assert anc == [0, 0b001, 0b011]


def test_min_nodes_env_gate(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    monkeypatch.setenv("REPRO_KERNEL_MIN_NODES", "not-a-number")
    if kernels.numpy_available():
        with pytest.raises(ConfigError):
            kernels.backend_name(100)
    monkeypatch.setenv("REPRO_KERNEL_MIN_NODES", "3")
    if kernels.numpy_available():
        assert kernels.backend_name(2) == "python"
        assert kernels.backend_name(3) == "numpy"


@needs_numpy
def test_auto_closure_gates_on_size_and_density(monkeypatch):
    """auto sends only large *and* dense dags to numpy (empirical gate).

    The shipped thresholds sit at n=1024 (too slow to exercise here), so
    the gates are lowered to keep the *logic* under test: both the size
    and the density bound must pass before numpy is picked.
    """
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    monkeypatch.setenv("REPRO_KERNEL_MIN_NODES", "64")
    monkeypatch.setattr(kernels, "NUMPY_MIN_AVG_DEGREE", 16)
    from repro import obs

    def backend_used(dag: Dag) -> str:
        obs.enable()
        try:
            kernels.closure(*_closure_inputs(dag))
            counters = dict(obs.counters())
        finally:
            obs.disable()
            obs.reset()
        if counters.get("kernel.closure.numpy"):
            return "numpy"
        assert counters.get("kernel.closure.python")
        return "python"

    small = Dag(8, [(u, u + 1) for u in range(7)])
    assert backend_used(small) == "python"
    n = 80
    sparse = Dag(n, [(u, u + 1) for u in range(n - 1)])
    assert backend_used(sparse) == "python"
    dense = Dag(n, [(u, v) for u in range(n) for v in range(u + 1, n)])
    assert backend_used(dense) == "numpy"


def test_kernel_info_shape():
    info = kernels.kernel_info()
    assert set(info) == {"kernel", "numpy"}
    assert info["kernel"] in ("python", "numpy")
