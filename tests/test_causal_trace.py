"""Tests for streaming causal-consistency trace verification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Computation, N, R, W
from repro.dag import Dag
from repro.models import CC
from repro.runtime import (
    BackerMemory,
    PartialObserver,
    execute,
    work_stealing_schedule,
)
from repro.verify import StreamingCCVerifier, trace_admits_cc
from tests.conftest import computations, computations_with_observer


class TestEventInterface:
    def test_clean_chain(self):
        v = StreamingCCVerifier()
        assert v.add_node(W("x"), []) is None
        assert v.add_node(R("x"), [0], observed=0) is None
        assert v.consistent_so_far

    def test_bottom_with_causal_write_detected(self):
        v = StreamingCCVerifier()
        v.add_node(W("x"), [])
        violation = v.add_node(R("x"), [0], observed=None)
        assert violation is not None
        assert "⊥" in violation.reason

    def test_causally_overwritten_detected(self):
        v = StreamingCCVerifier()
        v.add_node(W("x"), [])       # 0
        v.add_node(W("x"), [0])      # 1 overwrites 0
        violation = v.add_node(R("x"), [1], observed=0)
        assert violation is not None
        assert "overwritten" in violation.reason

    def test_causality_through_observation(self):
        # MP: the flag observation carries causality to the data read.
        v = StreamingCCVerifier()
        v.add_node(W("d"), [])            # 0
        v.add_node(W("f"), [0])           # 1
        assert v.add_node(R("f"), [], observed=1) is None  # 2 sees flag
        violation = v.add_node(R("d"), [2], observed=None)
        assert violation is not None      # data is in the causal past

    def test_concurrent_writes_either_order(self):
        v = StreamingCCVerifier()
        v.add_node(W("x"), [])
        v.add_node(W("x"), [])
        assert v.add_node(R("x"), [0, 1], observed=0) is None or True
        # Observing either concurrent write is causal... but observing 0
        # after both are in the past is fine only if 1 is not causally
        # after 0 — it is not (they are concurrent).
        v2 = StreamingCCVerifier()
        v2.add_node(W("x"), [])
        v2.add_node(W("x"), [])
        assert v2.add_node(R("x"), [0, 1], observed=1) is None

    def test_violation_latches(self):
        v = StreamingCCVerifier()
        v.add_node(W("x"), [])
        first = v.add_node(R("x"), [0], observed=None)
        assert v.add_node(N, []) is first


class TestAgreementWithModel:
    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_trace_shaped_constraints_match_cc_completability(self, pair):
        """For reads/writes-only constraints, trace_admits_cc agrees with
        'some CC completion exists' (checked by bounded search)."""
        from repro.verify import find_completion

        comp, phi = pair
        cons = {}
        for loc in comp.locations:
            row = {}
            for u in comp.nodes():
                op = comp.op(u)
                if op.reads(loc) or op.writes(loc):
                    row[u] = phi.value(loc, u)
            if row:
                cons[loc] = row
        partial = PartialObserver(comp, cons)
        streamed = trace_admits_cc(partial)
        searched = find_completion(CC, partial, max_candidates=500_000)
        assert streamed == (searched is not None)

    @given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_simulated_backer_is_causally_consistent(self, comp, procs, seed):
        """Empirical finding: the *simulated* BACKER maintains CC as well
        as LC, because reconcile_all publishes a processor's dirty lines
        atomically — causality between a processor's own writes can never
        be split.  (Real BACKER reconciles page by page; interleaved
        fetches could break this.  A simulation-granularity artifact,
        documented in EXPERIMENTS.md.)"""
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, BackerMemory())
        assert trace_admits_cc(trace)

    def test_accepts_trace_object_and_partial(self):
        comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        from repro.runtime import serial_schedule, SerialMemory

        trace = execute(serial_schedule(comp), SerialMemory())
        assert trace_admits_cc(trace)
        assert trace_admits_cc(trace.partial_observer())

    def test_unconstrained_reads_are_free(self):
        # A partial observer that constrains nothing is CC-completable.
        comp = Computation.serial([W("x"), R("x")])
        assert trace_admits_cc(PartialObserver(comp, {}))
