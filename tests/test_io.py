"""Tests for JSON serialization (repro.io)."""

import json

import pytest
from hypothesis import given, settings

from repro.core import Computation, N, ObserverFunction, R, W
from repro.dag import Dag
from repro.errors import InvalidObserverError
from repro.io import (
    FormatError,
    dump_computation,
    dump_observer,
    dump_partial_observer,
    dump_trace,
    dumps,
    load_computation,
    load_observer,
    load_partial_observer,
    load_trace,
    loads,
)
from repro.runtime import (
    BackerMemory,
    PartialObserver,
    execute,
    work_stealing_schedule,
)
from tests.conftest import computations, computations_with_observer


class TestComputationRoundtrip:
    @given(computations(max_nodes=6))
    @settings(max_examples=40)
    def test_roundtrip(self, comp):
        assert load_computation(dump_computation(comp)) == comp

    def test_tuple_locations(self):
        comp = Computation(Dag(2, [(0, 1)]), (W(("fib", 3, "l")), R(("fib", 3, "l"))))
        again = load_computation(dump_computation(comp))
        assert again == comp
        assert again.op(0).loc == ("fib", 3, "l")

    def test_json_serializable(self):
        comp = Computation(Dag(1), (W("x"),))
        text = json.dumps(dump_computation(comp))
        assert load_computation(json.loads(text)) == comp

    def test_bad_header(self):
        with pytest.raises(FormatError):
            load_computation({"format": "nope"})

    def test_bad_version(self):
        comp = Computation(Dag(1), (N,))
        doc = dump_computation(comp)
        doc["version"] = 99
        with pytest.raises(FormatError):
            load_computation(doc)

    def test_unsupported_location_type(self):
        comp = Computation(Dag(1), (W(frozenset([1])),))
        with pytest.raises(FormatError):
            dump_computation(comp)


class TestObserverRoundtrip:
    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=40)
    def test_roundtrip(self, pair):
        comp, phi = pair
        again = loads(dumps(phi))
        assert again == phi
        assert again.computation == comp

    def test_corrupted_row_fails_validation(self):
        comp = Computation(Dag(2, [(0, 1)]), (R("x"), W("x")))
        phi = ObserverFunction(comp, {"x": (None, 1)})
        doc = dump_observer(phi)
        doc["rows"][0]["row"] = [1, 1]  # node 0 would observe its successor
        with pytest.raises(InvalidObserverError):
            load_observer(doc)


class TestPartialObserverRoundtrip:
    def test_roundtrip(self):
        comp = Computation(Dag(3, [(0, 1)]), (W("x"), R("x"), R("x")))
        po = PartialObserver(comp, {"x": {0: 0, 1: 0, 2: None}})
        again = load_partial_observer(dump_partial_observer(po))
        assert again.constrained("x") == po.constrained("x")
        assert again.comp == comp


class TestTraceRoundtrip:
    def test_roundtrip(self):
        from repro.lang import racy_counter_computation

        comp = racy_counter_computation(3, 2)[0]
        sched = work_stealing_schedule(comp, 3, rng=1)
        trace = execute(sched, BackerMemory())
        again = load_trace(dump_trace(trace))
        assert again.comp == comp
        assert again.schedule.proc_of == sched.proc_of
        assert [
            (e.node, e.loc, e.observed) for e in again.reads
        ] == [(e.node, e.loc, e.observed) for e in trace.reads]

    def test_trace_verdict_preserved(self):
        from repro.lang import store_buffer_computation
        from repro.verify import trace_admits_lc

        comp = store_buffer_computation()[0]
        sched = work_stealing_schedule(comp, 2, rng=0)
        trace = execute(sched, BackerMemory())
        again = loads(dumps(trace))
        assert trace_admits_lc(again.partial_observer()) == trace_admits_lc(
            trace.partial_observer()
        )

    def test_corrupted_schedule_rejected(self):
        from repro.errors import ScheduleError

        comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        from repro.runtime import serial_schedule, SerialMemory

        trace = execute(serial_schedule(comp), SerialMemory())
        doc = dump_trace(trace)
        doc["start_of"] = [1, 0]  # violates the edge
        with pytest.raises(ScheduleError):
            load_trace(doc)


class TestStringDispatch:
    def test_dumps_unknown_type(self):
        with pytest.raises(FormatError):
            dumps(42)

    def test_loads_missing_format(self):
        with pytest.raises(FormatError):
            loads("{}")

    def test_loads_unknown_format(self):
        with pytest.raises(FormatError):
            loads('{"format": "repro/quux"}')

    def test_loads_dispatches_computation(self):
        comp = Computation(Dag(1), (N,))
        assert loads(dumps(comp)) == comp
