"""Tests for prefix (downset) and antichain enumeration."""

from hypothesis import given, settings

from repro.dag import (
    Dag,
    all_antichains,
    all_prefix_masks,
    chain_dag,
    empty_dag,
    is_antichain,
    is_prefix_mask,
    prefix_closure_mask,
)
from tests.conftest import dags


def brute_force_downsets(d: Dag) -> set[int]:
    return {
        mask
        for mask in range(1 << d.num_nodes)
        if all(
            not (d.predecessor_mask(u) & ~mask)
            for u in range(d.num_nodes)
            if mask & (1 << u)
        )
    }


@given(dags(max_nodes=6))
@settings(max_examples=50)
def test_prefixes_match_brute_force(d):
    assert set(all_prefix_masks(d)) == brute_force_downsets(d)


class TestPrefixes:
    def test_chain_prefixes(self):
        # Chains have exactly n+1 downsets.
        assert len(list(all_prefix_masks(chain_dag(5)))) == 6

    def test_antichain_prefixes(self):
        assert len(list(all_prefix_masks(empty_dag(4)))) == 16

    def test_empty(self):
        assert list(all_prefix_masks(Dag(0))) == [0]

    def test_is_prefix_mask(self):
        d = chain_dag(3)
        assert is_prefix_mask(d, 0b011)
        assert not is_prefix_mask(d, 0b110)

    def test_closure(self):
        d = chain_dag(4)
        assert prefix_closure_mask(d, 0b1000) == 0b1111
        assert prefix_closure_mask(d, 0b0001) == 0b0001

    def test_closure_is_prefix(self):
        d = Dag(4, [(0, 2), (1, 2), (2, 3)])
        closed = prefix_closure_mask(d, 0b1000)
        assert is_prefix_mask(d, closed)
        assert closed == 0b1111


class TestAntichains:
    def test_chain_antichains(self):
        # In a chain: empty set + singletons.
        assert len(list(all_antichains(chain_dag(4)))) == 5

    def test_empty_graph(self):
        assert list(all_antichains(Dag(0))) == [()]

    def test_antichain_all_subsets_when_no_edges(self):
        assert len(list(all_antichains(empty_dag(3)))) == 8

    @given(dags(max_nodes=6))
    @settings(max_examples=40)
    def test_all_enumerated_are_antichains(self, d):
        for chain in all_antichains(d):
            assert is_antichain(d, chain)

    def test_is_antichain_negative(self):
        d = chain_dag(3)
        assert not is_antichain(d, (0, 2))
        assert is_antichain(d, (1,))
