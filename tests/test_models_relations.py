"""Tests for model relations: completeness, monotonicity, witnesses."""

import pytest
from hypothesis import given, settings

from repro.core import Computation, ObserverFunction, R, W
from repro.dag import Dag
from repro.models import (
    LC,
    NN,
    NW,
    SC,
    WN,
    WW,
    ExplicitModel,
    IntersectionModel,
    Universe,
    inclusion_matrix,
    is_complete_on,
    is_monotonic_on,
    is_stronger_on,
    separating_witness,
    shrink_witness,
)
from tests.conftest import computations, computations_with_observer

SMALL = Universe(max_nodes=2, locations=("x",))
MODELS = (SC, LC, NN, NW, WN, WW)


class TestCompleteness:
    @given(computations(max_nodes=5))
    @settings(max_examples=40, deadline=None)
    def test_all_models_complete(self, comp):
        """Every model admits the serial last-writer observer function."""
        from repro.core import last_writer_function

        phi = last_writer_function(comp, comp.dag.topological_order)
        for m in MODELS:
            assert m.contains(comp, phi), m.name

    def test_is_complete_on_finds_nothing_for_sc(self):
        comps = list(SMALL.computations())
        assert is_complete_on(SC, comps) is None

    def test_incomplete_explicit_model(self):
        # An explicit model missing a computation is incomplete.
        pairs = []
        model = ExplicitModel(pairs, "empty-ish")
        gap = is_complete_on(model, SMALL.computations())
        assert gap is not None


class TestMonotonicity:
    """Definition 5: relaxations preserve membership (all six models)."""

    def test_all_models_monotonic_on_universe(self):
        for m in MODELS:
            assert is_monotonic_on(m, SMALL) is None, m.name

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=50, deadline=None)
    def test_monotonic_under_single_edge_removal(self, pair):
        comp, phi = pair
        for edge in comp.dag.edges:
            relaxed = comp.relax([edge])
            phi_rel = ObserverFunction(
                relaxed,
                {loc: phi.row(loc) for loc in phi.locations},
                validate=False,
            )
            for m in MODELS:
                if m.contains(comp, phi):
                    assert m.contains(relaxed, phi_rel), m.name

    def test_non_monotonic_model_detected(self):
        # An artificial model: contains pairs only when the dag has an edge
        # (plus the empty pair).  Removing the edge exits the model.
        class EdgeLover(ExplicitModel):
            pass

        comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        phi = ObserverFunction(comp, {"x": (0, 0)})
        from repro.core import EMPTY_COMPUTATION

        model = ExplicitModel(
            [(comp, phi), (EMPTY_COMPUTATION, ObserverFunction(EMPTY_COMPUTATION, {}))],
            "edge-lover",
        )
        universe = Universe(max_nodes=2, locations=("x",))
        violation = is_monotonic_on(model, universe)
        assert violation is not None


class TestInclusions:
    def test_matrix_reflexive(self):
        m = inclusion_matrix(MODELS, SMALL)
        for a in MODELS:
            assert m[(a.name, a.name)]

    def test_chain_inclusions_small_universe(self):
        m = inclusion_matrix(MODELS, SMALL)
        for a, b in [("SC", "LC"), ("LC", "NN"), ("NN", "NW"), ("NN", "WN")]:
            assert m[(a, b)]

    def test_is_stronger_on_counterexample(self):
        # WW is not stronger than NN; a witness exists at two nodes.
        wit = is_stronger_on(WW, NN, Universe(max_nodes=2, locations=("x",)))
        assert wit is not None
        assert wit.in_model == "WW"

    def test_is_stronger_on_confirms(self):
        assert is_stronger_on(SC, WW, SMALL) is None


class TestWitnesses:
    def test_separating_witness_found(self):
        u = Universe(max_nodes=2, locations=("x",))
        wit = separating_witness(NN, WN, u)
        assert wit is not None
        assert WN.contains(wit.comp, wit.phi)
        assert not NN.contains(wit.comp, wit.phi)

    def test_no_witness_when_equal(self):
        u = Universe(max_nodes=2, locations=("x",))
        assert separating_witness(WW, WW, u) is None

    def test_shrink_preserves_separation(self):
        u = Universe(max_nodes=3, locations=("x",))
        wit = separating_witness(NN, WW, u)
        assert wit is not None
        small = shrink_witness(NN, WW, wit)
        assert WW.contains(small.comp, small.phi)
        assert not NN.contains(small.comp, small.phi)
        assert small.comp.num_nodes <= wit.comp.num_nodes


class TestCombinators:
    def test_intersection_model(self):
        from repro.paperfigures import figure2_pair

        comp, phi = figure2_pair()
        both = IntersectionModel([NW, WN], "NW∩WN")
        # Figure 2 is in NW but not WN, hence not in the intersection.
        assert not both.contains(comp, phi)
        assert NW.contains(comp, phi)

    def test_intersection_requires_parts(self):
        with pytest.raises(ValueError):
            IntersectionModel([])

    def test_explicit_model_membership(self):
        comp = Computation(Dag(1), (W("x"),))
        phi = ObserverFunction(comp, {"x": (0,)})
        m = ExplicitModel([(comp, phi)], "one")
        assert m.contains(comp, phi)
        assert m.pair_count() == 1
        assert list(m.computations()) == [comp]
        other = Computation(Dag(1), (R("x"),))
        assert not m.contains(other, ObserverFunction(other, {"x": (None,)}))

    def test_admits(self):
        comp = Computation(Dag(1), (W("x"),))
        assert SC.admits(comp)
