"""Tests for the event-driven timed simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Computation, N
from repro.dag import Dag, chain_dag, fork_join_dag
from repro.dag.metrics import span, work
from repro.errors import ScheduleError
from repro.runtime import SerialMemory, simulate_timed
from repro.verify import trace_admits_lc
from tests.conftest import computations


def nops(dag: Dag) -> Computation:
    return Computation(dag, (N,) * dag.num_nodes)


class TestBasics:
    def test_empty(self):
        res = simulate_timed(nops(Dag(0)), 2)
        assert res.makespan == 0.0

    def test_requires_processor(self):
        with pytest.raises(ScheduleError):
            simulate_timed(nops(Dag(1)), 0)

    def test_unit_cost_chain(self):
        res = simulate_timed(nops(chain_dag(5)), 2, miss_cost=0, rng=0)
        assert res.makespan == 5.0

    def test_unit_cost_parallel(self):
        res = simulate_timed(nops(Dag(8)), 4, miss_cost=0, rng=0)
        assert res.makespan <= 8.0
        assert res.makespan >= 2.0

    def test_precedence_validated(self):
        comp = nops(fork_join_dag(3))
        res = simulate_timed(comp, 4, rng=1)
        res.validate()  # must not raise
        for (u, v) in comp.dag.edges:
            assert res.start_of[v] >= res.finish_of[u]

    def test_all_nodes_executed(self):
        comp = nops(fork_join_dag(2))
        res = simulate_timed(comp, 3, rng=2)
        assert all(f > 0 for f in res.finish_of)


class TestCostModel:
    def test_zero_miss_cost_bounds(self):
        comp = nops(fork_join_dag(3))
        t1, tinf = work(comp.dag), span(comp.dag)
        for p in (1, 2, 4):
            res = simulate_timed(comp, p, miss_cost=0, rng=0)
            assert res.makespan >= max(tinf, t1 / p)

    def test_single_processor_pays_no_protocol(self):
        from repro.lang import fib_computation

        comp = fib_computation(7)[0]
        res0 = simulate_timed(comp, 1, miss_cost=0, rng=0)
        res8 = simulate_timed(comp, 1, miss_cost=8, rng=0)
        assert res0.makespan == res8.makespan == comp.num_nodes

    def test_miss_cost_monotone(self):
        from repro.lang import fib_computation

        comp = fib_computation(7)[0]
        spans = [
            simulate_timed(comp, 4, miss_cost=m, rng=3).makespan
            for m in (0, 2, 8)
        ]
        assert spans[0] <= spans[1] <= spans[2]

    def test_steals_counted(self):
        comp = nops(Dag(12))
        res = simulate_timed(comp, 4, rng=0)
        assert res.steals > 0  # everything starts on proc 0


class TestCorrectness:
    @given(computations(max_nodes=8), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_backer_timed_always_lc(self, comp, procs, seed):
        res = simulate_timed(comp, procs, miss_cost=3, rng=seed)
        assert trace_admits_lc(res.partial_observer())

    def test_workloads_lc(self):
        from repro.lang import matmul_computation, racy_counter_computation

        for comp in (
            matmul_computation(2)[0],
            racy_counter_computation(3, 2)[0],
        ):
            for p in (2, 4):
                res = simulate_timed(comp, p, miss_cost=5, rng=p)
                assert trace_admits_lc(res.partial_observer())

    def test_serial_memory_also_works(self):
        from repro.verify import trace_admits_sc

        comp = nops(fork_join_dag(2))
        res = simulate_timed(comp, 2, memory=SerialMemory(), rng=0)
        assert trace_admits_sc(res.partial_observer()) is not None

    def test_deterministic_by_seed(self):
        from repro.lang import fib_computation

        comp = fib_computation(6)[0]
        a = simulate_timed(comp, 4, rng=11)
        b = simulate_timed(comp, 4, rng=11)
        assert a.makespan == b.makespan
        assert a.proc_of == b.proc_of


class TestObsWiring:
    """simulate_timed reports spans, counters and the node-latency
    histogram so all four memory backends observe on identical terms."""

    def _clean(self):
        from repro import obs

        obs.disable()
        obs.reset()

    def test_span_counters_and_histogram(self):
        from repro import obs
        from repro.lang import fib_computation

        self._clean()
        obs.enable()
        try:
            comp = fib_computation(6)[0]
            res = simulate_timed(comp, 3, miss_cost=2, rng=1)
            o = obs.get()
            assert o.counters.get("timed.runs") == 1
            assert o.counters.get("timed.nodes") == comp.num_nodes
            hist = o.histograms.get("timed.node_latency")
            assert hist is not None
            assert hist.count == comp.num_nodes
            assert o.gauges.get("timed.makespan") == res.makespan
            roots = [sp.name for sp in o.roots]
            assert "timed.simulate" in roots
            sim = next(sp for sp in o.roots if sp.name == "timed.simulate")
            assert sim.attrs["makespan"] == res.makespan
            assert "steals" in sim.attrs
        finally:
            self._clean()

    def test_memory_backend_publishes_through_timed(self):
        from repro import obs
        from repro.lang import fib_computation
        from repro.runtime import HierarchicalBackerMemory

        self._clean()
        obs.enable()
        try:
            comp = fib_computation(6)[0]
            mem = HierarchicalBackerMemory("l1")
            simulate_timed(comp, 3, memory=mem, miss_cost=2, rng=1)
            counters = obs.get().counters
            assert counters.get("hier.L1.fetches") == mem.stats.levels[0].fetches
        finally:
            self._clean()

    def test_disabled_leaves_no_state(self):
        from repro import obs
        from repro.lang import fib_computation

        self._clean()
        comp = fib_computation(5)[0]
        simulate_timed(comp, 2, rng=0)
        assert obs.get().counters == {}
        assert obs.get().roots == []
