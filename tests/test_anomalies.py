"""Tests for the anomaly catalog."""

from repro.analysis import catalog_anomalies, render_catalog
from repro.models import LC, NN, SC, WN, WW, Universe

RW4 = Universe(max_nodes=4, locations=("x",), include_nop=False)
RW3 = Universe(max_nodes=3, locations=("x",), include_nop=False)


class TestCatalog:
    def test_wn_vs_nn_minimal_is_stale_bottom(self):
        """The smallest WN \\ NN anomaly is the stale-⊥ read: W → R(⊥).

        This is the anomaly the paper's prose criticizes in the weaker
        dag-consistency variants (a read forever missing a write that
        precedes it)."""
        cat = catalog_anomalies(NN, WN, RW3, max_witnesses=10)
        assert cat.minimal_size == 2
        comp, phi = cat.witnesses[0]
        (w,) = comp.writers("x")
        (r,) = comp.readers("x")
        assert comp.precedes(w, r)
        assert phi.value("x", r) is None  # the stale ⊥

    def test_nn_vs_lc_minimal_is_figure4_class(self):
        """All 24 minimal NN \\ LC anomalies live at 4 nodes — the
        Figure 4 shape (cross-observing concurrent reads) and its
        labelled variants."""
        cat = catalog_anomalies(LC, NN, RW4, max_witnesses=1000)
        assert cat.minimal_size == 4
        assert len(cat.witnesses) == 24
        from repro.paperfigures import figure4_pair

        comp, phi = figure4_pair()
        # The canonical figure pair is among them (up to identity ids).
        assert any(c == comp and p == phi for c, p in cat.witnesses)

    def test_no_separation_reports_cleanly(self):
        cat = catalog_anomalies(WW, WW, RW3)
        assert not cat.separated
        assert "none" in render_catalog(cat)

    def test_sc_lc_needs_two_locations(self):
        cat = catalog_anomalies(SC, LC, RW4)
        assert not cat.separated  # invisible at one location

    def test_sc_lc_separates_at_two_nodes_with_two_locations(self):
        """A finding the observer-function formalism makes visible: SC
        and LC separate already at *two concurrent writes to different
        locations* — each write's viewpoint misses the other's location,
        which no single serialization can explain.  (The classic
        read-observable separation, the store buffer, needs 4 nodes.)"""
        cat = catalog_anomalies(
            SC,
            LC,
            Universe(max_nodes=2, locations=("x", "y"), include_nop=False),
            max_witnesses=10,
        )
        assert cat.separated
        assert cat.minimal_size == 2
        for comp, phi in cat.witnesses:
            assert len(comp.locations) == 2
            assert not comp.dag.num_edges  # the writes are concurrent

    def test_render_shows_witnesses(self):
        cat = catalog_anomalies(NN, WW, RW3, max_witnesses=5)
        text = render_catalog(cat)
        assert "minimal size" in text
        assert "node 0" in text
