"""Tests for the dag-consistency family (Definition 20)."""

from hypothesis import given, settings

from repro.core import Computation, N, ObserverFunction, R, W
from repro.dag import Dag
from repro.models import LC, NN, NW, WN, WW, QDagConsistency
from repro.paperfigures import figure2_pair, figure3_pair, figure4_pair
from tests.conftest import computations_with_observer

ALL_DAG_MODELS = (NN, NW, WN, WW)


class TestFastMatchesReference:
    """The fiber-based checkers must agree with the literal Definition 20."""

    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=100, deadline=None)
    def test_single_location(self, pair):
        comp, phi = pair
        for model in ALL_DAG_MODELS:
            assert model.contains(comp, phi) == model.contains_reference(
                comp, phi
            ), model.name

    @given(computations_with_observer(max_nodes=4, locations=("x", "y")))
    @settings(max_examples=50, deadline=None)
    def test_two_locations(self, pair):
        comp, phi = pair
        for model in ALL_DAG_MODELS:
            assert model.contains(comp, phi) == model.contains_reference(
                comp, phi
            ), model.name


class TestPaperFigures:
    def test_figure2_profile(self):
        comp, phi = figure2_pair()
        assert WW.contains(comp, phi)
        assert NW.contains(comp, phi)
        assert not WN.contains(comp, phi)
        assert not NN.contains(comp, phi)

    def test_figure3_profile(self):
        comp, phi = figure3_pair()
        assert WW.contains(comp, phi)
        assert WN.contains(comp, phi)
        assert not NW.contains(comp, phi)
        assert not NN.contains(comp, phi)

    def test_figure4_in_nn_not_lc(self):
        comp, phi = figure4_pair()
        assert NN.contains(comp, phi)
        assert not LC.contains(comp, phi)


class TestTheorem21:
    """NN is the strongest dag-consistent model: NN ⊆ Q-dag for any Q."""

    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=80, deadline=None)
    def test_nn_strongest(self, pair):
        comp, phi = pair
        if NN.contains(comp, phi):
            for model in (NW, WN, WW):
                assert model.contains(comp, phi)

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=40, deadline=None)
    def test_nn_within_custom_predicate(self, pair):
        comp, phi = pair

        def exotic(c, loc, u, v, w):
            # An arbitrary predicate: the middle node reads the location.
            return c.op(v).reads(loc)

        exotic_model = QDagConsistency(exotic, "exotic")
        if NN.contains(comp, phi):
            assert exotic_model.contains(comp, phi)


class TestInclusionChain:
    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=80, deadline=None)
    def test_nw_and_wn_within_ww(self, pair):
        comp, phi = pair
        if NW.contains(comp, phi):
            assert WW.contains(comp, phi)
        if WN.contains(comp, phi):
            assert WW.contains(comp, phi)

    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=80, deadline=None)
    def test_lc_within_nn(self, pair):
        """Theorem 22: LC ⊆ NN."""
        comp, phi = pair
        if LC.contains(comp, phi):
            assert NN.contains(comp, phi)


class TestBottomFiberSemantics:
    def test_bottom_after_write_violates_nn(self):
        # W(x) -> R(x) seeing ⊥: the triple (⊥, W, R) fires for NN.
        c = Computation.serial([W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, None)})
        assert not NN.contains(c, phi)

    def test_bottom_after_write_violates_nw(self):
        c = Computation.serial([W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, None)})
        assert not NW.contains(c, phi)

    def test_bottom_after_write_allowed_by_wn_and_ww(self):
        # WN/WW need op(u) = W at the *source*, and a write's fiber never
        # contains ⊥-observers, so the stale-⊥ anomaly passes both.
        c = Computation.serial([W("x"), R("x")])
        phi = ObserverFunction(c, {"x": (0, None)})
        assert WN.contains(c, phi)
        assert WW.contains(c, phi)

    def test_bottom_sandwich_violates_nn(self):
        # R(⊥) -> R(w) -> R(⊥): ⊥ fiber must be ancestor-closed.
        c = Computation(
            Dag(4, [(1, 2), (2, 3)]), (W("x"), R("x"), R("x"), R("x"))
        )
        phi = ObserverFunction(c, {"x": (0, None, 0, None)})
        assert not NN.contains(c, phi)


class TestConvexitySemantics:
    def test_fiber_gap_violates_nn(self):
        # u observes A, v between observes B, w observes A again.
        c = Computation.serial([W("x"), W("x"), R("x"), R("x"), R("x")])
        # serial: 0W 1W 2R 3R 4R; rows: 2->1, 3->0 (stale), 4->1? invalid
        # Use concurrent writes for legality:
        c = Computation(
            Dag(5, [(2, 3), (3, 4)]),
            (W("x"), W("x"), R("x"), R("x"), R("x")),
        )
        phi = ObserverFunction(c, {"x": (0, 1, 0, 1, 0)})
        assert not NN.contains(c, phi)

    def test_middle_write_violates_nw(self):
        comp, phi = figure3_pair()
        assert not NW.contains(comp, phi)

    def test_source_write_gap_violates_wn(self):
        comp, phi = figure2_pair()
        assert not WN.contains(comp, phi)


class TestCustomPredicates:
    def test_true_predicate_equals_nn(self):
        from repro.models import nn_predicate

        custom = QDagConsistency(nn_predicate, "custom-NN")
        comp, phi = figure4_pair()
        assert custom.contains(comp, phi) == NN.contains(comp, phi)

    def test_false_predicate_accepts_everything(self):
        never = QDagConsistency(lambda *a: False, "never")
        comp, phi = figure2_pair()
        assert never.contains(comp, phi)

    def test_invalid_variant_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            QDagConsistency(lambda *a: True, "bad", variant="XX")

    def test_nop_nodes_carry_views(self):
        # A no-op between two same-fiber nodes still violates NN if its
        # own view differs — no-ops have memory semantics in this theory.
        c = Computation(
            Dag(4, [(1, 2), (2, 3)]), (W("x"), R("x"), N, R("x"))
        )
        phi_bad = ObserverFunction(c, {"x": (0, 0, None, 0)})
        assert not NN.contains(c, phi_bad)
        phi_good = ObserverFunction(c, {"x": (0, 0, 0, 0)})
        assert NN.contains(c, phi_good)
