"""Tests for determinacy-race detection, and the race-freedom theorem."""

from hypothesis import given, settings

from repro.core import Computation, R, W
from repro.dag import Dag
from repro.lang import (
    matmul_computation,
    racy_counter_computation,
    store_buffer_computation,
    tree_sum_computation,
)
from repro.models import LC
from repro.verify import (
    find_races,
    find_races_naive,
    is_race_free,
    racy_locations,
)
from tests.conftest import computations


class TestDetection:
    def test_serial_is_race_free(self):
        c = Computation.serial([W("x"), R("x"), W("x")])
        assert is_race_free(c)

    def test_concurrent_write_write(self):
        c = Computation(Dag(2), (W("x"), W("x")))
        races = list(find_races(c))
        assert len(races) == 1
        assert races[0].kind == "write-write"
        assert (races[0].u, races[0].v) == (0, 1)

    def test_concurrent_read_write(self):
        c = Computation(Dag(2), (W("x"), R("x")))
        races = list(find_races(c))
        assert len(races) == 1
        assert races[0].kind == "read-write"

    def test_concurrent_reads_do_not_race(self):
        c = Computation(Dag(3), (W("y"), R("x"), R("x")))
        assert is_race_free(c)

    def test_different_locations_do_not_race(self):
        c = Computation(Dag(2), (W("x"), W("y")))
        assert is_race_free(c)

    def test_ordered_accesses_do_not_race(self):
        c = Computation(Dag(2, [(0, 1)]), (W("x"), W("x")))
        assert is_race_free(c)

    def test_no_duplicate_pairs(self):
        c = Computation(Dag(2), (W("x"), W("x")))
        races = list(find_races(c))
        assert len(races) == len({(r.u, r.v, repr(r.loc)) for r in races})

    def test_racy_locations(self):
        c = Computation(Dag(4), (W("x"), W("x"), W("y"), R("z")))
        assert racy_locations(c) == ["x"]


class TestWorkloads:
    def test_tree_sum_race_free(self):
        assert is_race_free(tree_sum_computation(8)[0])

    def test_racy_counter_races(self):
        comp = racy_counter_computation(3, 1)[0]
        assert not is_race_free(comp)
        kinds = {r.kind for r in find_races(comp)}
        assert "write-write" in kinds

    def test_store_buffer_read_write_races(self):
        # Each thread's read races with the other thread's write; there
        # are no write-write races.
        races = list(find_races(store_buffer_computation()[0]))
        assert len(races) == 2
        assert {r.kind for r in races} == {"read-write"}


class TestFastEqualsNaive:
    """The bitset-row sweep is a drop-in for the historical per-pair one.

    Not just the same *set* — the same *sequence*: the rewrite dedupes
    write-write pairs by emitting from the smaller id only, which is
    exactly the first-encounter order the old seen-set produced.
    """

    @staticmethod
    def assert_same(comp):
        fast = list(find_races(comp))
        naive = list(find_races_naive(comp))
        assert fast == naive

    @given(computations(max_nodes=6, locations=("x", "y")))
    @settings(max_examples=150, deadline=None)
    def test_random_computations(self, comp):
        self.assert_same(comp)

    def test_programs(self):
        for comp in (
            racy_counter_computation(4, 3)[0],
            store_buffer_computation()[0],
            matmul_computation(2)[0],
            tree_sum_computation(8)[0],
        ):
            self.assert_same(comp)

    def test_memoized_across_calls(self):
        comp = racy_counter_computation(3, 2)[0]
        first = list(find_races(comp))
        assert list(find_races(comp)) == first


class TestRaceFreedomTheorem:
    """Race-free ⟹ the memory model does not matter.

    On a race-free computation, per location all accesses form a chain,
    so the last-writer function is the same for every topological sort;
    LC then admits exactly one value at every read, and all models
    coincide on reads.
    """

    @given(computations(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_race_free_reads_deterministic_under_lc(self, comp):
        if not is_race_free(comp):
            return
        seen_rows: dict = {}
        for phi in LC.observers(comp):
            for loc in comp.locations:
                for r in comp.readers(loc):
                    key = (loc, r)
                    v = phi.value(loc, r)
                    if key in seen_rows:
                        assert seen_rows[key] == v, (
                            "race-free computation with two LC-admissible "
                            "read outcomes"
                        )
                    else:
                        seen_rows[key] = v

    @given(computations(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_divergent_reader_outcomes_imply_race(self, comp):
        """Converse direction: if the last-writer value at some *read*
        differs across topological sorts, the location is racy.  (Other
        nodes' last-writer entries may vary without any race — a no-op
        concurrent with ordered writes — so the claim is about reads.)"""
        from repro.dag.toposort import all_topological_sorts
        from repro.core.last_writer import last_writer_row

        for loc in comp.locations:
            readers = comp.readers(loc)
            if not readers:
                continue
            reader_rows = {
                tuple(last_writer_row(comp, order, loc)[r] for r in readers)
                for order in all_topological_sorts(comp.dag)
            }
            if len(reader_rows) > 1:
                assert any(r.loc == loc for r in find_races(comp))
