"""The crash-safe event journal: spool, replay, and torn-tail recovery."""

import json
import os

import pytest

from repro import obs
from repro.obs import validate_chrome_trace, validate_trace
from repro.obs.core import Observability, set_journal
from repro.obs.export import export_chrome, export_json
from repro.obs.journal import (
    JOURNAL_VERSION,
    Journal,
    observability_from_trace,
    replay_journal,
)


@pytest.fixture
def clean_obs():
    """A reset global collector, restored (disabled, detached) after."""
    obs.reset()
    yield obs.get()
    set_journal(None)
    obs.reset()
    obs.disable()


def write_sample_journal(path, close=True):
    """Drive the global collector with a journal attached; return the
    counters the replay must reproduce."""
    journal = Journal(path)
    set_journal(journal)
    obs.enable()
    with obs.span("outer", kind="test"):
        obs.add("work.items", 3)
        with obs.span("inner"):
            obs.observe("work.seconds", 0.25)
            obs.set_gauge("work.depth", 2.0)
        obs.warning("something odd", code=7)
    obs.disable()
    if close:
        journal.close()
    else:
        journal.sync()
    set_journal(None)
    return {"work.items": 3}


class TestJournal:
    def test_first_record_is_journal_open(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        Journal(path).close()
        lines = open(path).read().splitlines()
        first = json.loads(lines[0])
        assert first["kind"] == "journal_open"
        assert first["version"] == JOURNAL_VERSION
        assert first["pid"] == os.getpid()
        assert json.loads(lines[-1])["kind"] == "journal_close"

    def test_records_spool_as_they_happen(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        set_journal(journal)
        obs.enable()
        with obs.span("alpha"):
            obs.add("c.x")
        journal.sync()
        kinds = [json.loads(ln)["kind"] for ln in open(path)]
        assert "span_open" in kinds
        assert "span_close" in kinds
        assert "counter" in kinds

    def test_foreign_pid_records_dropped(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        before = journal.records_written
        journal._pid = os.getpid() + 1  # simulate a forked worker
        journal.record("counter", name="c.y", delta=1)
        assert journal.records_written == before
        journal._pid = os.getpid()
        journal.close()

    def test_record_after_close_is_noop(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.close()
        journal.record("counter", name="c.z", delta=1)  # must not raise
        assert journal.closed


class TestReplay:
    def test_clean_journal_roundtrip(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        counters = write_sample_journal(path, close=True)
        replay = replay_journal(path)
        assert replay.clean
        assert replay.dropped == 0
        assert replay.aborted == []
        assert replay.obs.counters["work.items"] == counters["work.items"]
        names = [sp.name for sp in replay.obs.roots]
        assert names == ["outer"]
        assert [c.name for c in replay.obs.roots[0].children] == ["inner"]
        assert replay.obs.gauges["work.depth"] == 2.0
        assert replay.obs.histograms["work.seconds"].count == 1
        warnings = [
            e for e in replay.obs.events if e.get("kind") == "warning"
        ]
        assert warnings and warnings[0]["message"] == "something odd"
        assert validate_trace(replay.to_trace_dict()) == []
        doc = json.loads(export_chrome(replay.obs))
        assert validate_chrome_trace(doc) == []

    def test_span_attrs_from_close_record(self, tmp_path, clean_obs):
        """Attrs mutated during the span body (the executor pattern)
        travel on the span_close record."""
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        set_journal(journal)
        obs.enable()
        with obs.span("mutated") as sp:
            sp.attrs["reads"] = 17
        obs.disable()
        journal.close()
        replay = replay_journal(path)
        assert replay.obs.roots[0].attrs["reads"] == 17

    def test_unclosed_journal_marks_spans_aborted(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        set_journal(journal)
        obs.enable()
        ctx = obs.span("never-closed", phase="doomed")
        ctx.__enter__()
        obs.add("c.w")
        journal.sync()
        # Simulate kill -9: drop the handle without span close / journal
        # close ever being written.
        journal._f = None
        obs.disable()
        replay = replay_journal(path)
        assert not replay.clean
        assert replay.aborted == ["never-closed"]
        sp = replay.obs.roots[0]
        assert sp.attrs["aborted"] is True
        assert sp.attrs["phase"] == "doomed"
        assert validate_trace(replay.to_trace_dict()) == []

    def test_heartbeat_and_sweep_records_become_events(
        self, tmp_path, clean_obs
    ):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.on_sweep_start("lab", 4, 2)
        journal.on_heartbeat({"pid": 1234, "pairs_done": 10})
        journal.on_shard_done({"n": 3, "pairs": 99, "pid": 1234})
        journal.on_sweep_done("lab", 1.5)
        journal.close()
        replay = replay_journal(path)
        kinds = [e.get("kind") for e in replay.obs.events]
        assert kinds == ["sweep_start", "heartbeat", "shard_done", "sweep_done"]
        hb = replay.obs.events[1]
        assert hb["pid"] == 1234 and hb["pairs_done"] == 10

    def test_garbage_lines_dropped(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        write_sample_journal(path, close=True)
        with open(path, "a") as f:
            f.write("not json at all\n")
            f.write('{"no-kind": true}\n')
        replay = replay_journal(path)
        assert replay.dropped == 2
        assert validate_trace(replay.to_trace_dict()) == []


class TestTornTailProperty:
    """The satellite property test: truncate the journal at *every* byte
    offset inside the final record; replay must always yield a valid
    trace, with dangling spans marked aborted."""

    def test_every_truncation_of_last_record_replays_valid(
        self, tmp_path, clean_obs
    ):
        path = str(tmp_path / "j.jsonl")
        write_sample_journal(path, close=False)  # no journal_close marker
        raw = open(path, "rb").read()
        assert raw.endswith(b"\n")
        body = raw[:-1]
        last_start = body.rfind(b"\n") + 1
        assert last_start > 0
        # Cutting anywhere from "last record entirely gone" to "last
        # record complete but unterminated".
        for cut in range(last_start, len(raw)):
            torn = str(tmp_path / f"torn_{cut}.jsonl")
            with open(torn, "wb") as f:
                f.write(raw[:cut])
            replay = replay_journal(torn)
            assert not replay.clean, f"cut at byte {cut}"
            errors = validate_trace(replay.to_trace_dict())
            assert errors == [], f"cut at byte {cut}: {errors}"
            # Every dangling span carries the aborted marker, and every
            # span in the tree is either cleanly closed or aborted.
            aborted_names = set(replay.aborted)
            stack = list(replay.obs.roots)
            seen_aborted = set()
            while stack:
                sp = stack.pop()
                stack.extend(sp.children)
                if sp.attrs.get("aborted"):
                    seen_aborted.add(sp.name)
            assert seen_aborted == aborted_names, f"cut at byte {cut}"
            os.unlink(torn)

    def test_truncation_mid_span_close_aborts_the_span(
        self, tmp_path, clean_obs
    ):
        path = str(tmp_path / "j.jsonl")
        write_sample_journal(path, close=False)
        lines = open(path, "rb").read().splitlines(keepends=True)
        # Keep everything up to (and including) inner's span_open, then
        # tear the file in the middle of the following record.
        kinds = [json.loads(ln)["kind"] for ln in lines]
        open_idx = [i for i, k in enumerate(kinds) if k == "span_open"]
        assert len(open_idx) == 2
        keep = b"".join(lines[: open_idx[1] + 1])
        torn = str(tmp_path / "torn.jsonl")
        with open(torn, "wb") as f:
            f.write(keep + lines[open_idx[1] + 1][: 5])
        replay = replay_journal(torn)
        assert sorted(replay.aborted) == ["inner", "outer"]
        assert replay.dropped == 1
        outer = replay.obs.roots[0]
        assert outer.attrs["aborted"] is True
        assert outer.children[0].attrs["aborted"] is True
        assert validate_trace(replay.to_trace_dict()) == []


class TestObservabilityFromTrace:
    def test_trace_document_roundtrip(self, tmp_path, clean_obs):
        path = str(tmp_path / "j.jsonl")
        write_sample_journal(path, close=True)
        replay = replay_journal(path)
        doc = json.loads(export_json(replay.obs))
        rebuilt = observability_from_trace(doc)
        assert isinstance(rebuilt, Observability)
        assert rebuilt.counters == replay.obs.counters
        assert rebuilt.gauges == replay.obs.gauges
        assert json.loads(export_json(rebuilt)) == doc
