"""Empirical checks of the paper's structural results on Δ*.

* Lemma 7 — a union of constructible models is constructible.
* Theorem 9 — Δ* is (9.1) inside Δ, (9.2) constructible, and (9.3) the
  *weakest* constructible strengthening: it contains every constructible
  model inside Δ.
"""

from repro.models import (
    LC,
    NN,
    SC,
    WN,
    WW,
    UnionModel,
    Universe,
    constructible_version,
    find_nonconstructibility_witness,
)

UNIVERSE = Universe(max_nodes=3, locations=("x",))
SMALL_RW = Universe(max_nodes=3, locations=("x",), include_nop=False)


class TestLemma7:
    def test_union_of_constructible_is_constructible(self):
        """SC ∪ WW, LC ∪ WN, SC ∪ LC ∪ WW: all augmentation-closed."""
        for parts in [(SC, WW), (LC, WN), (SC, LC, WW)]:
            union = UnionModel(parts)
            assert (
                find_nonconstructibility_witness(union, UNIVERSE) is None
            ), union.name

    def test_union_weaker_than_parts(self):
        union = UnionModel([SC, WW])
        for comp, phi in UNIVERSE.pairs(2):
            if SC.contains(comp, phi) or WW.contains(comp, phi):
                assert union.contains(comp, phi)

    def test_union_with_nonconstructible_part_can_break(self):
        """Lemma 7 needs *all* parts constructible: NN alone (a union of
        one) is the counterexample."""
        union = UnionModel([NN])
        wit = find_nonconstructibility_witness(
            union, Universe(max_nodes=4, locations=("x",), include_nop=False)
        )
        assert wit is not None

    def test_requires_parts(self):
        import pytest

        with pytest.raises(ValueError):
            UnionModel([])

    def test_name(self):
        assert UnionModel([SC, WW]).name == "SC ∪ WW"
        assert UnionModel([SC], name="just-sc").name == "just-sc"


class TestTheorem9:
    def setup_method(self):
        self.result = constructible_version(NN, SMALL_RW)

    def test_91_star_inside_delta(self):
        """Δ* ⊆ Δ: every fixpoint pair is an NN pair."""
        for comp in self.result.model.computations():
            for phi in self.result.model.observers(comp):
                assert NN.contains(comp, phi)

    def test_92_star_constructible_on_sound_sizes(self):
        """Δ* is augmentation-closed where the computation is sound."""
        from repro.models import augmentation_extensions

        star = self.result.model
        for comp in star.computations():
            if comp.num_nodes >= self.result.sound_max_nodes:
                continue
            for phi in list(star.observers(comp)):
                for o in SMALL_RW.alphabet:
                    assert any(
                        star.contains(aug, phi2)
                        for aug, phi2 in augmentation_extensions(comp, phi, o)
                    ), (comp, phi, o)

    def test_93_star_is_weakest(self):
        """Every constructible model inside NN sits inside NN*: LC (the
        only nontrivial constructible zoo member ⊆ NN) does."""
        star = self.result.model
        for n in range(self.result.sound_max_nodes + 1):
            for comp in SMALL_RW.computations_of_size(n):
                for phi in SMALL_RW.observers(comp):
                    if LC.contains(comp, phi):
                        assert star.contains(comp, phi)
