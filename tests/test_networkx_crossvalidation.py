"""Cross-validation of dag algorithms against networkx.

Independent-implementation checks: our bitset closure, sort counting,
span, and width must agree with networkx's mature graph algorithms on
random dags.
"""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.dag import chain_dag, fork_join_dag
from repro.dag.interop import from_networkx, to_networkx
from repro.dag.metrics import span, width
from repro.dag.toposort import all_topological_sorts
from repro.errors import CycleError, InvalidComputationError
from tests.conftest import dags


class TestRoundtrip:
    @given(dags(max_nodes=8))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, d):
        assert from_networkx(to_networkx(d)) == d

    def test_bad_labels_rejected(self):
        g = nx.DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(InvalidComputationError):
            from_networkx(g)

    def test_cycle_rejected(self):
        g = nx.DiGraph()
        g.add_edges_from([(0, 1), (1, 0)])
        with pytest.raises(CycleError):
            from_networkx(g)


class TestCrossValidation:
    @given(dags(max_nodes=8))
    @settings(max_examples=50, deadline=None)
    def test_transitive_closure(self, d):
        g = to_networkx(d)
        nx_closure = nx.transitive_closure(g)
        for u in d.nodes():
            ours = set(d.descendants(u))
            theirs = set(nx_closure.successors(u))
            assert ours == theirs

    @given(dags(max_nodes=6))
    @settings(max_examples=40, deadline=None)
    def test_all_topological_sorts(self, d):
        ours = sorted(all_topological_sorts(d))
        theirs = sorted(
            tuple(s) for s in nx.all_topological_sorts(to_networkx(d))
        )
        assert ours == theirs

    @given(dags(max_nodes=8))
    @settings(max_examples=40, deadline=None)
    def test_span_matches_longest_path(self, d):
        g = to_networkx(d)
        if d.num_nodes == 0:
            assert span(d) == 0
        else:
            # networkx counts edges; our span counts nodes.
            assert span(d) == nx.dag_longest_path_length(g) + 1

    @given(dags(max_nodes=7))
    @settings(max_examples=30, deadline=None)
    def test_width_matches_antichain(self, d):
        g = to_networkx(d)
        best = max(
            (len(a) for a in nx.antichains(g)), default=0
        )
        assert width(d) == best

    @given(dags(max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_transitive_reduction(self, d):
        ours = d.transitive_reduction_edges()
        theirs = frozenset(nx.transitive_reduction(to_networkx(d)).edges())
        assert ours == theirs

    def test_shapes(self):
        assert from_networkx(to_networkx(chain_dag(5))) == chain_dag(5)
        fj = fork_join_dag(3)
        assert nx.is_directed_acyclic_graph(to_networkx(fj))
