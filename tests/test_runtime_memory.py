"""Tests for the memory systems: SerialMemory and BackerMemory."""

import pytest

from repro.runtime import BackerMemory, SerialMemory


class TestSerialMemory:
    def test_read_unwritten_is_bottom(self):
        m = SerialMemory()
        m.attach(2)
        assert m.read(0, 0, "x") is None

    def test_read_sees_latest_write(self):
        m = SerialMemory()
        m.attach(2)
        m.write(0, 5, "x")
        assert m.read(1, 6, "x") == 5
        m.write(1, 7, "x")
        assert m.read(0, 8, "x") == 7

    def test_attach_resets(self):
        m = SerialMemory()
        m.attach(1)
        m.write(0, 1, "x")
        m.attach(1)
        assert m.read(0, 2, "x") is None


class TestBackerProtocol:
    def test_read_own_write_from_cache(self):
        m = BackerMemory()
        m.attach(2)
        m.write(0, 3, "x")
        assert m.read(0, 4, "x") == 3
        assert m.stats.cache_hits == 1

    def test_dirty_write_invisible_until_reconcile(self):
        m = BackerMemory()
        m.attach(2)
        m.write(0, 3, "x")
        # Processor 1 fetches from main, which hasn't seen the write.
        assert m.read(1, 4, "x") is None

    def test_reconcile_then_flush_makes_visible(self):
        m = BackerMemory()
        m.attach(2)
        m.write(0, 3, "x")
        m.node_completed(0, 3, cross_succ=True)   # reconcile proc 0
        m.node_starting(1, 4, cross_pred=True)    # flush proc 1
        assert m.read(1, 4, "x") == 3

    def test_stale_cache_without_flush(self):
        m = BackerMemory()
        m.attach(2)
        assert m.read(1, 0, "x") is None  # caches ⊥
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        # No flush on proc 1: the stale ⊥ line sticks (BACKER allows it).
        assert m.read(1, 2, "x") is None

    def test_flush_evicts(self):
        m = BackerMemory()
        m.attach(2)
        assert m.read(1, 0, "x") is None
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        m.node_starting(1, 2, cross_pred=True)
        assert m.read(1, 2, "x") == 1

    def test_no_hooks_no_protocol_activity(self):
        m = BackerMemory()
        m.attach(2)
        m.node_starting(0, 0, cross_pred=False)
        m.node_completed(0, 0, cross_succ=False)
        assert m.stats.reconciles == 0
        assert m.stats.flushes == 0

    def test_stats_counts(self):
        m = BackerMemory()
        m.attach(2)
        m.read(0, 0, "x")
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        assert m.stats.fetches == 1
        assert m.stats.reconciles == 1

    def test_reconcile_writes_back_dirty_only_once(self):
        m = BackerMemory()
        m.attach(1)
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        m.node_completed(0, 2, cross_succ=True)
        # Second reconcile finds nothing dirty; main unchanged.
        assert m.read(0, 3, "x") == 1


class TestFaultInjection:
    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            BackerMemory(drop_reconcile_probability=1.5)
        with pytest.raises(ValueError):
            BackerMemory(drop_flush_probability=-0.1)
        with pytest.raises(ValueError):
            BackerMemory(spontaneous_reconcile_probability=2.0)

    def test_dropped_reconcile_counted(self):
        m = BackerMemory(drop_reconcile_probability=1.0, rng=0)
        m.attach(2)
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        assert m.stats.dropped_reconciles == 1
        m.node_starting(1, 2, cross_pred=True)
        assert m.read(1, 2, "x") is None  # the write never reached main

    def test_dropped_flush_counted(self):
        m = BackerMemory(drop_flush_probability=1.0, rng=0)
        m.attach(2)
        assert m.read(1, 0, "x") is None
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=True)
        m.node_starting(1, 2, cross_pred=True)  # dropped!
        assert m.stats.dropped_flushes == 1
        assert m.read(1, 2, "x") is None  # stale line survived

    def test_spontaneous_reconcile(self):
        m = BackerMemory(spontaneous_reconcile_probability=1.0, rng=0)
        m.attach(2)
        m.write(0, 1, "x")
        m.node_completed(0, 1, cross_succ=False)  # spontaneous reconcile
        assert m.read(1, 2, "x") == 1
