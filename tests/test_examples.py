"""Smoke tests: every example script runs to completion.

Examples are documentation; these tests keep them from rotting.  Each
script is executed in a subprocess with a generous timeout, and its
output is checked for a script-specific marker line (so a silently
broken example cannot pass).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> substring its stdout must contain.
MARKERS = {
    "quickstart.py": "single SC witness order",
    "paper_figures.py": "unless F writes to the memory location",
    "model_lattice.py": "All Figure 1 claims reproduced",
    "backer_fork_join.py": "impossible under sequential consistency",
    "fault_injection.py": "faithful protocol: zero violations",
    "litmus_outcomes.py": "CoRR",
    "locked_counter.py": "lost-update behaviour accepted by LockRC: False",
    "online_game.py": "NN is STUCK",
    "custom_model.py": "constructible: NO",
    "lost_updates.py": "racy counter",
}


def test_every_example_has_a_marker():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(MARKERS), (
        "examples/ and MARKERS out of sync — add a marker for new scripts"
    )


@pytest.mark.parametrize("script", sorted(MARKERS))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert MARKERS[script] in proc.stdout, (
        f"{script} ran but its marker line is missing:\n"
        f"{proc.stdout[-1500:]}"
    )
