"""Tests for the density (permissiveness) analysis."""

from repro.analysis.density import measure_density, render_density
from repro.models import LC, NN, SC, WW, Universe


class TestDensity:
    def setup_method(self):
        self.universe = Universe(max_nodes=2, locations=("x",))
        self.report = measure_density([SC, LC, NN, WW], self.universe)

    def test_totals(self):
        # n<=2 universe: 1 + 3 + 18 computations.
        assert self.report.total_computations == 22
        assert self.report.total_pairs == sum(
            self.universe.count_pairs(n) for n in range(3)
        )

    def test_lattice_order(self):
        c = self.report.admitted
        assert c["SC"] <= c["LC"] <= c["NN"] <= c["WW"]

    def test_fraction(self):
        assert 0 < self.report.fraction("SC") <= 1.0
        assert self.report.fraction("WW") >= self.report.fraction("SC")

    def test_widest_gap_recorded(self):
        assert self.report.widest_gap is not None
        comp, counts = self.report.widest_gap
        assert set(counts) == {"SC", "LC", "NN", "WW"}

    def test_render(self):
        text = render_density(self.report)
        assert "permissiveness" in text
        assert "SC" in text and "WW" in text

    def test_empty_universe_fraction(self):
        from repro.analysis.density import DensityReport

        r = DensityReport(self.universe, ("SC",), admitted={"SC": 0})
        assert r.fraction("SC") == 0.0
