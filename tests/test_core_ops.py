"""Tests for the operation vocabulary (R/W/N)."""

import pytest

from repro.core import N, Op, R, W, locations_of


class TestOpConstruction:
    def test_read(self):
        op = R("x")
        assert op.is_read and not op.is_write and not op.is_nop
        assert op.loc == "x"

    def test_write(self):
        op = W(7)
        assert op.is_write
        assert op.loc == 7

    def test_nop(self):
        assert N.is_nop
        assert N.loc is None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Op("X", "x")

    def test_nop_with_location_rejected(self):
        with pytest.raises(ValueError):
            Op("N", "x")

    def test_read_without_location_rejected(self):
        with pytest.raises(ValueError):
            Op("R")


class TestOpQueries:
    def test_reads(self):
        assert R("x").reads("x")
        assert not R("x").reads("y")
        assert not W("x").reads("x")
        assert not N.reads("x")

    def test_writes(self):
        assert W("x").writes("x")
        assert not W("x").writes("y")
        assert not R("x").writes("x")
        assert not N.writes("x")


class TestOpIdentity:
    def test_equality(self):
        assert R("x") == R("x")
        assert R("x") != W("x")
        assert W("x") != W("y")

    def test_hashable(self):
        assert len({R("x"), R("x"), W("x"), N}) == 3

    def test_repr(self):
        assert repr(R("x")) == "R('x')"
        assert repr(N) == "N"


class TestLocationsOf:
    def test_collects_and_sorts(self):
        assert locations_of([R("b"), W("a"), N, R("a")]) == ["a", "b"]

    def test_empty(self):
        assert locations_of([]) == []
        assert locations_of([N, N]) == []

    def test_mixed_types(self):
        # repr-based sort handles heterogeneous location types.
        locs = locations_of([R(1), W("a")])
        assert set(locs) == {1, "a"}
