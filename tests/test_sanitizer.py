"""The in-execution trace sanitizer: catch LC violations at the event.

Three properties anchor the module:

* a fault-injected backer is flagged *during* the run, at the first
  violating read, with a witness of node ids explaining the conflict;
* the sanitizer's verdict agrees with the post-mortem checkers (the
  streaming LC verifier and the batch ``trace_admits_lc``) on every
  trace, faulty or faithful;
* a faithful memory never trips it.
"""

from repro.lang import racy_counter_computation, stencil_computation
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    work_stealing_schedule,
)
from repro.verify import (
    StreamingLCVerifier,
    TraceSanitizer,
    trace_admits_lc,
)


def _run(comp, drop, seed, sanitizer=None):
    sched = work_stealing_schedule(comp, 4, rng=seed)
    mem = BackerMemory(
        drop_reconcile_probability=drop,
        drop_flush_probability=drop,
        rng=seed,
    )
    return execute(sched, mem, sanitizer=sanitizer)


class TestFaultInjection:
    def test_total_fault_flagged_at_first_bad_read(self):
        comp, _ = racy_counter_computation(4, 3)
        flagged = 0
        for seed in range(20):
            san = TraceSanitizer(comp)
            trace = _run(comp, 1.0, seed, sanitizer=san)
            if trace.violation is None:
                continue
            flagged += 1
            v = trace.violation
            # Halting sanitizer: the run stops at the violating event,
            # so the last recorded read IS the flagged one.
            assert trace.reads[-1].node == v.node
            assert v.witness[-1] == v.node
            assert all(0 <= w < comp.num_nodes for w in v.witness)
            # The prefix up to (excluding) the violation was consistent:
            # replaying all but the last event trips nothing.
            replay = TraceSanitizer(comp)
            observed = {e.node: e.observed for e in trace.reads[:-1]}
            order = trace.schedule.execution_order()
            for u in order[: order.index(v.node)]:
                assert (
                    replay.on_node(
                        u,
                        comp.op(u),
                        comp.dag.predecessors(u),
                        observed.get(u),
                    )
                    is None
                )
        assert flagged >= 10, "total fault injection must usually trip"

    def test_faithful_backer_never_flagged(self):
        for comp, _ in (
            racy_counter_computation(4, 3),
            stencil_computation(6, 3),
        ):
            for seed in range(10):
                san = TraceSanitizer(comp)
                trace = _run(comp, 0.0, seed, sanitizer=san)
                assert trace.violation is None
                assert san.consistent_so_far

    def test_serial_memory_never_flagged(self):
        comp, _ = racy_counter_computation(4, 2)
        sched = work_stealing_schedule(comp, 2, rng=0)
        trace = execute(sched, SerialMemory(), sanitizer=TraceSanitizer(comp))
        assert trace.violation is None


class TestAgreement:
    def test_matches_streaming_and_batch_checkers(self):
        """Same verdict as both post-mortem checkers on 180 traces."""
        workloads = [
            racy_counter_computation(4, 3)[0],
            stencil_computation(6, 3)[0],
        ]
        flagged = 0
        for comp in workloads:
            for drop in (0.0, 0.5, 1.0):
                for seed in range(30):
                    trace = _run(comp, drop, seed)
                    batch_ok = trace_admits_lc(trace.partial_observer())
                    stream_v = StreamingLCVerifier.check_trace(trace)
                    san_v = TraceSanitizer.check_trace(trace)
                    assert (san_v is None) == batch_ok
                    assert (stream_v is None) == (san_v is None)
                    if san_v is not None:
                        flagged += 1
                        assert san_v.node == stream_v.node
                        assert san_v.loc == stream_v.loc
        assert flagged >= 40

    def test_halting_run_matches_post_mortem_event(self):
        comp, _ = racy_counter_computation(4, 3)
        for seed in range(10):
            full = _run(comp, 0.7, seed)
            post = TraceSanitizer.check_trace(full)
            live = _run(comp, 0.7, seed, sanitizer=TraceSanitizer(comp))
            if post is None:
                assert live.violation is None
            else:
                assert live.violation is not None
                assert live.violation.node == post.node
                assert live.violation.event_index == post.event_index


class TestViolationShape:
    def test_latches_first_violation(self):
        comp, _ = racy_counter_computation(4, 3)
        san = TraceSanitizer(comp, halt=False)
        trace = _run(comp, 1.0, 1, sanitizer=san)
        if trace.violation is None:
            return  # this seed happened to stay consistent
        first = trace.violation
        # Non-halting: execution ran to completion but the violation
        # stayed latched at the first event.
        assert san.violation is first
        assert len(trace.reads) == sum(
            1 for u in comp.nodes() if comp.op(u).is_read
        )

    def test_witness_is_contradictory_chain(self):
        comp, _ = racy_counter_computation(4, 3)
        for seed in range(20):
            v = TraceSanitizer.check_trace(_run(comp, 0.8, seed))
            if v is None:
                continue
            assert v.node == v.witness[-1]
            assert len(v.witness) >= 2
            assert v.reason


class TestKeepGoing:
    """``keep_going`` mode: every violating event reported, each with
    its own minimal witness, first one matching the halting verdict."""

    def test_collects_all_violations(self):
        comp, _ = racy_counter_computation(4, 3)
        total = 0
        for seed in range(20):
            trace = _run(comp, 1.0, seed)
            violations = TraceSanitizer.collect_violations(trace)
            first = TraceSanitizer.check_trace(trace)
            if first is None:
                assert violations == []
                continue
            total += len(violations)
            assert violations[0].node == first.node
            assert violations[0].loc == first.loc
            assert violations[0].event_index == first.event_index
            # One violation per event, in event order, each witnessed.
            indices = [v.event_index for v in violations]
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)
            for v in violations:
                assert v.witness[-1] == v.node
                assert all(0 <= w < comp.num_nodes for w in v.witness)
                assert v.reason
        assert total >= 20, "total fault injection must violate repeatedly"

    def test_keep_going_forces_halt_off(self):
        comp, _ = racy_counter_computation(2, 2)
        san = TraceSanitizer(comp, keep_going=True)
        assert san.halt is False
        assert TraceSanitizer(comp).halt is True
        assert TraceSanitizer(comp, halt=False).halt is False

    def test_keep_going_live_matches_replay(self):
        comp, _ = racy_counter_computation(4, 3)
        for seed in range(10):
            san = TraceSanitizer(comp, keep_going=True)
            trace = _run(comp, 1.0, seed, sanitizer=san)
            replayed = TraceSanitizer.collect_violations(trace)
            assert [
                (v.node, v.loc, v.event_index) for v in san.violations
            ] == [
                (v.node, v.loc, v.event_index) for v in replayed
            ]

    def test_clean_trace_collects_nothing(self):
        comp, _ = racy_counter_computation(4, 2)
        for seed in range(5):
            trace = _run(comp, 0.0, seed)
            assert TraceSanitizer.collect_violations(trace) == []
