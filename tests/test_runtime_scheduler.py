"""Tests for the greedy and work-stealing schedulers."""

import pytest
from hypothesis import given, settings

from repro.core import Computation, N
from repro.dag import Dag, chain_dag, fork_join_dag
from repro.errors import ScheduleError
from repro.runtime import (
    Schedule,
    greedy_schedule,
    serial_schedule,
    work_stealing_schedule,
)
from tests.conftest import computations


def nop_computation(dag: Dag) -> Computation:
    return Computation(dag, (N,) * dag.num_nodes)


class TestScheduleValidation:
    def test_precedence_violation_rejected(self):
        comp = nop_computation(Dag(2, [(0, 1)]))
        with pytest.raises(ScheduleError):
            Schedule(comp, (0, 0), (0, 0), 1)  # both at t=0 on same proc

    def test_processor_collision_rejected(self):
        comp = nop_computation(Dag(2))
        with pytest.raises(ScheduleError):
            Schedule(comp, (0, 0), (0, 0), 1)

    def test_wrong_lengths_rejected(self):
        comp = nop_computation(Dag(2))
        with pytest.raises(ScheduleError):
            Schedule(comp, (0,), (0,), 1)

    def test_valid_schedule(self):
        comp = nop_computation(Dag(2, [(0, 1)]))
        s = Schedule(comp, (0, 0), (0, 1), 1)
        assert s.makespan == 2


class TestSerialSchedule:
    def test_one_processor(self):
        comp = nop_computation(fork_join_dag(2))
        s = serial_schedule(comp)
        assert s.num_procs == 1
        assert s.makespan == comp.num_nodes

    def test_empty(self):
        comp = nop_computation(Dag(0))
        assert serial_schedule(comp).makespan == 0


class TestGreedy:
    def test_requires_processor(self):
        with pytest.raises(ScheduleError):
            greedy_schedule(nop_computation(Dag(1)), 0)

    def test_chain_ignores_extra_procs(self):
        comp = nop_computation(chain_dag(6))
        s = greedy_schedule(comp, 4, rng=0)
        assert s.makespan == 6  # critical path dominates

    def test_parallel_speedup(self):
        comp = nop_computation(Dag(8))
        s = greedy_schedule(comp, 4, rng=0)
        assert s.makespan == 2  # 8 independent nodes on 4 procs

    def test_graham_bound(self):
        """Greedy is within T1/P + T_inf of optimal (classic bound)."""
        comp = nop_computation(fork_join_dag(4))
        t1 = comp.num_nodes
        # Critical path length of the fork/join skeleton:
        tinf = 1 + max(
            (len(list(comp.dag.ancestors(u))) for u in comp.nodes()),
            default=0,
        )
        for p in (1, 2, 4, 8):
            s = greedy_schedule(comp, p, rng=1)
            assert s.makespan <= t1 / p + tinf

    @given(computations(max_nodes=6))
    @settings(max_examples=40, deadline=None)
    def test_always_valid(self, comp):
        for p in (1, 3):
            greedy_schedule(comp, p, rng=0)  # Schedule validates on init


class TestWorkStealing:
    def test_requires_processor(self):
        with pytest.raises(ScheduleError):
            work_stealing_schedule(nop_computation(Dag(1)), 0)

    @given(computations(max_nodes=6))
    @settings(max_examples=40, deadline=None)
    def test_always_valid(self, comp):
        for p in (1, 2, 4):
            work_stealing_schedule(comp, p, rng=3)

    def test_deterministic_by_seed(self):
        comp = nop_computation(fork_join_dag(3))
        a = work_stealing_schedule(comp, 4, rng=9)
        b = work_stealing_schedule(comp, 4, rng=9)
        assert a.proc_of == b.proc_of and a.start_of == b.start_of

    def test_seed_variation_spreads_work(self):
        comp = nop_computation(fork_join_dag(4))
        placements = {
            work_stealing_schedule(comp, 4, rng=s).proc_of for s in range(5)
        }
        assert len(placements) > 1

    def test_single_proc_serializes(self):
        comp = nop_computation(fork_join_dag(3))
        s = work_stealing_schedule(comp, 1, rng=0)
        assert s.makespan == comp.num_nodes
        assert set(s.proc_of) == {0}

    def test_steals_happen(self):
        comp = nop_computation(Dag(8))
        s = work_stealing_schedule(comp, 4, rng=2)
        assert len(set(s.proc_of)) > 1  # someone stole from proc 0


class TestScheduleQueries:
    def test_execution_order_valid(self):
        comp = nop_computation(fork_join_dag(3))
        s = greedy_schedule(comp, 2, rng=0)
        order = s.execution_order()
        pos = {u: i for i, u in enumerate(order)}
        for (u, v) in comp.dag.edges:
            assert pos[u] < pos[v]

    def test_nodes_on(self):
        comp = nop_computation(Dag(4))
        s = greedy_schedule(comp, 2, rng=0)
        all_nodes = sorted(
            n for p in range(s.num_procs) for n in s.nodes_on(p)
        )
        assert all_nodes == [0, 1, 2, 3]
