"""End-to-end tests for the ``repro serve`` trace-checking service.

Covers the ISSUE's acceptance surface: batch submit → verdicts that
agree with the batch checkers, dedupe hits on duplicate (and
isomorphic) canonical forms, SIGTERM draining in-flight work, and
SIGKILL + journal replay yielding a ``validate_trace``-clean record.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.core import Computation, R, W
from repro.dag import Dag
from repro.io import dump_partial_observer, dump_trace
from repro.runtime import ExecutionTrace, ReadEvent
from repro.runtime.scheduler import Schedule
from repro.serve import (
    CheckOptions,
    TraceCheckService,
    parse_request,
    replay_serve_ledger,
    request_fingerprint,
    run_batch_file,
)

REPO = Path(__file__).resolve().parent.parent


def good_trace():
    """W x → R x observing it: admitted by every model."""
    comp = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
    sched = Schedule(comp, (0, 0), (0, 1), 1)
    return ExecutionTrace(comp, sched, "test", [ReadEvent(1, "x", 0)])


def bad_trace():
    """Serialization cycle (non-identity execution order): rejected."""
    comp = Computation(Dag(3, [(2, 0), (0, 1)]), (W("x"), R("x"), W("x")))
    sched = Schedule(comp, (0, 0, 0), (1, 2, 0), 1)
    return ExecutionTrace(comp, sched, "test", [ReadEvent(1, "x", 2)])


def bad_trace_relabelled():
    """``bad_trace`` under the relabelling 0→1, 1→2, 2→0."""
    comp = Computation(Dag(3, [(0, 1), (1, 2)]), (W("x"), W("x"), R("x")))
    sched = Schedule(comp, (0, 0, 0), (0, 1, 2), 1)
    return ExecutionTrace(comp, sched, "test", [ReadEvent(2, "x", 0)])


def lines_for(*traces):
    return [json.dumps(dump_trace(t)) for t in traces]


# ---------------------------------------------------------------------------
# Request parsing and fingerprinting
# ---------------------------------------------------------------------------


class TestParsing:
    def test_bare_document_uses_defaults(self):
        defaults = CheckOptions(checks=("lc",))
        doc, options = parse_request(
            json.dumps(dump_trace(good_trace())), defaults
        )
        assert doc["format"] == "repro/trace"
        assert options is defaults

    def test_envelope_overrides_options(self):
        defaults = CheckOptions()
        line = json.dumps(
            {
                "document": dump_trace(good_trace()),
                "checks": ["lc"],
                "sanitize": True,
            }
        )
        _, options = parse_request(line, defaults)
        assert options.checks == ("lc",)
        assert options.sanitize is True

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            CheckOptions(checks=("lc", "tso"))

    def test_fingerprint_matches_isomorphic_twins(self):
        from repro.io import load_trace

        opts = CheckOptions()
        key_a, perm_a = request_fingerprint(
            load_trace(dump_trace(bad_trace())), opts
        )
        key_b, perm_b = request_fingerprint(
            load_trace(dump_trace(bad_trace_relabelled())), opts
        )
        assert key_a == key_b
        assert perm_a != perm_b

    def test_fingerprint_separates_different_shapes(self):
        from repro.io import load_trace

        opts = CheckOptions()
        key_good, _ = request_fingerprint(
            load_trace(dump_trace(good_trace())), opts
        )
        key_bad, _ = request_fingerprint(
            load_trace(dump_trace(bad_trace())), opts
        )
        assert key_good != key_bad

    def test_fingerprint_includes_options(self):
        from repro.io import load_trace

        obj = load_trace(dump_trace(good_trace()))
        key_a, _ = request_fingerprint(obj, CheckOptions(checks=("lc",)))
        key_b, _ = request_fingerprint(obj, CheckOptions(checks=("sc",)))
        assert key_a != key_b


# ---------------------------------------------------------------------------
# The service: verdicts, dedupe, witnesses
# ---------------------------------------------------------------------------


class TestService:
    def test_verdicts_agree_with_batch_checkers(self):
        from repro.verify import trace_admits_lc, trace_admits_sc

        traces = [good_trace(), bad_trace()]
        with TraceCheckService(jobs=1) as svc:
            results = svc.check_batch(lines_for(*traces))
        assert len(results) == 2
        for item, trace in zip(results, traces):
            partial = trace.partial_observer()
            assert item.verdict["ok"]
            assert item.verdict["verdicts"]["lc"] == trace_admits_lc(partial)
            assert item.verdict["verdicts"]["sc"] == (
                trace_admits_sc(partial) is not None
            )
            assert item.verdict["admitted"] == trace_admits_lc(partial)

    def test_rejection_carries_translated_witness(self):
        with TraceCheckService(jobs=1) as svc:
            (item,) = svc.check_batch(lines_for(bad_trace()))
        witness = item.verdict["witness"]
        assert witness["node"] == 1
        assert witness["blocks"] == [0, 2]
        assert "write 0" in witness["reason"]
        assert "write 2" in witness["reason"]

    def test_exact_duplicates_dedupe_within_batch(self):
        with TraceCheckService(jobs=1) as svc:
            results = svc.check_batch(lines_for(*([good_trace()] * 5)))
        cached = [r for r in results if r.cached]
        assert len(cached) == 4
        verdicts = {json.dumps(r.verdict["verdicts"]) for r in results}
        assert len(verdicts) == 1

    def test_duplicates_dedupe_across_batches(self):
        with TraceCheckService(jobs=1) as svc:
            svc.check_batch(lines_for(good_trace()))
            (item,) = svc.check_batch(lines_for(good_trace()))
        assert item.cached
        assert svc.cache.hits == 1

    def test_isomorphic_twin_hits_cache_with_remapped_witness(self):
        with TraceCheckService(jobs=1) as svc:
            svc.check_batch(lines_for(bad_trace()))
            (item,) = svc.check_batch(lines_for(bad_trace_relabelled()))
        assert item.cached
        witness = item.verdict["witness"]
        # In the relabelled trace the read is node 2 and the cycle is
        # between writes 1 and 0.
        assert witness["node"] == 2
        assert witness["blocks"] == [1, 0]
        assert "write 1" in witness["reason"]
        assert "write 0" in witness["reason"]

    def test_malformed_lines_fail_item_not_batch(self):
        with TraceCheckService(jobs=1) as svc:
            results = svc.check_batch(
                ["{broken", json.dumps({"format": "nope"})]
                + lines_for(good_trace())
            )
        assert [r.verdict["ok"] for r in results] == [False, False, True]

    def test_zero_capacity_cache_disables_cross_batch_dedupe(self):
        with TraceCheckService(jobs=1, cache_size=0) as svc:
            svc.check_batch(lines_for(good_trace()))
            (item,) = svc.check_batch(lines_for(good_trace()))
        assert not item.cached

    def test_sc_skipped_above_node_limit(self):
        with TraceCheckService(
            jobs=1, options=CheckOptions(sc_node_limit=1)
        ) as svc:
            (item,) = svc.check_batch(lines_for(good_trace()))
        assert item.verdict["verdicts"]["sc"] is None
        assert item.verdict["verdicts"]["lc"] is True

    def test_partial_observer_documents_check(self):
        trace = good_trace()
        line = json.dumps(dump_partial_observer(trace.partial_observer()))
        with TraceCheckService(jobs=1) as svc:
            (item,) = svc.check_batch([line])
        assert item.verdict["kind"] == "partial-observer"
        assert item.verdict["verdicts"]["lc"] is True

    def test_sanitize_and_rules_ride_along(self):
        options = CheckOptions(sanitize=True, rules=("RACE001",))
        with TraceCheckService(jobs=1, options=options) as svc:
            good, bad = svc.check_batch(
                lines_for(good_trace(), bad_trace())
            )
        assert good.verdict["sanitizer"] == []
        assert bad.verdict["sanitizer"]
        assert "findings" in good.verdict

    def test_serve_counters_accumulate(self):
        obs.reset()
        obs.enable()
        try:
            with TraceCheckService(jobs=1) as svc:
                svc.check_batch(
                    lines_for(good_trace(), good_trace(), bad_trace())
                )
            counters = obs.get().counters
            assert counters["serve.items"] == 3
            assert counters["serve.verdicts.admitted"] == 2
            assert counters["serve.verdicts.rejected"] == 1
            assert counters["serve.dedupe.hits"] == 1
            assert counters["serve.dedupe.misses"] == 2
            assert "serve.check_seconds" in obs.get().histograms
        finally:
            obs.reset()


# ---------------------------------------------------------------------------
# Trace propagation: ids on verdicts, journal records, worker spans
# ---------------------------------------------------------------------------


TP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
TID = "0af7651916cd43dd8448eb211c80319c"


class TestTracing:
    def test_inbound_traceparent_echoed_on_every_verdict(self):
        with TraceCheckService(jobs=1) as svc:
            results = svc.check_batch(
                lines_for(good_trace(), bad_trace(), good_trace()),
                traceparent=TP,
            )
        assert [r.trace_id for r in results] == [TID] * 3
        request_ids = [r.request_id for r in results]
        assert all(request_ids)
        assert len(set(request_ids)) == 3  # distinct even for the dupe
        row = results[0].to_json()
        assert row["trace_id"] == TID
        assert row["request_id"] == results[0].request_id

    def test_parse_errors_echo_ids_too(self):
        with TraceCheckService(jobs=1) as svc:
            bad, good = svc.check_batch(
                ["{broken"] + lines_for(good_trace()), traceparent=TP
            )
        assert not bad.verdict["ok"]
        assert bad.trace_id == TID and bad.request_id

    def test_envelope_trace_field_overrides_per_item(self):
        other = "00-" + "c" * 32 + "-" + "d" * 16 + "-01"
        enveloped = json.dumps(
            {"document": dump_trace(bad_trace()), "trace": other}
        )
        with TraceCheckService(jobs=1) as svc:
            plain, routed = svc.check_batch(
                lines_for(good_trace()) + [enveloped], traceparent=TP
            )
        assert plain.trace_id == TID
        assert routed.trace_id == "c" * 32

    def test_generated_ids_when_no_header(self):
        with TraceCheckService(jobs=1) as svc:
            (a,) = svc.check_batch(lines_for(good_trace()))
            (b,) = svc.check_batch(lines_for(good_trace()))
        assert a.trace_id and b.trace_id
        assert a.trace_id != b.trace_id  # one trace per batch

    def test_unsampled_batches_still_echo_ids_but_record_no_spans(self):
        # Head sampling gates the *recording* work, never the ids: an
        # unsampled verdict still correlates with client-side logs.
        obs.reset()
        obs.enable()
        try:
            with TraceCheckService(jobs=1, trace_sample_rate=0.0) as svc:
                (item,) = svc.check_batch(lines_for(good_trace()))
            assert item.to_json()["trace_id"]
            assert item.to_json()["request_id"]
            spans = list(obs.iter_trace_spans(obs.get().to_dict()))
            assert all("trace_id" not in s["attrs"] for s in spans)
        finally:
            obs.reset()

    def test_worker_spans_graft_across_the_fork_boundary(self):
        obs.reset()
        obs.enable()
        try:
            with TraceCheckService(jobs=2) as svc:
                svc.check_batch(
                    lines_for(good_trace(), bad_trace()), traceparent=TP
                )
            spans = list(obs.iter_trace_spans(obs.get().to_dict()))
            checks = [s for s in spans if s["name"] == "serve.check"]
            assert len(checks) == 2  # one per unique fingerprint
            by_span = {
                s["attrs"]["span_id"]: s
                for s in spans
                if s["attrs"].get("span_id")
            }
            me = os.getpid()
            for sp in checks:
                attrs = sp["attrs"]
                assert attrs["trace_id"] == TID
                assert attrs["pid"] != me  # measured in the worker
                parent = by_span[attrs["parent_span_id"]]
                assert parent["attrs"]["trace_id"] == TID
        finally:
            obs.reset()

    def test_journal_and_ledger_bucket_by_trace(self, tmp_path):
        from repro.obs.core import set_journal
        from repro.obs.journal import Journal

        path = str(tmp_path / "serve.jsonl")
        obs.reset()
        obs.enable()
        journal = Journal(path)
        set_journal(journal)
        try:
            with TraceCheckService(jobs=1) as svc:
                svc.check_batch(
                    lines_for(good_trace(), bad_trace()), traceparent=TP
                )
                svc.check_batch(lines_for(good_trace()))
        finally:
            journal.close()
            set_journal(None)
            obs.reset()
        records = [
            json.loads(ln) for ln in Path(path).read_text().splitlines()
        ]
        items = [r for r in records if r["kind"] == "serve_item"]
        assert [r["trace_id"] for r in items[:2]] == [TID] * 2
        assert all(r["request_id"] for r in items)
        ledger = replay_serve_ledger(path)
        bucket = ledger["traces"][TID]
        assert bucket["items_accepted"] == 2
        assert bucket["items_done"] == 2
        assert bucket["pending"] == 0
        assert bucket["admitted"] == 1 and bucket["rejected"] == 1
        assert len(ledger["traces"]) == 2  # the headerless batch too


# ---------------------------------------------------------------------------
# Journal: crash replay ledger
# ---------------------------------------------------------------------------


class TestJournal:
    def test_batch_records_replay_to_clean_ledger(self, tmp_path):
        from repro.obs.core import set_journal
        from repro.obs.export import validate_trace
        from repro.obs.journal import Journal, replay_journal

        path = str(tmp_path / "serve.jsonl")
        obs.reset()
        obs.enable()
        journal = Journal(path)
        set_journal(journal)
        try:
            with TraceCheckService(jobs=1) as svc:
                svc.check_batch(lines_for(good_trace(), bad_trace()))
        finally:
            journal.close()
            set_journal(None)
            obs.reset()
        ledger = replay_serve_ledger(path)
        assert ledger["clean"]
        assert ledger["items_accepted"] == 2
        assert ledger["items_done"] == 2
        assert ledger["admitted"] == 1
        assert ledger["rejected"] == 1
        assert ledger["pending"] == 0
        # The replayed collector renders a validate_trace-clean record.
        doc = replay_journal(path).to_trace_dict()
        assert validate_trace(doc) == []

    def test_torn_journal_reports_pending_items(self, tmp_path):
        from repro.obs.core import set_journal
        from repro.obs.journal import Journal

        path = str(tmp_path / "serve.jsonl")
        obs.reset()
        obs.enable()
        journal = Journal(path)
        set_journal(journal)
        try:
            with TraceCheckService(jobs=1) as svc:
                svc.check_batch(lines_for(good_trace(), bad_trace()))
        finally:
            journal.close()
            set_journal(None)
            obs.reset()
        # Simulate a SIGKILL mid-batch: keep the accepted-batch record,
        # drop the second item and the batch-done marker, tear the tail.
        lines = Path(path).read_bytes().splitlines()
        keep = [
            ln
            for ln in lines
            if b"serve_batch_done" not in ln
            and not (b"serve_item" in ln and b'"index": 1' in ln)
            and b"journal_close" not in ln
        ]
        Path(path).write_bytes(b"\n".join(keep) + b"\n" + b'{"kind": "tor')
        ledger = replay_serve_ledger(path)
        assert not ledger["clean"]
        assert ledger["items_accepted"] == 2
        assert ledger["items_done"] == 1
        assert ledger["pending"] == 1
        assert ledger["batches_done"] == 0


# ---------------------------------------------------------------------------
# Offline batch mode
# ---------------------------------------------------------------------------


def test_run_batch_file_roundtrip(tmp_path, capsys):
    batch = tmp_path / "batch.jsonl"
    out = tmp_path / "out.jsonl"
    batch.write_text(
        "\n".join(lines_for(good_trace(), bad_trace(), good_trace())) + "\n"
    )
    with TraceCheckService(jobs=1) as svc:
        code = run_batch_file(svc, str(batch), str(out))
    assert code == 0
    rows = [json.loads(ln) for ln in out.read_text().splitlines()]
    assert [row["index"] for row in rows] == [0, 1, 2]
    assert [row["admitted"] for row in rows] == [True, False, True]
    assert rows[2]["cached"] is True


# ---------------------------------------------------------------------------
# The HTTP front-end (subprocess: real signals, real sockets)
# ---------------------------------------------------------------------------


def _start_server(tmp_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    err_path = tmp_path / "server_err.txt"
    err = open(err_path, "w")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--jobs",
            "1",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=err,
    )
    try:
        deadline = time.monotonic() + 30
        port = None
        while time.monotonic() < deadline:
            text = err_path.read_text()
            for line in text.splitlines():
                if "listening on http://" in line:
                    port = int(line.split(":")[-1].split("/")[0])
                    break
            if port is not None:
                break
            if proc.poll() is not None:
                raise AssertionError(
                    f"server died at startup:\n{text}"
                )
            time.sleep(0.1)
        assert port is not None, "server never announced its port"
        return proc, port
    finally:
        err.close()


def _post(port, body, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/check",
        data=body.encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def test_http_batch_and_sigterm_drain(tmp_path):
    journal = tmp_path / "serve.jsonl"
    proc, port = _start_server(tmp_path, "--journal", str(journal))
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=10
        ) as resp:
            assert json.loads(resp.read())["status"] == "ok"
        body = "\n".join(lines_for(good_trace(), bad_trace(), good_trace()))
        rows = [json.loads(ln) for ln in _post(port, body).splitlines()]
        assert len(rows) == 3
        by_index = {row["index"]: row for row in rows}
        assert by_index[0]["admitted"] is True
        assert by_index[1]["admitted"] is False
        assert by_index[2]["cached"] is True
        # SIGTERM: graceful drain, exit 0, clean journal.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        ledger = replay_serve_ledger(str(journal))
        assert ledger["clean"]
        assert ledger["items_done"] == 3
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_http_sigkill_journal_replays_consistently(tmp_path):
    from repro.obs.export import validate_trace
    from repro.obs.journal import replay_journal

    journal = tmp_path / "serve.jsonl"
    proc, port = _start_server(tmp_path, "--journal", str(journal))
    try:
        body = "\n".join(lines_for(good_trace(), bad_trace()))
        rows = [json.loads(ln) for ln in _post(port, body).splitlines()]
        assert len(rows) == 2
        # SIGKILL: no drain, no journal_close record.
        proc.kill()
        proc.wait(timeout=10)
        ledger = replay_serve_ledger(str(journal))
        assert not ledger["clean"]
        assert ledger["items_accepted"] == 2
        assert ledger["items_done"] == 2
        assert ledger["pending"] == 0
        doc = replay_journal(str(journal)).to_trace_dict()
        assert validate_trace(doc) == []
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_port_zero_binds_ephemeral():
    # The serve front-end depends on MetricsServer-style port-0
    # resolution; make sure the pattern holds for plain sockets too
    # (regression guard for the CI smoke's port parsing).
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    assert s.getsockname()[1] > 0
    s.close()
