"""The performance ledger and its regression gate.

``repro.obs.ledger`` promises (a) records that validate against the
schema and survive a JSONL round-trip byte-for-byte, (b) refusal to
append anything invalid, and (c) a gate whose verdicts are noise-aware:
a genuine slowdown regresses, an improvement is celebrated, jitter
within the history's own MAD never flaps the gate, and quick records
never contaminate full baselines.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    append_records,
    compare_records,
    gate_ledger,
    make_record,
    read_ledger,
    validate_record,
)


def _rec(name="sweep", p50=1.0, jitter=0.0, quick=False, **kw):
    """A synthetic record whose three runs straddle ``p50 ± jitter``."""
    runs = [p50 - jitter, p50, p50 + jitter]
    return make_record(name, runs, quick=quick, **kw)


# ---------------------------------------------------------------------------
# Records: schema, round-trip, refusal
# ---------------------------------------------------------------------------


def test_make_record_is_schema_valid_and_round_trips(tmp_path):
    rec = _rec(counters={"pairs": 510, "note": "dropped", "ok": True})
    assert validate_record(rec) == []
    # Non-numeric counter values are dropped, bools are not numbers.
    assert rec["counters"] == {"pairs": 510}
    path = tmp_path / "ledger.jsonl"
    assert append_records(str(path), [rec]) == 1
    assert read_ledger(str(path), strict=True) == [rec]
    # Appending accumulates; order is preserved.
    rec2 = _rec(p50=2.0)
    append_records(str(path), [rec2])
    assert read_ledger(str(path)) == [rec, rec2]


def test_make_record_rejects_empty_runs():
    with pytest.raises(ValueError):
        make_record("empty", [])


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.pop("benchmark"),
        lambda r: r.pop("wall_seconds"),
        lambda r: r.__setitem__("schema", 99),
        lambda r: r["wall_seconds"].pop("p50"),
        lambda r: r["wall_seconds"].__setitem__("p50", "fast"),
        lambda r: r.__setitem__("counters", ["not", "a", "dict"]),
        lambda r: r.__setitem__("timestamp", 12345),
    ],
)
def test_validate_record_rejects_mutations(mutate):
    rec = _rec()
    mutate(rec)
    assert validate_record(rec) != []


def test_append_refuses_invalid_batch_without_partial_write(tmp_path):
    path = tmp_path / "ledger.jsonl"
    good, bad = _rec(), _rec()
    del bad["wall_seconds"]
    with pytest.raises(ValueError):
        append_records(str(path), [good, bad])
    assert not path.exists() or path.read_text() == ""


def test_read_ledger_skips_garbage_unless_strict(tmp_path):
    path = tmp_path / "ledger.jsonl"
    rec = _rec()
    path.write_text(
        "not json at all\n"
        + json.dumps({"schema": 1, "benchmark": "broken"})
        + "\n"
        + json.dumps(rec, sort_keys=True)
        + "\n"
    )
    assert read_ledger(str(path)) == [rec]
    with pytest.raises(ValueError):
        read_ledger(str(path), strict=True)


# ---------------------------------------------------------------------------
# The gate: verdicts on synthetic histories
# ---------------------------------------------------------------------------


def _history(p50s, name="sweep", jitter=0.0):
    return [_rec(name, p50=p, jitter=jitter) for p in p50s]


def test_gate_flags_a_clear_regression():
    history = _history([1.0, 1.02, 0.98, 1.01, 0.99])
    report = compare_records(history, [_rec(p50=2.0)])
    (delta,) = report.deltas
    assert delta.verdict == "regressed"
    assert not report.ok
    assert delta.baseline_p50 == pytest.approx(1.0, rel=0.05)


def test_gate_celebrates_an_improvement():
    history = _history([1.0, 1.02, 0.98, 1.01, 0.99])
    report = compare_records(history, [_rec(p50=0.5)])
    (delta,) = report.deltas
    assert delta.verdict == "improved"
    assert report.ok


def test_gate_stays_flat_on_an_unchanged_rerun():
    history = _history([1.0, 1.02, 0.98, 1.01, 0.99])
    report = compare_records(history, [_rec(p50=1.01)])
    assert report.deltas[0].verdict == "flat"
    assert report.ok


def test_gate_tolerates_noisy_histories():
    # Swings of ±40% around 0.8s: the MAD guard keeps a 1.1s sample —
    # nominally +37% over the median — from tripping the gate.
    history = _history([0.5, 1.1, 0.6, 1.0, 0.8])
    report = compare_records(history, [_rec(p50=1.1)])
    assert report.deltas[0].verdict == "flat"
    assert report.ok


def test_gate_marks_unknown_benchmarks_new():
    report = compare_records([], [_rec("never-seen", p50=1.0)])
    (delta,) = report.deltas
    assert delta.verdict == "new"
    assert delta.baseline_p50 is None
    assert report.ok


def test_gate_never_compares_quick_against_full():
    # A full history must not baseline a quick candidate (and vice
    # versa): quick problem sizes are 10x smaller, every quick run would
    # read "improved" and every full run "regressed".
    history = _history([1.0] * 5)
    report = compare_records(history, [_rec(p50=0.1, quick=True)])
    assert report.deltas[0].verdict == "new"


def test_gate_never_compares_across_kernel_backends():
    # A wall-clock baseline recorded under one bitset backend says
    # nothing about the other (forced numpy is a measured ~4x slowdown
    # on the sweep battery): history with a different env.kernel must
    # be invisible, exactly like the quick/full and cpu-affinity splits.
    history = _history([1.0] * 5)
    for rec in history:
        rec["env"]["kernel"] = "python"
    cand = _rec(p50=4.0)
    cand["env"]["kernel"] = "numpy"
    report = compare_records(history, [cand])
    assert report.deltas[0].verdict == "new"
    assert report.ok
    # Same backend: the 4x blowup is caught again.
    cand["env"]["kernel"] = "python"
    assert compare_records(history, [cand]).deltas[0].verdict == "regressed"


def test_gate_treats_legacy_records_as_python_kernel():
    # Records written before the kernel fingerprint existed all ran the
    # pure-python backend; they baseline python candidates, not numpy.
    history = _history([1.0] * 5)
    for rec in history:
        rec["env"].pop("kernel", None)
        rec["env"].pop("numpy", None)
    assert validate_record(history[0]) == []
    cand = _rec(p50=1.01)
    cand["env"]["kernel"] = "python"
    assert compare_records(history, [cand]).deltas[0].verdict == "flat"
    cand["env"]["kernel"] = "numpy"
    assert compare_records(history, [cand]).deltas[0].verdict == "new"


def test_validate_rejects_blank_kernel():
    rec = _rec()
    rec["env"]["kernel"] = ""
    assert any("kernel" in e for e in validate_record(rec))
    rec["env"]["kernel"] = 7
    assert any("kernel" in e for e in validate_record(rec))


def test_gate_window_uses_only_recent_history():
    # Ancient 10s records fell out of the window: only the last 5 count.
    history = _history([10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 1.0])
    report = compare_records(history, [_rec(p50=1.05)], window=5)
    assert report.deltas[0].verdict == "flat"


def test_gate_ledger_last_record_shape(tmp_path):
    # Without a candidate file the newest record per benchmark is the
    # candidate and the earlier ones are its history.
    path = tmp_path / "ledger.jsonl"
    append_records(str(path), _history([1.0, 1.0, 1.0, 1.0]) + [_rec(p50=3.0)])
    report = gate_ledger(str(path))
    assert [d.verdict for d in report.deltas] == ["regressed"]

    report = gate_ledger(str(path), threshold=250.0)
    assert report.ok, "a huge threshold must swallow the regression"


def test_gate_ledger_candidate_file_shape(tmp_path):
    history_path = tmp_path / "ledger.jsonl"
    fresh_path = tmp_path / "fresh.jsonl"
    append_records(str(history_path), _history([1.0] * 5))
    append_records(str(fresh_path), [_rec(p50=0.99)])
    report = gate_ledger(str(history_path), candidate_path=str(fresh_path))
    assert [d.verdict for d in report.deltas] == ["flat"]


def test_gate_report_renders_both_formats():
    history = _history([1.0] * 5)
    report = compare_records(
        history, [_rec(p50=2.0)], window=DEFAULT_WINDOW,
        threshold=DEFAULT_THRESHOLD,
    )
    text = report.render()
    md = report.render(markdown=True)
    assert "regressed" in text and "regression(s)" in text
    assert md.startswith("| benchmark |") and "regressed" in md


# ---------------------------------------------------------------------------
# Environment fingerprint: affinity-aware CPU count
# ---------------------------------------------------------------------------


def test_available_cpus_prefers_scheduler_affinity():
    import os

    from repro.obs.ledger import available_cpus

    got = available_cpus()
    assert got >= 1
    if hasattr(os, "sched_getaffinity"):
        assert got == len(os.sched_getaffinity(0))


def test_env_metadata_records_both_cpu_counts():
    import os

    from repro.obs.ledger import env_metadata

    env = env_metadata()
    assert env["cpus"] >= 1
    assert env["cpus_logical"] == (os.cpu_count() or 1)
    # Affinity can only shrink the visible set, never grow it.
    assert env["cpus"] <= env["cpus_logical"]


def test_validate_accepts_records_without_cpus_logical():
    """Schema-v1 records written before the affinity fix stay valid."""
    rec = _rec()
    del rec["env"]["cpus_logical"]
    assert validate_record(rec) == []


def test_validate_rejects_bad_cpus_logical():
    rec = _rec()
    rec["env"]["cpus_logical"] = "many"
    assert any("cpus_logical" in e for e in validate_record(rec))
    rec["env"]["cpus_logical"] = 0
    assert any("cpus_logical" in e for e in validate_record(rec))


def test_gate_absolute_noise_floor_shields_tiny_benchmarks():
    """A 25%+ swing that is only milliseconds of wall clock is noise,
    not a regression — and symmetrically not an improvement."""
    history = _history([0.008, 0.008, 0.008, 0.008, 0.008])
    (up,) = compare_records(history, [_rec(p50=0.012)]).deltas
    assert up.verdict == "flat"
    (down,) = compare_records(history, [_rec(p50=0.004)]).deltas
    assert down.verdict == "flat"
    # Past the floor the relative threshold bites again.
    (real,) = compare_records(history, [_rec(p50=0.020)]).deltas
    assert real.verdict == "regressed"
