"""Tests for observer functions (Definition 2)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    Computation,
    N,
    ObserverFunction,
    R,
    W,
    candidate_values,
    count_observer_functions,
)
from repro.dag import Dag
from repro.errors import InvalidObserverError
from tests.conftest import computations, computations_with_observer


def make_comp():
    # 0: W(x) -> 1: R(x); 2: W(x) concurrent.
    return Computation(Dag(3, [(0, 1)]), (W("x"), R("x"), W("x")))


class TestValidation:
    def test_valid(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 0, 2)})
        assert phi.value("x", 1) == 0

    def test_condition_21_observed_must_write(self):
        # Node 1 (a read) cannot be observed.
        c = Computation(Dag(2), (R("x"), R("x")))
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (None, 0)})

    def test_condition_21_wrong_location(self):
        c = Computation(Dag(2), (W("y"), R("x")))
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (None, 0)})

    def test_condition_22_no_forward_observation(self):
        # Node 0 precedes node 1 and must not observe it.
        c = Computation(Dag(2, [(0, 1)]), (R("x"), W("x")))
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (1, 1)})

    def test_condition_22_concurrent_ok(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 2, 2)})  # read observes concurrent write
        assert phi.value("x", 1) == 2

    def test_condition_23_write_observes_itself(self):
        c = make_comp()
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (2, 0, 2)})  # write 0 observing write 2

    def test_condition_23_write_not_bottom(self):
        c = Computation(Dag(1), (W("x"),))
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (None,)})

    def test_out_of_range_node(self):
        c = make_comp()
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (0, 99, 2)})

    def test_row_length_mismatch(self):
        c = make_comp()
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {"x": (0, 0)})

    def test_implicit_row_with_writes_rejected(self):
        # Omitting the row of a written location would violate 2.3.
        c = Computation(Dag(1), (W("x"),))
        with pytest.raises(InvalidObserverError):
            ObserverFunction(c, {}, validate=False)

    def test_unknown_location_row_is_bottom(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 0, 2)})
        assert phi.value("zzz", 0) is None
        assert phi.row("zzz") == (None, None, None)

    def test_bottom_input(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 0, 2)})
        assert phi.value("x", None) is None
        assert phi("x", None) is None


class TestCandidates:
    def test_write_must_self_observe(self):
        c = make_comp()
        assert candidate_values(c, "x", 0) == [0]

    def test_read_candidates(self):
        c = make_comp()
        # Node 1 may observe ⊥, its predecessor 0, or the concurrent 2.
        assert candidate_values(c, "x", 1) == [None, 0, 2]

    def test_forward_write_excluded(self):
        c = Computation(Dag(2, [(0, 1)]), (R("x"), W("x")))
        assert candidate_values(c, "x", 0) == [None]

    def test_nop_candidates(self):
        c = Computation(Dag(2), (N, W("x")))
        assert candidate_values(c, "x", 0) == [None, 1]


class TestEnumeration:
    def test_count_matches_enumeration(self):
        c = make_comp()
        phis = list(ObserverFunction.enumerate_all(c))
        assert len(phis) == count_observer_functions(c)
        assert len(set(phis)) == len(phis)

    def test_no_location_computation(self):
        c = Computation(Dag(2, [(0, 1)]), (N, N))
        phis = list(ObserverFunction.enumerate_all(c))
        assert len(phis) == 1

    def test_empty_computation(self):
        from repro.core import EMPTY_COMPUTATION

        phis = list(ObserverFunction.enumerate_all(EMPTY_COMPUTATION))
        assert len(phis) == 1

    @given(computations(max_nodes=4))
    @settings(max_examples=30)
    def test_all_enumerated_valid(self, c):
        for phi in ObserverFunction.enumerate_all(c):
            # Re-validate explicitly: must not raise.
            ObserverFunction(c, {loc: phi.row(loc) for loc in c.locations})


class TestStructure:
    def test_fibers_partition(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 2, 2)})
        fibers = phi.fibers("x")
        assert fibers == {0: 0b001, 2: 0b110}

    def test_fibers_with_bottom(self):
        c = Computation(Dag(2), (R("x"), W("x")))
        phi = ObserverFunction(c, {"x": (None, 1)})
        assert phi.fibers("x") == {None: 0b01, 1: 0b10}

    def test_restrict_to_prefix(self):
        big = Computation(Dag(3, [(0, 1), (1, 2)]), (W("x"), R("x"), R("x")))
        small = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        phi = ObserverFunction(big, {"x": (0, 0, 0)})
        sub = phi.restrict_to_prefix(small)
        assert sub.computation == small
        assert sub.row("x") == (0, 0)

    def test_restrict_non_prefix_rejected(self):
        big = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        other = Computation(Dag(1), (R("x"),))
        phi = ObserverFunction(big, {"x": (0, 0)})
        with pytest.raises(InvalidObserverError):
            phi.restrict_to_prefix(other)

    def test_extends(self):
        big = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        small = Computation(Dag(1), (W("x"),))
        phi_big = ObserverFunction(big, {"x": (0, 0)})
        phi_small = ObserverFunction(small, {"x": (0,)})
        assert phi_big.extends(phi_small)
        assert not phi_small.extends(phi_big)

    def test_with_value(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 0, 2)})
        phi2 = phi.with_value("x", 1, 2)
        assert phi2.value("x", 1) == 2
        assert phi.value("x", 1) == 0  # original untouched

    def test_with_value_validates(self):
        c = make_comp()
        phi = ObserverFunction(c, {"x": (0, 0, 2)})
        with pytest.raises(InvalidObserverError):
            phi.with_value("x", 0, 2)

    def test_relabel(self):
        c = Computation(Dag(3, [(0, 2)]), (W("x"), N, R("x")))
        phi = ObserverFunction(c, {"x": (0, None, 0)})
        sub, old = c.restrict(0b101)
        moved = phi.relabel(sub, old)
        assert moved.row("x") == (0, 0)

    def test_relabel_dangling_reference(self):
        c = Computation(Dag(3), (W("x"), R("x"), N))
        phi = ObserverFunction(c, {"x": (0, 0, None)})
        sub, old = c.restrict(0b110)  # drop the observed write 0
        with pytest.raises(InvalidObserverError):
            phi.relabel(sub, old)


class TestEqualityHashing:
    def test_equal_ignores_bottom_rows(self):
        c = Computation(Dag(1), (R("x"),))
        a = ObserverFunction(c, {"x": (None,)})
        b = ObserverFunction(c, {})
        assert a == b and hash(a) == hash(b)

    def test_unequal_values(self):
        c = make_comp()
        a = ObserverFunction(c, {"x": (0, 0, 2)})
        b = ObserverFunction(c, {"x": (0, 2, 2)})
        assert a != b


@given(computations_with_observer(max_nodes=5))
@settings(max_examples=50)
def test_drawn_observers_are_valid(pair):
    comp, phi = pair
    # Constructed with validation on in the strategy; double check rows.
    for loc in comp.locations:
        row = phi.row(loc)
        for u in comp.nodes():
            if comp.op(u).writes(loc):
                assert row[u] == u
