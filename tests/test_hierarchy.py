"""Tests for the multi-level BACKER hierarchy and its telemetry.

Four layers of guarantees:

* **Config** — shapes validate, round-trip through the JSON schema, and
  resolve from presets.
* **Protocol** — the flat preset is observationally identical to the
  flat :class:`~repro.runtime.backer.BackerMemory`; every faithful
  hierarchy execution (random shapes × random small computations) is
  location consistent under both the streaming and the batch checker.
* **Faults** — a dropped reconcile or flush at *any* level of any
  preset loses a masked write on the deterministic producer/consumer
  scenario, and the streaming checker rejects it with a witness.
* **Telemetry** — per-level counters and miss-latency histograms land
  in ``repro.obs`` (and render to Prometheus), miss latencies are
  monotone in depth, false sharing is structurally zero at unit lines
  and attributed to location pairs otherwise, and the Chrome exporter
  emits one named track per (processor, level).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import Computation, R, W
from repro.dag import Dag
from repro.obs import export_chrome, render_prometheus
from repro.runtime import (
    BackerMemory,
    HIERARCHY_PRESETS,
    HierarchicalBackerMemory,
    HierarchyConfig,
    LevelConfig,
    execute,
    work_stealing_schedule,
)
from repro.runtime.hier_sweep import (
    SWEEP_WORKLOADS,
    fault_probe,
    hier_sweep,
    render_sweep_table,
    resolve_shape,
    sweep_workload,
)
from repro.verify import trace_admits_lc
from repro.verify.streaming import StreamingLCVerifier
from tests.conftest import computations


@pytest.fixture(autouse=True)
def _clean_global_collector():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Configuration schema
# ---------------------------------------------------------------------------


class TestConfig:
    def test_level_validation(self):
        with pytest.raises(ValueError):
            LevelConfig(capacity=0)
        with pytest.raises(ValueError):
            LevelConfig(line_size=0)
        with pytest.raises(ValueError):
            LevelConfig(latency=0)
        LevelConfig(capacity=None, line_size=1, latency=1)  # ok

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(levels=())
        with pytest.raises(ValueError):
            HierarchyConfig(levels=(LevelConfig(),), memory_latency=0)

    def test_round_trip(self):
        cfg = HIERARCHY_PRESETS["l1l2l3"]
        doc = json.loads(json.dumps(cfg.to_dict()))
        again = HierarchyConfig.from_dict(doc)
        assert again == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            HierarchyConfig.from_dict({"levels": [{}], "oops": 1})
        with pytest.raises(ValueError, match="unknown"):
            LevelConfig.from_dict({"capacity": 4, "oops": 1})

    def test_preset_lookup(self):
        assert HierarchyConfig.preset("flat").depth == 1
        assert HierarchyConfig.preset("l1l2l3").depth == 3
        with pytest.raises(ValueError, match="unknown hierarchy preset"):
            HierarchyConfig.preset("l9")

    def test_constructor_accepts_name_dict_and_default(self):
        assert HierarchicalBackerMemory("l1").config.name == "l1"
        doc = HIERARCHY_PRESETS["l1l2"].to_dict()
        assert HierarchicalBackerMemory(doc).config.depth == 2
        assert HierarchicalBackerMemory().config.name == "l1l2"

    def test_fault_level_bounds(self):
        with pytest.raises(ValueError, match="fault_level"):
            HierarchicalBackerMemory("l1", fault_level=2)

    def test_resolve_shape_file(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps(HIERARCHY_PRESETS["l1"].to_dict()))
        assert resolve_shape(f"@{path}") == HIERARCHY_PRESETS["l1"]
        assert resolve_shape("flat") == HIERARCHY_PRESETS["flat"]


# ---------------------------------------------------------------------------
# Protocol correctness
# ---------------------------------------------------------------------------


def _workload(name: str) -> Computation:
    return sweep_workload(name, quick=True)


class TestFlatParity:
    """The flat preset (one unbounded unit-line level) *is* BackerMemory."""

    @pytest.mark.parametrize("workload", sorted(SWEEP_WORKLOADS))
    def test_observed_values_identical(self, workload):
        comp = _workload(workload)
        sched = work_stealing_schedule(comp, 3, rng=7)
        flat_trace = execute(sched, HierarchicalBackerMemory("flat"))
        backer_trace = execute(sched, BackerMemory())
        assert [
            (ev.node, ev.loc, ev.observed) for ev in flat_trace.reads
        ] == [(ev.node, ev.loc, ev.observed) for ev in backer_trace.reads]


class TestFaithfulLC:
    @pytest.mark.parametrize("preset", sorted(HIERARCHY_PRESETS))
    @pytest.mark.parametrize("workload", sorted(SWEEP_WORKLOADS))
    def test_presets_verify_on_workloads(self, preset, workload):
        comp = _workload(workload)
        sched = work_stealing_schedule(comp, 3, rng=1)
        trace = execute(sched, HierarchicalBackerMemory(preset))
        assert StreamingLCVerifier.check_trace(trace) is None

    @settings(max_examples=60, deadline=None)
    @given(
        comp=computations(max_nodes=6, locations=("x", "y"), include_nop=True),
        preset=st.sampled_from(sorted(HIERARCHY_PRESETS)),
        procs=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_random_runs_always_lc(self, comp, preset, procs, seed):
        """The property the sweep leans on: faithful ⇒ LC, any shape."""
        sched = work_stealing_schedule(comp, procs, rng=seed)
        trace = execute(sched, HierarchicalBackerMemory(preset))
        assert StreamingLCVerifier.check_trace(trace) is None
        assert trace_admits_lc(trace.partial_observer())


def _fault_scenario():
    comp = Computation(Dag(3, [(0, 2), (1, 2)]), (R("x"), W("x"), R("x")))
    from repro.runtime import Schedule

    return comp, Schedule(comp, (1, 0, 1), (0, 1, 2), 2)


class TestFaultInjection:
    @pytest.mark.parametrize("preset", sorted(HIERARCHY_PRESETS))
    @pytest.mark.parametrize("mode", ["reconcile", "flush"])
    def test_dropped_message_caught_at_every_level(self, preset, mode):
        shape = HIERARCHY_PRESETS[preset]
        comp, sched = _fault_scenario()
        for level in range(1, shape.depth + 1):
            kwargs = {f"drop_{mode}_probability": 1.0}
            mem = HierarchicalBackerMemory(
                shape, fault_level=level, rng=0, **kwargs
            )
            trace = execute(sched, mem)
            violation = StreamingLCVerifier.check_trace(trace)
            assert violation is not None, (
                f"dropped {mode} at L{level} of {preset} must lose the "
                "masked write"
            )
            assert violation.reason  # a rendered witness, not a bare flag
            dropped = (
                mem.stats.dropped_reconciles
                if mode == "reconcile"
                else mem.stats.dropped_flushes
            )
            assert dropped > 0

    def test_fault_probe_records_rejection(self):
        record = fault_probe(HIERARCHY_PRESETS["l1l2"], 2, "flush")
        assert record["faithful"] is False
        assert record["lc_verified"] is False
        assert record["violation"]

    def test_faithful_probe_scenario_passes(self):
        comp, sched = _fault_scenario()
        trace = execute(sched, HierarchicalBackerMemory("l1l2"))
        assert StreamingLCVerifier.check_trace(trace) is None


# ---------------------------------------------------------------------------
# Cache mechanics
# ---------------------------------------------------------------------------


class TestCacheMechanics:
    def test_lru_eviction_respects_capacity(self):
        cfg = HierarchyConfig(
            levels=(LevelConfig(capacity=2, line_size=1, latency=1),),
            name="tiny",
        )
        mem = HierarchicalBackerMemory(cfg)
        mem.attach(1)
        for i, loc in enumerate(("a", "b", "c")):
            mem.write(0, i, loc)
        cached = mem.cached_locations(0, 0)
        assert cached == {"b", "c"}  # "a" was LRU
        assert mem.stats.levels[0].evictions == 1
        # The evicted dirty value went to the store, not nowhere.
        assert mem._main["a"] == 0

    def test_own_write_visible_through_stack(self):
        mem = HierarchicalBackerMemory("l1l2l3")
        mem.attach(1)
        mem.write(0, 1, "x")
        assert mem.read(0, 2, "x") == 1

    def test_deep_hit_promotes_to_l1(self):
        mem = HierarchicalBackerMemory("l1l2")
        mem.attach(2)
        mem.write(0, 1, "x")
        mem.node_completed(0, 1, True)  # reconcile to store
        mem.node_starting(1, 2, True)  # p1 flush (empty)
        assert mem.read(1, 2, "x") == 1  # store fetch fills L1 and L2
        assert mem.stats.memory_fetches == 1
        assert "x" in mem.cached_locations(1, 0)
        assert "x" in mem.cached_locations(1, 1)
        assert mem.read(1, 3, "x") == 1  # now an L1 hit
        assert mem.stats.levels[0].hits == 1

    def test_miss_latency_monotone_across_levels(self):
        comp = _workload("fib")
        sched = work_stealing_schedule(comp, 3, rng=2)
        mem = HierarchicalBackerMemory("l1l2l3")
        execute(sched, mem)
        p50s = [
            ls.miss_latency.p50
            for ls in mem.stats.levels
            if ls.miss_latency.count
        ]
        assert len(p50s) >= 2
        assert p50s == sorted(p50s), "deeper misses must cost more"

    def test_stats_message_accounting(self):
        comp = _workload("racy")
        sched = work_stealing_schedule(comp, 3, rng=3)
        mem = HierarchicalBackerMemory("l1l2")
        execute(sched, mem)
        st = mem.stats
        assert st.fetches == st.memory_fetches
        assert st.writebacks == st.levels[-1].writebacks
        assert st.data_messages == sum(
            ls.fetches + ls.writebacks for ls in st.levels
        )
        assert st.control_messages == st.reconciles + st.flushes
        assert st.messages == st.data_messages + st.control_messages
        assert st.reconciles > 0 and st.flushes > 0


# ---------------------------------------------------------------------------
# False sharing
# ---------------------------------------------------------------------------


class TestFalseSharing:
    def _shape(self, line_size: int) -> HierarchyConfig:
        return HierarchyConfig(
            levels=(LevelConfig(capacity=4, line_size=line_size, latency=1),),
            name=f"line{line_size}",
        )

    def _drive(self, line_size: int) -> HierarchicalBackerMemory:
        # p0 repeatedly rewrites "b" while p1 rereads "a"; with a and b
        # on one line every p1 refetch is caused by b alone.
        mem = HierarchicalBackerMemory(self._shape(line_size))
        mem.attach(2)
        mem.write(0, 0, "a")
        mem.write(0, 1, "b")
        mem.node_completed(0, 1, True)
        node = 2
        for _round in range(4):
            mem.node_starting(1, node, True)
            mem.read(1, node, "a")
            node += 1
            mem.write(0, node, "b")
            mem.node_completed(0, node, True)
            node += 1
        return mem

    def test_zero_at_unit_lines(self):
        mem = self._drive(1)
        assert mem.stats.false_sharing_total == 0
        assert mem.stats.false_sharing_pairs == {}

    def test_counted_and_attributed_at_shared_lines(self):
        mem = self._drive(2)
        assert mem.stats.false_sharing_total > 0
        ((level, pair), count), *_ = sorted(
            mem.stats.false_sharing_pairs.items()
        )
        assert level == 0
        assert pair == ("a", "b")
        assert count == mem.stats.false_sharing_total
        top = mem.stats.top_pairs()
        assert top[0] == (0, ("a", "b"), count)

    def test_true_miss_not_counted(self):
        # The requested location itself changed: a true miss, no blame.
        mem = HierarchicalBackerMemory(self._shape(2))
        mem.attach(2)
        mem.write(0, 0, "a")
        mem.node_completed(0, 0, True)
        mem.node_starting(1, 1, True)
        assert mem.read(1, 1, "a") == 0
        mem.write(0, 2, "a")
        mem.node_completed(0, 2, True)
        mem.node_starting(1, 3, True)
        assert mem.read(1, 3, "a") == 2
        assert mem.stats.false_sharing_total == 0

    def test_sweep_shows_line_size_effect(self):
        """The acceptance-criterion experiment: fs shrinks to 0 at line 1."""
        comp = _workload("fib")
        sched = work_stealing_schedule(comp, 4, rng=0)
        by_line = {}
        for line_size in (1, 8):
            mem = HierarchicalBackerMemory(
                HierarchyConfig(
                    levels=(
                        LevelConfig(capacity=8, line_size=line_size, latency=1),
                    ),
                    name=f"line{line_size}",
                )
            )
            execute(sched, mem)
            by_line[line_size] = mem.stats.false_sharing_total
        assert by_line[1] == 0
        assert by_line[8] > 0


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


class TestObsIntegration:
    def _run_instrumented(self, preset: str = "l1l2"):
        obs.enable()
        comp = _workload("fib")
        sched = work_stealing_schedule(comp, 3, rng=5)
        mem = HierarchicalBackerMemory(preset)
        execute(sched, mem)
        return mem

    def test_counters_and_histograms_published(self):
        mem = self._run_instrumented()
        o = obs.get()
        for k in (1, 2):
            for metric in ("fetches", "hits", "writebacks", "evictions"):
                assert f"hier.L{k}.{metric}" in o.counters
            assert f"hier.L{k}.miss_latency" in o.histograms
        assert o.counters["hier.L1.fetches"] == mem.stats.levels[0].fetches
        assert (
            o.histograms["hier.L1.miss_latency"].count
            == mem.stats.levels[0].miss_latency.count
        )
        assert o.counters["hier.reconciles"] == mem.stats.reconciles
        assert o.counters["hier.flushes"] == mem.stats.flushes

    def test_prometheus_rendering(self):
        self._run_instrumented()
        text = render_prometheus(obs.get())
        assert "repro_hier_L1_fetches" in text
        assert "repro_hier_L2_miss_latency" in text

    def test_chrome_trace_has_level_tracks(self):
        self._run_instrumented()
        doc = json.loads(export_chrome(obs.get()))
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        }
        tracks = {n for n in names if n.startswith("hier p")}
        assert len(tracks) >= 2, f"want per-(proc, level) tracks, got {names}"
        levels = {n.rsplit("L", 1)[-1] for n in tracks}
        assert len(levels) >= 2, "tracks must span at least two levels"

    def test_publish_obs_noop_when_disabled(self):
        comp = _workload("racy")
        sched = work_stealing_schedule(comp, 2, rng=6)
        mem = HierarchicalBackerMemory("l1")
        execute(sched, mem)
        mem.publish_obs()
        assert obs.get().counters == {}


# ---------------------------------------------------------------------------
# Sweep engine
# ---------------------------------------------------------------------------


class TestSweepEngine:
    def test_quick_sweep_passes_and_streams(self):
        seen = []
        result = hier_sweep(
            [resolve_shape("l1"), resolve_shape("l1l2")],
            ["stencil", "racy"],
            [2],
            quick=True,
            progress=seen.append,
        )
        assert result.ok
        assert result.faithful_runs == 4
        assert result.fault_probes == 2 * (1 + 2)
        assert len(seen) == len(result.records)
        assert result.simulated_ops > 0

    def test_sweep_table_renders(self):
        result = hier_sweep(
            [resolve_shape("l1")], ["racy"], [2], quick=True
        )
        table = render_sweep_table(result)
        assert "racy" in table and "l1" in table
        assert "LC-verified" in table

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep workload"):
            sweep_workload("nope", quick=True)


class TestCli:
    def test_hier_sweep_quick(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "runs.jsonl"
        rc = main(
            [
                "hier",
                "sweep",
                "--quick",
                "--shapes",
                "flat,l1",
                "--workloads",
                "racy",
                "--procs",
                "2",
                "--out",
                str(out_file),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LC-verified" in out
        records = [
            json.loads(line) for line in out_file.read_text().splitlines()
        ]
        faithful = [r for r in records if r["faithful"]]
        probes = [r for r in records if not r["faithful"]]
        assert faithful and probes
        assert all(r["lc_verified"] for r in faithful)
        assert all(not r["lc_verified"] for r in probes)

    def test_run_with_hier_memory(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "run",
                "--program",
                "fib",
                "--size",
                "6",
                "--procs",
                "2",
                "--memory",
                "hier",
                "--hier-shape",
                "l1l2",
            ]
        )
        assert rc == 0

    def test_bad_shape_exits_cleanly(self, capsys):
        from repro.cli import main

        rc = main(["hier", "sweep", "--quick", "--shapes", "l9"])
        assert rc == 2
