"""Tests for Computation (Definition 1) and its structural operations."""

import pytest
from hypothesis import given, settings

from repro.core import EMPTY_COMPUTATION, Computation, N, R, W
from repro.dag import Dag
from repro.errors import InvalidComputationError
from tests.conftest import computations


class TestConstruction:
    def test_basic(self):
        c = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        assert c.num_nodes == 2
        assert c.op(0) == W("x")
        assert c.locations == ("x",)

    def test_length_mismatch(self):
        with pytest.raises(InvalidComputationError):
            Computation(Dag(2), (N,))

    def test_non_op_rejected(self):
        with pytest.raises(InvalidComputationError):
            Computation(Dag(1), ("W(x)",))

    def test_empty(self):
        assert EMPTY_COMPUTATION.is_empty
        assert EMPTY_COMPUTATION.num_nodes == 0
        assert EMPTY_COMPUTATION.locations == ()

    def test_from_edges(self):
        c = Computation.from_edges([W("x"), R("x")], [(0, 1)])
        assert c.precedes(0, 1)

    def test_serial(self):
        c = Computation.serial([W("x"), N, R("x")])
        assert c.precedes(0, 2)
        assert c.dag.num_edges == 2


class TestLocationStructure:
    def setup_method(self):
        self.c = Computation(
            Dag(4, [(0, 1)]), (W("x"), R("x"), W("y"), W("x"))
        )

    def test_writers(self):
        assert self.c.writers("x") == [0, 3]
        assert self.c.writers("y") == [2]
        assert self.c.writers("z") == []

    def test_writers_mask(self):
        assert self.c.writers_mask("x") == 0b1001

    def test_readers(self):
        assert self.c.readers("x") == [1]
        assert self.c.readers("y") == []

    def test_accessors(self):
        assert self.c.accessors("x") == [0, 1, 3]

    def test_locations_sorted(self):
        assert self.c.locations == ("x", "y")


class TestAugment:
    def test_augment_shape(self):
        c = Computation(Dag(2), (W("x"), R("x")))
        a = c.augment(N)
        assert a.num_nodes == 3
        assert a.op(2) == N
        assert a.precedes(0, 2) and a.precedes(1, 2)

    def test_augment_of_empty(self):
        a = EMPTY_COMPUTATION.augment(W("x"))
        assert a.num_nodes == 1
        assert a.writers("x") == [0]

    def test_final_node_property(self):
        c = Computation(Dag(2), (N, N))
        assert c.final_node == 2

    @given(computations(max_nodes=5))
    @settings(max_examples=40)
    def test_original_is_prefix_of_augmentation(self, c):
        assert c.is_prefix_of(c.augment(N))


class TestPrefixRelation:
    def test_identity_prefix(self):
        c = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        assert c.is_prefix_of(c)

    def test_proper_prefix(self):
        big = Computation(Dag(3, [(0, 1), (1, 2)]), (W("x"), R("x"), N))
        small = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        assert small.is_prefix_of(big)
        assert not big.is_prefix_of(small)

    def test_op_mismatch(self):
        big = Computation(Dag(2), (W("x"), N))
        small = Computation(Dag(1), (R("x"),))
        assert not small.is_prefix_of(big)

    def test_edge_mismatch(self):
        big = Computation(Dag(2, [(0, 1)]), (N, N))
        small = Computation(Dag(2), (N, N))
        assert not small.is_prefix_of(big)  # missing inner edge

    def test_backward_edge_blocks_prefix(self):
        # New node pointing INTO the prefix violates predecessor closure.
        big = Computation(Dag(2, [(1, 0)]), (N, N))
        small = Computation(Dag(1), (N,))
        assert not small.is_prefix_of(big)

    def test_empty_is_prefix_of_all(self):
        c = Computation(Dag(2, [(0, 1)]), (N, N))
        assert EMPTY_COMPUTATION.is_prefix_of(c)


class TestExtensions:
    def test_extensions_count(self):
        c = Computation(Dag(2), (N, N))
        exts = list(c.extensions_by(R("x")))
        assert len(exts) == 4  # 2^2 predecessor subsets

    def test_extensions_are_extensions(self):
        c = Computation(Dag(2, [(0, 1)]), (W("x"), N))
        for ext in c.extensions_by(R("x")):
            assert ext.is_extension_of(c)
            assert ext.is_extension_of(c, R("x"))
            assert not ext.is_extension_of(c, W("x"))

    def test_augmentation_among_extensions(self):
        c = Computation(Dag(2), (N, N))
        exts = list(c.extensions_by(N))
        assert c.augment(N) in exts

    def test_is_extension_wrong_size(self):
        c = Computation(Dag(2), (N, N))
        assert not c.is_extension_of(c)


class TestRestrict:
    def test_restrict_prefix(self):
        c = Computation(Dag(3, [(0, 1), (1, 2)]), (W("x"), R("x"), N))
        sub, old = c.restrict(0b011)
        assert old == [0, 1]
        assert sub.ops == (W("x"), R("x"))
        assert sub.dag.edges == {(0, 1)}

    def test_restrict_renumbers(self):
        c = Computation(Dag(3, [(0, 2)]), (W("x"), N, R("x")))
        sub, old = c.restrict(0b101)
        assert old == [0, 2]
        assert sub.dag.edges == {(0, 1)}
        assert sub.ops == (W("x"), R("x"))

    def test_prefix_masks_are_prefixes(self):
        c = Computation(Dag(3, [(0, 1), (0, 2)]), (N, N, N))
        masks = set(c.prefix_masks())
        assert 0 in masks and 0b111 in masks
        assert 0b010 not in masks  # node 1 without its predecessor 0


class TestRelaxations:
    def test_relax(self):
        c = Computation(Dag(2, [(0, 1)]), (N, N))
        r = c.relax([(0, 1)])
        assert r.dag.num_edges == 0
        assert r.ops == c.ops

    def test_relaxations_count(self):
        c = Computation(Dag(3, [(0, 1), (1, 2)]), (N, N, N))
        assert len(list(c.relaxations())) == 4

    def test_relaxations_include_self_and_empty(self):
        c = Computation(Dag(2, [(0, 1)]), (N, N))
        rs = list(c.relaxations())
        assert c in rs
        assert any(r.dag.num_edges == 0 for r in rs)


class TestEqualityHashing:
    def test_equal(self):
        a = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        b = Computation(Dag(2, [(0, 1)]), (W("x"), R("x")))
        assert a == b and hash(a) == hash(b)

    def test_op_difference(self):
        a = Computation(Dag(1), (W("x"),))
        b = Computation(Dag(1), (R("x"),))
        assert a != b

    def test_edge_difference(self):
        a = Computation(Dag(2, [(0, 1)]), (N, N))
        b = Computation(Dag(2), (N, N))
        assert a != b

    def test_usable_in_sets(self):
        a = Computation(Dag(1), (N,))
        b = Computation(Dag(1), (N,))
        assert len({a, b}) == 1
