"""The parallel sweep engine: sharding, dispatch, and serial equivalence.

The engine's contract is that the process-pool path is *bit-identical*
to the serial sweep: shards partition the canonical enumeration order,
specs pickle cleanly into worker processes, and merges fold shard
results back in order.  These tests pin each piece on n ≤ 4 universes
(small enough to cross-check against direct serial loops), forcing the
pool with ``parallel_threshold=0`` where the universes would otherwise
demote to the in-process fallback.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro import obs
from repro._caching import caches_enabled, sweep_caching
from repro.core.ops import N as NOP, R
from repro.errors import ConfigError
from repro.models import (
    LC,
    NN,
    SC,
    WW,
    Universe,
    augmentation_closed_at,
    find_nonconstructibility_witness,
    inclusion_matrix,
    separating_witness,
)
from repro.runtime.parallel import (
    ShardSpec,
    clear_sweep_caches,
    effective_jobs,
    inclusion_kernel,
    make_shards,
    parallel_inclusion_matrix,
    parallel_nonconstructibility_witnesses,
    parallel_separation_witnesses,
    parallel_thm23_counts,
    run_shards,
)

SWEEP = Universe(max_nodes=3, locations=("x",))
WITNESS = Universe(max_nodes=4, locations=("x",), include_nop=False)


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("universe", [SWEEP, WITNESS])
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_shards_partition_enumeration_space(universe, jobs):
    """Shards exactly tile every size's edge-mask range, in order."""
    shards = make_shards(universe, jobs=jobs)
    for n in range(universe.max_nodes + 1):
        ranges = [(s.mask_lo, s.mask_hi) for s in shards if s.n == n]
        assert ranges, f"size {n} has no shard"
        assert ranges[0][0] == 0
        assert ranges[-1][1] == universe.num_edge_masks(n)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo, "shard mask ranges overlap or leave gaps"
    # Canonical order: size ascending, then mask ascending.
    keys = [(s.n, s.mask_lo) for s in shards]
    assert keys == sorted(keys)


def test_shards_cover_every_pair_exactly_once():
    """Concatenated shard pairs reproduce the serial enumeration."""
    serial = [
        (comp, phi)
        for n in range(WITNESS.max_nodes + 1)
        for comp in WITNESS.computations_of_size(n)
        for phi in WITNESS.observers(comp)
    ]
    sharded = [
        pair
        for shard in make_shards(WITNESS, jobs=4)
        for pair in shard.iter_pairs()
    ]
    assert len(sharded) == len(serial)
    assert sharded == serial


def test_shard_spec_pickle_round_trip():
    """Work items must survive the pipe to a worker process unchanged."""
    for shard in make_shards(WITNESS, jobs=4):
        clone = pickle.loads(pickle.dumps(shard))
        assert clone == shard
        assert clone.universe() == shard.universe()
        first = next(iter(shard.iter_pairs()), None)
        assert next(iter(clone.iter_pairs()), None) == first


# ---------------------------------------------------------------------------
# Worker-count resolution
# ---------------------------------------------------------------------------


def test_effective_jobs_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert effective_jobs(3) == 3


def test_effective_jobs_env_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert effective_jobs() == 1  # default: serial
    monkeypatch.setenv("REPRO_JOBS", "1")
    assert effective_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert effective_jobs() == 5
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert effective_jobs() == (os.cpu_count() or 1)


def test_effective_jobs_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        effective_jobs()


# ---------------------------------------------------------------------------
# Parallel == serial (pool forced via parallel_threshold=0)
# ---------------------------------------------------------------------------


def test_parallel_inclusion_matrix_matches_serial():
    models = (SC, LC, NN, WW)
    serial = inclusion_matrix(models, SWEEP)
    for jobs in (1, 2):
        clear_sweep_caches()
        matrix, stats = parallel_inclusion_matrix(
            models, SWEEP, jobs=jobs, parallel_threshold=0
        )
        assert matrix == serial
        if jobs == 1:
            assert stats.mode == "serial"
        else:
            assert stats.mode.startswith("process-pool")


def test_parallel_witnesses_match_serial_first_witness():
    """First-witness determinism: the merged witness is the one the
    serial enumeration finds, for every requested edge at once."""
    edges = (("LC", "NN"), ("NN", "WW"))
    by_name = {m.name: m for m in (LC, NN, WW)}
    serial = {
        (a, b): separating_witness(by_name[a], by_name[b], WITNESS)
        for a, b in edges
    }
    for jobs in (1, 2):
        clear_sweep_caches()
        found, _stats = parallel_separation_witnesses(
            edges, WITNESS, jobs=jobs, parallel_threshold=0
        )
        for edge in edges:
            assert serial[edge] is not None, f"{edge} should separate at n<=4"
            assert found[edge] is not None
            assert found[edge].comp == serial[edge].comp
            assert found[edge].phi == serial[edge].phi


def test_parallel_nonconstructibility_matches_serial():
    models = (NN, LC)
    serial = {
        m.name: find_nonconstructibility_witness(m, WITNESS) for m in models
    }
    clear_sweep_caches()
    found, _stats = parallel_nonconstructibility_witnesses(
        models, WITNESS, jobs=2, parallel_threshold=0
    )
    for m in models:
        got, want = found[m.name], serial[m.name]
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got.comp == want.comp
            assert got.phi == want.phi


def test_parallel_thm23_counts_match_serial_loop():
    probes = (R("x"), NOP)
    lc_in_nn = nn_minus_lc = stuck = 0
    for comp, phi in WITNESS.model_pairs(NN):
        if LC.contains(comp, phi):
            lc_in_nn += 1
            continue
        nn_minus_lc += 1
        if augmentation_closed_at(NN, comp, phi, probes) is not None:
            stuck += 1
    for jobs in (1, 2):
        clear_sweep_caches()
        counts, _stats = parallel_thm23_counts(
            WITNESS, probes=probes, jobs=jobs, parallel_threshold=0
        )
        assert counts == (lc_in_nn, nn_minus_lc, stuck)


def test_small_universe_demotes_to_serial_despite_jobs():
    """Below the amortization threshold the pool is skipped entirely."""
    _, stats = parallel_inclusion_matrix((SC, LC), SWEEP, jobs=4)
    assert stats.mode == "serial"


def test_repro_jobs_env_drives_sweeps(monkeypatch):
    """jobs=None defers to REPRO_JOBS; '1' means the serial fallback."""
    monkeypatch.setenv("REPRO_JOBS", "1")
    _, stats = parallel_inclusion_matrix(
        (SC, LC), SWEEP, jobs=None, parallel_threshold=0
    )
    assert stats.jobs == 1
    assert stats.mode == "serial"
    monkeypatch.setenv("REPRO_JOBS", "2")
    matrix, stats = parallel_inclusion_matrix(
        (SC, LC), SWEEP, jobs=None, parallel_threshold=0
    )
    assert stats.jobs == 2
    assert stats.mode.startswith("process-pool")
    assert matrix == inclusion_matrix((SC, LC), SWEEP)


def test_effective_jobs_garbage_raises_config_error(monkeypatch):
    """The CLI's clean-exit path relies on the precise exception type."""
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ConfigError, match="REPRO_JOBS must be an integer"):
        effective_jobs()


# ---------------------------------------------------------------------------
# Cache-state propagation into workers (the sweep_caching(False) leak fix)
# ---------------------------------------------------------------------------


def test_make_shards_snapshots_caching_flag():
    """Specs carry the caching state active at planning time."""
    assert all(s.cache_enabled for s in make_shards(SWEEP, jobs=2))
    with sweep_caching(False):
        shards = make_shards(SWEEP, jobs=2)
    assert shards and all(not s.cache_enabled for s in shards)


def test_kernel_obeys_spec_flag_not_ambient_state():
    """The shard's flag — not the caller's module global — rules the kernel."""
    assert caches_enabled()  # parent process: caching on
    clear_sweep_caches()
    shard = dataclasses.replace(make_shards(SWEEP, jobs=1)[0], cache_enabled=False)
    outcome = inclusion_kernel(shard, ("SC", "LC"))
    assert outcome.meta.cache_enabled is False
    assert outcome.meta.consultations == 0
    assert caches_enabled()  # scoped: caller's state restored


def test_uncached_pool_sweep_reports_zero_worker_consultations():
    """sweep_caching(False) reaches ProcessPoolExecutor workers.

    Workers are fresh processes whose module state defaults to caching
    on; only the flag carried by the ShardSpec can turn it off there.
    The per-worker cache telemetry proves the baseline really ran
    uncached: zero cache consultations across every shard.
    """
    with sweep_caching(False):
        matrix, stats = parallel_inclusion_matrix(
            (SC, LC), SWEEP, jobs=2, parallel_threshold=0
        )
    assert stats.mode.startswith("process-pool")
    assert {s.cache_enabled for s in stats.shards} == {False}
    assert stats.cache_consultations() == 0
    assert matrix == inclusion_matrix((SC, LC), SWEEP)


def test_cached_pool_sweep_reports_consultations():
    """Control: the same sweep with caching on consults the caches."""
    _, stats = parallel_inclusion_matrix(
        (SC, LC), SWEEP, jobs=2, parallel_threshold=0
    )
    assert stats.mode.startswith("process-pool")
    assert {s.cache_enabled for s in stats.shards} == {True}
    assert stats.cache_consultations() > 0


# ---------------------------------------------------------------------------
# Broken-pool recovery (serial retry of shards lost to worker death)
# ---------------------------------------------------------------------------

_MAIN_PID = os.getpid()


def _crashy_inclusion_kernel(shard):
    """Dies abruptly in any worker process; behaves normally in-process."""
    if os.getpid() != _MAIN_PID:
        os._exit(17)  # hard exit: poisons the pool (BrokenProcessPool)
    return inclusion_kernel(shard, ("SC", "LC"))


def test_broken_pool_retries_shards_serially(caplog):
    """Worker death degrades to a serial retry with identical results."""
    import logging

    shards = make_shards(SWEEP, jobs=2)
    serial_payloads, _ = run_shards(
        _crashy_inclusion_kernel, shards, jobs=1, label="crash-test"
    )
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        pool_payloads, stats = run_shards(
            _crashy_inclusion_kernel, shards, jobs=2, label="crash-test"
        )
    assert stats.mode.startswith("process-pool")
    assert stats.retried_shards >= 1
    assert pool_payloads == serial_payloads
    assert "retrying shards serially" in caplog.text


def test_healthy_pool_reports_zero_retries():
    _, stats = run_shards(
        _crashy_inclusion_kernel,
        make_shards(SWEEP, jobs=1),
        jobs=1,
        label="serial",
    )
    assert stats.retried_shards == 0
    assert stats.mode == "serial"


# ---------------------------------------------------------------------------
# SweepStats as a view over the obs span substrate
# ---------------------------------------------------------------------------


def test_sweep_stats_span_grafted_into_live_trace():
    """--trace and --stats read the same span object: they cannot disagree."""
    obs.reset()
    obs.enable()
    try:
        with obs.span("harness"):
            _, stats = parallel_inclusion_matrix(
                (SC, LC), SWEEP, jobs=2, parallel_threshold=0
            )
        (root,) = obs.get().roots
        sweep_spans = [c for c in root.children if c.name.startswith("sweep:")]
        assert stats.span in sweep_spans
        counts = obs.counters()
        assert counts["sweep.pairs"] == stats.pairs
        assert counts["sweep.cache.consultations"] == stats.cache_consultations()
        totals = stats.cache_totals()
        assert counts["sweep.cache.hits"] == sum(
            c["hits"] for c in totals.values()
        )
        shard_pairs = sum(
            sp.attrs["pairs"]
            for sp in stats.span.children
            if sp.name == "shard"
        )
        assert shard_pairs == stats.pairs
    finally:
        obs.disable()
        obs.reset()


def _counter_totals(shards, jobs):
    """Counter + histogram totals of one run_shards pass under a tracer."""
    from functools import partial

    obs.reset()
    obs.enable()
    try:
        _, stats = run_shards(
            partial(inclusion_kernel, names=("SC", "LC")),
            shards,
            jobs=jobs,
            label="parity",
        )
        counters = dict(obs.counters())
        hist = {k: v.to_dict() for k, v in obs.histograms().items()}
    finally:
        obs.disable()
        obs.reset()
    return counters, hist, stats


def test_worker_counters_survive_the_pool():
    """Counters incremented inside pool workers reach the parent trace.

    Before the fix, ``obs.add`` calls in a ProcessPoolExecutor worker
    landed in the worker's (forked or spawned) collector copy and died
    with the process, so ``--trace --jobs 4`` silently under-reported
    every kernel-side counter.  The shard metas now carry the worker
    counter deltas home and ``_record_sweep`` merges them exactly once:
    jobs=1 and jobs=4 runs over the *same* shard list must report
    identical totals for every non-cache counter.  (Cache hit/miss
    counters legitimately differ — a warm serial process vs cold
    workers — so they are excluded.)
    """
    obs.enable()  # make_shards snapshots the tracer flag into the specs
    try:
        shards = make_shards(SWEEP, jobs=4)
    finally:
        obs.disable()
    assert all(s.obs_enabled for s in shards)

    serial_counters, serial_hist, _ = _counter_totals(shards, jobs=1)
    pool_counters, pool_hist, stats = _counter_totals(shards, jobs=4)
    assert stats.mode.startswith("process-pool")

    strip = lambda c: {  # noqa: E731
        k: v
        for k, v in c.items()
        # Cache hit/miss totals differ warm-vs-cold, and shm.* counters
        # only fire for pool dispatch (auto mode shares the universe for
        # pools, not for the serial path) — neither is a worker-counter
        # propagation question.
        if not k.startswith(("sweep.cache.", "shm."))
    }
    assert strip(pool_counters) == strip(serial_counters)
    # The kernel-side counters are the ones that used to vanish.
    assert pool_counters["sweep.kernel.shards"] == len(shards)
    assert pool_counters["sweep.kernel.pairs"] == pool_counters["sweep.pairs"]
    # Every shard contributed one sample to the wall-time histogram.
    assert serial_hist["sweep.shard_seconds"]["count"] == len(shards)
    assert pool_hist["sweep.shard_seconds"]["count"] == len(shards)


def test_worker_counters_not_double_counted_on_crash_retry():
    """A BrokenProcessPool retry re-runs shards in the parent, where the
    collector is already live — merging those metas again would double
    count.  The pid check in ``_record_sweep`` must keep totals exact."""
    obs.enable()
    try:
        shards = make_shards(SWEEP, jobs=2)
        _, stats = run_shards(
            _crashy_inclusion_kernel, shards, jobs=2, label="crash-parity"
        )
        counters = dict(obs.counters())
    finally:
        obs.disable()
        obs.reset()
    assert stats.retried_shards > 0
    assert counters["sweep.kernel.shards"] == len(shards)
    assert counters["sweep.kernel.pairs"] == counters["sweep.pairs"]


# ----------------------------------------------------------------------
# Heartbeats and the sweep monitor
# ----------------------------------------------------------------------


class _RecordingListener:
    def __init__(self):
        self.events = []

    def on_sweep_start(self, label, shards, jobs):
        self.events.append(("start", label, shards, jobs))

    def on_heartbeat(self, hb):
        self.events.append(("hb", hb))

    def on_shard_done(self, meta):
        self.events.append(("done", meta))

    def on_sweep_done(self, label, wall_seconds):
        self.events.append(("sweep_done", label))


@pytest.fixture
def monitored():
    from repro.runtime.parallel import SweepMonitor, set_sweep_monitor

    listener = _RecordingListener()
    monitor = SweepMonitor(listeners=[listener], interval=0.01)
    set_sweep_monitor(monitor)
    yield monitor, listener
    set_sweep_monitor(None)


class TestSweepMonitor:
    def test_serial_monitored_sweep_streams_events(self, monitored):
        from repro.runtime.parallel import parallel_thm23_counts

        monitor, listener = monitored
        universe = Universe(max_nodes=3, locations=("x",))
        clear_sweep_caches()
        counts, stats = parallel_thm23_counts(
            universe, probes=(R("x"), NOP), jobs=1
        )
        kinds = [e[0] for e in listener.events]
        assert kinds[0] == "start"
        assert kinds[-1] == "sweep_done"
        assert kinds.count("done") == len(stats.shards)
        assert monitor.heartbeats > 0
        # Every shard announces itself at pair 0, from this process.
        first_beats = [
            e[1] for e in listener.events if e[0] == "hb"
        ]
        assert all(hb["pid"] == os.getpid() for hb in first_beats)
        assert any(hb["pairs_done"] == 0 for hb in first_beats)

    def test_pool_monitored_sweep_matches_unmonitored(self, monitored):
        from repro.runtime.parallel import (
            parallel_thm23_counts,
            set_sweep_monitor,
        )

        monitor, listener = monitored
        universe = Universe(max_nodes=3, locations=("x",))
        clear_sweep_caches()
        counts, stats = parallel_thm23_counts(
            universe, probes=(R("x"), NOP), jobs=2, parallel_threshold=0
        )
        assert stats.mode.startswith("process-pool")
        assert monitor.heartbeats > 0
        dones = [e[1] for e in listener.events if e[0] == "done"]
        assert len(dones) == len(stats.shards)
        assert all(
            {"n", "mask_lo", "mask_hi", "seconds", "pairs", "pid"} <= set(d)
            for d in dones
        )
        set_sweep_monitor(None)
        clear_sweep_caches()
        plain, _ = parallel_thm23_counts(
            universe, probes=(R("x"), NOP), jobs=2, parallel_threshold=0
        )
        assert counts == plain

    def test_no_monitor_means_no_heartbeat_channel(self):
        from repro.runtime import parallel as par

        assert par.get_sweep_monitor() is None
        spec = ShardSpec(
            max_nodes=2, locations=("x",), include_nop=True,
            n=2, mask_lo=0, mask_hi=2,
        )
        assert par._HB is None
        # iter_pairs hands back the raw enumeration, not the heartbeat
        # wrapper (zero overhead on the unmonitored hot path).
        pairs = list(spec.iter_pairs())
        assert pairs == list(
            spec.universe().pairs(2, (0, 2))
        )

    def test_listener_exceptions_are_swallowed(self):
        from repro.runtime.parallel import SweepMonitor

        class Broken:
            def on_heartbeat(self, hb):
                raise RuntimeError("board fell over")

        monitor = SweepMonitor(listeners=[Broken()], interval=0.01)
        monitor.on_worker_heartbeat({"pid": 1, "pairs_done": 1})
        assert monitor.heartbeats == 1


class TestStallWatchdog:
    def _clock(self, start=0.0):
        state = {"t": start}

        def clock():
            return state["t"]

        clock.advance = lambda dt: state.__setitem__("t", state["t"] + dt)
        return clock

    def test_silent_worker_is_flagged_once(self):
        from repro.runtime.parallel import SweepMonitor

        clock = self._clock()
        stalls = []
        monitor = SweepMonitor(
            interval=1.0,
            stall_intervals=3,
            on_stall=lambda pid, hb: stalls.append((pid, hb)),
            clock=clock,
        )
        obs.reset()
        obs.enable()
        try:
            monitor.on_sweep_start("lab", 4, 2)
            monitor.on_worker_heartbeat({"pid": 42, "n": 4, "pairs_done": 10})
            clock.advance(2.9)
            assert monitor.check_stalls() == []
            clock.advance(0.2)  # now 3.1 intervals silent
            assert monitor.check_stalls() == [42]
            assert monitor.check_stalls() == []  # warn once per stall
            assert stalls and stalls[0][0] == 42
            warnings = [
                e for e in obs.get().events if e.get("kind") == "warning"
            ]
            assert len(warnings) == 1
            assert warnings[0]["message"] == "worker heartbeat stalled"
            assert warnings[0]["attrs"]["pid"] == 42
            assert warnings[0]["attrs"]["sweep"] == "lab"
        finally:
            obs.disable()
            obs.reset()

    def test_resumed_worker_can_stall_again(self):
        from repro.runtime.parallel import SweepMonitor

        clock = self._clock()
        monitor = SweepMonitor(interval=1.0, stall_intervals=2, clock=clock)
        monitor.on_sweep_start("lab", 2, 1)
        monitor.on_worker_heartbeat({"pid": 7, "pairs_done": 1})
        clock.advance(2.5)
        assert monitor.check_stalls() == [7]
        monitor.on_worker_heartbeat({"pid": 7, "pairs_done": 2})  # resumes
        assert monitor.check_stalls() == []
        clock.advance(2.5)
        assert monitor.check_stalls() == [7]
        assert monitor.stall_warnings == 2

    def test_completed_shard_clears_the_watch(self):
        from repro.runtime.parallel import ShardMeta, SweepMonitor

        clock = self._clock()
        monitor = SweepMonitor(interval=1.0, stall_intervals=2, clock=clock)
        monitor.on_sweep_start("lab", 1, 1)
        monitor.on_worker_heartbeat({"pid": 9, "pairs_done": 5})
        meta = ShardMeta(
            n=3, mask_lo=0, mask_hi=8, seconds=0.5, pairs=64, pid=9
        )
        monitor.on_shard_done(meta)
        clock.advance(10.0)
        assert monitor.check_stalls() == []


class TestHeartbeatInterval:
    def test_default_and_env_override(self, monkeypatch):
        from repro.runtime.parallel import heartbeat_interval

        monkeypatch.delenv("REPRO_HEARTBEAT_SECS", raising=False)
        assert heartbeat_interval() == 1.0
        monkeypatch.setenv("REPRO_HEARTBEAT_SECS", "0.25")
        assert heartbeat_interval() == 0.25
        monkeypatch.setenv("REPRO_HEARTBEAT_SECS", "banana")
        assert heartbeat_interval() == 1.0
        monkeypatch.setenv("REPRO_HEARTBEAT_SECS", "-3")
        assert heartbeat_interval() == 1.0


# ---------------------------------------------------------------------------
# Cache audit: every memoized helper is tracked, clearable, and gauged
# ---------------------------------------------------------------------------


def test_find_races_and_merged_locations_are_tracked():
    """Regression: these two memoized helpers were invisible to the
    sweep-cache registry, so a long-running server could neither reset
    nor observe them between batches."""
    from repro.core.ops import merged_locations
    from repro.runtime.parallel import sweep_cache_info
    from repro.lang import racy_counter_computation
    from repro.verify import find_races

    clear_sweep_caches()
    info = sweep_cache_info()
    assert info["find_races"]["currsize"] == 0
    assert info["merged_locations"]["currsize"] == 0

    comp = racy_counter_computation(2, 2)[0]
    list(find_races(comp))
    merged_locations(("x",), ("y",))
    info = sweep_cache_info()
    assert info["find_races"]["currsize"] == 1
    assert info["merged_locations"]["currsize"] == 1

    clear_sweep_caches()
    info = sweep_cache_info()
    assert info["find_races"]["currsize"] == 0
    assert info["merged_locations"]["currsize"] == 0


def test_merged_locations_respects_cache_switch():
    from repro import _caching
    from repro.core.ops import merged_locations
    from repro.runtime.parallel import sweep_cache_info

    clear_sweep_caches()
    with _caching.sweep_caching(False):
        assert merged_locations(("a",), ("b",)) == ("a", "b")
    assert sweep_cache_info()["merged_locations"]["currsize"] == 0
    assert merged_locations(("a",), ("b",)) == ("a", "b")
    assert sweep_cache_info()["merged_locations"]["currsize"] == 1
    clear_sweep_caches()


def test_publish_cache_gauges_exports_sizes():
    from repro.core.ops import merged_locations
    from repro.runtime.parallel import publish_cache_gauges, sweep_cache_info

    clear_sweep_caches()
    obs.reset()
    publish_cache_gauges()  # collector disabled: no-op
    assert "cache.entries" not in obs.gauges()

    obs.enable()
    try:
        merged_locations(("p",), ("q",))
        publish_cache_gauges()
        gauges = obs.gauges()
        assert gauges["cache.merged_locations.entries"] == 1
        assert gauges["cache.entries"] >= 1
        for name in sweep_cache_info():
            assert f"cache.{name}.entries" in gauges
    finally:
        obs.reset()
        clear_sweep_caches()
