"""Property-based tests for the locks extension."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import last_writer_function, ObserverFunction
from repro.lang import unfold
from repro.locks import LockRC, LockedComputation
from repro.models import LC
from repro.verify import is_race_free


def random_locked_program(seed: int, n_tasks: int, locked_prob: float):
    """A program with n_tasks concurrent counter tasks, each locked with
    probability locked_prob (deterministic given the seed)."""
    r = random.Random(seed)
    plan = [r.random() < locked_prob for _ in range(n_tasks)]

    def task(ctx, use_lock):
        if use_lock:
            with ctx.lock("L"):
                ctx.read("ctr")
                ctx.write("ctr")
        else:
            ctx.read("ctr")
            ctx.write("ctr")

    def main(ctx):
        ctx.write("ctr")
        for use_lock in plan:
            ctx.spawn(task, use_lock)
        ctx.sync()
        ctx.read("ctr")

    comp, info = unfold(main)
    return LockedComputation.from_unfold(comp, info), plan


class TestDRFDichotomy:
    @given(st.integers(0, 500), st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_all_locked_iff_drf(self, seed, n_tasks):
        """DRF holds exactly when every task (of ≥ 2) took the lock."""
        locked, plan = random_locked_program(seed, n_tasks, 0.5)
        expected_drf = all(plan)
        assert locked.is_drf() == expected_drf

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_induced_computations_contain_base_edges(self, seed):
        locked, _ = random_locked_program(seed, 2, 1.0)
        base_edges = set(locked.comp.dag.edges)
        for _ser, induced in locked.induced_computations():
            assert base_edges <= set(induced.dag.edges)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_serialized_sections_never_overlap(self, seed):
        """In every induced computation, same-lock sections are totally
        ordered: one's release precedes the other's acquire."""
        locked, _ = random_locked_program(seed, 3, 1.0)
        for _ser, induced in locked.induced_computations():
            secs = locked.sections_of("L")
            for i, a in enumerate(secs):
                for b in secs[i + 1 :]:
                    assert induced.precedes(a.release, b.acquire) or (
                        induced.precedes(b.release, a.acquire)
                    )


class TestLockRCProperties:
    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_every_serialization_behaviour_accepted(self, seed):
        """Any induced computation's LC behaviour lifts into LockRC."""
        locked, _ = random_locked_program(seed, 2, 1.0)
        r = random.Random(seed)
        sers = list(locked.induced_computations())
        ser, induced = sers[r.randrange(len(sers))]
        from repro.dag.toposort import random_topological_sort

        order = random_topological_sort(induced.dag, r)
        witness = last_writer_function(induced, order, check_order=False)
        phi = ObserverFunction(
            locked.comp,
            {loc: witness.row(loc) for loc in witness.locations},
        )
        assert LockRC.contains(locked, phi)

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_drf_induced_race_free(self, seed):
        locked, plan = random_locked_program(seed, 2, 1.0)
        assert locked.is_drf()
        for _ser, induced in locked.induced_computations():
            assert is_race_free(induced)

    @given(st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_lockrc_witness_membership(self, seed):
        """When LockRC accepts, its witness serialization really admits
        the observer under the base model."""
        locked, _ = random_locked_program(seed, 2, 1.0)
        ser, induced = next(locked.induced_computations())
        witness = last_writer_function(induced, induced.dag.topological_order)
        phi = ObserverFunction(
            locked.comp,
            {loc: witness.row(loc) for loc in witness.locations},
        )
        found = LockRC.witness_serialization(locked, phi)
        assert found is not None
        re_induced = locked.induce(found)
        assert re_induced is not None
        lifted = ObserverFunction(
            re_induced, {loc: phi.row(loc) for loc in phi.locations}
        )
        assert LC.contains(re_induced, lifted)
