"""Tests for the online consistency game (constructibility, operational)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import N, R, W
from repro.errors import ReproError
from repro.models import (
    LC,
    NN,
    NW,
    SC,
    WN,
    WW,
    OnlineGame,
    StuckError,
    figure4_script,
    play_script,
)

FIG4_CHOICES = [None, None, {"x": 1}, {"x": 0}, None]


class TestGameMechanics:
    def test_reveal_candidates(self):
        g = OnlineGame(LC)
        cands = g.reveal(W("x"))
        assert cands == {"x": [0]}  # writes observe themselves

    def test_commit_without_reveal(self):
        g = OnlineGame(LC)
        with pytest.raises(ReproError):
            g.commit()

    def test_unknown_predecessor(self):
        g = OnlineGame(LC)
        with pytest.raises(ReproError):
            g.reveal(N, preds=[3])

    def test_state_accumulates(self):
        g = OnlineGame(SC)
        g.reveal(W("x"))
        g.commit()
        g.reveal(R("x"), preds=[0])
        g.commit({"x": 0})
        comp = g.computation()
        phi = g.observer()
        assert comp.num_nodes == 2
        assert phi.value("x", 1) == 0
        assert SC.contains(comp, phi)

    def test_committed_pair_always_in_model(self):
        g = OnlineGame(LC)
        for move, choice in [
            (W("x"), None),
            (W("x"), None),
            (R("x"), None),
        ]:
            g.reveal(move, preds=range(g.num_nodes))
            g.commit(choice)
        assert LC.contains(g.computation(), g.observer())

    def test_invalid_commit_choice(self):
        g = OnlineGame(LC)
        g.reveal(W("x"))
        with pytest.raises(StuckError):
            g.commit({"x": None})  # writes must observe themselves

    def test_nop_only_game(self):
        g = OnlineGame(NN)
        cands = g.reveal(N)
        assert cands == {}
        g.commit()
        assert g.num_nodes == 1


class TestFigure4Adversary:
    def test_nn_gets_stuck(self):
        assert play_script(NN, figure4_script(), FIG4_CHOICES) is None

    def test_constructible_models_survive(self):
        for model in (SC, LC, WN, WW):
            game = play_script(model, figure4_script(), FIG4_CHOICES)
            assert game is not None, model.name
            assert model.contains(game.computation(), game.observer())

    def test_lc_refuses_the_trap(self):
        """The operational meaning of constructibility: LC's candidate
        set at node 3 already excludes the cross-observation."""
        g = OnlineGame(LC, strict=False)
        g.reveal(W("x"))
        g.commit()
        g.reveal(W("x"))
        g.commit()
        g.reveal(R("x"), preds=[0])
        g.commit({"x": 1})  # observe the concurrent write: legal for LC
        cands = g.reveal(R("x"), preds=[1])
        assert 0 not in cands["x"]  # the trap value is not offered

    def test_nn_allows_the_trap_then_dies(self):
        g = OnlineGame(NN, strict=False)
        g.reveal(W("x"))
        g.commit()
        g.reveal(W("x"))
        g.commit()
        g.reveal(R("x"), preds=[0])
        g.commit({"x": 1})
        cands = g.reveal(R("x"), preds=[1])
        assert 0 in cands["x"]  # NN happily offers it...
        g.commit({"x": 0})
        assert g.reveal(R("x"), preds=[0, 1, 2, 3]) is None  # ...and dies

    def test_strict_mode_raises(self):
        g = OnlineGame(NN, strict=True)
        g.reveal(W("x"))
        g.commit()
        g.reveal(W("x"))
        g.commit()
        g.reveal(R("x"), preds=[0])
        g.commit({"x": 1})
        g.reveal(R("x"), preds=[1])
        g.commit({"x": 0})
        with pytest.raises(StuckError):
            g.reveal(R("x"), preds=[0, 1, 2, 3])


class TestRandomAdversary:
    """Constructible models never get stuck under random play."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_lc_never_stuck(self, seed):
        self._play_random(LC, seed)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_ww_never_stuck(self, seed):
        self._play_random(WW, seed)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_wn_never_stuck(self, seed):
        """WN's constructibility (the documented deviation), live."""
        self._play_random(WN, seed)

    @staticmethod
    def _play_random(model, seed, steps=5):
        r = random.Random(seed)
        g = OnlineGame(model, strict=False)
        ops = [R("x"), W("x"), N]
        for _ in range(steps):
            op = r.choice(ops)
            n = g.num_nodes
            preds = [p for p in range(n) if r.random() < 0.5]
            cands = g.reveal(op, preds)
            assert cands is not None, f"{model.name} stuck under random play"
            # Commit a random legal value (adversarial to the future).
            choice = {
                loc: r.choice(vals) for loc, vals in cands.items() if vals
            }
            g.commit(choice or None)
        assert model.contains(g.computation(), g.observer())

    def test_figure4_pair_replays_and_sticks(self):
        """The Figure-4 pair, replayed move for move, sticks the NN game
        — tying the game to Theorem 12's machinery.

        Not every stuck pair is *online-reachable*: a committed value
        can only name an already-revealed node, so the pair's
        "observation graph" (dag edges plus ``observed → observer``
        edges) must be acyclic.  Figure 4's pair is; some searched
        witnesses are not (see the companion test below).
        """
        from repro.paperfigures import figure4_pair

        comp, phi = figure4_pair()
        g = OnlineGame(NN, strict=False)
        for u in comp.nodes():
            preds = list(comp.dag.predecessors(u))
            cands = g.reveal(comp.op(u), preds)
            assert cands is not None
            g.commit({loc: phi.value(loc, u) for loc in comp.locations})
        assert g.observer() == phi
        # Revealing any non-write as a final node kills the game.
        assert g.reveal(R("x"), preds=range(comp.num_nodes)) is None

    def test_online_reachability_requires_acyclic_observations(self):
        """A stuck pair whose observations and dag edges form a cycle
        cannot arise online: its own single-node prefix restrictions are
        not observer functions.  The enumeration-order witness found by
        the universe search has exactly this shape."""
        from repro.models import Universe, find_nonconstructibility_witness

        wit = find_nonconstructibility_witness(
            NN, Universe(max_nodes=4, locations=("x",), include_nop=False)
        )
        assert wit is not None
        comp, phi = wit.comp, wit.phi
        # Build the observation graph and check for a cycle by Kahn.
        edges = set(comp.dag.edges)
        for loc in comp.locations:
            for u in comp.nodes():
                v = phi.value(loc, u)
                if v is not None and v != u:
                    edges.add((v, u))
        n = comp.num_nodes
        indeg = [0] * n
        for (_a, b) in edges:
            indeg[b] += 1
        frontier = [u for u in range(n) if indeg[u] == 0]
        seen = 0
        while frontier:
            u = frontier.pop()
            seen += 1
            for (a, b) in edges:
                if a == u:
                    indeg[b] -= 1
                    if indeg[b] == 0:
                        frontier.append(b)
        assert seen < n, (
            "expected the first searched witness to be online-unreachable "
            "(cyclic observations); if search order changed, adjust this test"
        )
