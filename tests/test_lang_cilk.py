"""Tests for the Cilk-style spawn/sync frontend."""

from repro.core import N, R, W
from repro.dag import is_series_parallel
from repro.lang import unfold


class TestSerialStructure:
    def test_ops_serially_dependent(self):
        def prog(ctx):
            ctx.write("x")
            ctx.read("x")
            ctx.read("x")

        comp, info = unfold(prog)
        assert comp.num_nodes == 3
        assert comp.precedes(0, 1) and comp.precedes(1, 2)
        assert info.spawn_count == 0

    def test_ops_recorded(self):
        def prog(ctx):
            ctx.write("x")
            ctx.nop()
            ctx.read("y")

        comp, _ = unfold(prog)
        assert comp.ops == (W("x"), N, R("y"))

    def test_empty_program(self):
        comp, info = unfold(lambda ctx: None)
        assert comp.is_empty


class TestSpawnSync:
    def test_spawned_child_concurrent_with_continuation(self):
        def child(ctx):
            ctx.write("a")

        def prog(ctx):
            ctx.write("x")       # 0
            ctx.spawn(child)     # child op = 1
            ctx.write("y")       # 2 (continuation)
            ctx.sync()
            ctx.read("a")        # 3

        comp, info = unfold(prog)
        assert comp.precedes(0, 1)  # child after spawn point
        assert comp.precedes(0, 2)
        assert not comp.precedes(1, 2) and not comp.precedes(2, 1)  # parallel
        assert comp.precedes(1, 3) and comp.precedes(2, 3)  # joined at sync
        assert info.spawn_count == 1 and info.sync_count == 1

    def test_sync_without_spawn_is_noop_structurally(self):
        def prog(ctx):
            ctx.write("x")
            ctx.sync()
            ctx.read("x")

        comp, _ = unfold(prog)
        assert comp.precedes(0, 1)

    def test_implicit_sync_at_child_return(self):
        # Child spawns a grandchild and returns without syncing; the
        # grandchild must still be joined before the parent's sync target.
        def grandchild(ctx):
            ctx.write("g")

        def child(ctx):
            ctx.spawn(grandchild)
            ctx.write("c")
            # no explicit sync

        def prog(ctx):
            ctx.spawn(child)
            ctx.sync()
            ctx.read("g")

        comp, _ = unfold(prog)
        g = comp.writers("g")[0]
        r = comp.readers("g")[0]
        assert comp.precedes(g, r)

    def test_multiple_children_all_joined(self):
        def child(ctx, i):
            ctx.write(("c", i))

        def prog(ctx):
            for i in range(3):
                ctx.spawn(child, i)
            ctx.sync()
            ctx.nop()

        comp, _ = unfold(prog)
        last = comp.num_nodes - 1
        for i in range(3):
            w = comp.writers(("c", i))[0]
            assert comp.precedes(w, last)

    def test_children_mutually_concurrent(self):
        def child(ctx, i):
            ctx.write(("c", i))

        def prog(ctx):
            ctx.spawn(child, 0)
            ctx.spawn(child, 1)
            ctx.sync()

        comp, _ = unfold(prog)
        a = comp.writers(("c", 0))[0]
        b = comp.writers(("c", 1))[0]
        assert not comp.precedes(a, b) and not comp.precedes(b, a)

    def test_spawn_args_kwargs(self):
        seen = []

        def child(ctx, a, b=0):
            seen.append((a, b))
            ctx.nop()

        def prog(ctx):
            ctx.spawn(child, 1, b=2)
            ctx.sync()

        unfold(prog)
        assert seen == [(1, 2)]

    def test_names_recorded(self):
        def prog(ctx):
            ctx.write("x", name="init")

        _, info = unfold(prog)
        assert info.names == {"init": 0}


class TestSeriesParallelInvariant:
    def test_nested_unfolding_is_sp(self):
        def rec(ctx, depth):
            if depth == 0:
                ctx.write(("leaf", id(object())))
                return
            ctx.spawn(rec, depth - 1)
            ctx.spawn(rec, depth - 1)
            ctx.sync()
            ctx.nop()

        comp, _ = unfold(rec, 3)
        assert is_series_parallel(comp.dag)

    def test_interleaved_spawn_sync_is_sp(self):
        def child(ctx):
            ctx.nop()

        def prog(ctx):
            ctx.nop()
            ctx.spawn(child)
            ctx.nop()
            ctx.sync()
            ctx.spawn(child)
            ctx.spawn(child)
            ctx.nop()
            ctx.sync()
            ctx.nop()

        comp, _ = unfold(prog)
        assert is_series_parallel(comp.dag)
