"""Tests for constructibility (Section 3) and Theorem 23 machinery."""

from hypothesis import given, settings

from repro.core import N, ObserverFunction, R, W
from repro.models import (
    LC,
    NN,
    NW,
    SC,
    WN,
    WW,
    Universe,
    augmentation_closed_at,
    augmentation_extensions,
    can_extend_to_augmentation,
    constructible_version,
    find_nonconstructibility_witness,
    is_constructible_prefix_definition,
)
from repro.paperfigures import figure4_blocking_ops, figure4_pair
from tests.conftest import computations_with_observer


class TestAugmentationExtensions:
    def test_all_extensions_valid_and_extend(self):
        comp, phi = figure4_pair()
        for o in (R("x"), W("x"), N):
            for aug, phi2 in augmentation_extensions(comp, phi, o):
                assert aug.is_extension_of(comp, o)
                assert phi2.extends(phi)
                # Re-validate Definition 2 explicitly.
                ObserverFunction(
                    aug, {loc: phi2.row(loc) for loc in phi2.locations}
                )

    def test_write_forces_self_observation(self):
        comp, phi = figure4_pair()
        exts = list(augmentation_extensions(comp, phi, W("x")))
        final = comp.num_nodes
        assert all(phi2.value("x", final) == final for _, phi2 in exts)
        assert len(exts) == 1

    def test_read_candidates(self):
        comp, phi = figure4_pair()
        exts = list(augmentation_extensions(comp, phi, R("x")))
        finals = {phi2.value("x", comp.num_nodes) for _, phi2 in exts}
        assert finals == {None, 0, 1}  # ⊥ and the two writes


class TestFigure4:
    """The paper's non-constructibility argument for NN, mechanically."""

    def test_pair_is_nn_member(self):
        comp, phi = figure4_pair()
        assert NN.contains(comp, phi)

    def test_non_write_augmentations_stuck(self):
        comp, phi = figure4_pair()
        for o in figure4_blocking_ops():
            assert not can_extend_to_augmentation(NN, comp, phi, o)

    def test_write_augmentation_fine(self):
        comp, phi = figure4_pair()
        assert can_extend_to_augmentation(NN, comp, phi, W("x"))

    def test_augmentation_closed_at_reports_blocker(self):
        comp, phi = figure4_pair()
        blocker = augmentation_closed_at(NN, comp, phi, [R("x"), N, W("x")])
        assert blocker == R("x")

    def test_lc_not_stuck_anywhere_nearby(self):
        comp, phi = figure4_pair()
        # The pair is not in LC, but every LC pair on this computation
        # extends fine.
        for psi in LC.observers(comp):
            assert (
                augmentation_closed_at(LC, comp, psi, [R("x"), W("x"), N])
                is None
            )


class TestWitnessSearch:
    def test_nn_witness_found(self):
        u = Universe(max_nodes=4, locations=("x",), include_nop=False)
        wit = find_nonconstructibility_witness(NN, u)
        assert wit is not None
        assert NN.contains(wit.comp, wit.phi)
        assert not can_extend_to_augmentation(
            NN, wit.comp, wit.phi, wit.blocking_op
        )

    def test_nw_witness_found(self):
        u = Universe(max_nodes=4, locations=("x",), include_nop=False)
        wit = find_nonconstructibility_witness(NW, u)
        assert wit is not None

    def test_sc_lc_ww_closed(self):
        u = Universe(max_nodes=3, locations=("x",))
        for m in (SC, LC, WW):
            assert find_nonconstructibility_witness(m, u) is None, m.name

    def test_wn_closed_documented_deviation(self):
        """WN under the paper's formal predicate table is constructible:
        the all-⊥ extension always works (see KNOWN_DEVIATIONS)."""
        u = Universe(max_nodes=3, locations=("x",))
        assert find_nonconstructibility_witness(WN, u) is None

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=40, deadline=None)
    def test_wn_bottom_extension_always_works(self, pair):
        """The proof object behind the WN deviation, property-tested."""
        comp, phi = pair
        if WN.contains(comp, phi):
            for o in (R("x"), W("x"), N):
                assert can_extend_to_augmentation(WN, comp, phi, o)


class TestTheorem12:
    """Augmentation closure ⟺ literal Definition 6, for monotonic models."""

    @given(computations_with_observer(max_nodes=3))
    @settings(max_examples=15, deadline=None)
    def test_prefix_definition_matches_augmentation_for_nn(self, pair):
        comp, _ = pair
        # Def 6 restricted to prefixes of `comp`: if some prefix pair is
        # stuck (cannot extend to full comp), then some pair must also
        # fail a one-step augmentation somewhere inside comp's universe.
        # We check the cheap direction: augmentation-closure of all
        # sub-prefix pairs implies the prefix definition holds.
        alphabet = [R("x"), W("x"), N]
        all_closed = True
        for mask in comp.prefix_masks():
            prefix, _old = comp.restrict(mask)
            for phi in NN.observers(prefix):
                if augmentation_closed_at(NN, prefix, phi, alphabet) is not None:
                    all_closed = False
        if all_closed:
            # Every extension chain can be completed step by step; the
            # literal prefix check on `comp` must succeed for any prefix
            # reachable by extension — only guaranteed when each single
            # extension is coverable, which augmentation-closure plus
            # monotonicity gives (Theorems 10 and 12).
            assert is_constructible_prefix_definition(NN, comp)

    def test_prefix_definition_detects_fig4(self):
        comp, phi = figure4_pair()
        aug = comp.augment(R("x"))
        assert not is_constructible_prefix_definition(NN, aug)

    def test_prefix_definition_passes_for_lc_on_fig4(self):
        comp, _ = figure4_pair()
        aug = comp.augment(R("x"))
        assert is_constructible_prefix_definition(LC, aug)


class TestConstructibleVersion:
    def test_nn_star_on_tiny_universe(self):
        u = Universe(max_nodes=3, locations=("x",), include_nop=False)
        res = constructible_version(NN, u)
        assert res.sound_max_nodes == 2
        # On sizes ≤ 2, NN* must coincide with LC (Theorem 23).
        for n in range(res.sound_max_nodes + 1):
            for comp in u.computations_of_size(n):
                for phi in u.observers(comp):
                    assert res.model.contains(comp, phi) == LC.contains(
                        comp, phi
                    )

    def test_ww_star_is_ww(self):
        u = Universe(max_nodes=3, locations=("x",), include_nop=False)
        res = constructible_version(WW, u)
        assert res.pruned_pairs == 0

    def test_result_reports_rounds(self):
        u = Universe(max_nodes=2, locations=("x",))
        res = constructible_version(LC, u)
        assert res.rounds >= 1
        assert res.pruned_pairs == 0


class TestTheorem23OneStep:
    """Every NN pair outside LC is pruned by ONE augmentation step.

    This is the mechanical core of the Theorem 23 benchmark: combined
    with LC ⊆ NN and LC's augmentation closure it pins NN* = LC.
    """

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=60, deadline=None)
    def test_nn_minus_lc_is_stuck(self, pair):
        comp, phi = pair
        if NN.contains(comp, phi) and not LC.contains(comp, phi):
            assert (
                augmentation_closed_at(NN, comp, phi, [R("x"), N])
                is not None
            )

    @given(computations_with_observer(max_nodes=4))
    @settings(max_examples=60, deadline=None)
    def test_lc_never_stuck_in_lc(self, pair):
        comp, phi = pair
        if LC.contains(comp, phi):
            assert (
                augmentation_closed_at(LC, comp, phi, [R("x"), W("x"), N])
                is None
            )
