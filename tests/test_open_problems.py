"""Tests for the open-problem exploration (NW*/WN*)."""

from repro.analysis.open_problems import (
    StarVsLcReport,
    explore_star_vs_lc,
    render_star_report,
)
from repro.models import LC, NN, NW, Universe


class TestExploreNW:
    def setup_method(self):
        self.universe = Universe(max_nodes=4, locations=("x",), include_nop=False)
        self.report = explore_star_vs_lc(NW, self.universe)

    def test_lc_contained(self):
        assert not self.report.soundness_violations

    def test_strictness_candidates_found(self):
        assert self.report.strictness_candidates
        assert not self.report.star_equals_lc_on_fragment

    def test_candidates_are_nw_members_outside_lc(self):
        for comp, phi in self.report.strictness_candidates:
            assert NW.contains(comp, phi)
            assert not LC.contains(comp, phi)

    def test_sound_bound(self):
        assert self.report.sound_max_nodes == 3

    def test_render(self):
        text = render_star_report(self.report)
        assert "NW* vs LC" in text
        assert "strictness candidates" in text


class TestExploreNN:
    def test_nn_star_equals_lc(self):
        """For NN the same exploration confirms Theorem 23: no candidates.

        Needs the n ≤ 5 universe so the 4-node Figure-4-class pairs sit
        below the frontier and genuinely get pruned.
        """
        universe = Universe(max_nodes=5, locations=("x",), include_nop=False)
        report = explore_star_vs_lc(NN, universe)
        assert report.star_equals_lc_on_fragment
        assert report.pruned_pairs > 0  # fig-4-class pairs were pruned

    def test_report_dataclass_defaults(self):
        r = StarVsLcReport("X", 3, 2, 1, 0)
        assert r.star_equals_lc_on_fragment
        assert "no pair separates" in render_star_report(r)
