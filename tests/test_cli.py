"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.program == "fib"
        assert args.procs == 4

    def test_all_programs_parse(self):
        from repro.cli import PROGRAMS

        for prog in PROGRAMS:
            args = build_parser().parse_args(["run", "--program", prog])
            assert args.program == prog


class TestFigures:
    def test_exit_code_and_output(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        assert "SC=∉" in out


class TestLattice:
    def test_small_lattice(self, capsys):
        # 2-node universes keep this fast; the constructibility witnesses
        # are out of range, so a nonzero exit (documented gap) is fine —
        # we only require the report to render.
        rc = main(["lattice", "--sweep-nodes", "2", "--witness-nodes", "2"])
        out = capsys.readouterr().out
        assert "Inclusion matrix" in out
        assert rc in (0, 1)


class TestRunAndCheck:
    def test_run_fib_serial_memory(self, capsys):
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--procs", "2",
             "--memory", "serial"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "location consistent: yes" in out
        assert "sequentially consistent: yes" in out

    def test_run_store_buffer_weak(self, capsys):
        rc = main(["run", "--program", "store-buffer", "--procs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "location consistent: yes" in out

    def test_run_faulty_detected(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main(
            ["run", "--program", "racy", "--procs", "4", "--seed", "3",
             "--drop-reconcile", "1.0", "--drop-flush", "1.0",
             "--out", str(out_path)]
        )
        out = capsys.readouterr().out
        assert "trace written" in out
        data = json.loads(out_path.read_text())
        assert data["format"] == "repro/trace"
        # Whether this specific seed violates LC is workload-dependent;
        # the exit code must agree with the printed verdict.
        violated = "NO — protocol violation" in out
        assert rc == (2 if violated else 0)

    def test_check_roundtrip(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        main(["run", "--program", "tree-sum", "--size", "4",
              "--procs", "2", "--out", str(out_path)])
        capsys.readouterr()
        rc = main(["check", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completable within LC: yes" in out

    def test_check_observer_document(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.paperfigures import figure2_pair

        comp, phi = figure2_pair()
        path = tmp_path / "phi.json"
        path.write_text(dumps(phi))
        rc = main(["check", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "NW: ∈" in out and "WN: ∉" in out

    def test_check_computation_document(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.paperfigures import figure2_pair

        comp, _ = figure2_pair()
        path = tmp_path / "comp.json"
        path.write_text(dumps(comp))
        rc = main(["check", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "computation: 4 nodes" in out


class TestInferAndConformance:
    def test_infer_serial_memory(self, capsys):
        rc = main(["infer", "--program", "racy", "--memory", "serial",
                   "--runs", "3", "--procs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strongest consistent model: SC" in out

    def test_infer_backer_store_buffer(self, capsys):
        rc = main(["infer", "--program", "store-buffer", "--procs", "2",
                   "--runs", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SC: VIOLATED" in out
        assert "strongest consistent model: LC" in out

    def test_conformance_pass(self, capsys):
        rc = main(["conformance", "--target", "LC", "--runs", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violations" in out

    def test_conformance_fail(self, capsys):
        rc = main(["conformance", "--target", "LC", "--runs", "4",
                   "--drop-reconcile", "0.9", "--drop-flush", "0.9"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "violations" in out


class TestReproduce:
    def test_quick_profile_passes(self, capsys):
        rc = main(["reproduce", "--profile", "quick"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OVERALL: all artifacts reproduced" in out
        assert out.count("[PASS]") == 5
        assert "[FAIL]" not in out
