"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.program == "fib"
        assert args.procs == 4

    def test_all_programs_parse(self):
        from repro.cli import PROGRAMS

        for prog in PROGRAMS:
            args = build_parser().parse_args(["run", "--program", prog])
            assert args.program == prog


class TestFigures:
    def test_exit_code_and_output(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        assert "SC=∉" in out


class TestLattice:
    def test_small_lattice(self, capsys):
        # 2-node universes keep this fast; the constructibility witnesses
        # are out of range, so a nonzero exit (documented gap) is fine —
        # we only require the report to render.
        rc = main(["lattice", "--sweep-nodes", "2", "--witness-nodes", "2"])
        out = capsys.readouterr().out
        assert "Inclusion matrix" in out
        assert rc in (0, 1)


class TestRunAndCheck:
    def test_run_fib_serial_memory(self, capsys):
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--procs", "2",
             "--memory", "serial"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "location consistent: yes" in out
        assert "sequentially consistent: yes" in out

    def test_run_store_buffer_weak(self, capsys):
        rc = main(["run", "--program", "store-buffer", "--procs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "location consistent: yes" in out

    def test_run_faulty_detected(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main(
            ["run", "--program", "racy", "--procs", "4", "--seed", "3",
             "--drop-reconcile", "1.0", "--drop-flush", "1.0",
             "--out", str(out_path)]
        )
        out = capsys.readouterr().out
        assert "trace written" in out
        data = json.loads(out_path.read_text())
        assert data["format"] == "repro/trace"
        # Whether this specific seed violates LC is workload-dependent;
        # the exit code must agree with the printed verdict.
        violated = "NO — protocol violation" in out
        assert rc == (2 if violated else 0)

    def test_check_roundtrip(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        main(["run", "--program", "tree-sum", "--size", "4",
              "--procs", "2", "--out", str(out_path)])
        capsys.readouterr()
        rc = main(["check", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completable within LC: yes" in out

    def test_check_observer_document(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.paperfigures import figure2_pair

        comp, phi = figure2_pair()
        path = tmp_path / "phi.json"
        path.write_text(dumps(phi))
        rc = main(["check", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "NW: ∈" in out and "WN: ∉" in out

    def test_check_computation_document(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.paperfigures import figure2_pair

        comp, _ = figure2_pair()
        path = tmp_path / "comp.json"
        path.write_text(dumps(comp))
        rc = main(["check", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "computation: 4 nodes" in out


class TestLint:
    def test_clean_program_exits_zero(self, capsys):
        rc = main(["lint", "tree-sum"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean — no races" in out

    def test_racy_program_exits_nonzero_with_diagnostics(self, capsys):
        rc = main(["lint", "racy"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "data-race" in out
        assert "main/s0" in out  # node paths in diagnostics

    def test_locked_counter_passes_with_lock_mediated_report(self, capsys):
        rc = main(["lint", "locked-counter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lock-mediated" in out
        assert "locks {L} vs {L}" in out

    def test_json_output(self, capsys):
        rc = main(["lint", "racy", "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 2
        data = json.loads(out)
        assert data["clean"] is False
        assert data["engine"] == "sp-bags"
        assert data["data_races"] == len(data["diagnostics"])
        d = data["diagnostics"][0]
        assert set(d) == {
            "loc", "kind", "classification", "u", "v", "locks_u", "locks_v",
        }

    def test_closure_engine_enumerates_all_pairs(self, capsys):
        main(["lint", "racy", "--format", "json"])
        spbags = json.loads(capsys.readouterr().out)
        main(["lint", "racy", "--format", "json", "--engine", "closure"])
        closure = json.loads(capsys.readouterr().out)
        assert closure["engine"] == "closure"
        assert closure["races"] >= spbags["races"]

    def test_lint_serialized_computation(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.lang import tree_sum_computation

        path = tmp_path / "comp.json"
        path.write_text(dumps(tree_sum_computation(4)[0]))
        rc = main(["lint", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_lint_serialized_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        main(["run", "--program", "racy", "--out", str(path)])
        capsys.readouterr()
        rc = main(["lint", str(path)])
        assert rc == 2


class TestCleanErrors:
    """Malformed inputs: one-line error + exit 2, never a traceback."""

    def test_unknown_program_or_file(self, capsys):
        rc = main(["lint", "no-such-thing"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("\n") == 1
        assert "neither a bundled program" in err

    def test_malformed_json_lint(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("this is not json {{{")
        rc = main(["lint", str(path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "repro lint: error:" in err
        assert "Traceback" not in err

    def test_malformed_json_check(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2")
        rc = main(["check", str(path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "repro check: error:" in err

    def test_missing_file_check(self, capsys, tmp_path):
        rc = main(["check", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "repro check: error:" in err

    def test_wrong_document_type_lint(self, capsys, tmp_path):
        from repro.io import dumps
        from repro.paperfigures import figure2_pair

        _, phi = figure2_pair()
        path = tmp_path / "phi.json"
        path.write_text(dumps(phi))
        # An observer function carries its computation — lint accepts it.
        rc = main(["lint", str(path)])
        assert rc in (0, 2)
        assert "Traceback" not in capsys.readouterr().err


class TestRunSanitize:
    def test_sanitize_flags_faulty_backer(self, capsys):
        rc = main(["run", "--program", "racy", "--procs", "4",
                   "--drop-reconcile", "1.0", "--drop-flush", "1.0",
                   "--sanitize"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "sanitizer: violation at event" in out
        assert "witness nodes" in out

    def test_sanitize_clean_on_faithful_memory(self, capsys):
        rc = main(["run", "--program", "tree-sum", "--size", "4",
                   "--procs", "2", "--sanitize"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sanitizer" not in out


class TestInferAndConformance:
    def test_infer_serial_memory(self, capsys):
        rc = main(["infer", "--program", "racy", "--memory", "serial",
                   "--runs", "3", "--procs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strongest consistent model: SC" in out

    def test_infer_backer_store_buffer(self, capsys):
        rc = main(["infer", "--program", "store-buffer", "--procs", "2",
                   "--runs", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SC: VIOLATED" in out
        assert "strongest consistent model: LC" in out

    def test_conformance_pass(self, capsys):
        rc = main(["conformance", "--target", "LC", "--runs", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violations" in out

    def test_conformance_fail(self, capsys):
        rc = main(["conformance", "--target", "LC", "--runs", "4",
                   "--drop-reconcile", "0.9", "--drop-flush", "0.9"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "violations" in out


class TestReproduce:
    def test_quick_profile_passes(self, capsys):
        rc = main(["reproduce", "--profile", "quick"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OVERALL: all artifacts reproduced" in out
        assert out.count("[PASS]") == 5
        assert "[FAIL]" not in out


class TestBadConfig:
    def test_invalid_repro_jobs_is_one_clean_line(self, capsys, monkeypatch):
        """REPRO_JOBS=lots exits 2 with one stderr line, no traceback."""
        monkeypatch.setenv("REPRO_JOBS", "lots")
        rc = main(["lattice", "--sweep-nodes", "2", "--witness-nodes", "2"])
        captured = capsys.readouterr()
        assert rc == 2
        err_lines = [ln for ln in captured.err.splitlines() if ln]
        assert err_lines == [
            "repro lattice: error: REPRO_JOBS must be an integer, got 'lots'"
        ]

    def test_config_error_is_a_value_error(self):
        from repro.errors import ConfigError, ReproError

        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)


class TestObservability:
    def test_run_trace_writes_valid_json(self, capsys, tmp_path):
        from repro import obs
        from repro.obs import validate_trace

        path = tmp_path / "trace.json"
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--procs", "2",
             "--sanitize", "--trace", str(path)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert f"trace written to {path}" in captured.err
        assert not obs.enabled()  # collector shut down after the command
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == []
        (root,) = doc["spans"]
        assert root["name"] == "repro.run"
        names = {sp["name"] for sp in _walk_spans(doc["spans"])}
        assert {"execute", "step", "verify.lc", "verify.sc"} <= names
        c = doc["counters"]
        assert c["executor.runs"] == 1
        assert c["executor.reads"] + c["executor.writes"] <= c["executor.nodes"]
        assert c["sanitizer.events"] == c["executor.nodes"]

    def test_run_profile_prints_to_stderr(self, capsys):
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--procs", "2",
             "--profile"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "counters:" in captured.err
        assert "executor.nodes" in captured.err
        assert "counters:" not in captured.out  # stdout stays machine-clean

    def test_reproduce_trace_consistent_with_sweep_stats(self, capsys, tmp_path):
        from repro.obs import validate_trace

        path = tmp_path / "rep.json"
        rc = main(
            ["reproduce", "--profile", "quick", "--jobs", "2",
             "--trace", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == []
        spans = list(_walk_spans(doc["spans"]))
        section_names = {
            sp["name"] for sp in spans if sp["name"].startswith("reproduce.")
        }
        assert "reproduce.lattice" in section_names
        assert "reproduce.theorem23" in section_names
        sweeps = [sp for sp in spans if sp["name"].startswith("sweep:")]
        assert sweeps, "the lattice/thm23 sections run sharded sweeps"
        shard_pairs = sum(
            child["attrs"]["pairs"]
            for sweep in sweeps
            for child in sweep["children"]
            if child["name"] == "shard"
        )
        assert shard_pairs == doc["counters"]["sweep.pairs"]
        consultations = sum(
            info["hits"] + info["misses"]
            for sweep in sweeps
            for child in sweep["children"]
            if child["name"] == "shard"
            for info in child["attrs"]["caches"].values()
        )
        assert consultations == doc["counters"]["sweep.cache.consultations"]

    def test_lint_trace_flag(self, capsys, tmp_path):
        path = tmp_path / "lint.json"
        rc = main(["lint", "racy", "--trace", str(path)])
        capsys.readouterr()
        assert rc == 2  # racy program still fails the lint
        doc = json.loads(path.read_text())
        names = {sp["name"] for sp in _walk_spans(doc["spans"])}
        assert "verify.lint" in names
        assert doc["counters"]["lint.runs"] == 1


def _walk_spans(spans):
    stack = list(spans)
    while stack:
        sp = stack.pop()
        yield sp
        stack.extend(sp.get("children", ()))


class TestChromeTrace:
    def test_run_writes_perfetto_loadable_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace_chrome.json"
        rc = main(
            ["run", "--program", "fib", "--size", "6",
             "--trace", str(path), "--trace-format", "chrome"]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        complete = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert any(ev["name"] == "execute" for ev in complete)

    def test_reproduce_pool_trace_has_parallel_worker_tracks(
        self, capsys, tmp_path
    ):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "repro_chrome.json"
        rc = main(
            ["reproduce", "--jobs", "2", "--trace", str(path),
             "--trace-format", "chrome"]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        pids = {
            ev["pid"] for ev in doc["traceEvents"] if ev.get("ph") == "X"
        }
        assert len(pids) >= 2, (
            f"pool sweep must fan out over ≥2 pid tracks, got {sorted(pids)}"
        )

    def test_mem_flag_attributes_bytes_to_execute_span(self, capsys, tmp_path):
        path = tmp_path / "mem.json"
        rc = main(
            ["run", "--program", "fib", "--size", "6",
             "--trace", str(path), "--mem"]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(path.read_text())
        executes = [
            sp for sp in _walk_spans(doc["spans"]) if sp["name"] == "execute"
        ]
        assert executes
        for sp in executes:
            assert sp["attrs"]["mem_peak_bytes"] >= sp["attrs"]["mem_net_bytes"]
            assert sp["attrs"]["mem_peak_bytes"] > 0


class TestBench:
    def _run(self, capsys, tmp_path, *extra):
        ledger = tmp_path / "ledger.jsonl"
        rc = main(
            ["bench", "--quick", "--repeats", "2", "--warmup", "0",
             "--only", "fig1-lattice,backer-overhead",
             "--ledger", str(ledger), *extra]
        )
        out = capsys.readouterr().out
        return rc, ledger, out

    def test_quick_appends_schema_valid_records(self, capsys, tmp_path):
        from repro.obs.ledger import read_ledger

        rc, ledger, _ = self._run(capsys, tmp_path)
        assert rc == 0
        records = read_ledger(str(ledger), strict=True)
        assert [r["benchmark"] for r in records] == [
            "fig1-lattice", "backer-overhead",
        ]
        for rec in records:
            assert rec["quick"] is True
            assert rec["repeats"] == 2
            assert len(rec["wall_seconds"]["runs"]) == 2

    def test_unchanged_rerun_gates_flat(self, capsys, tmp_path):
        rc1, ledger, _ = self._run(capsys, tmp_path)
        assert rc1 == 0
        rc2, _, out = self._run(capsys, tmp_path, "--compare")
        assert rc2 == 0
        assert "0 regression(s)" in out

    def test_list_names_every_registered_benchmark(self, capsys, tmp_path):
        rc = main(["bench", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("parallel-sweep", "races", "fig1-lattice",
                     "streaming-verifier", "backer-overhead"):
            assert name in out

    def test_unknown_benchmark_is_a_clean_error(self, capsys, tmp_path):
        rc = main(["bench", "--only", "no-such-bench"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown benchmark" in err


class TestLiveTelemetryFlags:
    def test_flags_parse_on_all_entry_commands(self):
        for cmd in ("run", "reproduce", "bench"):
            args = build_parser().parse_args(
                [cmd, "--journal", "j.jsonl", "--live", "--metrics-port", "0"]
            )
            assert args.obs_journal == "j.jsonl"
            assert args.obs_live is True
            assert args.obs_metrics_port == 0

    def test_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.obs_journal is None
        assert args.obs_live is False
        assert args.obs_metrics_port is None

    def test_obs_subcommand_parses(self):
        args = build_parser().parse_args(
            ["obs", "export", "t.json", "--format", "prom"]
        )
        assert args.obs_command == "export"
        assert args.path == "t.json"
        args = build_parser().parse_args(
            ["obs", "replay", "j.jsonl", "--format", "chrome", "--out", "o"]
        )
        assert args.obs_command == "replay"
        assert args.journal == "j.jsonl"

    def test_run_with_journal_spools_replayable_records(
        self, capsys, tmp_path
    ):
        from repro import obs
        from repro.obs import replay_journal, validate_trace

        path = tmp_path / "run.jsonl"
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--procs", "2",
             "--journal", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        assert not obs.enabled()
        replay = replay_journal(str(path))
        assert replay.clean  # journal_close written on orderly shutdown
        assert replay.aborted == []
        assert validate_trace(replay.to_trace_dict()) == []
        names = {sp["name"] for sp in _walk_spans(
            replay.to_trace_dict()["spans"]
        )}
        assert "repro.run" in names
        assert "execute" in names

    def test_obs_replay_recovers_a_torn_journal(self, capsys, tmp_path):
        from repro.obs import validate_trace

        path = tmp_path / "torn.jsonl"
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--journal", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        # Tear off the orderly shutdown plus half of the previous record,
        # as a kill -9 mid-write would.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-2]) + lines[-2][: 10])
        out_path = tmp_path / "recovered.json"
        rc = main(
            ["obs", "replay", str(path), "--format", "json",
             "--out", str(out_path)]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "torn journal" in captured.err
        doc = json.loads(out_path.read_text())
        assert validate_trace(doc) == []

    def test_obs_export_prometheus_from_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--trace", str(trace)]
        )
        capsys.readouterr()
        assert rc == 0
        rc = main(["obs", "export", str(trace), "--format", "prom"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "# TYPE repro_executor_nodes counter" in captured.out
        assert "repro_executor_runs 1" in captured.out

    def test_obs_export_reads_journals_too(self, capsys, tmp_path):
        path = tmp_path / "j.jsonl"
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--journal", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        rc = main(["obs", "export", str(path), "--format", "text"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "executor.nodes" in captured.out

    def test_metrics_port_zero_serves_during_run(self, capsys):
        import re
        import urllib.request

        # Scraping after the command returns is impossible, so assert the
        # startup banner (with the ephemeral port resolved) and that the
        # server came down with the command.
        rc = main(
            ["run", "--program", "fib", "--size", "5", "--metrics-port", "0"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        m = re.search(
            r"serving metrics at (http://127\.0\.0\.1:\d+/metrics)",
            captured.err,
        )
        assert m, captured.err
        # The ephemeral port is released once the command finishes.
        with pytest.raises(Exception):
            urllib.request.urlopen(m.group(1), timeout=0.5)

    def test_obs_export_rejects_garbage_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        rc = main(["obs", "export", str(bad)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error" in captured.err


class TestLintMultiRule:
    """The analysis-framework face of ``repro lint``: multiple targets,
    rule selection, SARIF, baselines, and the new rule fixtures."""

    def test_multi_target_aggregates_exit_code(self, capsys):
        assert main(["lint", "tree-sum", "fib", "locked-counter"]) == 0
        out = capsys.readouterr().out
        assert out.count("clean — no races") == 2  # locked has notes
        assert main(["lint", "tree-sum", "racy"]) == 2
        out = capsys.readouterr().out
        assert "tree-sum:" in out and "racy:" in out

    def test_deadlock_program(self, capsys):
        rc = main(["lint", "deadlock"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "[DL001 error]" in out
        assert "lock-order cycle A → B → A" in out

    def test_select_and_ignore(self, capsys):
        assert main(["lint", "deadlock", "--ignore", "DL001"]) == 0
        capsys.readouterr()
        assert main(["lint", "deadlock", "--select", "RACE"]) == 0
        out = capsys.readouterr().out
        assert "DL001" not in out
        rc = main(["lint", "deadlock", "--select", "NOPE"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown rule" in err

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule in ("RACE001", "RACE002", "DL001", "PORT001", "LC001"):
            assert rule in out
        assert "trace-only" in out

    def test_no_targets_is_clean_error(self, capsys):
        rc = main(["lint"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "no lint targets" in err

    def test_portability_warning_on_store_buffer(self, capsys):
        main(["lint", "store-buffer"])
        out = capsys.readouterr().out
        assert "[PORT001 warning]" in out
        assert "not SC-portable" in out

    def test_sarif_output_is_valid(self, capsys):
        from repro.analysis import validate_sarif

        rc = main(["lint", "racy", "deadlock", "--format", "sarif"])
        out = capsys.readouterr().out
        assert rc == 2
        doc = json.loads(out)
        validate_sarif(doc)
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        uris = {
            res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for res in run["results"]
        }
        assert uris == {"racy", "deadlock"}
        assert all(
            res["partialFingerprints"]["reproLint/v1"]
            for res in run["results"]
        )

    def test_baseline_roundtrip_e2e(self, capsys, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        # Seed: everything current is accepted, exit drops to 0.
        rc = main(
            ["lint", "racy", "deadlock", "--write-baseline",
             "--baseline", baseline]
        )
        assert rc == 0
        capsys.readouterr()
        # Re-lint against the baseline: still 0.
        rc = main(["lint", "racy", "deadlock", "--baseline", baseline])
        captured = capsys.readouterr()
        assert rc == 0
        assert "baseline-suppressed" in captured.out
        # A grown program introduces findings the baseline has never
        # seen: exit 2 again, old findings still marked suppressed.
        rc = main(
            ["lint", "racy", "--size", "6", "--baseline", baseline]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "(baseline)" in captured.out
        suppressed = captured.out.count("(baseline)")
        total = captured.out.count("[RACE001")
        assert 0 < suppressed < total

    def test_baseline_suppressions_reach_sarif(self, capsys, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        main(["lint", "racy", "--write-baseline", "--baseline", baseline])
        capsys.readouterr()
        main(
            ["lint", "racy", "--size", "6", "--baseline", baseline,
             "--format", "sarif"]
        )
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert any(res.get("suppressions") for res in results)
        assert any(not res.get("suppressions") for res in results)

    def test_corrupt_baseline_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "findings": {}}))
        rc = main(["lint", "racy", "--baseline", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "repro lint: error:" in err
        assert "Traceback" not in err

    def test_directory_target(self, capsys, tmp_path):
        sub = tmp_path / "nested"
        sub.mkdir()
        main(["run", "--program", "tree-sum", "--out",
              str(tmp_path / "clean.json")])
        main(["run", "--program", "racy", "--out",
              str(sub / "racy.json")])
        capsys.readouterr()
        rc = main(["lint", str(tmp_path), "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 2
        data = json.loads(out)
        assert data["targets"] == 2
        assert data["clean"] is False
        # Trace documents get the trace-only LC001 pass as well.
        for report in data["reports"]:
            assert "LC001" in report["rules"]

    def test_empty_directory_is_clean_error(self, capsys, tmp_path):
        rc = main(["lint", str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "contains no *.json" in err

    def test_trace_target_runs_lc001(self, capsys, tmp_path):
        path = tmp_path / "faulty.json"
        main(["run", "--program", "racy", "--procs", "4",
              "--drop-reconcile", "1.0", "--drop-flush", "1.0",
              "--seed", "0", "--out", str(path)])
        capsys.readouterr()
        rc = main(["lint", str(path), "--select", "LC001",
                   "--format", "json"])
        out = capsys.readouterr().out
        data = json.loads(out)
        if data["findings"]:
            assert rc == 2
            assert all(
                f["rule"] == "LC001" and f["kind"] == "lc-violation"
                for f in data["findings"]
            )
        else:  # this seed stayed consistent: clean lint
            assert rc == 0
