"""The multi-rule analysis engine: registry, rules, SARIF, baselines.

Exercises the framework around the detectors: rule selection semantics
(``--select``/``--ignore`` prefixes, opt-in and trace-only gating),
report shapes (including the PR 2 legacy JSON keys the CI smoke
asserts), the deadlock and portability rules on matched positive /
negative fixtures, SARIF 2.1.0 structural validity, and the baseline
fingerprint contract (stable across re-unfolds, suppression
round-trip, versioned files).
"""

import json

import pytest

from repro.analysis import (
    AnalysisContext,
    Finding,
    all_rules,
    apply_baseline,
    check_portability,
    finding_fingerprint,
    get_rule,
    load_baseline,
    lock_cycles,
    lock_graph,
    register_rule,
    run_analysis,
    sarif_document,
    select_rules,
    validate_sarif,
    write_baseline,
)
from repro.lang import (
    deadlock_computation,
    iriw_computation,
    locked_counter_computation,
    racy_counter_computation,
    store_buffer_computation,
    tree_sum_computation,
    unfold,
)
from repro.runtime import (
    BackerMemory,
    SerialMemory,
    execute,
    work_stealing_schedule,
)

EXPECTED_RULES = ("DL001", "LC001", "PORT001", "RACE001", "RACE002")


def _ctx(factory, target="t", **kwargs):
    comp, info = factory()
    return AnalysisContext(
        comp,
        target=target,
        sp=info.sp,
        lock_sections=info.lock_sections,
        node_paths=info.node_paths,
        names=info.names,
        **kwargs,
    )


def _trace(comp, drop, seed):
    sched = work_stealing_schedule(comp, 4, rng=seed)
    mem = BackerMemory(
        drop_reconcile_probability=drop,
        drop_flush_probability=drop,
        rng=seed,
    )
    return execute(sched, mem)


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert tuple(r.id for r in all_rules()) == EXPECTED_RULES
        for rule in all_rules():
            assert rule.doc and rule.severity in ("error", "warning", "note")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule("RACE001", name="dup", severity="error")(
                lambda ctx: []
            )

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            register_rule("X999", name="x", severity="fatal")(
                lambda ctx: []
            )

    def test_get_rule_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule("NOPE")

    def test_select_prefix_and_exact(self):
        assert [r.id for r in select_rules("RACE")] == [
            "RACE001",
            "RACE002",
        ]
        assert [r.id for r in select_rules("RACE001,DL001")] == [
            "DL001",
            "RACE001",
        ]

    def test_ignore_filters(self):
        ids = [r.id for r in select_rules(None, "RACE,LC001")]
        assert ids == ["DL001", "PORT001"]

    def test_unknown_pattern_is_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules("ZZZ")
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(None, "ZZZ")

    def test_trace_only_skipped_without_trace(self):
        report = run_analysis(_ctx(lambda: tree_sum_computation(4)))
        assert "LC001" not in report.rules_run
        assert set(report.rules_run) == set(EXPECTED_RULES) - {"LC001"}


class TestReportShape:
    def test_legacy_json_keys(self):
        report = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2), target="racy")
        )
        d = report.to_dict()
        assert d["target"] == "racy"
        assert d["engine"] == "sp-bags"
        assert not d["clean"]
        assert d["data_races"] > 0
        assert d["races"] == len(d["diagnostics"])
        for diag in d["diagnostics"]:
            assert diag["classification"] in (
                "data-race",
                "lock-mediated",
            )
        assert d["errors"] > 0 and d["suppressed"] == 0

    def test_clean_render(self):
        report = run_analysis(_ctx(lambda: tree_sum_computation(4)))
        assert report.clean
        assert "clean — no races" in report.render_text()

    def test_severity_counts_in_render(self):
        report = run_analysis(_ctx(deadlock_computation))
        text = report.render_text()
        assert "1 error(s)" in text and "note(s)" in text
        assert "[DL001 error]" in text


class TestDeadlockRule:
    def test_inverted_abba_is_error(self):
        report = run_analysis(_ctx(deadlock_computation))
        dl = [f for f in report.findings if f.rule == "DL001"]
        assert len(dl) == 1
        f = dl[0]
        assert f.severity == "error" and f.kind == "lock-cycle"
        assert "A → B → A" in f.message
        assert len(f.nodes) == 2 and all(f.paths)
        assert not report.clean

    def test_aligned_order_is_clean(self):
        report = run_analysis(
            _ctx(lambda: deadlock_computation(False))
        )
        assert report.clean
        assert not [f for f in report.findings if f.rule == "DL001"]

    def test_serialized_inversion_is_note(self):
        """ABBA nesting on dag-*ordered* branches cannot hang: note."""

        def worker(ctx, first, second):
            with ctx.lock(first):
                with ctx.lock(second):
                    ctx.read("ctr")
                    ctx.write("ctr")

        def main(ctx):
            ctx.write("ctr")
            ctx.spawn(worker, "A", "B")
            ctx.sync()
            ctx.spawn(worker, "B", "A")
            ctx.sync()
            ctx.read("ctr")

        comp, info = unfold(main)
        cycles = lock_cycles(comp, info.lock_sections)
        assert len(cycles) == 1 and not cycles[0].concurrent
        ctx = AnalysisContext(
            comp,
            target="serialized",
            sp=info.sp,
            lock_sections=info.lock_sections,
            node_paths=info.node_paths,
            names=info.names,
        )
        report = run_analysis(ctx)
        dl = [f for f in report.findings if f.rule == "DL001"]
        assert len(dl) == 1
        assert dl[0].severity == "note"
        assert dl[0].kind == "lock-cycle-serialized"
        assert report.clean

    def test_lock_graph_edges(self):
        comp, info = deadlock_computation(True)
        edges = lock_graph(comp, info.lock_sections)
        assert {(e.outer, e.inner) for e in edges} == {
            ("A", "B"),
            ("B", "A"),
        }
        for e in edges:
            for a1, r1, a2 in e.witnesses:
                assert comp.dag.precedes_eq(a1, a2)
                assert comp.dag.precedes_eq(a2, r1)


class TestPortabilityRule:
    def test_store_buffer_diverges(self):
        report = run_analysis(_ctx(store_buffer_computation))
        port = [f for f in report.findings if f.rule == "PORT001"]
        assert len(port) == 1
        assert port[0].severity == "warning"
        assert port[0].kind == "sc-lc-divergence"

    def test_iriw_diverges(self):
        report = run_analysis(_ctx(iriw_computation))
        assert any(
            f.rule == "PORT001" and f.kind == "sc-lc-divergence"
            for f in report.findings
        )

    def test_race_free_is_portable(self):
        report = run_analysis(_ctx(lambda: tree_sum_computation(4)))
        assert not [f for f in report.findings if f.rule == "PORT001"]

    def test_single_written_location_is_portable(self):
        """Racy counter: one written location, so LC = SC (Theorem)."""
        report = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2))
        )
        assert not [f for f in report.findings if f.rule == "PORT001"]

    def test_budget_exhaustion_is_undecided(self):
        comp, _ = store_buffer_computation()
        verdict = check_portability(comp, budget=1)
        assert verdict.status == "undecided"
        assert not verdict.portable
        full = check_portability(comp)
        assert full.status == "divergent"
        assert full.witness is not None


class TestTraceRules:
    def test_lc001_reports_every_violation(self):
        comp, info = racy_counter_computation(4, 3)
        flagged = 0
        for seed in range(10):
            trace = _trace(comp, 1.0, seed)
            ctx = AnalysisContext(
                comp,
                target=f"trace-{seed}",
                sp=info.sp,
                lock_sections=info.lock_sections,
                node_paths=info.node_paths,
                names=info.names,
                trace=trace,
            )
            report = run_analysis(ctx)
            assert "LC001" in report.rules_run
            lc = [f for f in report.findings if f.rule == "LC001"]
            from repro.verify import TraceSanitizer

            expected = TraceSanitizer.collect_violations(trace)
            assert len(lc) == len(expected)
            flagged += len(lc)
            for f, v in zip(lc, expected):
                assert f.severity == "error"
                assert f.kind == "lc-violation"
                assert f.nodes == tuple(v.witness)
        assert flagged >= 5

    def test_clean_trace_no_lc_findings(self):
        comp, info = racy_counter_computation(4, 2)
        sched = work_stealing_schedule(comp, 2, rng=0)
        trace = execute(sched, SerialMemory())
        ctx = AnalysisContext(comp, target="clean", trace=trace)
        report = run_analysis(ctx, select_rules("LC001"))
        assert report.rules_run == ("LC001",)
        assert report.findings == []

    def test_race002_silent_when_detectors_agree(self):
        for factory in (
            lambda: racy_counter_computation(4, 2),
            lambda: tree_sum_computation(8),
            store_buffer_computation,
            deadlock_computation,
        ):
            report = run_analysis(_ctx(factory))
            assert "RACE002" in report.rules_run
            assert not [
                f for f in report.findings if f.rule == "RACE002"
            ]


class TestSarif:
    def _reports(self):
        return [
            run_analysis(
                _ctx(lambda: racy_counter_computation(4, 2), "racy")
            ),
            run_analysis(_ctx(deadlock_computation, "deadlock")),
            run_analysis(_ctx(lambda: tree_sum_computation(4), "tree")),
        ]

    def test_document_is_valid(self):
        reports = self._reports()
        fps = {
            id(f): finding_fingerprint(r.target, f)
            for r in reports
            for f in r.findings
        }
        doc = sarif_document(reports, all_rules(), fingerprints=fps)
        validate_sarif(doc)
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["tool"]["driver"]["rules"]) == len(EXPECTED_RULES)
        assert len(run["results"]) == sum(
            len(r.findings) for r in reports
        )
        for res in run["results"]:
            assert res["partialFingerprints"]["reproLint/v1"]
            uri = res["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]["uri"]
            assert uri in ("racy", "deadlock", "tree")

    def test_logical_locations_carry_paths(self):
        doc = sarif_document(
            [run_analysis(_ctx(deadlock_computation, "dl"))],
            all_rules(),
        )
        dl = [
            r for r in doc["runs"][0]["results"]
            if r["ruleId"] == "DL001"
        ]
        names = [
            loc["fullyQualifiedName"]
            for loc in dl[0]["locations"][0]["logicalLocations"]
        ]
        assert all(name.startswith("main/") for name in names)

    def test_validation_rejects_broken_documents(self):
        good = sarif_document(self._reports()[:1], all_rules())
        for mutate, pattern in (
            (lambda d: d.update(version="2.0.0"), "version"),
            (lambda d: d.update(runs=[]), "runs"),
            (
                lambda d: d["runs"][0]["results"][0].update(
                    ruleId="NOPE"
                ),
                "ruleId",
            ),
            (
                lambda d: d["runs"][0]["results"][0].update(
                    level="catastrophic"
                ),
                "level",
            ),
            (
                lambda d: d["runs"][0]["results"][0]["message"].update(
                    text=""
                ),
                "message",
            ),
            (
                lambda d: d["runs"][0]["results"][0].update(ruleIndex=4),
                "ruleIndex",
            ),
        ):
            doc = json.loads(json.dumps(good))
            mutate(doc)
            with pytest.raises(ValueError, match=pattern):
                validate_sarif(doc)

    def test_suppressed_findings_marked(self):
        report = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2), "racy")
        )
        report.findings[0].suppressed = True
        doc = sarif_document([report], all_rules())
        flags = [
            bool(r.get("suppressions"))
            for r in doc["runs"][0]["results"]
        ]
        assert flags[0] and not all(flags)


class TestBaseline:
    def test_fingerprints_stable_across_reunfold(self):
        """Same program re-unfolded → identical fingerprints (paths,
        not node ids, feed the hash)."""

        def fps(report):
            return sorted(
                finding_fingerprint(report.target, f)
                for f in report.findings
            )

        a = run_analysis(_ctx(lambda: racy_counter_computation(4, 2), "racy"))
        b = run_analysis(_ctx(lambda: racy_counter_computation(4, 2), "racy"))
        assert fps(a) == fps(b)

    def test_fingerprint_depends_on_target_and_identity(self):
        f = Finding(
            "RACE001", "error", "m", loc="'x'", paths=("a", "b"),
            kind="data-race",
        )
        assert finding_fingerprint("t1", f) != finding_fingerprint(
            "t2", f
        )
        g = Finding(
            "RACE001", "error", "other message", loc="'x'",
            paths=("a", "b"), kind="data-race",
        )
        assert finding_fingerprint("t1", f) == finding_fingerprint(
            "t1", g
        ), "messages must not affect fingerprints"

    def test_round_trip_suppression(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2), "racy")
        )
        assert not report.clean
        doc = write_baseline(path, [report])
        assert doc["version"] == 1
        accepted = load_baseline(path)
        assert accepted == set(doc["findings"])

        fresh = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2), "racy")
        )
        n = apply_baseline([fresh], accepted)
        assert n == len(fresh.findings)
        assert fresh.clean
        assert len(fresh.suppressed) == n

    def test_new_findings_survive_baseline(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        small = run_analysis(
            _ctx(lambda: racy_counter_computation(4, 2), "racy")
        )
        write_baseline(path, [small])
        grown = run_analysis(
            _ctx(lambda: racy_counter_computation(6, 2), "racy")
        )
        apply_baseline([grown], load_baseline(path))
        assert not grown.clean, "new findings must still fail"
        assert grown.suppressed, "old findings must be suppressed"

    def test_bad_files_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"findings": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(p))
        p.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="findings"):
            load_baseline(str(p))


class TestObsWiring:
    def test_per_rule_spans_and_counters(self):
        from repro import obs

        obs.disable()
        obs.reset()
        obs.enable()
        try:
            run_analysis(_ctx(lambda: racy_counter_computation(4, 2)))
            names = set()
            stack = list(obs.get().roots)
            while stack:
                sp = stack.pop()
                names.add(sp.name)
                stack.extend(sp.children)
            counters = obs.counters()
        finally:
            obs.disable()
            obs.reset()
        assert "analysis.run" in names
        for rid in ("RACE001", "DL001", "PORT001"):
            assert f"analysis.{rid}" in names
        assert counters.get("analysis.runs") == 1
        assert counters.get("analysis.findings", 0) > 0
        assert counters.get("analysis.RACE001.findings", 0) > 0
