"""Tests for computation-centric causal consistency (CC)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Computation, ObserverFunction, R, W
from repro.dag import Dag
from repro.models import CC, LC, NN, SC, WW, Universe, OnlineGame
from repro.paperfigures import figure4_pair, lc_not_sc_pair
from tests.conftest import computations_with_observer


class TestMembership:
    def test_empty(self):
        from repro.core import EMPTY_COMPUTATION

        assert CC.contains(EMPTY_COMPUTATION, ObserverFunction(EMPTY_COMPUTATION, {}))

    def test_serial_last_writer(self):
        from repro.core import last_writer_function

        c = Computation.serial([W("x"), R("x"), W("x"), R("x")])
        phi = last_writer_function(c, (0, 1, 2, 3))
        assert CC.contains(c, phi)

    def test_stale_bottom_rejected(self):
        c = Computation.serial([W("x"), R("x")])
        assert not CC.contains(c, ObserverFunction(c, {"x": (0, None)}))

    def test_causally_overwritten_rejected(self):
        # W0 -> W1 -> R observing W0: W1 is causally between.
        c = Computation.serial([W("x"), W("x"), R("x")])
        assert not CC.contains(c, ObserverFunction(c, {"x": (0, 1, 0)}))

    def test_observation_cycle_rejected(self):
        # Two concurrent read/write pairs observing across: R0 obs W1
        # where W1 is po-after R1 obs W0 po-before... the LB shape.
        c = Computation(
            Dag(4, [(0, 1), (2, 3)]), (R("x"), W("y"), R("y"), W("x"))
        )
        phi = ObserverFunction(
            c, {"x": (3, None, None, 3), "y": (None, 1, 1, None)}
        )
        # κ: 3→0 (obs), 0→1 (dag), 1→2 (obs), 2→3 (dag): a cycle.
        assert not CC.contains(c, phi)

    def test_concurrent_cross_observation_allowed(self):
        comp, phi = figure4_pair()
        assert CC.contains(comp, phi)
        assert not LC.contains(comp, phi)  # the incomparability, one way

    def test_ww_stale_bottom_shows_other_way(self):
        c = Computation.serial([W("x"), R("x")])
        stale = ObserverFunction(c, {"x": (0, None)})
        assert WW.contains(c, stale)
        assert not CC.contains(c, stale)  # ...and the other way

    def test_store_buffer_allowed(self):
        comp, phi = lc_not_sc_pair()
        assert CC.contains(comp, phi)


class TestLatticePosition:
    @given(computations_with_observer(max_nodes=5))
    @settings(max_examples=60, deadline=None)
    def test_sc_subset_cc(self, pair):
        comp, phi = pair
        if SC.contains(comp, phi):
            assert CC.contains(comp, phi)

    @given(computations_with_observer(max_nodes=5, locations=("x", "y")))
    @settings(max_examples=30, deadline=None)
    def test_sc_subset_cc_two_locations(self, pair):
        comp, phi = pair
        if SC.contains(comp, phi):
            assert CC.contains(comp, phi)

    def test_nn_not_subset_cc(self):
        """In NN ∖ CC: two reads each observing the write that follows
        the *other* read — per-location fibers are convex (NN happy) but
        the observation edges close a causal cycle (CC refuses)."""
        c = Computation(
            Dag(4, [(1, 2), (0, 3)]), (R("x"), R("x"), W("x"), W("x"))
        )
        phi = ObserverFunction(c, {"x": (2, 3, 2, 3)})
        assert NN.contains(c, phi)
        assert not CC.contains(c, phi)

    def test_cc_not_subset_nn(self):
        """In CC ∖ NN: a chain W₀ → R(obs concurrent W₃) → R(obs W₀).
        NN's convexity breaks (the middle node leaves W₀'s fiber and
        returns); causally W₃ never follows W₀, so CC accepts."""
        c = Computation(
            Dag(4, [(0, 1), (1, 2)]), (W("x"), R("x"), R("x"), W("x"))
        )
        phi = ObserverFunction(c, {"x": (0, 3, 0, 3)})
        assert CC.contains(c, phi)
        assert not NN.contains(c, phi)

    def test_cc_incomparable_with_lc(self):
        comp4, phi4 = figure4_pair()
        assert CC.contains(comp4, phi4) and not LC.contains(comp4, phi4)
        # LC ∖ CC needs two locations.  Minimal witness (2 nodes): two
        # concurrent writes that each observe the *other* — per-location
        # serializations are trivial, but the mutual observations close
        # a causal cycle.
        c2 = Computation(Dag(2), (W("x"), W("y")))
        phi2 = ObserverFunction(c2, {"x": (0, 0), "y": (1, 1)})
        assert LC.contains(c2, phi2)
        assert not CC.contains(c2, phi2)
        # And the classical shape: message passing with a stale data
        # read (the flag observation makes W(d) causal for the reader).
        c = Computation(
            Dag(4, [(0, 1), (2, 3)]), (W("d"), W("f"), R("f"), R("d"))
        )
        phi = ObserverFunction(
            c, {"d": (0, 0, None, None), "f": (None, 1, 1, 1)}
        )
        assert LC.contains(c, phi)
        assert not CC.contains(c, phi)

    def test_lc_subset_cc_single_location(self):
        """With ONE location, LC ⊆ CC empirically (swept at n ≤ 3 here;
        the universe search found no counterexample at n ≤ 4): the
        per-location serialization already linearizes every observation
        edge, so κ stays acyclic and un-overwritten."""
        u = Universe(max_nodes=3, locations=("x",))
        for comp, phi in u.model_pairs(LC):
            assert CC.contains(comp, phi)


class TestConstructibility:
    def test_augmentation_closed(self):
        from repro.models import find_nonconstructibility_witness

        u = Universe(max_nodes=3, locations=("x",))
        assert find_nonconstructibility_witness(CC, u) is None

    def test_online_game_never_stuck(self):
        import random

        from repro.core.ops import N

        for seed in range(15):
            r = random.Random(seed)
            g = OnlineGame(CC, strict=False)
            for _ in range(5):
                op = r.choice([R("x"), W("x"), N])
                preds = [p for p in range(g.num_nodes) if r.random() < 0.5]
                cands = g.reveal(op, preds)
                assert cands is not None, "CC stuck — constructibility bug"
                choice = {
                    loc: r.choice(vals) for loc, vals in cands.items() if vals
                }
                g.commit(choice or None)

    def test_monotonic(self):
        from repro.models import is_monotonic_on

        assert is_monotonic_on(CC, Universe(max_nodes=2, locations=("x",))) is None


class TestLitmusProfile:
    def test_textbook_causal_row(self):
        from repro.lang import LITMUS_TESTS
        from repro.verify import find_completion

        expected = {
            "SB": True,
            "MP": False,
            "CoRR": False,
            "IRIW": True,
            "LB": False,
            "WRC": False,
            "SB+sync": False,
        }
        for t in LITMUS_TESTS:
            comp, partial = t.build()
            allowed = find_completion(CC, partial) is not None
            assert allowed == expected[t.name], t.name
