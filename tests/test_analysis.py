"""Tests for the Figure-1 lattice analysis and its reports."""

from repro.analysis import (
    KNOWN_DEVIATIONS,
    MEASURED_CONSTRUCTIBLE,
    PAPER_CONSTRUCTIBLE,
    PAPER_EDGES,
    PAPER_MODELS,
    compute_lattice,
    render_computation,
    render_inclusion_matrix,
    render_lattice_result,
    render_pair,
)
from repro.models import Universe
from repro.paperfigures import figure2_pair


class TestLatticeComputation:
    def setup_method(self):
        # Tiny sweep + witness universes keep this test quick; the full
        # n≤3 / n≤4 run lives in the benchmark.
        self.sweep = Universe(max_nodes=2, locations=("x",))
        self.witness = Universe(max_nodes=2, locations=("x",), include_nop=False)
        self.result = compute_lattice(self.sweep, self.witness)

    def test_inclusions_hold(self):
        for a, b in PAPER_EDGES:
            assert self.result.inclusions[(a, b)], (a, b)

    def test_strictness_all_witnessed_via_seeds(self):
        # The paper-figure seeds supply even the witnesses that need
        # 4 nodes or two locations.
        for edge in PAPER_EDGES:
            assert self.result.strictness[edge] is not None, edge

    def test_incomparability_witnessed(self):
        (w1, w2) = self.result.incomparability[("NW", "WN")]
        assert w1 is not None and w2 is not None

    def test_constructibility_matches_measured(self):
        for m in PAPER_MODELS:
            got = self.result.constructibility[m.name] is None
            # On n≤2 the NN/NW witnesses (4 nodes) are invisible, so only
            # check models expected constructible stay closed.
            if MEASURED_CONSTRUCTIBLE[m.name]:
                assert got, m.name

    def test_matches_paper_with_small_universe(self):
        # With a 2-node witness universe the nonconstructibility
        # witnesses are missing; matches_paper reports exactly those.
        problems = self.result.matches_paper()
        assert all("constructibility" in p for p in problems)


class TestLatticeFullWitnessUniverse:
    def test_full_battery(self):
        sweep = Universe(max_nodes=2, locations=("x",))
        witness = Universe(max_nodes=4, locations=("x",), include_nop=False)
        result = compute_lattice(sweep, witness)
        assert result.matches_paper() == []


class TestMetadata:
    def test_deviation_documented(self):
        assert "WN" in KNOWN_DEVIATIONS
        assert PAPER_CONSTRUCTIBLE["WN"] is False
        assert MEASURED_CONSTRUCTIBLE["WN"] is True

    def test_models_cover_edges(self):
        names = {m.name for m in PAPER_MODELS}
        for a, b in PAPER_EDGES:
            assert a in names and b in names


class TestRendering:
    def test_render_computation(self):
        comp, phi = figure2_pair()
        text = render_computation(comp)
        assert "node 0" in text and "W('x')" in text

    def test_render_pair(self):
        comp, phi = figure2_pair()
        text = render_pair(comp, phi)
        assert "Φ" in text and "⊥" not in text  # no bottoms in fig 2

    def test_render_empty(self):
        from repro.core import EMPTY_COMPUTATION

        assert "empty" in render_computation(EMPTY_COMPUTATION)

    def test_render_matrix_and_result(self):
        sweep = Universe(max_nodes=2, locations=("x",))
        result = compute_lattice(sweep, sweep)
        matrix = render_inclusion_matrix(result)
        assert "SC" in matrix and "WW" in matrix
        full = render_lattice_result(result)
        assert "Constructibility" in full


class TestDotExport:
    def test_structure_only(self):
        from repro.analysis import render_dot

        comp, _ = figure2_pair()
        dot = render_dot(comp)
        assert dot.startswith("digraph")
        assert "n0 -> n1" in dot
        assert "dashed" not in dot  # no observation edges without phi

    def test_with_observer(self):
        from repro.analysis import render_dot

        comp, phi = figure2_pair()
        dot = render_dot(comp, phi, name="fig2")
        assert "digraph fig2" in dot
        assert "style=dashed" in dot
        assert dot.count("label=") >= comp.num_nodes

    def test_empty_computation(self):
        from repro.analysis import render_dot
        from repro.core import EMPTY_COMPUTATION

        dot = render_dot(EMPTY_COMPUTATION)
        assert dot.startswith("digraph") and dot.endswith("}")


class TestFullReproduction:
    def test_sections_and_verdict(self):
        from repro.analysis import full_reproduction

        report = full_reproduction("quick")
        assert report.ok
        titles = [s.title for s in report.sections]
        assert any("Figure 1" in t for t in titles)
        assert any("Theorem 23" in t for t in titles)
        assert any("BACKER" in t for t in titles)

    def test_unknown_profile(self):
        import pytest
        from repro.analysis import full_reproduction

        with pytest.raises(ValueError):
            full_reproduction("gigantic")

    def test_render(self):
        from repro.analysis import full_reproduction, render_report

        text = render_report(full_reproduction("quick"))
        assert "Reproduction report" in text
        assert "OVERALL" in text
