"""Tests for the model characterization explorer."""

from repro.analysis import characterize_model, render_characterization
from repro.models import (
    LC,
    NN,
    WW,
    IntersectionModel,
    QDagConsistency,
    Universe,
)

SMALL = Universe(max_nodes=3, locations=("x",))


class TestZooMembersSelfCharacterize:
    def test_lc_coincides_with_sc_single_location(self):
        result = characterize_model(LC, SMALL)
        # One location: SC = LC, so LC is equivalent to SC here.
        assert result.equivalent_zoo() == "SC"
        assert result.complete and result.monotonic
        assert result.stuck_witness is None

    def test_ww_is_weakest(self):
        result = characterize_model(WW, SMALL)
        assert result.contains_zoo("SC")
        assert result.contains_zoo("NN")
        assert result.inside("WW")
        assert result.stuck_witness is None

    def test_nn_characterization(self):
        # At n <= 3 the NN stuckness (4 nodes) is invisible; inclusions
        # still place NN correctly.
        result = characterize_model(NN, SMALL)
        assert result.inside("NN") and result.inside("WW")
        assert result.contains_zoo("SC")


class TestCustomModels:
    def test_middle_reads_predicate(self):
        custom = QDagConsistency(
            lambda c, l, u, v, w: c.op(v).reads(l), "NR"
        )
        result = characterize_model(custom, SMALL)
        # Weaker than NN (Theorem 21) but inside no zoo member at n<=3.
        assert result.contains_zoo("NN")
        assert result.strongest_zoo_above() is None
        # Middle-anchored with u = ⊥ active: nonconstructible, like NW.
        assert result.stuck_witness is not None
        assert result.stuck_witness.comp.num_nodes == 3

    def test_intersection_characterized(self):
        from repro.models import NW, WN

        both = IntersectionModel([NW, WN], "NW∩WN")
        result = characterize_model(both, SMALL)
        # NN ⊆ NW ∩ WN always; at n ≤ 3 they even coincide.
        assert result.contains_zoo("NN")
        assert result.inside("NW") and result.inside("WN")

    def test_render(self):
        result = characterize_model(WW, SMALL)
        text = render_characterization(result)
        assert "characterization of 'WW'" in text
        assert "constructible: yes" in text
        assert "weaker than" in text

    def test_anomalies_recorded(self):
        result = characterize_model(WW, SMALL)
        assert result.anomalies is not None
        assert result.anomalies.separated
        assert result.anomalies.minimal_size == 2  # stale-⊥ read
