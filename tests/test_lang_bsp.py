"""Tests for the BSP frontend."""

import pytest

from repro.core import R, W
from repro.errors import ReproError
from repro.lang.bsp import BspProgram, bsp_exchange_computation
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import trace_admits_lc


class TestBuilder:
    def test_single_worker_chain(self):
        prog = BspProgram(1)
        with prog.superstep() as s:
            s.on(0).write("x")
            s.on(0).read("x")
        comp, info = prog.build()
        assert comp.num_nodes == 2
        assert comp.precedes(0, 1)
        assert info.num_supersteps == 1

    def test_workers_concurrent_within_step(self):
        prog = BspProgram(2)
        with prog.superstep() as s:
            a = s.on(0).write("a")
            b = s.on(1).write("b")
        comp, _ = prog.build()
        assert not comp.precedes(a, b) and not comp.precedes(b, a)

    def test_barrier_orders_steps(self):
        prog = BspProgram(2)
        with prog.superstep() as s:
            a = s.on(0).write("a")
            b = s.on(1).write("b")
        with prog.superstep() as s:
            c = s.on(0).read("b")
        comp, _ = prog.build()
        assert comp.precedes(a, c) and comp.precedes(b, c)

    def test_silent_worker_skipped(self):
        prog = BspProgram(3)
        with prog.superstep() as s:
            s.on(0).write("x")
        with prog.superstep() as s:
            s.on(2).read("x")
        comp, info = prog.build()
        assert comp.num_nodes == 2
        assert comp.precedes(0, 1)
        assert (0, 0) in info.chains and (1, 2) in info.chains
        assert (0, 1) not in info.chains  # worker 1 stayed silent

    def test_empty_superstep_transparent(self):
        prog = BspProgram(2)
        with prog.superstep() as s:
            a = s.on(0).write("x")
        with prog.superstep():
            pass  # fully silent
        with prog.superstep() as s:
            b = s.on(1).read("x")
        comp, info = prog.build()
        assert comp.precedes(a, b)
        assert info.num_supersteps == 2  # the silent one is not counted

    def test_errors(self):
        with pytest.raises(ReproError):
            BspProgram(0)
        prog = BspProgram(1)
        step = prog.superstep()
        with pytest.raises(ReproError):
            prog.superstep()  # previous still open
        with pytest.raises(ReproError):
            prog.build()  # open superstep
        with pytest.raises(ReproError):
            step.on(5)
        step.__exit__(None, None, None)
        prog.build()

    def test_emission_outside_step_rejected(self):
        prog = BspProgram(1)
        with prog.superstep() as s:
            handle = s.on(0)
            handle.write("x")
        with pytest.raises(ReproError):
            handle.write("y")  # superstep closed

    def test_ops_recorded(self):
        prog = BspProgram(1)
        with prog.superstep() as s:
            s.on(0).write("x")
            s.on(0).read("x")
            s.on(0).nop()
        comp, _ = prog.build()
        assert comp.op(0) == W("x") and comp.op(1) == R("x")
        assert comp.op(2).is_nop


class TestExchangeWorkload:
    def test_shape(self):
        comp, info = bsp_exchange_computation(workers=4, rounds=3)
        assert info.num_supersteps == 3
        # round 0: 1 op per worker; rounds 1+: 3 ops per worker.
        assert comp.num_nodes == 4 * (1 + 3 + 3)

    def test_reads_follow_their_writes(self):
        comp, _ = bsp_exchange_computation(workers=3, rounds=2)
        for loc in comp.locations:
            for r in comp.readers(loc):
                assert any(comp.precedes(w, r) for w in comp.writers(loc))

    def test_race_free(self):
        from repro.verify import is_race_free

        assert is_race_free(bsp_exchange_computation(4, 3)[0])

    def test_backer_lc_on_bsp(self):
        comp, _ = bsp_exchange_computation(4, 3)
        for procs in (2, 4):
            for seed in range(3):
                sched = work_stealing_schedule(comp, procs, rng=seed)
                trace = execute(sched, BackerMemory())
                assert trace_admits_lc(trace.partial_observer())

    def test_layered_not_sp(self):
        """Adjacent supersteps with ≥ 2 active workers produce the N
        shape — BSP dags leave the series-parallel world."""
        from repro.dag import is_series_parallel

        prog = BspProgram(2)
        with prog.superstep() as s:
            s.on(0).write("a")
            s.on(1).write("b")
        with prog.superstep() as s:
            s.on(0).read("a")
            s.on(1).read("b")
        comp, _ = prog.build()
        # Every first-step node precedes every second-step node: this is
        # actually complete bipartite, which IS node-SP; add a third
        # step touching only one worker to break it.
        prog2 = BspProgram(2)
        with prog2.superstep() as s:
            s.on(0).write("a")
        with prog2.superstep() as s:
            s.on(0).read("a")
            s.on(1).write("b")
        with prog2.superstep() as s:
            s.on(1).read("b")
        comp2, _ = prog2.build()
        assert is_series_parallel(comp.dag)
        assert is_series_parallel(comp2.dag)  # still SP: barriers nest
