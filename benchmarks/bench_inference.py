"""Model inference from traces: "which memory is this?" (extension).

The paper's definition of "M implements Δ" is trace-based: every
behaviour M generates must lie in Δ.  Observing executions therefore
refines an upper bound on the strongest implemented model.  This bench
measures the refinement:

* a serialized memory never loses SC;
* BACKER on the store-buffer litmus loses SC within a handful of traces
  but keeps LC forever (it implements exactly LC, Luchangco's theorem);
* the fault-injected protocol loses LC too.

The "traces until SC eliminated" count is the empirical cost of
distinguishing SC from LC by observation alone.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_inference.py``.
"""

from repro.lang import racy_counter_computation, store_buffer_computation
from repro.runtime import BackerMemory, SerialMemory, execute, work_stealing_schedule
from repro.verify import infer_models


def traces_for(comp, memory_factory, procs, n):
    out = []
    for seed in range(n):
        sched = work_stealing_schedule(comp, procs, rng=seed)
        out.append(
            execute(sched, memory_factory(seed)).partial_observer()
        )
    return out


def test_serial_memory_inferred_sc(benchmark):
    comp = racy_counter_computation(3, 2)[0]
    traces = traces_for(comp, lambda s: SerialMemory(), 4, 10)
    result = benchmark(infer_models, traces)
    print()
    print(f"serial memory: strongest consistent = {result.strongest_consistent()}")
    assert result.strongest_consistent() == "SC"


def test_backer_inferred_lc(benchmark):
    comp = store_buffer_computation()[0]
    traces = traces_for(comp, lambda s: BackerMemory(), 2, 10)
    result = benchmark(infer_models, traces)
    print()
    print(
        f"BACKER on SB: strongest = {result.strongest_consistent()}, "
        f"SC eliminated by trace #{result.eliminated_by.get('SC')}"
    )
    assert result.strongest_consistent() == "LC"
    assert result.eliminated_by["SC"] <= 2  # SB kills SC almost immediately


def test_faulty_backer_inferred_below_lc(benchmark):
    comp = racy_counter_computation(4, 3)[0]
    traces = traces_for(
        comp,
        lambda s: BackerMemory(
            drop_reconcile_probability=0.9, drop_flush_probability=0.9, rng=s
        ),
        4,
        20,
    )
    result = benchmark.pedantic(infer_models, args=(traces,), rounds=1)
    print()
    print(
        f"faulty BACKER: strongest = {result.strongest_consistent()}, "
        f"verdicts = {result.consistent}"
    )
    assert not result.consistent["LC"]
