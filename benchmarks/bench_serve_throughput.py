"""Serve throughput: batch trace-checking items/s and dedupe rate.

``repro serve`` answers batches of machine-generated litmus traces; the
numbers that matter are **items per second** through the whole engine
(parse → canonical fingerprint → verdict cache → checkers) and the
**dedupe hit rate** the canonical fingerprint buys on a realistic
workload — generated litmus batches repeat shapes heavily, so the cache
is where the throughput comes from.

The corpus mixes admitted write/read chains of growing size, violating
serialization cycles, exact duplicates, and isomorphic relabellings
(which must hit the cache *and* get their witnesses translated).  The
service runs its real single-worker pool: the cold batch pays parse +
fingerprint + dispatch for the 7 unique classes, the warm batches ride
the primed cache — the long-running-server steady state the dedupe
layer exists for.  Quick mode trims the corpus for CI smoke.
"""

import itertools
import json
import time

from repro.core import Computation, R, W
from repro.dag import Dag
from repro.io import dump_trace
from repro.runtime import ExecutionTrace, ReadEvent
from repro.runtime.scheduler import Schedule
from repro.serve import CheckOptions, TraceCheckService


def _chain_trace(n: int) -> ExecutionTrace:
    """W x → R x → W x → … chain of ``n`` nodes: admitted everywhere."""
    ops = tuple(W("x") if i % 2 == 0 else R("x") for i in range(n))
    comp = Computation(Dag(n, [(i, i + 1) for i in range(n - 1)]), ops)
    sched = Schedule(comp, (0,) * n, tuple(range(n)), 1)
    reads = [ReadEvent(i, "x", i - 1) for i in range(1, n) if i % 2 == 1]
    return ExecutionTrace(comp, sched, "bench", reads)


def _cycle_trace(perm: tuple[int, int, int]) -> ExecutionTrace:
    """The 3-node serialization-cycle litmus under a relabelling.

    All six permutations are isomorphic: one fills the cache, the other
    five must come back as dedupe hits with translated witnesses.
    """
    edges = [(perm[2], perm[0]), (perm[0], perm[1])]
    ops = [None, None, None]
    ops[perm[0]], ops[perm[1]], ops[perm[2]] = W("x"), R("x"), W("x")
    comp = Computation(Dag(3, edges), tuple(ops))
    order = {perm[1]: 2, perm[2]: 0, perm[0]: 1}
    sched = Schedule(
        comp, (0, 0, 0), tuple(order[i] for i in range(3)), 1
    )
    return ExecutionTrace(
        comp, sched, "bench", [ReadEvent(perm[1], "x", perm[2])]
    )


def _corpus(quick: bool) -> list[str]:
    chains = [_chain_trace(n) for n in range(2, 8)]
    cycles = [
        _cycle_trace(p) for p in itertools.permutations((0, 1, 2))
    ]
    base = chains + cycles
    repeats = 3 if quick else 25
    lines = [
        json.dumps(dump_trace(t)) for t in base for _ in range(repeats)
    ]
    return lines


def _run_batches(service: TraceCheckService, lines: list[str]):
    t0 = time.perf_counter()
    results = service.check_batch(lines, label="bench")
    return time.perf_counter() - t0, results


def _check(results, lines) -> None:
    assert len(results) == len(lines)
    assert all(r.verdict["ok"] for r in results)
    admitted = sum(1 for r in results if r.verdict["admitted"])
    rejected = sum(1 for r in results if not r.verdict["admitted"])
    assert admitted and rejected, "corpus must mix verdicts"
    for r in results:
        if not r.verdict["admitted"]:
            w = r.verdict["witness"]
            assert w is not None and w["blocks"], "rejects carry witnesses"
    cached = sum(1 for r in results if r.cached)
    # 12 distinct shapes collapse to 7 canonical classes.
    assert cached == len(lines) - 7, "dedupe must collapse the corpus"


def test_serve_throughput(benchmark):
    lines = _corpus(quick=True)
    with TraceCheckService(jobs=1, options=CheckOptions()) as svc:
        seconds, results = _run_batches(svc, lines)
        _check(results, lines)
    assert seconds < 30.0

    def fresh():
        with TraceCheckService(jobs=1) as s:
            _run_batches(s, lines)

    benchmark.pedantic(fresh, rounds=3, iterations=1)


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times a cold batch through a fresh service (empty verdict cache)
    and warm batches through the same service (cache primed — the
    long-running-server steady state), and reports both rates.
    """
    lines = _corpus(quick)
    repeats = 1 if quick else 3
    with TraceCheckService(jobs=1, options=CheckOptions()) as svc:
        cold_s, results = _run_batches(svc, lines)
        if check:
            _check(results, lines)
        warm_s = min(_run_batches(svc, lines)[0] for _ in range(repeats))
        info = svc.cache.info()

    cached = sum(1 for r in results if r.cached)
    admitted = sum(1 for r in results if r.verdict["admitted"])
    return {
        "items": len(lines),
        "unique_classes": info["currsize"],
        "dedupe_hits_cold": cached,
        "dedupe_rate_cold": round(cached / len(lines), 4),
        "admitted": admitted,
        "rejected": len(lines) - admitted,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "items_per_second_cold": round(len(lines) / cold_s, 2),
        "items_per_second_warm": round(len(lines) / warm_s, 2),
    }
