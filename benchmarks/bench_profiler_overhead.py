"""Sampling-profiler overhead on the serve check workload.

``--profile-sample`` arms a SIGPROF interval timer and walks the Python
stack in the handler at every tick.  The whole point of a sampling
profiler is that this is cheap enough to leave on against production
traffic, so the ledger tracks the measured wall-clock overhead at the
default-ish 99 Hz against the same workload unprofiled — the
acceptance bound is **< 5 %**, and regressions here mean the handler
grew a hot allocation or the spill policy started doing I/O on the
sampling path.

The workload is the serve-throughput corpus checked in-process
(:func:`repro.serve.service.check_document` over every parsed request):
the same parse → fingerprint → checker path a pool worker runs, minus
pool fork/IPC noise that would swamp a percent-level comparison.  A
97/199 Hz pair is also timed (both prime, avoiding phase lock with any
periodic work) so EXPERIMENTS.md can record how overhead scales with
the sampling rate.
"""

import time

import bench_serve_throughput as _serve

from repro.obs.profile import (
    SamplingProfiler,
    export_speedscope,
    validate_speedscope,
)
from repro.serve import CheckOptions, parse_request
from repro.serve.service import check_document


def _parsed_corpus(quick: bool):
    defaults = CheckOptions()
    return [
        parse_request(line, defaults)
        for line in _serve._corpus(quick)
    ]


def _workload_seconds(docs) -> float:
    """One cold pass over the corpus (caches cleared first).

    The memoization layer would otherwise answer every repeat after the
    first from warm caches, collapsing the workload to microseconds and
    leaving the SIGPROF sampler nothing to hit — and making the
    baseline-vs-profiled comparison depend on run order.
    """
    from repro.runtime.parallel import clear_sweep_caches

    clear_sweep_caches()
    t0 = time.perf_counter()
    for doc, options in docs:
        check_document(doc, options)
    return time.perf_counter() - t0


def _calibrate_passes(docs, target_seconds: float) -> int:
    """Passes over the corpus needed to fill ``target_seconds``.

    One pass of the quick corpus is single-digit milliseconds — far too
    short to resolve a percent-level overhead or even guarantee one
    SIGPROF tick (99 Hz needs ~10 ms of CPU per sample).  Calibrating
    to a wall-clock budget makes the comparison independent of corpus
    size and machine speed.
    """
    once = max(_workload_seconds(docs), 1e-4)
    return max(3, int(target_seconds / once) + 1)


def _paired(docs, passes: int, hz: int):
    """Interleaved baseline/profiled totals at one sampling rate.

    Alternating unprofiled and profiled passes pass-by-pass cancels the
    slow drift (CPU frequency scaling, cache/allocator warming, noisy
    neighbors) that makes sequential whole-leg comparisons lie at the
    percent level — an earlier sequential version measured a -18 %
    "overhead" purely from leg ordering.

    Returns ``(baseline_seconds, profiled_seconds, samples, profiler)``;
    ``samples`` accumulates across all profiled passes.
    """
    profiler = SamplingProfiler(hz=hz)
    # Alternate in chunks of ~100 ms, not single passes: stop()
    # disarms the interval timer, so a profiled window shorter than
    # one sampling period (a quick-corpus pass is single-digit ms at
    # 99 Hz ≈ 10 ms/tick) would never fire at all.
    once = max(_workload_seconds(docs), 1e-4)
    chunk = max(1, int(0.1 / once) + 1)
    base_total = prof_total = 0.0
    done = 0
    while done < passes:
        n = min(chunk, passes - done)
        for _ in range(n):
            base_total += _workload_seconds(docs)
        profiler.start()
        try:
            for _ in range(n):
                prof_total += _workload_seconds(docs)
        finally:
            profiler.stop()
        done += n
    samples = sum(profiler.folded().values())
    return base_total, prof_total, samples, profiler


def test_profiler_overhead(benchmark):
    docs = _parsed_corpus(quick=True)
    passes = _calibrate_passes(docs, 0.3)
    base_s, prof_s, samples, profiler = _paired(docs, passes, 199)
    assert samples > 0, "SIGPROF sampler never fired under load"
    doc = export_speedscope({0: profiler.folded()}, 199)
    assert validate_speedscope(doc) == []

    def once():
        _workload_seconds(docs)

    benchmark.pedantic(once, rounds=3, iterations=1)


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py)."""
    docs = _parsed_corpus(quick)
    passes = _calibrate_passes(docs, 0.4 if quick else 1.5)
    base99, prof99, samples99, profiler = _paired(docs, passes, 99)
    base97, prof97, samples97, _ = _paired(docs, passes, 97)
    base199, prof199, samples199, _ = _paired(docs, passes, 199)
    if check:
        assert samples99 > 0, "sampler captured nothing at 99 Hz"
        assert samples199 > 0, "sampler captured nothing at 199 Hz"
        doc = export_speedscope({0: profiler.folded()}, 99)
        assert validate_speedscope(doc) == [], "speedscope export invalid"
        # Loose sanity bound only: the ledger records the precise
        # number, CI machines are too noisy for a hard 5 % gate here.
        assert prof99 < base99 * 2.0, "profiled run twice the baseline"

    def pct(base: float, profiled: float) -> float:
        return round((profiled - base) / base * 100.0, 2)

    return {
        "items": len(docs),
        "passes": passes,
        "baseline_seconds": round(base99, 6),
        "profiled99_seconds": round(prof99, 6),
        "profiled97_seconds": round(prof97, 6),
        "profiled199_seconds": round(prof199, 6),
        "overhead_pct_99hz": pct(base99, prof99),
        "overhead_pct_97hz": pct(base97, prof97),
        "overhead_pct_199hz": pct(base199, prof199),
        "samples_99hz": samples99,
        "samples_97hz": samples97,
        "samples_199hz": samples199,
    }
