"""Litmus-outcome table: the model zoo on classical litmus shapes.

Processor-centric programs embed into the computation framework as one
chain per processor (the paper's §1 observation).  This bench classifies
the standard litmus tests' weak outcomes against all six models,
regenerating the kind of allowed/forbidden table the memory-model
literature uses to compare models:

======== ==== ==== ==== ==== ==== ====
test      SC   LC   NN   NW   WN   WW
======== ==== ==== ==== ==== ==== ====
SB        no  yes  yes  yes  yes  yes
MP        no  yes  yes  yes  yes  yes
CoRR      no   no   no  yes  yes  yes
IRIW      no  yes  yes  yes  yes  yes
LB        no  yes  yes  yes  yes  yes
WRC       no  yes  yes  yes  yes  yes
SB+sync   no   no   no   no  yes  yes
======== ==== ==== ==== ==== ==== ====

SC forbids every weak outcome; LC (= coherence = NN*, Theorem 23) adds
exactly per-location ordering, so only the coherence test CoRR
distinguishes it from the weaker dag models (and CoRR also exhibits
NN's strength over NW/WN/WW).  WRC shows coherence is not causality.
SB+sync turns the store buffer's races into dag edges — the paper's
"synchronization = edges" move — after which the weak outcome is a
stale-⊥ read, forbidden by everything except WN/WW (the stale-read
anomaly those two models are criticized for).
"""

import pytest

from repro.lang import LITMUS_TESTS, litmus_outcome_allowed

MODELS = ("SC", "LC", "NN", "NW", "WN", "WW")

EXPECTED = {
    "SB": (False, True, True, True, True, True),
    "MP": (False, True, True, True, True, True),
    "CoRR": (False, False, False, True, True, True),
    "IRIW": (False, True, True, True, True, True),
    "LB": (False, True, True, True, True, True),
    "WRC": (False, True, True, True, True, True),
    "SB+sync": (False, False, False, False, True, True),
}


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_litmus_row(benchmark, test):
    def classify():
        return tuple(litmus_outcome_allowed(test, m) for m in MODELS)

    row = benchmark(classify)
    print()
    print(f"{test.name}: {test.description}")
    print("  " + "  ".join(
        f"{m}={'allowed' if v else 'forbidden'}" for m, v in zip(MODELS, row)
    ))
    assert row == EXPECTED[test.name]


def test_full_table(benchmark):
    def table():
        return {
            t.name: tuple(litmus_outcome_allowed(t, m) for m in MODELS)
            for t in LITMUS_TESTS
        }

    result = benchmark.pedantic(table, rounds=1)
    print()
    header = f"{'test':8}" + "".join(f"{m:>6}" for m in MODELS)
    print(header)
    for name, row in result.items():
        print(
            f"{name:8}"
            + "".join(f"{'yes' if v else 'no':>6}" for v in row)
        )
    assert result == EXPECTED


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the full litmus table (all tests × all six models).  Quick
    mode classifies only the first three tests; ``check`` compares every
    classified row against the expected table.
    """
    import time

    tests = LITMUS_TESTS[:3] if quick else LITMUS_TESTS
    t0 = time.perf_counter()
    table = {
        t.name: tuple(litmus_outcome_allowed(t, m) for m in MODELS)
        for t in tests
    }
    seconds = time.perf_counter() - t0
    if check:
        for name, row in table.items():
            assert row == EXPECTED[name], f"litmus row {name} deviates"
    return {
        "table_seconds": round(seconds, 4),
        "tests": len(table),
        "allowed_outcomes": sum(sum(row) for row in table.values()),
    }
