"""Theorem 23 — LC = NN*: the paper's main result, verified mechanically.

The proof decomposes into two inclusions, each checkable on a bounded
universe:

* **LC ⊆ NN\\*** — because LC ⊆ NN (Theorem 22, swept here) and LC is
  constructible (Theorem 19, swept here), Condition 9.3 forces LC inside
  the weakest constructible strengthening of NN.
* **NN\\* ⊆ LC** — every pair in NN \\ LC dies after a *single*
  augmentation: there is an o (a read or no-op) such that no NN observer
  function for aug_o(C) extends it.  Since NN* ⊆ P(NN) (one pruning
  round), NN* contains no pair outside LC.

A third check runs the full greatest-fixpoint Δ* computation on a
smaller universe and compares it against LC pair-for-pair.
"""

from repro.core.ops import N as NOP, R
from repro.models import (
    LC,
    NN,
    Universe,
    augmentation_closed_at,
    constructible_version,
)


def test_thm22_lc_subset_nn(benchmark, sweep_universe):
    """Theorem 22's inclusion, swept over the universe."""

    def sweep():
        checked = 0
        for comp, phi in sweep_universe.model_pairs(LC):
            assert NN.contains(comp, phi)
            checked += 1
        return checked

    count = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"LC ⊆ NN: {count} LC pairs, all in NN")


def test_thm23_nn_minus_lc_prunes_in_one_step(benchmark, witness_universe):
    """Every pair in NN \\ LC is stuck after one augmentation."""

    def sweep():
        probes = [R("x"), NOP]
        stuck = total = 0
        for comp, phi in witness_universe.model_pairs(NN):
            if LC.contains(comp, phi):
                continue
            total += 1
            if augmentation_closed_at(NN, comp, phi, probes) is not None:
                stuck += 1
        return stuck, total

    stuck, total = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"NN \\ LC pairs on n≤4 universe: {total}; pruned in one step: {stuck}")
    assert total > 0, "strictness of LC ⊊ NN should be visible at n ≤ 4"
    assert stuck == total


def test_thm23_parallel_counts_match_serial_loop(benchmark, witness_universe):
    """The sharded Theorem-23 sweep sums to the serial loop's counts."""
    from repro.runtime.parallel import clear_sweep_caches, parallel_thm23_counts

    probes = (R("x"), NOP)
    serial_lc = serial_total = serial_stuck = 0
    for comp, phi in witness_universe.model_pairs(NN):
        if LC.contains(comp, phi):
            serial_lc += 1
            continue
        serial_total += 1
        if augmentation_closed_at(NN, comp, phi, probes) is not None:
            serial_stuck += 1

    def parallel_run():
        clear_sweep_caches()
        counts, _stats = parallel_thm23_counts(
            witness_universe, probes=probes, jobs=2
        )
        return counts

    counts = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert counts == (serial_lc, serial_total, serial_stuck)


def test_thm23_fixpoint_equals_lc(benchmark):
    """Full Δ* computation, compared with LC pair-for-pair.

    The n ≤ 5 bound is what makes this meaningful: the Figure-4-class
    pairs (4 nodes) sit strictly below the frontier, so the fixpoint
    genuinely prunes them, and the sound fragment (n ≤ 4) includes the
    smallest separations between NN and LC.
    """
    universe = Universe(max_nodes=5, locations=("x",), include_nop=False)

    def compute_and_compare():
        res = constructible_version(NN, universe)
        mismatches = 0
        pairs = 0
        for n in range(res.sound_max_nodes + 1):
            for comp in universe.computations_of_size(n):
                for phi in universe.observers(comp):
                    pairs += 1
                    if res.model.contains(comp, phi) != LC.contains(comp, phi):
                        mismatches += 1
        return res, pairs, mismatches

    res, pairs, mismatches = benchmark.pedantic(compute_and_compare, rounds=1)
    print()
    print(
        f"NN* fixpoint: {res.rounds} rounds, {res.pruned_pairs} pairs pruned; "
        f"{pairs} sound pairs compared with LC, {mismatches} mismatches"
    )
    assert mismatches == 0


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the Theorem-23 core: the Theorem-22 inclusion sweep plus the
    one-step pruning of NN \\ LC.  Full mode prunes on the 4-node
    witness universe (where NN \\ LC is non-empty, so ``stuck == total``
    is the theorem's mechanical content); quick mode stays at 3 nodes,
    where the sweep still runs but NN \\ LC is empty.
    """
    import time

    from repro.runtime.parallel import clear_sweep_caches

    probes = (R("x"), NOP)
    sweep = Universe(max_nodes=3, locations=("x",))
    witness = Universe(
        max_nodes=3 if quick else 4, locations=("x",), include_nop=False
    )
    clear_sweep_caches()

    t0 = time.perf_counter()
    lc_pairs = 0
    for comp, phi in sweep.model_pairs(LC):
        if check:
            assert NN.contains(comp, phi), "Theorem 22 violated: LC ⊄ NN"
        lc_pairs += 1
    thm22_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    stuck = total = 0
    for comp, phi in witness.model_pairs(NN):
        if LC.contains(comp, phi):
            continue
        total += 1
        if augmentation_closed_at(NN, comp, phi, probes) is not None:
            stuck += 1
    prune_seconds = time.perf_counter() - t0
    if check:
        assert stuck == total, "a pair in NN \\ LC survived one augmentation"
        if not quick:
            assert total > 0, "NN \\ LC must be visible at n ≤ 4"
    return {
        "thm22_seconds": round(thm22_seconds, 4),
        "prune_seconds": round(prune_seconds, 4),
        "lc_pairs": lc_pairs,
        "nn_minus_lc": total,
        "pruned": stuck,
    }
