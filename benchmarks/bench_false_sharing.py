"""Page granularity, false sharing, and diff reconciliation (extension).

The real BACKER moved pages, not words.  This bench quantifies the
consequence and its classical fix, with the LC verifier as the judge:

* **clobber** (whole-page writeback): once several locations share a
  page, concurrent disjoint writes destroy each other at reconcile time
  — the verifier rejects essentially every contended execution;
* **diff** (twin/diff writeback, TreadMarks-style): concurrent disjoint
  writes merge; LC holds on every run, at the cost of keeping twins;
* granularity sweep: fewer pages ⇒ fewer page transfers but (in clobber
  mode) more corruption; diff mode keeps correctness flat while the
  transfer counts drop — the coarse-granularity bargain made safe.

Registered in ``registry.py`` as ``false-sharing`` via :func:`run`;
the pytest parametrizations below remain runnable directly with
``pytest benchmarks/bench_false_sharing.py``.
"""

import pytest

from repro.lang import matmul_computation
from repro.runtime import (
    PagedBackerMemory,
    execute,
    modulo_pager,
    work_stealing_schedule,
)
from repro.verify import trace_admits_lc

COMP = matmul_computation(2)[0]
RUNS = 15


def violation_count(
    mode: str, num_pages: int, runs: int = RUNS
) -> tuple[int, int, int]:
    violations = fetches = 0
    for seed in range(runs):
        sched = work_stealing_schedule(COMP, 4, rng=seed)
        mem = PagedBackerMemory(
            page_of=modulo_pager(num_pages), reconcile_mode=mode
        )
        trace = execute(sched, mem)
        violations += not trace_admits_lc(trace.partial_observer())
        fetches += mem.stats.page_fetches
    return violations, fetches, runs


@pytest.mark.parametrize("mode", ["clobber", "diff"])
def test_false_sharing_verdicts(benchmark, mode):
    violations, _f, runs = benchmark.pedantic(
        violation_count, args=(mode, 2), rounds=1
    )
    print()
    print(f"{mode} @ 2 pages: {violations}/{runs} executions violate LC")
    if mode == "clobber":
        assert violations > runs // 2  # the hazard is pervasive
    else:
        assert violations == 0  # the fix is total


def test_granularity_sweep(benchmark):
    def sweep():
        rows = []
        for pages in (1, 2, 8, 64):
            v_clobber, f_clobber, _ = violation_count("clobber", pages)
            v_diff, f_diff, _ = violation_count("diff", pages)
            rows.append((pages, v_clobber, v_diff, f_diff))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"{'pages':>6} {'clobber viol.':>14} {'diff viol.':>11} {'page fetches':>13}")
    for pages, vc, vd, fd in rows:
        print(f"{pages:>6} {vc:>10}/{RUNS} {vd:>8}/{RUNS} {fd:>13}")
        assert vd == 0  # diff is always safe
    # Coarser pages -> fewer transfers (the reason to want them).
    fetches = [fd for (_p, _vc, _vd, fd) in rows]
    assert fetches[0] <= fetches[-1]


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Contrasts clobber and diff reconciliation at page granularity
    (fewer seeds in quick mode) and sweeps the page count, reporting
    violation rates and page-transfer totals.
    """
    import time

    runs = 5 if quick else RUNS
    pages_sweep = (1, 8) if quick else (1, 2, 8, 64)

    t0 = time.perf_counter()
    v_clobber, f_clobber, _ = violation_count("clobber", 2, runs)
    v_diff, f_diff, _ = violation_count("diff", 2, runs)
    diff_fetch_curve = [
        violation_count("diff", pages, runs)[1] for pages in pages_sweep
    ]
    diff_viol_curve = [
        violation_count("diff", pages, runs)[0] for pages in pages_sweep
    ]
    sweep_seconds = time.perf_counter() - t0

    if check:
        assert v_clobber > runs // 2, "clobber hazard must be pervasive"
        assert v_diff == 0, "diff reconciliation must always verify"
        assert all(v == 0 for v in diff_viol_curve)
        assert diff_fetch_curve[0] <= diff_fetch_curve[-1]

    return {
        "runs": runs,
        "clobber_violations": v_clobber,
        "diff_violations": v_diff,
        "clobber_page_fetches": f_clobber,
        "diff_page_fetches": f_diff,
        "diff_fetches_coarsest": diff_fetch_curve[0],
        "diff_fetches_finest": diff_fetch_curve[-1],
        "sweep_seconds": round(sweep_seconds, 6),
    }
