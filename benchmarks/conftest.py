"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one artifact of the paper (a figure or a
theorem's claim) and *asserts* the claim before/while timing it, so a
benchmark run doubles as a reproduction run.  EXPERIMENTS.md maps each
file to its paper artifact and records expected output.
"""

import pytest

from repro.models import Universe


@pytest.fixture(scope="session")
def sweep_universe() -> Universe:
    """Inclusion-sweep universe: every computation on ≤ 3 nodes with the
    full alphabet {R(x), W(x), N} (the paper's O for one location)."""
    return Universe(max_nodes=3, locations=("x",))


@pytest.fixture(scope="session")
def witness_universe() -> Universe:
    """Witness-search universe: ≤ 4 nodes, reads/writes only.  All the
    paper's single-location witnesses (Figures 2–4) live here."""
    return Universe(max_nodes=4, locations=("x",), include_nop=False)
