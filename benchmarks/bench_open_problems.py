"""Section 7's open problem — what are NW* and WN*?

The paper leaves the constructible versions of NW and WN
uncharacterized ("It is known that LC ⊆ WN* and that LC ⊆ NW*, but we
do not know whether these inclusions are strict").  This bench computes
the bounded greatest fixpoints and reports what they say:

* ``LC ⊆ NW*`` holds on every fragment (forced by Theorem 9.3; checked
  anyway), and pairs in ``NW* \\ LC`` *persist* as the bound grows —
  bounded-universe evidence that **LC ⊊ NW* is strict**.  The smallest
  persistent candidate has 3 nodes: a read observing a concurrent write
  followed by a ⊥-read, which no augmentation can kill because the
  final node may keep observing that write.
* Under this library's (formal-table) reading WN is constructible, so
  ``WN* = WN ⊋ LC`` resolves outright, witnessed by Figure 3's pair.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_open_problems.py``.
"""

from repro.analysis.open_problems import explore_star_vs_lc, render_star_report
from repro.models import LC, NW, WN, Universe, find_nonconstructibility_witness
from repro.paperfigures import figure3_pair


def test_nw_star_vs_lc(benchmark):
    universe = Universe(max_nodes=4, locations=("x",), include_nop=False)
    report = benchmark.pedantic(
        explore_star_vs_lc, args=(NW, universe), rounds=1
    )
    print()
    print(render_star_report(report))
    # LC ⊆ NW* must hold (Theorem 9.3).
    assert not report.soundness_violations
    # The strictness candidates exist already at 3 nodes.
    assert report.strictness_candidates
    assert min(c.num_nodes for c, _ in report.strictness_candidates) == 3


def test_nw_star_candidates_persist_at_larger_bound(benchmark):
    """The 3-node candidates survive the n ≤ 5 universe's pruning too —
    the evidence that LC ⊊ NW* is not an artifact of a tiny bound."""
    universe = Universe(max_nodes=5, locations=("x",), include_nop=False)
    report = benchmark.pedantic(
        explore_star_vs_lc, args=(NW, universe), rounds=1
    )
    print()
    print(render_star_report(report))
    assert not report.soundness_violations
    assert report.strictness_candidates
    assert min(c.num_nodes for c, _ in report.strictness_candidates) == 3
    # And at this bound the fixpoint genuinely pruned something, so the
    # persistence is meaningful.
    assert report.pruned_pairs > 0


def test_wn_star_resolution(benchmark):
    """WN* = WN under the formal predicate table, and LC ⊊ WN strictly."""
    universe = Universe(max_nodes=3, locations=("x",))

    def check():
        closed = find_nonconstructibility_witness(WN, universe) is None
        comp, phi = figure3_pair()
        return closed, WN.contains(comp, phi), LC.contains(comp, phi)

    closed, in_wn, in_lc = benchmark.pedantic(check, rounds=1)
    assert closed, "WN must be augmentation-closed (constructible)"
    assert in_wn and not in_lc, "Figure 3 witnesses LC ⊊ WN = WN*"
    print()
    print("WN* = WN (constructible under the formal table); LC ⊊ WN* "
          "witnessed by Figure 3's pair")
