"""Theorem 19 — SC and LC are complete, monotonic, constructible.

Three sweeps over the full ≤3-node universe (alphabet {R, W, N}):

* completeness: every computation admits an observer function in SC
  (hence in every weaker model);
* monotonicity: every member pair survives every relaxation of its
  computation (Definition 5);
* constructibility: every member pair extends to every augmented
  computation (the Theorem 12 criterion, which for monotonic models is
  equivalent to Definition 6).
"""

from repro.models import (
    LC,
    SC,
    find_nonconstructibility_witness,
    is_complete_on,
    is_monotonic_on,
)


def test_thm19_completeness(benchmark, sweep_universe):
    comps = list(sweep_universe.computations())

    def check():
        return is_complete_on(SC, comps), is_complete_on(LC, comps)

    gaps = benchmark.pedantic(check, rounds=1)
    assert gaps == (None, None)
    print()
    print(f"completeness: {len(comps)} computations, all admit SC and LC observers")


def test_thm19_monotonicity(benchmark, sweep_universe):
    def check():
        return is_monotonic_on(SC, sweep_universe), is_monotonic_on(
            LC, sweep_universe
        )

    violations = benchmark.pedantic(check, rounds=1)
    assert violations == (None, None)
    print()
    print("monotonicity: no relaxation ever evicts an SC or LC pair")


def test_thm19_sc_constructible(benchmark, sweep_universe):
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(SC, sweep_universe), rounds=1
    )
    assert wit is None
    print()
    print("SC: closed under augmentation on the entire n≤3 universe")


def test_thm19_lc_constructible(benchmark, sweep_universe):
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(LC, sweep_universe), rounds=1
    )
    assert wit is None
    print()
    print("LC: closed under augmentation on the entire n≤3 universe")
