"""Theorem 19 — SC and LC are complete, monotonic, constructible.

Three sweeps over the full ≤3-node universe (alphabet {R, W, N}):

* completeness: every computation admits an observer function in SC
  (hence in every weaker model);
* monotonicity: every member pair survives every relaxation of its
  computation (Definition 5);
* constructibility: every member pair extends to every augmented
  computation (the Theorem 12 criterion, which for monotonic models is
  equivalent to Definition 6).
"""

from repro.models import (
    LC,
    SC,
    find_nonconstructibility_witness,
    is_complete_on,
    is_monotonic_on,
)


def test_thm19_completeness(benchmark, sweep_universe):
    comps = list(sweep_universe.computations())

    def check():
        return is_complete_on(SC, comps), is_complete_on(LC, comps)

    gaps = benchmark.pedantic(check, rounds=1)
    assert gaps == (None, None)
    print()
    print(f"completeness: {len(comps)} computations, all admit SC and LC observers")


def test_thm19_monotonicity(benchmark, sweep_universe):
    def check():
        return is_monotonic_on(SC, sweep_universe), is_monotonic_on(
            LC, sweep_universe
        )

    violations = benchmark.pedantic(check, rounds=1)
    assert violations == (None, None)
    print()
    print("monotonicity: no relaxation ever evicts an SC or LC pair")


def test_thm19_sc_constructible(benchmark, sweep_universe):
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(SC, sweep_universe), rounds=1
    )
    assert wit is None
    print()
    print("SC: closed under augmentation on the entire n≤3 universe")


def test_thm19_lc_constructible(benchmark, sweep_universe):
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(LC, sweep_universe), rounds=1
    )
    assert wit is None
    print()
    print("LC: closed under augmentation on the entire n≤3 universe")


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the three Theorem-19 sweeps (completeness, monotonicity,
    Theorem-12 constructibility) for SC and LC.  Quick mode shrinks the
    universe to n ≤ 2 and skips the monotonicity sweep (the slowest of
    the three).
    """
    import time

    from repro.models import Universe

    universe = Universe(max_nodes=2 if quick else 3, locations=("x",))
    comps = list(universe.computations())
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    gaps = (is_complete_on(SC, comps), is_complete_on(LC, comps))
    timings["complete_seconds"] = round(time.perf_counter() - t0, 4)
    if check:
        assert gaps == (None, None), "Theorem 19 completeness violated"

    if not quick:
        t0 = time.perf_counter()
        violations = (
            is_monotonic_on(SC, universe),
            is_monotonic_on(LC, universe),
        )
        timings["monotonic_seconds"] = round(time.perf_counter() - t0, 4)
        if check:
            assert violations == (None, None), "Theorem 19 monotonicity violated"

    t0 = time.perf_counter()
    witnesses = (
        find_nonconstructibility_witness(SC, universe),
        find_nonconstructibility_witness(LC, universe),
    )
    timings["constructible_seconds"] = round(time.perf_counter() - t0, 4)
    if check:
        assert witnesses == (None, None), "Theorem 19 constructibility violated"
    return {"computations": len(comps), **timings}
