"""Race detection scaling: SP-bags vs the transitive-closure sweeps.

Three detectors over growing ``fib``/``matmul``/``stencil`` unfoldings:

* **sp-bags** — :func:`repro.verify.spbags.spbags_races` on the SP
  expression recorded by ``unfold``: one serial walk, a union-find, no
  reachability anywhere.
* **closure (rows)** — the rewritten exact sweep
  (:func:`repro.verify.races.find_races`, caches off): per-writer mask
  arithmetic against the dag's reachability bitset rows.
* **closure (naive)** — the seed's per-pair sweep
  (:func:`repro.verify.races.find_races_naive`): per-location accessor
  scans plus a seen-set per candidate pair.

Each engine leg gets a freshly unfolded computation so no closure rows
or memoized race lists leak between timings.  The acceptance gate of
the analyzer work rides on the largest workloads: every computation
with ≥ 2,000 nodes must be analyzed by SP-bags in under a second while
the naive closure sweep is at least 10× slower.  Results land in
``BENCH_races.json`` at the repository root for the CI artifact trail.
"""

import json
import time
from pathlib import Path

from repro._caching import sweep_caching
from repro.lang import fib_computation, matmul_computation, stencil_computation
from repro.verify import find_races, find_races_naive, spbags_races

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_races.json"

WORKLOADS = [
    ("fib", {"n": 8}, lambda: fib_computation(8)),
    ("fib", {"n": 11}, lambda: fib_computation(11)),
    ("fib", {"n": 14}, lambda: fib_computation(14)),
    ("matmul", {"blocks": 3}, lambda: matmul_computation(3)),
    ("matmul", {"blocks": 5}, lambda: matmul_computation(5)),
    ("matmul", {"blocks": 10}, lambda: matmul_computation(10)),
    ("stencil", {"width": 8, "steps": 6}, lambda: stencil_computation(8, 6)),
    ("stencil", {"width": 14, "steps": 12}, lambda: stencil_computation(14, 12)),
    ("stencil", {"width": 22, "steps": 26}, lambda: stencil_computation(22, 26)),
]


def _best_of(fn, repeats=3):
    seconds = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        seconds.append(time.perf_counter() - t0)
    return min(seconds)


def test_spbags_vs_closure_scaling(benchmark):
    rows = []
    with sweep_caching(False):
        for program, params, factory in WORKLOADS:
            # Fresh unfolding per engine leg: reachability rows cache on
            # the Dag instance and must not subsidize the closure legs.
            comp_sp, info = factory()
            spbags_s = _best_of(lambda: spbags_races(comp_sp, info.sp))

            comp_rows, _ = factory()
            rows_s = _best_of(lambda: list(find_races(comp_rows)))

            comp_naive, _ = factory()
            naive_s = _best_of(
                lambda: list(find_races_naive(comp_naive)),
                repeats=1 if comp_naive.num_nodes >= 1000 else 3,
            )

            # All three see the same racy locations (the detectors'
            # agreement contract, restated on the benchmark workloads).
            locs = {r.loc for r in spbags_races(comp_sp, info.sp)}
            assert locs == {r.loc for r in find_races(comp_rows)}
            assert locs == {r.loc for r in find_races_naive(comp_naive)}

            rows.append(
                {
                    "program": program,
                    "params": params,
                    "nodes": comp_sp.num_nodes,
                    "spbags_seconds": round(spbags_s, 6),
                    "closure_rows_seconds": round(rows_s, 6),
                    "closure_naive_seconds": round(naive_s, 6),
                    "naive_over_spbags": round(naive_s / spbags_s, 2),
                }
            )

    # Acceptance: ≥2,000-node computations analyze in <1s under SP-bags
    # while the naive closure sweep is ≥10× slower.
    big = [r for r in rows if r["nodes"] >= 2000]
    assert big, "benchmark must include a ≥2,000-node workload"
    for r in big:
        assert r["spbags_seconds"] < 1.0, r
        assert r["naive_over_spbags"] >= 10.0, r

    # The leg pytest-benchmark records: SP-bags on the largest workload.
    comp_big, info_big = WORKLOADS[-1][2]()
    benchmark.pedantic(
        lambda: spbags_races(comp_big, info_big.sp), rounds=3, iterations=1
    )

    BENCH_JSON.write_text(
        json.dumps(
            {"benchmark": "races", "workloads": rows}, indent=2
        )
        + "\n"
    )


QUICK_WORKLOADS = WORKLOADS[:2] + [WORKLOADS[3], WORKLOADS[6]]


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Quick mode keeps the small fib/matmul/stencil unfoldings (no
    ≥2,000-node acceptance leg, single timing per engine); full mode is
    the whole scaling table with the SP-bags acceptance gate, refreshing
    ``BENCH_races.json`` with environment and git-sha metadata.
    """
    from repro.obs.ledger import env_metadata, git_sha

    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    repeats = 1 if quick else 3
    rows = []
    with sweep_caching(False):
        for program, params, factory in workloads:
            comp_sp, info = factory()
            spbags_s = _best_of(
                lambda: spbags_races(comp_sp, info.sp), repeats=repeats
            )

            comp_rows, _ = factory()
            rows_s = _best_of(
                lambda: list(find_races(comp_rows)), repeats=repeats
            )

            comp_naive, _ = factory()
            naive_s = _best_of(
                lambda: list(find_races_naive(comp_naive)),
                repeats=1 if quick or comp_naive.num_nodes >= 1000 else 3,
            )

            if check:
                locs = {r.loc for r in spbags_races(comp_sp, info.sp)}
                assert locs == {r.loc for r in find_races(comp_rows)}
                assert locs == {r.loc for r in find_races_naive(comp_naive)}

            rows.append(
                {
                    "program": program,
                    "params": params,
                    "nodes": comp_sp.num_nodes,
                    "spbags_seconds": round(spbags_s, 6),
                    "closure_rows_seconds": round(rows_s, 6),
                    "closure_naive_seconds": round(naive_s, 6),
                    "naive_over_spbags": round(naive_s / spbags_s, 2),
                }
            )

    metrics = {
        "workloads": len(rows),
        "nodes_total": sum(r["nodes"] for r in rows),
        "spbags_seconds_total": round(
            sum(r["spbags_seconds"] for r in rows), 6
        ),
        "closure_naive_seconds_total": round(
            sum(r["closure_naive_seconds"] for r in rows), 6
        ),
        "max_naive_over_spbags": max(r["naive_over_spbags"] for r in rows),
    }
    if quick:
        return metrics

    if check:
        big = [r for r in rows if r["nodes"] >= 2000]
        assert big, "benchmark must include a ≥2,000-node workload"
        for r in big:
            assert r["spbags_seconds"] < 1.0, r
            assert r["naive_over_spbags"] >= 10.0, r

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "races",
                "git_sha": git_sha(),
                "env": env_metadata(),
                "workloads": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return metrics
