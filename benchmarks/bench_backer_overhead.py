"""BACKER performance shape (the [BFJ+96a] analysis the paper builds on).

The paper's §7 recalls that dag consistency was attractive because
BACKER "has provably good performance": execution time
``T_P ≤ O(T₁/P + T∞)`` up to protocol costs, with communication
proportional to steals.  Our simulator reproduces the *shape* of that
analysis:

* makespan respects the work and span laws (``T_P ≥ T₁/P``,
  ``T_P ≥ T∞``) and the Graham/Brent upper bound for greedy schedules;
* speedup grows with P and saturates near the dag's parallelism;
* protocol traffic (fetches + reconciles) grows with the number of
  cross-processor edges, staying near zero at P = 1.

Absolute numbers are simulator-specific; the monotone shapes are the
reproduction target (see EXPERIMENTS.md).
"""

import pytest

from repro.dag.metrics import parallelism, span, work
from repro.lang import fib_computation, stencil_computation
from repro.runtime import BackerMemory, execute, greedy_schedule

WORKLOADS = {
    "fib(10)": fib_computation(10)[0],
    "stencil-8x4": stencil_computation(8, 4)[0],
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backer_speedup_shape(benchmark, name):
    comp = WORKLOADS[name]
    t1, tinf = work(comp.dag), span(comp.dag)

    def sweep():
        rows = []
        for procs in (1, 2, 4, 8, 16):
            sched = greedy_schedule(comp, procs, rng=procs)
            mem = BackerMemory()
            execute(sched, mem)
            rows.append(
                (
                    procs,
                    sched.makespan,
                    mem.stats.fetches,
                    mem.stats.reconciles,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1)
    print()
    print(
        f"{name}: T1={t1} Tinf={tinf} parallelism={parallelism(comp.dag):.1f}"
    )
    print(f"{'P':>3} {'T_P':>6} {'speedup':>8} {'fetches':>8} {'reconciles':>10}")
    prev_makespan = None
    for procs, makespan, fetches, reconciles in rows:
        print(
            f"{procs:>3} {makespan:>6} {t1 / makespan:>8.2f} "
            f"{fetches:>8} {reconciles:>10}"
        )
        # Work and span laws.
        assert makespan >= max(tinf, -(-t1 // procs))
        # Graham bound for greedy scheduling.
        assert makespan <= t1 / procs + tinf
        # Adding processors never slows the greedy schedule down much;
        # we assert weak monotonicity within the Graham envelope rather
        # than strict monotonicity (random tie-breaking wiggles).
        if prev_makespan is not None:
            assert makespan <= prev_makespan + tinf
        prev_makespan = makespan
    # Protocol traffic at P=1 involves no cross edges at all.
    p1 = rows[0]
    assert p1[3] == 0, "single processor must never reconcile"
    # And with many processors there must be real coherence traffic.
    p16 = rows[-1]
    assert p16[3] > 0


def test_protocol_traffic_tracks_cross_edges(benchmark):
    comp = WORKLOADS["fib(10)"]

    def measure():
        out = []
        for procs in (1, 2, 4, 8):
            sched = greedy_schedule(comp, procs, rng=7)
            cross = sum(
                1
                for (u, v) in comp.dag.edges
                if sched.proc_of[u] != sched.proc_of[v]
            )
            mem = BackerMemory()
            execute(sched, mem)
            out.append((procs, cross, mem.stats.reconciles + mem.stats.flushes))
        return out

    rows = benchmark.pedantic(measure, rounds=1)
    print()
    print(f"{'P':>3} {'cross-edges':>12} {'protocol events':>16}")
    for procs, cross, events in rows:
        print(f"{procs:>3} {cross:>12} {events:>16}")
        if cross == 0:
            assert events == 0
    # More processors -> more cross edges on this workload.
    crosses = [c for _, c, _ in rows]
    assert crosses[0] == 0 and crosses[-1] > 0


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Sweeps processor counts over the fib workload (fib(8) quick,
    fib(10) full), asserting the work/span laws and the Graham bound at
    every point, and reports makespan/traffic at the widest machine.
    """
    import time

    comp = fib_computation(8 if quick else 10)[0]
    t1, tinf = work(comp.dag), span(comp.dag)
    procs_list = (1, 2, 4) if quick else (1, 2, 4, 8, 16)

    rows = []
    t0 = time.perf_counter()
    for procs in procs_list:
        sched = greedy_schedule(comp, procs, rng=procs)
        mem = BackerMemory()
        execute(sched, mem)
        rows.append(
            (procs, sched.makespan, mem.stats.fetches, mem.stats.reconciles)
        )
    sweep_seconds = time.perf_counter() - t0

    if check:
        prev = None
        for procs, makespan, _fetches, _reconciles in rows:
            assert makespan >= max(tinf, -(-t1 // procs))
            assert makespan <= t1 / procs + tinf
            if prev is not None:
                assert makespan <= prev + tinf
            prev = makespan
        assert rows[0][3] == 0, "single processor must never reconcile"
        assert rows[-1][3] > 0, "wide machine must show coherence traffic"

    widest = rows[-1]
    return {
        "nodes": comp.num_nodes,
        "work": t1,
        "span": tinf,
        "sweep_seconds": round(sweep_seconds, 6),
        "widest_procs": widest[0],
        "widest_makespan": widest[1],
        "widest_fetches": widest[2],
        "widest_reconciles": widest[3],
    }
