"""Causal consistency in the framework (§7 exercise, extension).

The paper invites formulating further models computation-centrically;
`repro.models.causal` does it for causal memory.  This bench fixes CC's
place in the landscape:

* litmus profile: the textbook causal row — SB/IRIW allowed, MP, CoRR,
  WRC, LB forbidden (reads-from ∪ precedence must stay acyclic);
* lattice: SC ⊆ CC; CC incomparable with LC and with every
  dag-consistent model (witnesses both ways at ≤ 4 nodes / 2 nodes);
* constructibility: augmentation-closed (an online memory can always
  observe a κ-maximal write) — so CC, like LC, is implementable exactly.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_causal.py``.
"""

from repro.lang import LITMUS_TESTS, litmus_outcome_allowed
from repro.models import (
    CC,
    LC,
    NN,
    SC,
    Universe,
    find_nonconstructibility_witness,
    is_stronger_on,
    separating_witness,
)

EXPECTED_CC_ROW = {
    "SB": True,
    "MP": False,
    "CoRR": False,
    "IRIW": True,
    "LB": False,
    "WRC": False,
    "SB+sync": False,
}


def test_cc_litmus_row(benchmark):
    def classify():
        return {t.name: litmus_outcome_allowed(t, "CC") for t in LITMUS_TESTS}

    row = benchmark.pedantic(classify, rounds=1)
    print()
    print("CC litmus row:", row)
    assert row == EXPECTED_CC_ROW


def test_cc_lattice_position(benchmark):
    sweep = Universe(max_nodes=3, locations=("x",))
    wit_u = Universe(max_nodes=4, locations=("x",), include_nop=False)
    two = Universe(max_nodes=2, locations=("x", "y"), include_nop=False)

    def battery():
        return {
            "sc_in_cc": is_stronger_on(SC, CC, sweep) is None,
            "nn_minus_cc": separating_witness(CC, NN, wit_u),
            "cc_minus_nn": separating_witness(NN, CC, wit_u),
            "lc_minus_cc": separating_witness(CC, LC, two),
            "cc_minus_lc": separating_witness(LC, CC, wit_u),
        }

    result = benchmark.pedantic(battery, rounds=1)
    assert result["sc_in_cc"]
    for key in ("nn_minus_cc", "cc_minus_nn", "lc_minus_cc", "cc_minus_lc"):
        assert result[key] is not None, key
    print()
    print("SC ⊆ CC on the sweep; CC incomparable with NN and LC, "
          "witnessed both ways at ≤ 4 nodes")


def test_cc_constructible(benchmark):
    u = Universe(max_nodes=3, locations=("x",))
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(CC, u), rounds=1
    )
    assert wit is None
    print()
    print("CC: closed under augmentation (κ-maximal-write strategy)")


def test_backer_maintains_cc_empirically(benchmark):
    """Simulation-granularity finding: the simulated BACKER's atomic
    whole-cache reconcile publishes a processor's writes together, so
    its traces are causally consistent as well as location consistent.
    (Real BACKER reconciles page by page; an interleaved fetch between
    two page writebacks could still break causality — documented in
    EXPERIMENTS.md as an artifact of the simulator's atomicity.)"""
    from repro.lang import (
        fib_computation,
        iriw_computation,
        racy_counter_computation,
        store_buffer_computation,
    )
    from repro.runtime import BackerMemory, execute, work_stealing_schedule
    from repro.verify import trace_admits_cc

    workloads = [
        fib_computation(7)[0],
        racy_counter_computation(4, 3)[0],
        store_buffer_computation()[0],
        iriw_computation()[0],
    ]

    def sweep():
        ok = total = 0
        for comp in workloads:
            for procs in (2, 4):
                for seed in range(8):
                    sched = work_stealing_schedule(comp, procs, rng=seed)
                    mem = BackerMemory(
                        spontaneous_reconcile_probability=0.3, rng=seed
                    )
                    total += 1
                    ok += trace_admits_cc(execute(sched, mem))
        return ok, total

    ok, total = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"simulated BACKER: {ok}/{total} traces causally consistent")
    assert ok == total
