"""Figures 2 and 3 — the separating examples between dag-consistent models.

Figure 2: a 4-node pair in WW and NW but not WN or NN.
Figure 3: a 4-node pair in WW and WN but not NW or NN.

Two reproductions per figure:

1. the fixed reconstructed pair's membership profile is asserted exactly;
2. the witness *search* rediscovers a pair with the same profile from
   scratch by enumerating the 4-node universe (timed).
"""

from repro.models import (
    NN,
    NW,
    WN,
    WW,
    IntersectionModel,
    separating_witness,
)
from repro.analysis import render_pair
from repro.paperfigures import figure2_pair, figure3_pair


def profile(comp, phi):
    return {
        m.name: m.contains(comp, phi) for m in (NN, NW, WN, WW)
    }


def test_fig2_profile(benchmark):
    comp, phi = figure2_pair()
    result = benchmark(profile, comp, phi)
    print()
    print("Figure 2 pair:")
    print(render_pair(comp, phi))
    print(f"  profile: {result}")
    assert result == {"NN": False, "NW": True, "WN": False, "WW": True}


def test_fig3_profile(benchmark):
    comp, phi = figure3_pair()
    result = benchmark(profile, comp, phi)
    print()
    print("Figure 3 pair:")
    print(render_pair(comp, phi))
    print(f"  profile: {result}")
    assert result == {"NN": False, "NW": False, "WN": True, "WW": True}


def test_fig2_rediscovered_by_search(benchmark, witness_universe):
    """A pair in (WW ∩ NW) \\ WN exists at ≤ 4 nodes, found by search."""
    both = IntersectionModel([WW, NW], "WW∩NW")
    wit = benchmark.pedantic(
        separating_witness, args=(WN, both, witness_universe), rounds=1
    )
    assert wit is not None
    assert wit.comp.num_nodes <= 4
    assert not NN.contains(wit.comp, wit.phi)  # NN strongest (Thm 21)
    print()
    print(f"rediscovered Figure-2-class witness ({wit.comp.num_nodes} nodes):")
    print(render_pair(wit.comp, wit.phi))


def test_fig3_rediscovered_by_search(benchmark, witness_universe):
    both = IntersectionModel([WW, WN], "WW∩WN")
    wit = benchmark.pedantic(
        separating_witness, args=(NW, both, witness_universe), rounds=1
    )
    assert wit is not None
    assert wit.comp.num_nodes <= 4
    assert not NN.contains(wit.comp, wit.phi)
    print()
    print(f"rediscovered Figure-3-class witness ({wit.comp.num_nodes} nodes):")
    print(render_pair(wit.comp, wit.phi))
