"""Figures 2 and 3 — the separating examples between dag-consistent models.

Figure 2: a 4-node pair in WW and NW but not WN or NN.
Figure 3: a 4-node pair in WW and WN but not NW or NN.

Two reproductions per figure:

1. the fixed reconstructed pair's membership profile is asserted exactly;
2. the witness *search* rediscovers a pair with the same profile from
   scratch by enumerating the 4-node universe (timed).
"""

from repro.models import (
    NN,
    NW,
    WN,
    WW,
    IntersectionModel,
    separating_witness,
)
from repro.analysis import render_pair
from repro.paperfigures import figure2_pair, figure3_pair


def profile(comp, phi):
    return {
        m.name: m.contains(comp, phi) for m in (NN, NW, WN, WW)
    }


def test_fig2_profile(benchmark):
    comp, phi = figure2_pair()
    result = benchmark(profile, comp, phi)
    print()
    print("Figure 2 pair:")
    print(render_pair(comp, phi))
    print(f"  profile: {result}")
    assert result == {"NN": False, "NW": True, "WN": False, "WW": True}


def test_fig3_profile(benchmark):
    comp, phi = figure3_pair()
    result = benchmark(profile, comp, phi)
    print()
    print("Figure 3 pair:")
    print(render_pair(comp, phi))
    print(f"  profile: {result}")
    assert result == {"NN": False, "NW": False, "WN": True, "WW": True}


def test_fig2_rediscovered_by_search(benchmark, witness_universe):
    """A pair in (WW ∩ NW) \\ WN exists at ≤ 4 nodes, found by search."""
    both = IntersectionModel([WW, NW], "WW∩NW")
    wit = benchmark.pedantic(
        separating_witness, args=(WN, both, witness_universe), rounds=1
    )
    assert wit is not None
    assert wit.comp.num_nodes <= 4
    assert not NN.contains(wit.comp, wit.phi)  # NN strongest (Thm 21)
    print()
    print(f"rediscovered Figure-2-class witness ({wit.comp.num_nodes} nodes):")
    print(render_pair(wit.comp, wit.phi))


def test_fig3_rediscovered_by_search(benchmark, witness_universe):
    both = IntersectionModel([WW, WN], "WW∩WN")
    wit = benchmark.pedantic(
        separating_witness, args=(NW, both, witness_universe), rounds=1
    )
    assert wit is not None
    assert wit.comp.num_nodes <= 4
    assert not NN.contains(wit.comp, wit.phi)
    print()
    print(f"rediscovered Figure-3-class witness ({wit.comp.num_nodes} nodes):")
    print(render_pair(wit.comp, wit.phi))


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the Figure-2/3 witness *searches* over the 4-node universe
    (the fixed pairs' membership profiles are the check).  Quick mode
    asserts the fixed pairs only — the searches need 4 nodes, which is
    the expensive part.
    """
    import time

    from repro.runtime.parallel import clear_sweep_caches

    if check:
        comp2, phi2 = figure2_pair()
        assert profile(comp2, phi2) == {
            "NN": False, "NW": True, "WN": False, "WW": True,
        }, "Figure 2 membership profile deviates"
        comp3, phi3 = figure3_pair()
        assert profile(comp3, phi3) == {
            "NN": False, "NW": False, "WN": True, "WW": True,
        }, "Figure 3 membership profile deviates"
    if quick:
        return {"witnesses_found": 2, "search_seconds": 0.0}

    from repro.models import Universe

    witness_universe = Universe(
        max_nodes=4, locations=("x",), include_nop=False
    )
    clear_sweep_caches()
    t0 = time.perf_counter()
    wit2 = separating_witness(
        WN, IntersectionModel([WW, NW], "WW∩NW"), witness_universe
    )
    wit3 = separating_witness(
        NW, IntersectionModel([WW, WN], "WW∩WN"), witness_universe
    )
    seconds = time.perf_counter() - t0
    if check:
        assert wit2 is not None and wit3 is not None
        assert not NN.contains(wit2.comp, wit2.phi)
        assert not NN.contains(wit3.comp, wit3.phi)
    return {
        "witnesses_found": sum(w is not None for w in (wit2, wit3)),
        "search_seconds": round(seconds, 4),
    }
