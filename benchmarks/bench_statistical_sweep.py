"""Statistical lattice sweep beyond exhaustive reach (extension).

The exhaustive universes stop at n ≈ 4–5; the lattice inclusions should
hold at *every* size.  This bench samples thousands of random
(computation, observer) pairs at n ≤ 12 — where exhaustive enumeration
is astronomically impossible — and checks every Figure 1 inclusion plus
the membership-algorithm cross-checks on each sample:

* SC ⊆ LC ⊆ NN ⊆ {NW, WN} ⊆ WW pointwise;
* the polynomial LC checker agrees with the SC searcher's prefilter
  contract (SC membership implies LC membership by construction — this
  asserts it from the *outside*);
* the fiber-based dag-model checkers agree with the literal Definition
  20 reference on every sample.

A single violated assertion would be a soundness bug; thousands of
clean samples at sizes 2–3× the exhaustive bound are the statistical
complement to the bounded proofs.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_statistical_sweep.py``.
"""

import random

from repro.models import LC, NN, NW, SC, WN, WW, sample_pair

MODELS = (SC, LC, NN, NW, WN, WW)
CHAIN = [("SC", "LC"), ("LC", "NN"), ("NN", "NW"), ("NN", "WN"),
         ("NW", "WW"), ("WN", "WW")]


def test_sampled_inclusions_n12(benchmark):
    rng = random.Random(12345)

    def sweep():
        checked = 0
        for _ in range(1500):
            comp, phi = sample_pair(rng, 12)
            member = {m.name: m.contains(comp, phi) for m in MODELS}
            for a, b in CHAIN:
                assert not member[a] or member[b], (a, b, comp)
            checked += 1
        return checked

    checked = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"{checked} sampled pairs at n ≤ 12: all Figure 1 inclusions hold")
    assert checked == 1500


def test_sampled_checker_agreement_n10(benchmark):
    rng = random.Random(999)

    def sweep():
        checked = 0
        for _ in range(400):
            comp, phi = sample_pair(rng, 10)
            for model in (NN, NW, WN, WW):
                assert model.contains(comp, phi) == model.contains_reference(
                    comp, phi
                ), model.name
            checked += 1
        return checked

    checked = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"{checked} samples: fiber checkers ≡ Definition 20 reference")
    assert checked == 400


def test_sampled_two_location_inclusions(benchmark):
    rng = random.Random(777)

    def sweep():
        sc_lc_gap = 0
        for _ in range(600):
            comp, phi = sample_pair(rng, 8, locations=("x", "y"))
            member = {m.name: m.contains(comp, phi) for m in MODELS}
            for a, b in CHAIN:
                assert not member[a] or member[b]
            if member["LC"] and not member["SC"]:
                sc_lc_gap += 1
        return sc_lc_gap

    gap = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"two locations, n ≤ 8: {gap} sampled pairs in LC ∖ SC")
    assert gap > 0  # the SC/LC separation is statistically common
