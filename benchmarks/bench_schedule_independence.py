"""Schedule independence — the computation-centric thesis itself.

The paper's core move is defining memory semantics on the *computation*
(the dag), not on the schedule: "the programmer ... expects the behavior
of the program to be specified independently of which processor happens
to execute a particular thread" (§1).  This bench realizes that claim
operationally: one computation, many schedules (greedy and work stealing
across processor counts and seeds), one verdict.

* A dataflow-determined program (tree-sum) yields the *same* reads-from
  relation and the same LC verdict under every schedule.
* A racy program's reads-from may vary with the schedule, but the LC
  verdict never does — the model is a property of the protocol and the
  computation, not of the placement.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_schedule_independence.py``.
"""

from repro.lang import racy_counter_computation, tree_sum_computation
from repro.runtime import (
    BackerMemory,
    execute,
    greedy_schedule,
    work_stealing_schedule,
)
from repro.verify import trace_admits_lc


def all_schedules(comp):
    for procs in (1, 2, 4, 8):
        for seed in range(3):
            yield work_stealing_schedule(comp, procs, rng=seed)
            yield greedy_schedule(comp, procs, rng=seed)


def test_dataflow_program_schedule_invariant(benchmark):
    comp = tree_sum_computation(16)[0]

    def sweep():
        verdicts = set()
        reads_from = set()
        n = 0
        for sched in all_schedules(comp):
            n += 1
            trace = execute(sched, BackerMemory())
            po = trace.partial_observer()
            verdicts.add(trace_admits_lc(po))
            reads_from.add(
                frozenset((e.node, e.loc, e.observed) for e in trace.reads)
            )
        return verdicts, reads_from, n

    verdicts, reads_from, n = benchmark.pedantic(sweep, rounds=1)
    print()
    print(
        f"tree-sum(16): {n} schedules -> {len(reads_from)} distinct "
        f"reads-from relations, verdicts = {verdicts}"
    )
    assert verdicts == {True}
    assert len(reads_from) == 1


def test_racy_program_verdict_invariant(benchmark):
    comp = racy_counter_computation(4, 2)[0]

    def sweep():
        verdicts = set()
        reads_from = set()
        for sched in all_schedules(comp):
            trace = execute(sched, BackerMemory())
            po = trace.partial_observer()
            verdicts.add(trace_admits_lc(po))
            reads_from.add(
                frozenset((e.node, e.loc, e.observed) for e in trace.reads)
            )
        return verdicts, reads_from

    verdicts, reads_from = benchmark.pedantic(sweep, rounds=1)
    print()
    print(
        f"racy counter: {len(reads_from)} distinct reads-from relations "
        f"across schedules, LC verdicts = {verdicts}"
    )
    assert verdicts == {True}
    assert len(reads_from) > 1  # the race is real; the guarantee holds anyway
