"""Figure 1 — the lattice of memory models.

Regenerates every claim of the paper's Figure 1 on bounded universes:

* the inclusion matrix over {SC, LC, NN, NW, WN, WW} (exhaustive sweep);
* a separation witness for every strict edge (SC⊊LC, LC⊊NN, NN⊊NW,
  NN⊊WN, NW⊊WW, WN⊊WW) and for the NW/WN incomparability;
* the constructibility column via Theorem-12 augmentation sweeps
  (with the WN cell as the documented deviation — see EXPERIMENTS.md).

The benchmark times the full battery; the assertions are the
reproduction.
"""

from repro.analysis import compute_lattice, render_lattice_result
from repro.models import NN, NW, SC, WN, WW, LC, inclusion_matrix


def test_fig1_inclusion_matrix(benchmark, sweep_universe):
    models = (SC, LC, NN, NW, WN, WW)
    matrix = benchmark(inclusion_matrix, models, sweep_universe)
    # The paper's order SC ⊆ LC ⊆ NN ⊆ {NW, WN} ⊆ WW:
    for a, b in [
        ("SC", "LC"),
        ("LC", "NN"),
        ("NN", "NW"),
        ("NN", "WN"),
        ("NW", "WW"),
        ("WN", "WW"),
    ]:
        assert matrix[(a, b)], f"paper inclusion {a} ⊆ {b} failed"
    # Non-inclusions already visible at n ≤ 3 with one location.  (The
    # remaining separations — NW vs WN both ways, LC ⊄ SC, NN ⊄ LC —
    # need 4 nodes or two locations; test_fig1_full_battery certifies
    # them through the witness searches.)
    for a, b in [("NW", "NN"), ("WN", "NN"), ("WN", "NW"),
                 ("WW", "NW"), ("WW", "WN")]:
        assert not matrix[(a, b)], f"unexpected inclusion {a} ⊆ {b}"


def test_fig1_full_battery(benchmark, sweep_universe, witness_universe):
    result = benchmark.pedantic(
        compute_lattice,
        args=(sweep_universe, witness_universe),
        rounds=1,
        iterations=1,
    )
    report = render_lattice_result(result)
    print()
    print(report)
    assert result.matches_paper() == []


def test_fig1_parallel_identical_to_serial(
    benchmark, sweep_universe, witness_universe
):
    """The sharded engine's canonical-order merge reproduces the serial
    battery bit-for-bit: same matrix, same witnesses pair-for-pair."""
    from repro.runtime.parallel import clear_sweep_caches

    clear_sweep_caches()
    serial = compute_lattice(sweep_universe, witness_universe, jobs=1)

    def parallel_run():
        clear_sweep_caches()
        return compute_lattice(sweep_universe, witness_universe, jobs=2)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert parallel.inclusions == serial.inclusions
    assert parallel.strictness == serial.strictness
    assert parallel.incomparability == serial.incomparability
    assert parallel.constructibility == serial.constructibility
    assert parallel.matches_paper() == []


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Full mode is the whole Figure 1 battery with the paper-match
    assertion.  Quick mode shrinks both universes one node; the paper's
    4-node witnesses don't exist there, so only the inclusion chain
    (which holds on *any* universe) is asserted.
    """
    import time

    from repro.models import Universe
    from repro.runtime.parallel import clear_sweep_caches

    sweep = Universe(max_nodes=2 if quick else 3, locations=("x",))
    models = (SC, LC, NN, NW, WN, WW)
    clear_sweep_caches()

    if quick:
        t0 = time.perf_counter()
        matrix = inclusion_matrix(models, sweep)
        seconds = time.perf_counter() - t0
        if check:
            for a, b in [("SC", "LC"), ("LC", "NN"), ("NN", "NW"),
                         ("NN", "WN"), ("NW", "WW"), ("WN", "WW")]:
                assert matrix[(a, b)], f"paper inclusion {a} ⊆ {b} failed"
        return {
            "matrix_seconds": round(seconds, 4),
            "inclusions_true": sum(1 for v in matrix.values() if v),
        }

    witness = Universe(max_nodes=4, locations=("x",), include_nop=False)
    t0 = time.perf_counter()
    result = compute_lattice(sweep, witness)
    seconds = time.perf_counter() - t0
    if check:
        assert result.matches_paper() == []
    return {
        "battery_seconds": round(seconds, 4),
        "inclusions_true": sum(1 for v in result.inclusions.values() if v),
        "edges_witnessed": len(result.strictness),
    }
