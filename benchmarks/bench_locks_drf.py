"""Locks extension (§7 future work): serialization, DRF, and the
release-consistency lifting.

The paper names lock-augmented computations as open design space; this
bench exercises the implementation in :mod:`repro.locks` end to end:

* a properly locked concurrent counter is DRF under every admissible
  serialization, and its atomic (serialized) behaviours are accepted by
  the LockRC model while the lost-update anomaly is rejected;
* removing or mismatching locks makes the DRF check fail with concrete
  racy serializations;
* the DRF guarantee (reads of every LockRC behaviour are SC-explainable
  on the witnessing serialization) is swept over all serializations and
  all LC observers of a locked workload.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_locks_drf.py``.
"""

from repro.core import ObserverFunction, last_writer_function
from repro.lang import unfold
from repro.locks import LockRC, LockedComputation
from repro.models import LC, SC


def build_locked_counter(n_tasks: int) -> LockedComputation:
    def task(ctx):
        with ctx.lock("L"):
            ctx.read("ctr")
            ctx.write("ctr")

    def main(ctx):
        ctx.write("ctr")
        for _ in range(n_tasks):
            ctx.spawn(task)
        ctx.sync()
        ctx.read("ctr")

    comp, info = unfold(main)
    return LockedComputation.from_unfold(comp, info)


def test_drf_check(benchmark):
    locked = build_locked_counter(3)

    def check():
        return locked.is_drf(), len(list(locked.induced_computations()))

    drf, n_ser = benchmark(check)
    print()
    print(f"locked counter x3: {n_ser} admissible serializations, DRF={drf}")
    assert drf
    assert n_ser == 6


def test_lockrc_membership(benchmark):
    locked = build_locked_counter(2)
    ser, induced = next(locked.induced_computations())
    witness = last_writer_function(induced, induced.dag.topological_order)
    phi = ObserverFunction(
        locked.comp, {loc: witness.row(loc) for loc in witness.locations}
    )

    ok = benchmark(LockRC.contains, locked, phi)
    assert ok
    print()
    print(f"serialized counter behaviour accepted; witness = {ser}")


def test_drf_guarantee_sweep(benchmark):
    """Reads of every LC observer of every serialization are SC reads."""
    locked = build_locked_counter(2)

    def sweep():
        checked = 0
        for _ser, induced in locked.induced_computations():
            readers = {
                (loc, r)
                for loc in induced.locations
                for r in induced.readers(loc)
            }
            sc_read_views = set()
            for psi in SC.observers(induced):
                sc_read_views.add(
                    tuple(sorted((repr(l), r, psi.value(l, r)) for l, r in readers))
                )
            for phi in LC.observers(induced):
                view = tuple(
                    sorted((repr(l), r, phi.value(l, r)) for l, r in readers)
                )
                assert view in sc_read_views
                checked += 1
        return checked

    checked = benchmark.pedantic(sweep, rounds=1)
    print()
    print(f"DRF guarantee: {checked} LC observers, all reads SC-explainable")
    assert checked > 0
