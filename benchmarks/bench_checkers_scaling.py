"""Checker scaling: membership cost vs. computation size.

Not a figure of the paper, but the claim implicit throughout Sections
4–6: LC membership and dag-consistency membership are tractable (our
block/fiber algorithms are polynomial), while SC verification needs
search.  This bench measures the polynomial checkers on computations
three orders of magnitude beyond the universes used for the theorems —
the scale a practical post-mortem verifier must handle.
"""

import pytest

from repro.core import last_writer_function
from repro.lang import fib_computation, stencil_computation
from repro.models import LC, NN, WW
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import trace_admits_lc

SIZES = {
    "fib(10)": fib_computation(10)[0],
    "fib(13)": fib_computation(13)[0],
    "stencil-16x8": stencil_computation(16, 8)[0],
}


@pytest.mark.parametrize("name", sorted(SIZES))
def test_lc_membership_scaling(benchmark, name):
    comp = SIZES[name]
    phi = last_writer_function(comp, comp.dag.topological_order)
    ok = benchmark(LC.contains, comp, phi)
    print()
    print(f"{name}: {comp.num_nodes} nodes, LC membership verified")
    assert ok


@pytest.mark.parametrize("name", sorted(SIZES))
def test_nn_membership_scaling(benchmark, name):
    comp = SIZES[name]
    phi = last_writer_function(comp, comp.dag.topological_order)
    ok = benchmark(NN.contains, comp, phi)
    assert ok


@pytest.mark.parametrize("name", sorted(SIZES))
def test_ww_membership_scaling(benchmark, name):
    comp = SIZES[name]
    phi = last_writer_function(comp, comp.dag.topological_order)
    ok = benchmark(WW.contains, comp, phi)
    assert ok


@pytest.mark.parametrize("name", sorted(SIZES))
def test_trace_verification_scaling(benchmark, name):
    comp = SIZES[name]
    sched = work_stealing_schedule(comp, 8, rng=1)
    trace = execute(sched, BackerMemory())
    po = trace.partial_observer()
    ok = benchmark(trace_admits_lc, po)
    print()
    print(
        f"{name}: {comp.num_nodes} nodes, {po.num_constraints()} trace "
        "constraints verified against LC"
    )
    assert ok


def test_lc_trace_check_large_scale(benchmark):
    """The trace verifier at post-mortem production scale: a ~3k-node
    computation executed on 16 simulated processors."""
    comp = fib_computation(15)[0]
    sched = work_stealing_schedule(comp, 16, rng=2)
    trace = execute(sched, BackerMemory())
    po = trace.partial_observer()
    ok = benchmark.pedantic(trace_admits_lc, args=(po,), rounds=1)
    print()
    print(
        f"fib(15): {comp.num_nodes} nodes, {po.num_constraints()} "
        "constraints verified"
    )
    assert ok


def test_closure_large_scale(benchmark):
    """Transitive closure (the cost floor of every checker) at ~3k nodes."""
    comp = fib_computation(15)[0]

    def closure():
        # Force a fresh dag so the cached closure doesn't short-circuit.
        from repro.dag import Dag

        d = Dag(comp.num_nodes, comp.dag.edges)
        return d.descendants_mask(0)

    mask = benchmark.pedantic(closure, rounds=1)
    assert mask  # the root reaches something


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the polynomial checkers (LC membership and post-mortem trace
    verification) on the larger bundled computations.  Quick mode uses
    fib(10) only; full mode adds fib(13) and the 16×8 stencil.
    """
    import time

    names = ["fib(10)"] if quick else sorted(SIZES)
    lc_seconds = trace_seconds = 0.0
    nodes = constraints = 0
    for name in names:
        comp = SIZES[name]
        nodes += comp.num_nodes
        phi = last_writer_function(comp, comp.dag.topological_order)
        t0 = time.perf_counter()
        ok = LC.contains(comp, phi)
        lc_seconds += time.perf_counter() - t0
        if check:
            assert ok, f"{name}: last-writer observer must be in LC"
        sched = work_stealing_schedule(comp, 8, rng=1)
        trace = execute(sched, BackerMemory())
        po = trace.partial_observer()
        constraints += po.num_constraints()
        t0 = time.perf_counter()
        ok = trace_admits_lc(po)
        trace_seconds += time.perf_counter() - t0
        if check:
            assert ok, f"{name}: BACKER trace must verify against LC"
    return {
        "lc_membership_seconds": round(lc_seconds, 4),
        "trace_verify_seconds": round(trace_seconds, 4),
        "nodes": nodes,
        "trace_constraints": constraints,
    }
