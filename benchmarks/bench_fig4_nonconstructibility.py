"""Figure 4 — NN-dag consistency is not constructible.

The paper's argument: a 4-node pair in NN such that, once a final node F
(any non-write) is revealed, no observer value for F satisfies NN — the
online algorithm is stuck.  We reproduce it three ways:

1. the fixed Figure 4 pair is in NN and blocked for o ∈ {R(x), N} but
   extendable for o = W(x) ("unless F writes the location");
2. the universe search rediscovers a blocked pair from scratch (timed);
3. by contrast, LC/SC/WW pass the same sweep untouched (Theorem 19 and
   the WW column of Figure 1).
"""

from repro.core.ops import N as NOP, R, W
from repro.models import (
    LC,
    NN,
    NW,
    SC,
    WW,
    can_extend_to_augmentation,
    find_nonconstructibility_witness,
)
from repro.analysis import render_pair
from repro.paperfigures import figure4_blocking_ops, figure4_pair


def test_fig4_fixed_pair(benchmark):
    comp, phi = figure4_pair()
    assert NN.contains(comp, phi)

    def blocked_profile():
        return {
            repr(o): can_extend_to_augmentation(NN, comp, phi, o)
            for o in [R("x"), NOP, W("x")]
        }

    result = benchmark(blocked_profile)
    print()
    print("Figure 4 pair (in NN):")
    print(render_pair(comp, phi))
    print(f"  extension possible by op: {result}")
    assert result == {"R('x')": False, "N": False, "W('x')": True}
    for o in figure4_blocking_ops():
        assert not result[repr(o)]


def test_fig4_rediscovered_by_search(benchmark, witness_universe):
    wit = benchmark.pedantic(
        find_nonconstructibility_witness,
        args=(NN, witness_universe),
        rounds=1,
    )
    assert wit is not None
    assert wit.comp.num_nodes <= 4
    print()
    print(
        f"rediscovered NN-stuck pair ({wit.comp.num_nodes} nodes, "
        f"blocked by {wit.blocking_op!r}):"
    )
    print(render_pair(wit.comp, wit.phi))


def test_nw_also_nonconstructible(benchmark, witness_universe):
    """Figure 1's column: NW is not constructible either."""
    wit = benchmark.pedantic(
        find_nonconstructibility_witness, args=(NW, witness_universe), rounds=1
    )
    assert wit is not None
    print()
    print(f"NW stuck at {wit.comp.num_nodes} nodes on {wit.blocking_op!r}")


def test_constructible_models_never_stuck(benchmark, sweep_universe):
    """SC, LC and WW survive the same sweep with zero failures."""

    def sweep():
        return {
            m.name: find_nonconstructibility_witness(m, sweep_universe)
            for m in (SC, LC, WW)
        }

    result = benchmark.pedantic(sweep, rounds=1)
    assert result == {"SC": None, "LC": None, "WW": None}


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times the Theorem-12 witness search that rediscovers Figure 4 (NN
    stuck at ≤ 4 nodes).  Quick mode checks the fixed Figure 4 pair's
    blocking profile only.
    """
    import time

    from repro.models import Universe
    from repro.runtime.parallel import clear_sweep_caches

    comp, phi = figure4_pair()
    if check:
        assert NN.contains(comp, phi)
        blocked = {
            repr(o): can_extend_to_augmentation(NN, comp, phi, o)
            for o in [R("x"), NOP, W("x")]
        }
        assert blocked == {"R('x')": False, "N": False, "W('x')": True}, (
            "Figure 4 blocking profile deviates"
        )
    if quick:
        return {"search_seconds": 0.0, "witness_nodes": comp.num_nodes}

    witness_universe = Universe(
        max_nodes=4, locations=("x",), include_nop=False
    )
    clear_sweep_caches()
    t0 = time.perf_counter()
    wit = find_nonconstructibility_witness(NN, witness_universe)
    seconds = time.perf_counter() - t0
    if check:
        assert wit is not None, "NN must be stuck somewhere at n ≤ 4"
        assert wit.comp.num_nodes <= 4
    return {
        "search_seconds": round(seconds, 4),
        "witness_nodes": wit.comp.num_nodes if wit else 0,
    }
