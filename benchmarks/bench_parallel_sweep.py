"""The parallel sweep engine — equivalence and speedup vs the seed path.

Three runs of the full Figure-1/Theorem-23 battery on the standard
universes (inclusion sweep on n ≤ 3, witness searches and Theorem-23
counts on the n ≤ 4 witness universe):

* **baseline** — the seed code path: one serial enumeration sweep per
  question (inclusion matrix, per-edge witness searches, per-model
  Theorem-12 sweeps, the Theorem-23 loop) with every memoization layer
  disabled via :func:`repro._caching.sweep_caching`.
* **engine jobs=1** — the fused, memoized, sharded engine, serial.
* **engine jobs=4** — the same engine over a 4-worker process pool.

The assertions check all three produce *identical* results — the same
inclusion matrix, the same witnesses pair-for-pair (the engine's
canonical-order merge guarantees first-witness determinism), the same
Theorem-23 counts — and that the engine with 4 workers beats the
baseline by at least 2×.  Everything measured is emitted as
``BENCH_parallel_sweep.json`` in the repository root for the CI
artifact trail.
"""

import json
import time
from pathlib import Path

from repro._caching import sweep_caching
from repro.analysis.lattice import (
    PAPER_EDGES,
    PAPER_INCOMPARABLE,
    PAPER_MODELS,
    _seed_pairs,
)
from repro.core.ops import N as NOP, R
from repro.models import (
    LC,
    NN,
    SeparationWitness,
    Universe,
    augmentation_closed_at,
    find_nonconstructibility_witness,
    inclusion_matrix,
    separating_witness,
)
from repro.runtime.parallel import (
    clear_sweep_caches,
    parallel_inclusion_matrix,
    parallel_lattice_battery,
    parallel_thm23_counts,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"

THM23_PROBES = (R("x"), NOP)


def _seed_path_battery(sweep_universe, witness_universe):
    """The seed code's battery: one serial sweep per question."""
    models = PAPER_MODELS
    by_name = {m.name: m for m in models}
    inclusions = inclusion_matrix(models, sweep_universe)

    def find_separation(a_name, b_name):
        a, b = by_name[a_name], by_name[b_name]
        for comp, phi in _seed_pairs():
            if b.contains(comp, phi) and not a.contains(comp, phi):
                return SeparationWitness(comp, phi, b.name, a.name)
        return separating_witness(a, b, witness_universe)

    strictness = {(a, b): find_separation(a, b) for a, b in PAPER_EDGES}
    incomparability = {
        (a, b): (find_separation(b, a), find_separation(a, b))
        for a, b in PAPER_INCOMPARABLE
    }
    constructibility = {
        m.name: find_nonconstructibility_witness(m, witness_universe)
        for m in models
    }
    lc_in_nn = nn_minus_lc = stuck = 0
    for comp, phi in witness_universe.model_pairs(NN):
        if LC.contains(comp, phi):
            lc_in_nn += 1
            continue
        nn_minus_lc += 1
        if augmentation_closed_at(NN, comp, phi, THM23_PROBES) is not None:
            stuck += 1
    return {
        "inclusions": inclusions,
        "strictness": strictness,
        "incomparability": incomparability,
        "constructibility": constructibility,
        "thm23": (lc_in_nn, nn_minus_lc, stuck),
    }


def _engine_battery(sweep_universe, witness_universe, jobs):
    """The same questions through the engine's fused single-pass battery.

    Mirrors :func:`repro.analysis.lattice.compute_lattice` — paper-figure
    seeds first, then one sharded pass for everything unresolved — with
    the Theorem-23 counts fused into the same pass rather than swept
    separately.
    """
    by_name = {m.name: m for m in PAPER_MODELS}
    inclusions, inc_stats = parallel_inclusion_matrix(
        PAPER_MODELS, sweep_universe, jobs=jobs
    )

    def seeded(a_name, b_name):
        a, b = by_name[a_name], by_name[b_name]
        for comp, phi in _seed_pairs():
            if b.contains(comp, phi) and not a.contains(comp, phi):
                return SeparationWitness(comp, phi, b.name, a.name)
        return None

    wanted = list(PAPER_EDGES)
    for a, b in PAPER_INCOMPARABLE:
        wanted += [(b, a), (a, b)]
    separations = {edge: seeded(*edge) for edge in dict.fromkeys(wanted)}
    unresolved = [e for e, w in separations.items() if w is None]

    battery, bat_stats = parallel_lattice_battery(
        witness_universe,
        edges=unresolved,
        constructibility=PAPER_MODELS,
        thm23_probes=THM23_PROBES,
        jobs=jobs,
    )
    for edge in unresolved:
        separations[edge] = battery.witnesses[edge]
    return {
        "inclusions": inclusions,
        "strictness": {(a, b): separations[(a, b)] for a, b in PAPER_EDGES},
        "incomparability": {
            (a, b): (separations[(b, a)], separations[(a, b)])
            for a, b in PAPER_INCOMPARABLE
        },
        "constructibility": {
            m.name: battery.nonconstructibility[m.name] for m in PAPER_MODELS
        },
        "thm23": battery.thm23,
    }, [inc_stats, bat_stats]


def _assert_identical(a, b, label):
    assert a["inclusions"] == b["inclusions"], f"{label}: inclusion matrices differ"
    assert a["strictness"] == b["strictness"], f"{label}: edge witnesses differ"
    assert (
        a["incomparability"] == b["incomparability"]
    ), f"{label}: incomparability witnesses differ"
    assert (
        a["constructibility"] == b["constructibility"]
    ), f"{label}: constructibility witnesses differ"
    assert a["thm23"] == b["thm23"], f"{label}: Theorem-23 counts differ"


def test_parallel_sweep_speedup(benchmark, sweep_universe, witness_universe):
    # Baseline: seed path, caches off, measured cold.
    with sweep_caching(False):
        clear_sweep_caches()
        t0 = time.perf_counter()
        baseline = _seed_path_battery(sweep_universe, witness_universe)
        baseline_seconds = time.perf_counter() - t0

    # Engine, serial and 4 workers, each repetition from cold caches.
    # Wall clock is the best of three: on a loaded machine the pool legs
    # are noisy, and min-of-repeats is the standard noise-robust read.
    runs = {}
    for jobs in (1, 4):
        seconds = []
        for _ in range(3):
            clear_sweep_caches()
            t0 = time.perf_counter()
            result, stats = _engine_battery(
                sweep_universe, witness_universe, jobs
            )
            seconds.append(time.perf_counter() - t0)
        runs[jobs] = {
            "result": result,
            "stats": stats,
            "seconds": min(seconds),
            "runs": seconds,
        }

    _assert_identical(baseline, runs[1]["result"], "engine jobs=1 vs baseline")
    _assert_identical(runs[1]["result"], runs[4]["result"], "jobs=4 vs jobs=1")

    # Uncached engine at 4 workers: sweep_caching(False) must propagate
    # into the pool workers (carried by each ShardSpec), and the
    # worker-side cache telemetry must prove the run was truly cold —
    # zero cache consultations across every shard of every sweep.
    with sweep_caching(False):
        clear_sweep_caches()
        t0 = time.perf_counter()
        uncached_result, uncached_stats = _engine_battery(
            sweep_universe, witness_universe, 4
        )
        uncached_seconds = time.perf_counter() - t0
    for stats in uncached_stats:
        consultations = stats.cache_consultations()
        assert consultations == 0, (
            f"{stats.label}: uncached sweep consulted memoization caches "
            f"{consultations} times inside workers"
        )
    _assert_identical(baseline, uncached_result, "uncached jobs=4 vs baseline")

    # The timed leg pytest-benchmark records: the engine at 4 workers.
    def timed():
        clear_sweep_caches()
        return _engine_battery(sweep_universe, witness_universe, 4)

    benchmark.pedantic(timed, rounds=1, iterations=1)

    payload = {
        "benchmark": "parallel_sweep",
        "sweep_universe": repr(sweep_universe),
        "witness_universe": repr(witness_universe),
        "baseline_seconds": round(baseline_seconds, 4),
        "engine": {
            f"jobs{jobs}": {
                "seconds": round(run["seconds"], 4),
                "runs": [round(s, 4) for s in run["runs"]],
                "speedup_vs_baseline": round(
                    baseline_seconds / run["seconds"], 2
                ),
                "sweeps": [s.to_dict() for s in run["stats"]],
            }
            for jobs, run in runs.items()
        },
        "uncached_jobs4": {
            "seconds": round(uncached_seconds, 4),
            "cache_consultations": 0,
            "sweeps": [s.to_dict() for s in uncached_stats],
        },
        "results_identical": True,
        "thm23": list(runs[4]["result"]["thm23"]),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    speedup4 = baseline_seconds / runs[4]["seconds"]
    print()
    print(
        f"baseline (seed path, uncached): {baseline_seconds:.3f}s; "
        f"engine jobs=1: {runs[1]['seconds']:.3f}s "
        f"({baseline_seconds / runs[1]['seconds']:.2f}x); "
        f"engine jobs=4: {runs[4]['seconds']:.3f}s ({speedup4:.2f}x)"
    )
    print(f"wrote {BENCH_JSON.name}")
    assert speedup4 >= 2.0, (
        f"engine with 4 workers only {speedup4:.2f}x vs the seed path "
        f"(needed 2x)"
    )


def test_parallel_matches_serial_thm23(witness_universe):
    """Theorem-23 counts are shard-order independent: jobs 1, 2, 4 agree."""
    counts = {}
    for jobs in (1, 2, 4):
        clear_sweep_caches()
        counts[jobs], _ = parallel_thm23_counts(
            witness_universe,
            probes=THM23_PROBES,
            jobs=jobs,
            parallel_threshold=0,
        )
    assert counts[1] == counts[2] == counts[4]
    lc_in_nn, nn_minus_lc, stuck = counts[1]
    assert nn_minus_lc > 0 and stuck == nn_minus_lc


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Quick mode shrinks both universes one node and uses a 2-worker
    pool; full mode mirrors :func:`test_parallel_sweep_speedup` —
    baseline, engine at jobs 1 and 4 (min of 3), the uncached pool leg
    — and refreshes ``BENCH_parallel_sweep.json`` with environment and
    git-sha metadata.
    """
    from repro.obs.ledger import env_metadata, git_sha

    sweep = Universe(max_nodes=2 if quick else 3, locations=("x",))
    witness = Universe(
        max_nodes=3 if quick else 4, locations=("x",), include_nop=False
    )
    pool_jobs = 2 if quick else 4

    with sweep_caching(False):
        clear_sweep_caches()
        t0 = time.perf_counter()
        baseline = _seed_path_battery(sweep, witness)
        baseline_seconds = time.perf_counter() - t0

    runs = {}
    for jobs in (1, pool_jobs):
        seconds = []
        result = stats = None
        for _ in range(1 if quick else 3):
            clear_sweep_caches()
            t0 = time.perf_counter()
            result, stats = _engine_battery(sweep, witness, jobs)
            seconds.append(time.perf_counter() - t0)
        runs[jobs] = {
            "result": result,
            "stats": stats,
            "seconds": min(seconds),
            "runs": seconds,
        }
    if check:
        _assert_identical(baseline, runs[1]["result"], "engine jobs=1 vs baseline")
        _assert_identical(
            runs[1]["result"], runs[pool_jobs]["result"],
            f"jobs={pool_jobs} vs jobs=1",
        )

    metrics = {
        "baseline_seconds": round(baseline_seconds, 4),
        "engine_jobs1_seconds": round(runs[1]["seconds"], 4),
        "engine_pool_seconds": round(runs[pool_jobs]["seconds"], 4),
        "pool_jobs": pool_jobs,
        "speedup_pool_vs_baseline": round(
            baseline_seconds / runs[pool_jobs]["seconds"], 2
        ),
    }
    if quick:
        return metrics

    # Full mode: the uncached pool leg (worker-side cache telemetry must
    # prove a truly cold run) and the JSON artifact refresh.
    with sweep_caching(False):
        clear_sweep_caches()
        t0 = time.perf_counter()
        uncached_result, uncached_stats = _engine_battery(
            sweep, witness, pool_jobs
        )
        uncached_seconds = time.perf_counter() - t0
    consultations = sum(s.cache_consultations() for s in uncached_stats)
    if check:
        assert consultations == 0, (
            f"uncached sweep consulted memoization caches {consultations} "
            "times inside workers"
        )
        _assert_identical(baseline, uncached_result, "uncached vs baseline")
        speedup = baseline_seconds / runs[pool_jobs]["seconds"]
        assert speedup >= 2.0, (
            f"engine with {pool_jobs} workers only {speedup:.2f}x vs the "
            "seed path (needed 2x)"
        )
    metrics["uncached_pool_seconds"] = round(uncached_seconds, 4)

    payload = {
        "benchmark": "parallel_sweep",
        "git_sha": git_sha(),
        "env": env_metadata(),
        "sweep_universe": repr(sweep),
        "witness_universe": repr(witness),
        "baseline_seconds": round(baseline_seconds, 4),
        "engine": {
            f"jobs{jobs}": {
                "seconds": round(run_["seconds"], 4),
                "runs": [round(s, 4) for s in run_["runs"]],
                "speedup_vs_baseline": round(
                    baseline_seconds / run_["seconds"], 2
                ),
                "sweeps": [s.to_dict() for s in run_["stats"]],
            }
            for jobs, run_ in runs.items()
        },
        "uncached_jobs4": {
            "seconds": round(uncached_seconds, 4),
            "cache_consultations": consultations,
            "sweeps": [s.to_dict() for s in uncached_stats],
        },
        "results_identical": check,
        "thm23": list(runs[pool_jobs]["result"]["thm23"]),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return metrics
