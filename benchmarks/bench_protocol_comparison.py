"""Protocol comparison: lazy LC (BACKER) vs. eager SC (MSI directory).

Section 7's second open problem asks about algorithms cheaper than
BACKER for weaker models; the complementary question — what the
*stronger* model costs — has a classical answer: eagerly-coherent
write-invalidate protocols.  This bench runs both protocols on the same
schedules and counts coherence messages (lines moved + invalidations):

* **Under true sharing (racy counter)** the lazy protocol wins clearly:
  BACKER pays only at dag edges, while the directory invalidates and
  re-fetches on every conflicting access.  This is the shape of the
  dag-consistency argument: weaker guarantees ⇒ less communication.
* **Under migratory dataflow (fib)** the naive BACKER loses ground: its
  whole-cache flush at every cross edge evicts data that would have
  been reused, while the directory moves only the accessed lines.  This
  too is faithful — BACKER's conservative flushing is its documented
  inefficiency and one motivation for the paper's interest in better
  algorithms.

Both protocols are post-mortem verified on every run: directory traces
must be SC, BACKER traces must be LC.

Message totals include both data messages (fetches + writebacks) and
control messages (reconciles/flushes for BACKER, invalidations for the
directory) — see ``BackerStats.control_messages``.

Registered in ``registry.py`` as ``protocol-comparison`` via
:func:`run`; the pytest parametrizations below remain runnable directly
with ``pytest benchmarks/bench_protocol_comparison.py``.
"""

from repro.lang import fib_computation, racy_counter_computation
from repro.runtime import (
    BackerMemory,
    DirectoryMemory,
    execute,
    work_stealing_schedule,
)
from repro.verify import trace_admits_lc, trace_admits_sc


def run_both(comp, procs, seed):
    sched = work_stealing_schedule(comp, procs, rng=seed)
    dmem = DirectoryMemory()
    dtrace = execute(sched, dmem)
    assert trace_admits_sc(dtrace.partial_observer()) is not None or (
        comp.num_nodes > 64
    ), "directory protocol must produce SC traces"
    bmem = BackerMemory()
    btrace = execute(sched, bmem)
    assert trace_admits_lc(btrace.partial_observer()), "BACKER must stay LC"
    d_msgs = dmem.stats.messages
    b_msgs = bmem.stats.messages
    return d_msgs, b_msgs, dmem.stats.invalidations


def test_true_sharing_favors_lazy_lc(benchmark):
    comp = racy_counter_computation(4, 3)[0]

    def sweep():
        return {p: run_both(comp, p, seed=1) for p in (2, 4, 8)}

    rows = benchmark.pedantic(sweep, rounds=1)
    print()
    print("racy counter (true sharing): coherence messages")
    print(f"{'P':>3} {'directory(SC)':>14} {'backer(LC)':>11} {'invalidations':>14}")
    for p, (d, b, inv) in rows.items():
        print(f"{p:>3} {d:>14} {b:>11} {inv:>14}")
        assert b < d, (
            "lazy LC must beat eager SC under contention — the paper's "
            "motivating trade-off"
        )


def test_migratory_dataflow_shows_backer_flush_cost(benchmark):
    comp = fib_computation(9)[0]

    def sweep():
        return {p: run_both(comp, p, seed=1) for p in (2, 4, 8)}

    rows = benchmark.pedantic(sweep, rounds=1)
    print()
    print("fib(9) (migratory dataflow): coherence messages")
    print(f"{'P':>3} {'directory(SC)':>14} {'backer(LC)':>11} {'invalidations':>14}")
    for p, (d, b, inv) in rows.items():
        print(f"{p:>3} {d:>14} {b:>11} {inv:>14}")
        # Dataflow programs have (almost) no invalidation traffic: each
        # location has a single writer whose value then migrates.
        assert inv == 0
    # The documented caveat: whole-cache flushing makes naive BACKER pay
    # more here.  We assert the *phenomenon* is visible at P >= 4 so the
    # bench honestly tracks it.
    d4, b4, _ = rows[4]
    assert b4 > 0 and d4 > 0


def test_both_protocols_correct_across_seeds(benchmark):
    comp = racy_counter_computation(3, 2)[0]

    def sweep():
        ok = 0
        for seed in range(10):
            run_both(comp, 4, seed)  # asserts inside
            ok += 1
        return ok

    ok = benchmark.pedantic(sweep, rounds=1)
    assert ok == 10


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Races the lazy BACKER protocol against the eager MSI directory on a
    true-sharing and a migratory workload, verifying every trace and
    counting coherence messages (data + control) on both sides.
    """
    import time

    racy = racy_counter_computation(3 if quick else 4, 2 if quick else 3)[0]
    fib = fib_computation(7 if quick else 9)[0]
    procs_list = (2, 4) if quick else (2, 4, 8)

    t0 = time.perf_counter()
    racy_rows = {p: run_both(racy, p, seed=1) for p in procs_list}
    fib_rows = {p: run_both(fib, p, seed=1) for p in procs_list}
    sweep_seconds = time.perf_counter() - t0

    if check:
        for p, (d, b, _inv) in racy_rows.items():
            assert b < d, (
                "lazy LC must beat eager SC under contention — the "
                "paper's motivating trade-off"
            )
        for p, (_d, _b, inv) in fib_rows.items():
            assert inv == 0, "dataflow must not generate invalidations"
        d_wide, b_wide, _ = fib_rows[procs_list[-1]]
        assert b_wide > 0 and d_wide > 0

    widest = procs_list[-1]
    return {
        "widest_procs": widest,
        "racy_directory_messages": racy_rows[widest][0],
        "racy_backer_messages": racy_rows[widest][1],
        "racy_invalidations": racy_rows[widest][2],
        "fib_directory_messages": fib_rows[widest][0],
        "fib_backer_messages": fib_rows[widest][1],
        "sweep_seconds": round(sweep_seconds, 6),
    }
