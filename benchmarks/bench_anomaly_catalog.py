"""The anomaly catalog (extension of Figures 2–4).

§7: "variants of dag consistency were developed to forbid 'anomalies'
... as they were discovered."  This bench automates the discovery: for
each strict edge of the lattice, enumerate *all minimal* separating
behaviours.  The paper's hand-crafted figures reappear as catalog
entries, and the counts quantify how rare each anomaly class is.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_anomaly_catalog.py``.
"""

import pytest

from repro.analysis import catalog_anomalies, render_catalog
from repro.models import LC, NN, NW, SC, WN, WW, Universe

RW4 = Universe(max_nodes=4, locations=("x",), include_nop=False)
TWO_LOC = Universe(max_nodes=2, locations=("x", "y"), include_nop=False)

EXPECTED = {
    # (stronger, weaker): (minimal size, witness count at that size)
    ("LC", "NN"): (4, 24),
    ("NN", "NW"): (3, 3),
    ("NN", "WN"): (2, 1),
    ("NW", "WW"): (2, 1),  # the stale-⊥ read: W → R(⊥), NW forbids it
    ("WN", "WW"): (3, 2),
}

PAIRS = {
    ("LC", "NN"): (LC, NN),
    ("NN", "NW"): (NN, NW),
    ("NN", "WN"): (NN, WN),
    ("NW", "WW"): (NW, WW),
    ("WN", "WW"): (WN, WW),
}


@pytest.mark.parametrize("edge", sorted(EXPECTED), ids=lambda e: f"{e[1]}-minus-{e[0]}")
def test_catalog_edge(benchmark, edge):
    stronger, weaker = PAIRS[edge]
    catalog = benchmark.pedantic(
        catalog_anomalies,
        args=(stronger, weaker, RW4),
        kwargs={"max_witnesses": 1000},
        rounds=1,
    )
    print()
    print(render_catalog(catalog, show=1))
    size, count = EXPECTED[edge]
    assert catalog.minimal_size == size
    assert len(catalog.witnesses) == count


def test_sc_lc_catalog(benchmark):
    catalog = benchmark.pedantic(
        catalog_anomalies,
        args=(SC, LC, TWO_LOC),
        kwargs={"max_witnesses": 100},
        rounds=1,
    )
    print()
    print(render_catalog(catalog, show=2))
    # Two concurrent writes to two locations already separate SC and LC.
    assert catalog.minimal_size == 2
    assert len(catalog.witnesses) == 4
