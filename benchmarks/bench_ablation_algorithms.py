"""Ablations of this library's algorithmic design choices.

DESIGN.md commits to several non-obvious implementations; each ablation
pits the chosen algorithm against its naive alternative, verifying
agreement where the naive side terminates and documenting the scaling
wall where it does not:

* **LC membership**: polynomial block/quotient decomposition vs. the
  definitional enumeration of ``TS(C)`` per location.  The enumeration
  side runs only on fib(3) (12 topological sorts); fib(5) already has
  1.8·10¹² sorts while the block algorithm handles fib(10) (353 nodes)
  in milliseconds — the ablation that justifies Section 4's algorithm.
* **Dag-consistency membership**: fiber-bitset checkers vs. the literal
  all-triples reference of Definition 20 (``O(|L|·n³)``); both terminate,
  the fibers win by a widening factor.
* **SC search**: the LC prefilter (SC ⊆ LC) short-circuits rejections
  before the exponential search runs.
* **Linear-extension counting**: downset DP vs. full enumeration.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_ablation_algorithms.py``.
"""

import pytest

from repro.core import last_writer_function
from repro.dag import all_topological_sorts, count_topological_sorts
from repro.dag.random_dags import layered_dag
from repro.lang import fib_computation
from repro.models import LC, NN, SC, WW
from repro.paperfigures import figure4_pair


def _pair(n: int):
    comp = fib_computation(n)[0]
    return comp, last_writer_function(comp, comp.dag.topological_order)


class TestLCAblation:
    def test_block_algorithm_large(self, benchmark):
        comp, phi = _pair(10)  # 353 nodes — hopeless for enumeration
        assert benchmark(LC.contains, comp, phi)

    def test_block_algorithm_small(self, benchmark):
        comp, phi = _pair(3)
        assert benchmark(LC.contains, comp, phi)

    def test_bruteforce_definition_small(self, benchmark):
        comp, phi = _pair(3)
        result = benchmark(LC.contains_bruteforce, comp, phi)
        assert result == LC.contains(comp, phi)
        print()
        print(
            f"fib(3): {count_topological_sorts(comp.dag)} sorts enumerable; "
            f"fib(5) would need {count_topological_sorts(fib_computation(5)[0].dag):,}"
        )


class TestDagConsistencyAblation:
    @pytest.mark.parametrize("model", [NN, WW], ids=lambda m: m.name)
    def test_fiber_checker(self, benchmark, model):
        comp, phi = _pair(6)  # 57 nodes
        assert benchmark(model.contains, comp, phi)

    @pytest.mark.parametrize("model", [NN, WW], ids=lambda m: m.name)
    def test_reference_triples(self, benchmark, model):
        comp, phi = _pair(6)
        result = benchmark(model.contains_reference, comp, phi)
        assert result == model.contains(comp, phi)


class TestSCPrefilterAblation:
    def test_with_prefilter_rejects_fast(self, benchmark):
        """Figure 4's pair fails LC, so SC rejects without searching."""
        comp, phi = figure4_pair()
        assert not benchmark(SC.contains, comp, phi)

    def test_search_on_accepted_pair(self, benchmark):
        """The memoized search on an accepted pair (prefilter passes)."""
        comp, phi = _pair(4)
        assert benchmark(SC.witness_order, comp, phi) is not None


class TestCountingAblation:
    def setup_method(self):
        self.dag = layered_dag([3, 3, 3], connect_all=True)

    def test_dp_count(self, benchmark):
        count = benchmark(count_topological_sorts, self.dag)
        assert count == 6**3  # each barrier layer permutes freely

    def test_enumeration_count(self, benchmark):
        count = benchmark.pedantic(
            lambda: sum(1 for _ in all_topological_sorts(self.dag)), rounds=1
        )
        assert count == count_topological_sorts(self.dag)
