"""The hierarchy traffic study as a ledger benchmark.

Drives :func:`repro.runtime.hier_sweep.hier_sweep` — the same engine
behind ``repro hier sweep`` — over a cache-shape × workload grid, with
every faithful run post-mortem LC-verified and the per-level fault
probes (dropped reconcile/flush at each level) required to be rejected
with a witness.  The ledger counters track both throughput (simulated
memory-system events per second) and the study's headline traffic
numbers (store fetches, writebacks, false sharing) so a regression in
either the simulator's speed or the protocol's traffic profile shows
up in the perf gate.
"""

from repro.runtime.hier_sweep import hier_sweep, resolve_shape

SHAPES = ("l1", "l1l2", "l1l2l3")
WORKLOADS = ("stencil", "racy", "fib")


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py)."""
    shapes = [resolve_shape(s) for s in SHAPES]
    procs_list = (2,) if quick else (2, 4)
    result = hier_sweep(
        shapes,
        WORKLOADS,
        procs_list,
        quick=quick,
        fault_probes=True,
    )

    if check:
        assert result.ok, (
            f"sweep must verify: faithful "
            f"{result.faithful_verified}/{result.faithful_runs}, "
            f"fault probes {result.fault_rejected}/{result.fault_probes}"
        )
        # False sharing is definitionally impossible at line size 1;
        # the flat preset (line 1 everywhere) must report zero.
        flat = resolve_shape("flat")
        flat_result = hier_sweep(
            [flat], ("racy",), (2,), quick=True, fault_probes=False
        )
        assert all(r["false_sharing"] == 0 for r in flat_result.records)

    faithful = [r for r in result.records if r["faithful"]]
    return {
        "faithful_runs": result.faithful_runs,
        "fault_probes": result.fault_probes,
        "simulated_ops": result.simulated_ops,
        "ops_per_second": round(
            result.simulated_ops / result.wall_seconds, 1
        )
        if result.wall_seconds
        else 0,
        "store_fetches": sum(r["memory_fetches"] for r in faithful),
        "writebacks": sum(r["levels"][-1]["writebacks"] for r in faithful),
        "false_sharing": sum(r["false_sharing"] for r in faithful),
        "messages": sum(r["messages"] for r in faithful),
        "sweep_seconds": round(result.wall_seconds, 6),
    }
