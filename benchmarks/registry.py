"""Registry of unified benchmark entrypoints for ``repro bench``.

Every ``bench_*.py`` in this directory that participates in the
performance ledger exposes::

    def run(check: bool = True, quick: bool = False) -> dict

The runner (:func:`repro.cli._cmd_bench`) times whole ``run`` calls
(warmup + repeats) and stores the returned dict's numeric values as the
ledger record's ``counters``.  ``check=True`` keeps the reproduction
assertions on (a benchmark run doubles as a reproduction run, same as
the pytest-benchmark path); ``quick=True`` shrinks problem sizes for CI
smoke and must not write artifact files.

The manifest is explicit rather than glob-discovered: importing a bench
module is not free (some unfold thousand-node computations at import
time), a broken experiment should not take the whole runner down, and
the ``order`` field pins a stable ledger ordering.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class BenchmarkSpec:
    """One ledger benchmark: a stable name bound to a module's ``run``."""

    name: str
    module: str
    order: int
    description: str


MANIFEST = (
    BenchmarkSpec(
        "parallel-sweep",
        "bench_parallel_sweep",
        10,
        "Figure-1/Theorem-23 battery: seed path vs the sharded engine",
    ),
    BenchmarkSpec(
        "races",
        "bench_races",
        20,
        "race detection scaling: SP-bags vs the closure sweeps",
    ),
    BenchmarkSpec(
        "fig1-lattice",
        "bench_fig1_lattice",
        30,
        "the Figure 1 lattice battery (inclusions, witnesses, Thm 12)",
    ),
    BenchmarkSpec(
        "streaming-verifier",
        "bench_streaming_verifier",
        40,
        "streaming vs batch LC verification on long traces",
    ),
    BenchmarkSpec(
        "backer-overhead",
        "bench_backer_overhead",
        50,
        "BACKER speedup shape and protocol traffic vs processors",
    ),
    BenchmarkSpec(
        "thm23-lc-equals-nn-star",
        "bench_thm23_lc_equals_nn_star",
        60,
        "Theorem 23: LC ⊆ NN sweep + one-step pruning of NN \\ LC",
    ),
    BenchmarkSpec(
        "thm19-sc-lc-constructible",
        "bench_thm19_sc_lc_constructible",
        70,
        "Theorem 19: completeness/monotonicity/constructibility of SC, LC",
    ),
    BenchmarkSpec(
        "fig2-fig3-witnesses",
        "bench_fig2_fig3_witnesses",
        80,
        "Figures 2–3: separating-witness searches between dag models",
    ),
    BenchmarkSpec(
        "fig4-nonconstructibility",
        "bench_fig4_nonconstructibility",
        90,
        "Figure 4: the Theorem-12 search that finds NN stuck",
    ),
    BenchmarkSpec(
        "litmus",
        "bench_litmus",
        100,
        "litmus-outcome table: the model zoo on classical litmus shapes",
    ),
    BenchmarkSpec(
        "checkers-scaling",
        "bench_checkers_scaling",
        110,
        "polynomial checkers (LC membership, trace verify) at scale",
    ),
    BenchmarkSpec(
        "lint-throughput",
        "bench_lint_throughput",
        120,
        "findings/s of the multi-rule lint engine over a program corpus",
    ),
    BenchmarkSpec(
        "serve-throughput",
        "bench_serve_throughput",
        130,
        "items/s and dedupe rate of the batch trace-checking service",
    ),
    BenchmarkSpec(
        "profiler-overhead",
        "bench_profiler_overhead",
        140,
        "wall-clock cost of the SIGPROF sampler on the serve workload",
    ),
    BenchmarkSpec(
        "hier-sweep",
        "bench_hier_sweep",
        150,
        "multi-level BACKER traffic grid, every run LC-verified",
    ),
    BenchmarkSpec(
        "false-sharing",
        "bench_false_sharing",
        160,
        "page granularity: clobber corruption vs diff reconciliation",
    ),
    BenchmarkSpec(
        "timed-backer",
        "bench_timed_backer",
        170,
        "timed BACKER curves: makespan vs processors and miss cost",
    ),
    BenchmarkSpec(
        "protocol-comparison",
        "bench_protocol_comparison",
        180,
        "lazy LC (BACKER) vs eager SC (MSI directory) message counts",
    ),
)


def select(names: list[str] | None = None) -> list[BenchmarkSpec]:
    """Manifest entries in ledger order, optionally filtered by name."""
    specs = sorted(MANIFEST, key=lambda s: s.order)
    if names is None:
        return specs
    known = {s.name for s in specs}
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {', '.join(sorted(unknown))} "
            f"(choose from {', '.join(s.name for s in specs)})"
        )
    wanted = set(names)
    return [s for s in specs if s.name in wanted]


def load(spec: BenchmarkSpec) -> Callable[..., dict]:
    """Import the spec's module and return its ``run`` entrypoint."""
    mod = importlib.import_module(spec.module)
    run = getattr(mod, "run", None)
    if not callable(run):
        raise ValueError(
            f"benchmark module {spec.module!r} has no run(check, quick) "
            "entrypoint"
        )
    return run
