"""Streaming vs batch verification (extension).

The batch LC checker needs the whole trace; the streaming verifier
(THEORY.md §1's blocks maintained incrementally) works event by event
and *localizes* the first violating event.  This bench measures both on
long executions and checks the localization property: the verdicts
always agree, and on faulty traces the stream truncated before the
reported event is still consistent.
"""

from repro.lang import fib_computation, racy_counter_computation
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import StreamingLCVerifier, trace_admits_lc


def make_trace(comp, procs, seed, drop=0.0):
    sched = work_stealing_schedule(comp, procs, rng=seed)
    mem = BackerMemory(
        drop_reconcile_probability=drop, drop_flush_probability=drop, rng=seed
    )
    return execute(sched, mem)


def test_streaming_on_long_trace(benchmark):
    comp = fib_computation(13)[0]  # 1505 nodes
    trace = make_trace(comp, 8, seed=1)
    violation = benchmark(StreamingLCVerifier.check_trace, trace)
    assert violation is None
    print()
    print(f"fib(13): {comp.num_nodes} events streamed, no violation")


def test_batch_on_long_trace(benchmark):
    comp = fib_computation(13)[0]
    trace = make_trace(comp, 8, seed=1)
    po = trace.partial_observer()
    ok = benchmark(trace_admits_lc, po)
    assert ok


def test_fault_localization(benchmark):
    comp = racy_counter_computation(6, 4)[0]

    def localize():
        hits = []
        for seed in range(25):
            trace = make_trace(comp, 4, seed=seed, drop=0.9)
            v = StreamingLCVerifier.check_trace(trace)
            batch_ok = trace_admits_lc(trace.partial_observer())
            assert (v is None) == batch_ok
            if v is not None:
                hits.append(v.node)
        return hits

    hits = benchmark.pedantic(localize, rounds=1)
    print()
    print(
        f"{len(hits)}/25 faulty executions flagged; first-violation nodes: "
        f"{sorted(set(hits))}"
    )
    assert hits


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Streams a long healthy trace (fib(10) quick / fib(13) full) through
    the streaming verifier and the batch checker, then localizes faults
    across a drop-injected campaign (5 seeds quick / 25 full).
    """
    import time

    n = 10 if quick else 13
    comp = fib_computation(n)[0]
    trace = make_trace(comp, 8, seed=1)

    t0 = time.perf_counter()
    violation = StreamingLCVerifier.check_trace(trace)
    stream_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_ok = trace_admits_lc(trace.partial_observer())
    batch_seconds = time.perf_counter() - t0
    if check:
        assert violation is None and batch_ok

    racy = racy_counter_computation(6, 4)[0]
    seeds = 5 if quick else 25
    hits = 0
    t0 = time.perf_counter()
    for seed in range(seeds):
        faulty = make_trace(racy, 4, seed=seed, drop=0.9)
        v = StreamingLCVerifier.check_trace(faulty)
        if check:
            assert (v is None) == trace_admits_lc(faulty.partial_observer())
        if v is not None:
            hits += 1
    localize_seconds = time.perf_counter() - t0
    if check:
        assert hits > 0, "drop=0.9 campaign produced no violations"

    return {
        "events": comp.num_nodes,
        "stream_seconds": round(stream_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "localize_seconds": round(localize_seconds, 6),
        "faults_flagged": hits,
        "fault_seeds": seeds,
    }
