"""Streaming vs batch verification (extension).

The batch LC checker needs the whole trace; the streaming verifier
(THEORY.md §1's blocks maintained incrementally) works event by event
and *localizes* the first violating event.  This bench measures both on
long executions and checks the localization property: the verdicts
always agree, and on faulty traces the stream truncated before the
reported event is still consistent.
"""

from repro.lang import fib_computation, racy_counter_computation
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import StreamingLCVerifier, trace_admits_lc


def make_trace(comp, procs, seed, drop=0.0):
    sched = work_stealing_schedule(comp, procs, rng=seed)
    mem = BackerMemory(
        drop_reconcile_probability=drop, drop_flush_probability=drop, rng=seed
    )
    return execute(sched, mem)


def test_streaming_on_long_trace(benchmark):
    comp = fib_computation(13)[0]  # 1505 nodes
    trace = make_trace(comp, 8, seed=1)
    violation = benchmark(StreamingLCVerifier.check_trace, trace)
    assert violation is None
    print()
    print(f"fib(13): {comp.num_nodes} events streamed, no violation")


def test_batch_on_long_trace(benchmark):
    comp = fib_computation(13)[0]
    trace = make_trace(comp, 8, seed=1)
    po = trace.partial_observer()
    ok = benchmark(trace_admits_lc, po)
    assert ok


def test_fault_localization(benchmark):
    comp = racy_counter_computation(6, 4)[0]

    def localize():
        hits = []
        for seed in range(25):
            trace = make_trace(comp, 4, seed=seed, drop=0.9)
            v = StreamingLCVerifier.check_trace(trace)
            batch_ok = trace_admits_lc(trace.partial_observer())
            assert (v is None) == batch_ok
            if v is not None:
                hits.append(v.node)
        return hits

    hits = benchmark.pedantic(localize, rounds=1)
    print()
    print(
        f"{len(hits)}/25 faulty executions flagged; first-violation nodes: "
        f"{sorted(set(hits))}"
    )
    assert hits
