"""Lint throughput: the multi-rule analysis engine over a program corpus.

``repro lint`` runs every registered rule (race pass, FastTrack
cross-check, deadlock analyzer, portability pass) per target; this
benchmark drives :func:`repro.analysis.run_analysis` over a generated
corpus mixing clean fork/join programs, racy counters at growing task
counts, lock-mediated counters, and ABBA deadlock fixtures, and reports
**findings per second** — the number every rule-addition PR gets gated
on.

The corpus is deliberately findings-heavy (racy counters dominate): an
engine whose per-finding overhead regresses shows up here even when its
per-node costs stay flat.  Quick mode trims sizes for CI smoke; full
mode refreshes ``BENCH_lint_throughput.json`` at the repository root.
"""

import json
import time
from pathlib import Path

from repro._caching import sweep_caching
from repro.analysis import AnalysisContext, all_rules, run_analysis
from repro.lang import (
    deadlock_computation,
    fib_computation,
    locked_counter_computation,
    racy_counter_computation,
    store_buffer_computation,
    tree_sum_computation,
)

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_lint_throughput.json"
)

CORPUS = [
    ("racy-4", lambda: racy_counter_computation(4, 2)),
    ("racy-8", lambda: racy_counter_computation(8, 3)),
    ("racy-12", lambda: racy_counter_computation(12, 4)),
    ("locked-8", lambda: locked_counter_computation(8, 3)),
    ("deadlock", lambda: deadlock_computation(True)),
    ("deadlock-aligned", lambda: deadlock_computation(False)),
    ("store-buffer", store_buffer_computation),
    ("fib-10", lambda: fib_computation(10)),
    ("tree-sum-32", lambda: tree_sum_computation(32)),
]

QUICK_CORPUS = CORPUS[:2] + CORPUS[3:7]


def _contexts(corpus):
    out = []
    for name, factory in corpus:
        comp, info = factory()
        out.append(
            AnalysisContext(
                comp,
                target=name,
                sp=info.sp,
                lock_sections=info.lock_sections,
                node_paths=info.node_paths,
                names=info.names,
            )
        )
    return out


def _sweep(contexts):
    reports = []
    t0 = time.perf_counter()
    for ctx in contexts:
        ctx.resolved_engine = None
        reports.append(run_analysis(ctx))
    return time.perf_counter() - t0, reports


def _check(reports):
    by_target = {r.target: r for r in reports}
    racy = by_target.get("racy-4") or by_target.get("racy-8")
    assert racy is not None and not racy.clean, "racy corpus must fail lint"
    assert any(
        f.kind == "data-race" for f in racy.findings
    ), "racy corpus must carry data-race findings"
    if "deadlock" in by_target:
        assert any(
            f.rule == "DL001" and f.severity == "error"
            for f in by_target["deadlock"].findings
        ), "inverted ABBA fixture must trip DL001"
    if "deadlock-aligned" in by_target:
        assert by_target["deadlock-aligned"].clean
    if "fib-10" in by_target:
        assert by_target["fib-10"].clean
    rule_ids = {r.id for r in all_rules()}
    for rep in reports:
        assert set(rep.rules_run) <= rule_ids


def test_lint_throughput(benchmark):
    with sweep_caching(False):
        contexts = _contexts(QUICK_CORPUS)
        seconds, reports = _sweep(contexts)
        _check(reports)
        benchmark.pedantic(
            lambda: _sweep(contexts), rounds=3, iterations=1
        )
    findings = sum(len(r.findings) for r in reports)
    assert findings > 0
    assert seconds < 30.0


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Times one cold sweep (context construction excluded — unfolding is
    the programs' cost, not the engine's) plus ``repeats`` warm sweeps,
    and reports the best warm findings/s.
    """
    from repro.obs.ledger import env_metadata, git_sha

    corpus = QUICK_CORPUS if quick else CORPUS
    repeats = 1 if quick else 3
    with sweep_caching(False):
        contexts = _contexts(corpus)
        cold_s, reports = _sweep(contexts)
        warm_s = min(_sweep(contexts)[0] for _ in range(repeats))
        if check:
            _check(reports)

    findings = sum(len(r.findings) for r in reports)
    nodes = sum(r.num_nodes for r in reports)
    metrics = {
        "targets": len(reports),
        "nodes_total": nodes,
        "findings_total": findings,
        "rules": len(all_rules()),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "findings_per_second": round(findings / warm_s, 2),
        "nodes_per_second": round(nodes / warm_s, 2),
    }
    if quick:
        return metrics

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "lint-throughput",
                "git_sha": git_sha(),
                "env": env_metadata(),
                "metrics": metrics,
                "targets": [
                    {
                        "target": r.target,
                        "nodes": r.num_nodes,
                        "engine": r.engine,
                        "findings": len(r.findings),
                        "errors": len(r.errors),
                        "clean": r.clean,
                    }
                    for r in reports
                ],
            },
            indent=2,
        )
        + "\n"
    )
    return metrics
