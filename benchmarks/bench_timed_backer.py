"""Timed BACKER curves — the [BFJ+96b] experiments' shape, LC-verified.

Section 7 of the paper: "the algorithmic analysis of [BFJ+96a] and the
experimental results from [BFJ+96b] apply to location consistency with
no change."  This bench regenerates the *shape* of those experiments on
the event-driven simulator: execution time ``T_P`` as a function of the
processor count and the cache-miss service time ``m``, with every run's
trace verified location consistent post mortem.

The reproduced shapes:

* ``m = 0`` (communication free): near-linear speedup up to the dag's
  parallelism — the greedy/work-stealing regime of the Cilk bounds.
* ``m > 0``: a compute-bound → communication-bound crossover.  For a
  fine-grained workload (fib's unit-cost nodes) large ``m`` makes
  multi-processor runs *slower* than serial — precisely why [BFJ+96b]
  evaluate BACKER on coarse-grained applications and why protocol
  traffic terms (``m·C·T∞``) appear in the [BFJ+96a] bounds.
* ``T_1`` is independent of ``m`` (a lone processor never communicates).

Registered in ``registry.py`` as ``timed-backer`` via :func:`run`; the
pytest parametrizations below remain runnable directly with
``pytest benchmarks/bench_timed_backer.py``.
"""

import pytest

from repro.dag.metrics import parallelism, span, work
from repro.lang import fib_computation, stencil_computation
from repro.runtime import simulate_timed
from repro.verify import trace_admits_lc

WORKLOADS = {
    "fib(10)": fib_computation(10)[0],
    "stencil-8x4": stencil_computation(8, 4)[0],
}

PROCS = (1, 2, 4, 8)
MISS_COSTS = (0, 2, 8)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_timed_curves(benchmark, name):
    comp = WORKLOADS[name]

    def sweep():
        table = {}
        for m in MISS_COSTS:
            row = []
            for p in PROCS:
                res = simulate_timed(comp, p, miss_cost=m, rng=p)
                assert trace_admits_lc(res.partial_observer())
                row.append(res.makespan)
            table[m] = row
        return table

    table = benchmark.pedantic(sweep, rounds=1)
    t1, tinf = work(comp.dag), span(comp.dag)
    print()
    print(
        f"{name}: T1={t1} Tinf={tinf} parallelism={parallelism(comp.dag):.1f}"
    )
    print(f"{'m':>4} " + "".join(f"{f'T_{p}':>9}" for p in PROCS))
    for m, row in table.items():
        print(f"{m:>4} " + "".join(f"{v:>9.0f}" for v in row))

    # Shape assertions.
    # (1) m = 0: real speedup and the span law.
    free = table[0]
    assert free[0] == t1
    assert free[-1] < free[0] / 2  # at least 2x on 8 processors
    assert all(v >= tinf for v in free)
    # (2) T_1 is m-independent.
    for m in MISS_COSTS:
        assert table[m][0] == t1
    # (3) m monotonicity at every P.
    for i_p in range(len(PROCS)):
        col = [table[m][i_p] for m in MISS_COSTS]
        assert col == sorted(col)


def test_communication_bound_crossover(benchmark):
    """At high miss cost the fine-grained workload loses its speedup —
    the crossover that motivated coarse-grained evaluation in [BFJ+96b]."""
    comp = WORKLOADS["fib(10)"]

    def crossover():
        cheap = simulate_timed(comp, 8, miss_cost=0, rng=8).makespan
        expensive = simulate_timed(comp, 8, miss_cost=16, rng=8).makespan
        serial = simulate_timed(comp, 1, miss_cost=16, rng=1).makespan
        return cheap, expensive, serial

    cheap, expensive, serial = benchmark.pedantic(crossover, rounds=1)
    print()
    print(
        f"fib(10) on 8 procs: T(m=0)={cheap:.0f}, T(m=16)={expensive:.0f}, "
        f"serial T1={serial:.0f}"
    )
    assert cheap < serial  # free communication: parallelism wins
    assert expensive > serial  # costly communication: serial wins


def test_timed_protocol_race(benchmark):
    """BACKER vs the eager MSI directory with *time-priced* transfers.

    The untimed protocol comparison counts messages; here the same race
    is run through the event-driven simulator so each transfer costs
    wall-clock time.  Under true sharing the lazy protocol's smaller
    message count translates into a faster execution."""
    from repro.lang import racy_counter_computation
    from repro.runtime import DirectoryMemory

    comp = racy_counter_computation(4, 3)[0]

    def race():
        rows = []
        for m in (2, 8):
            backer = simulate_timed(comp, 4, miss_cost=m, rng=1).makespan
            directory = simulate_timed(
                comp, 4, memory=DirectoryMemory(), miss_cost=m, rng=1
            ).makespan
            rows.append((m, backer, directory))
        return rows

    rows = benchmark.pedantic(race, rounds=1)
    print()
    print(f"{'m':>4} {'backer T_4':>11} {'directory T_4':>14}")
    for m, b, d in rows:
        print(f"{m:>4} {b:>11.0f} {d:>14.0f}")
        assert b <= d, "lazy LC must win the timed race under contention"


def run(check: bool = True, quick: bool = False) -> dict:
    """Unified-runner entrypoint (``repro bench``, see registry.py).

    Regenerates the [BFJ+96b]-shaped curves on the event-driven
    simulator — makespan versus processor count and miss cost — with
    every run's trace verified location consistent, and measures the
    communication-bound crossover at the widest machine.
    """
    import time

    comp = fib_computation(8 if quick else 10)[0]
    procs_list = (1, 2, 4) if quick else PROCS
    miss_costs = (0, 8) if quick else MISS_COSTS
    t1, tinf = work(comp.dag), span(comp.dag)

    t0 = time.perf_counter()
    table = {}
    for m in miss_costs:
        row = []
        for p in procs_list:
            res = simulate_timed(comp, p, miss_cost=m, rng=p)
            if check:
                assert trace_admits_lc(res.partial_observer())
            row.append(res.makespan)
        table[m] = row
    widest = procs_list[-1]
    crossover_m = 16
    cheap = simulate_timed(comp, widest, miss_cost=0, rng=widest).makespan
    expensive = simulate_timed(
        comp, widest, miss_cost=crossover_m, rng=widest
    ).makespan
    serial = simulate_timed(comp, 1, miss_cost=crossover_m, rng=1).makespan
    sweep_seconds = time.perf_counter() - t0

    if check:
        free = table[0]
        assert free[0] == t1
        assert all(v >= tinf for v in free)
        for m in miss_costs:
            assert table[m][0] == t1, "T_1 must be miss-cost independent"
        for i_p in range(len(procs_list)):
            col = [table[m][i_p] for m in miss_costs]
            assert col == sorted(col), "makespan must grow with miss cost"
        assert cheap < serial, "free communication: parallelism wins"
        assert expensive > serial, "costly communication: serial wins"

    return {
        "nodes": comp.num_nodes,
        "work": t1,
        "span": tinf,
        "widest_procs": widest,
        "t_free_widest": table[0][-1],
        "t_costly_widest": table[miss_costs[-1]][-1],
        "crossover_cheap": cheap,
        "crossover_expensive": expensive,
        "crossover_serial": serial,
        "sweep_seconds": round(sweep_seconds, 6),
    }
