"""BACKER maintains location consistency (§7 / Luchangco 1997).

The empirical backbone of the paper's story: the algorithm actually used
by Cilk maintains LC — the model Theorem 23 identifies with NN*.  We
execute fork/join workloads under randomized work stealing on 1–8
simulated processors through the BACKER protocol and verify every trace
post mortem with the polynomial LC checker; we also confirm that

* the store-buffer litmus exhibits LC-but-not-SC outcomes (the SC ⊊ LC
  gap on "hardware" rather than on paper), and
* breaking the protocol (fault injection) produces traces the verifier
  rejects — i.e. the checker has power, not just soundness.

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_backer_lc.py``.
"""

import pytest

from repro.lang import (
    fib_computation,
    matmul_computation,
    racy_counter_computation,
    store_buffer_computation,
)
from repro.runtime import BackerMemory, execute, work_stealing_schedule
from repro.verify import trace_admits_lc, trace_admits_sc

WORKLOADS = {
    "fib(8)": fib_computation(8)[0],
    "matmul-3x3": matmul_computation(3)[0],
    "racy-counter": racy_counter_computation(4, 3)[0],
}


@pytest.mark.parametrize("procs", [1, 2, 4, 8])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backer_lc_verified(benchmark, name, procs):
    comp = WORKLOADS[name]

    def run_and_verify():
        sched = work_stealing_schedule(comp, procs, rng=procs)
        trace = execute(sched, BackerMemory())
        return trace_admits_lc(trace.partial_observer())

    ok = benchmark(run_and_verify)
    assert ok, f"{name} on {procs} procs must be LC under faithful BACKER"


def test_store_buffer_lc_not_sc(benchmark):
    comp = store_buffer_computation()[0]

    def run():
        lc = sc = 0
        runs = 10
        for seed in range(runs):
            sched = work_stealing_schedule(comp, 2, rng=seed)
            trace = execute(sched, BackerMemory())
            po = trace.partial_observer()
            lc += trace_admits_lc(po)
            sc += trace_admits_sc(po) is not None
        return lc, sc, runs

    lc, sc, runs = benchmark(run)
    print()
    print(f"store buffer: {lc}/{runs} LC (expect all), {sc}/{runs} SC (expect few)")
    assert lc == runs
    assert sc < runs


def test_faulty_backer_detected(benchmark):
    comp = WORKLOADS["racy-counter"]

    def run():
        caught = runs = 0
        for seed in range(20):
            runs += 1
            sched = work_stealing_schedule(comp, 4, rng=seed)
            mem = BackerMemory(
                drop_reconcile_probability=0.9,
                drop_flush_probability=0.9,
                rng=seed,
            )
            trace = execute(sched, mem)
            caught += not trace_admits_lc(trace.partial_observer())
        return caught, runs

    caught, runs = benchmark.pedantic(run, rounds=1)
    print()
    print(f"faulty protocol: {caught}/{runs} executions rejected by the verifier")
    assert caught > runs // 3
