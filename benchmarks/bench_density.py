"""Quantitative lattice: admission counts per model (extension).

Figure 1 says which models include which; this bench measures by *how
much*, counting the observer functions each model admits over an entire
bounded universe.  The counts must order exactly as the lattice does —
a full quantitative re-verification of every inclusion — and the
fractions show the price of strength (SC admits a small fraction of the
behaviours WW allows).

Legacy pytest-benchmark suite: intentionally *not* registered in
``registry.py`` (no ``run(check, quick)`` entrypoint), so ``repro
bench`` and the perf ledger skip it; run it directly with
``pytest benchmarks/bench_density.py``.
"""

from repro.analysis.density import measure_density, render_density
from repro.models import LC, NN, NW, SC, WN, WW, Universe

MODELS = [SC, LC, NN, NW, WN, WW]


def test_density_table(benchmark):
    universe = Universe(max_nodes=3, locations=("x",))
    report = benchmark.pedantic(
        measure_density, args=(MODELS, universe), rounds=1
    )
    print()
    print(render_density(report))

    counts = report.admitted
    # The lattice, quantitatively.
    assert counts["SC"] <= counts["LC"] <= counts["NN"]
    assert counts["NN"] <= counts["NW"] <= counts["WW"]
    assert counts["NN"] <= counts["WN"] <= counts["WW"]
    # Single location: SC = LC exactly (see tests/test_properties.py).
    assert counts["SC"] == counts["LC"]
    # Every model admits at least one observer per computation
    # (completeness), so admitted ≥ number of computations.
    assert counts["SC"] >= report.total_computations
    # And the weakest model is strictly more permissive than the
    # strongest at this size (the lattice is non-degenerate).
    assert counts["WW"] > counts["SC"]


def test_density_gap_shape(benchmark):
    universe = Universe(max_nodes=3, locations=("x",), include_nop=False)

    def run():
        return measure_density(MODELS, universe)

    report = benchmark.pedantic(run, rounds=1)
    comp, counts = report.widest_gap
    print()
    print(render_density(report))
    # The widest gap appears on a 3-node computation with concurrency
    # (serial computations admit the same counts in every model).
    assert comp.num_nodes == 3
    assert counts["WW"] > counts["SC"]
