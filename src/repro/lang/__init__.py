"""Cilk-style language frontend: programs → computations.

The paper assumes computations are "given a priori" by the way a program
unfolds; this subpackage provides the unfolding.  :mod:`repro.lang.cilk`
is the spawn/sync DSL; :mod:`repro.lang.programs` are canonical parallel
workloads (fib, matmul, scan, stencil, tree-sum, racy counter).
"""

from repro.lang.bsp import BspInfo, BspProgram, bsp_exchange_computation
from repro.lang.cilk import CilkContext, UnfoldInfo, unfold
from repro.lang.processor_centric import (
    LITMUS_TESTS,
    LitmusTest,
    from_processor_streams,
    litmus_outcome_allowed,
)
from repro.lang.programs import (
    deadlock_computation,
    fib_computation,
    locked_counter_computation,
    iriw_computation,
    matmul_computation,
    racy_counter_computation,
    scan_computation,
    stencil_computation,
    store_buffer_computation,
    tree_sum_computation,
)

__all__ = [
    "CilkContext",
    "UnfoldInfo",
    "unfold",
    "fib_computation",
    "matmul_computation",
    "scan_computation",
    "stencil_computation",
    "tree_sum_computation",
    "racy_counter_computation",
    "locked_counter_computation",
    "deadlock_computation",
    "store_buffer_computation",
    "iriw_computation",
    "from_processor_streams",
    "LitmusTest",
    "LITMUS_TESTS",
    "litmus_outcome_allowed",
    "BspProgram",
    "BspInfo",
    "bsp_exchange_computation",
]
