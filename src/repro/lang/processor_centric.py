"""The processor-centric view, as a special case of computations.

The paper's opening contrast: traditional models are *processor-centric*
— semantics are given for sequential instruction streams running on
processors — whereas computation-centric models work on the dependency
dag.  Processor-centric programs embed into the framework as a special
dag shape: one chain per processor, no cross-chain edges (plus optional
explicit synchronization edges).  This module builds those computations,
which lets the library run and classify the classical *litmus tests* of
the memory-model literature.

Example (the store-buffer / Dekker litmus)::

    comp, streams = from_processor_streams([
        [W("x"), R("y")],
        [W("y"), R("x")],
    ])

``streams[p][i]`` gives the node id of processor ``p``'s ``i``-th
instruction, for addressing outcomes.

:data:`LITMUS_TESTS` collects the standard shapes (SB, MP, LB, IRIW,
CoRR) together with their *interesting outcome* — the observer-function
fragment whose allowedness distinguishes models.  The litmus benchmark
builds the table of which models allow which outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.computation import Computation
from repro.core.ops import Op, R, W, Location
from repro.dag.digraph import Dag
from repro.runtime.trace import PartialObserver

__all__ = [
    "from_processor_streams",
    "LitmusTest",
    "LITMUS_TESTS",
    "litmus_outcome_allowed",
]


def from_processor_streams(
    streams: Sequence[Sequence[Op]],
    sync_edges: Sequence[tuple[tuple[int, int], tuple[int, int]]] = (),
) -> tuple[Computation, list[list[int]]]:
    """Build a computation from per-processor instruction streams.

    Each stream becomes a chain (program order); streams are mutually
    concurrent except for explicit ``sync_edges``, given as
    ``((p, i), (q, j))`` meaning instruction ``i`` of processor ``p``
    precedes instruction ``j`` of processor ``q``.

    Returns the computation and the node-id table ``ids[p][i]``.
    """
    ops: list[Op] = []
    ids: list[list[int]] = []
    edges: list[tuple[int, int]] = []
    for stream in streams:
        chain: list[int] = []
        for op in stream:
            node = len(ops)
            ops.append(op)
            if chain:
                edges.append((chain[-1], node))
            chain.append(node)
        ids.append(chain)
    for (p, i), (q, j) in sync_edges:
        edges.append((ids[p][i], ids[q][j]))
    return Computation(Dag(len(ops), edges), ops), ids


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus shape with its interesting outcome.

    ``streams`` are the per-processor instruction lists; ``outcome``
    constrains selected reads, given as ``{(p, i): value}`` where the
    value is either ``None`` (the read misses every write, i.e. sees the
    initial ⊥) or ``(q, j)`` naming the write it observes.
    ``sync_edges`` adds cross-processor dependencies (the
    computation-centric rendering of fences/synchronization: edges).
    """

    name: str
    description: str
    streams: tuple[tuple[Op, ...], ...]
    outcome: Mapping[tuple[int, int], "tuple[int, int] | None"]
    sync_edges: tuple[tuple[tuple[int, int], tuple[int, int]], ...] = ()

    def build(self) -> tuple[Computation, PartialObserver]:
        """Materialize the computation and the outcome's constraints."""
        comp, ids = from_processor_streams(self.streams, self.sync_edges)
        constraints: dict[Location, dict[int, int | None]] = {}
        for (p, i), target in self.outcome.items():
            node = ids[p][i]
            op = comp.op(node)
            assert op.is_read, "outcomes constrain reads"
            value = None if target is None else ids[target[0]][target[1]]
            constraints.setdefault(op.loc, {})[node] = value
        return comp, PartialObserver(comp, constraints)


def litmus_outcome_allowed(test: LitmusTest, model_name: str) -> bool:
    """Whether the test's outcome is allowed by a model.

    ``model_name`` ∈ {"SC", "LC", "NN", "NW", "WN", "WW", "CC"}.  SC and
    LC use the exact trace checkers; the dag models and CC use bounded
    completion search (litmus computations are tiny).
    """
    from repro.models import CC, NN, NW, WN, WW
    from repro.verify import find_completion, trace_admits_lc, trace_admits_sc

    comp, partial = test.build()
    if model_name == "SC":
        return trace_admits_sc(partial) is not None
    if model_name == "LC":
        return trace_admits_lc(partial)
    model = {"NN": NN, "NW": NW, "WN": WN, "WW": WW, "CC": CC}[model_name]
    return find_completion(model, partial) is not None


LITMUS_TESTS: tuple[LitmusTest, ...] = (
    LitmusTest(
        name="SB",
        description="store buffering (Dekker): both reads miss the other write",
        streams=((W("x"), R("y")), (W("y"), R("x"))),
        outcome={(0, 1): None, (1, 1): None},
    ),
    LitmusTest(
        name="MP",
        description="message passing: consumer sees the flag but stale data",
        streams=((W("d"), W("f")), (R("f"), R("d"))),
        outcome={(1, 0): (0, 1), (1, 1): None},
    ),
    LitmusTest(
        name="CoRR",
        description="coherence of read-read: two reads of one location "
        "see write then initial value (new-then-old)",
        streams=((W("x"),), (R("x"), R("x"))),
        outcome={(1, 0): (0, 0), (1, 1): None},
    ),
    LitmusTest(
        name="IRIW",
        description="independent reads of independent writes: the two "
        "readers see the two writes in opposite orders",
        streams=(
            (W("x"),),
            (W("y"),),
            (R("x"), R("y")),
            (R("y"), R("x")),
        ),
        outcome={
            (2, 0): (0, 0),
            (2, 1): None,
            (3, 0): (1, 0),
            (3, 1): None,
        },
    ),
    LitmusTest(
        name="LB",
        description="load buffering: each read observes the write that "
        "the *other* processor issues afterwards",
        streams=((R("x"), W("y")), (R("y"), W("x"))),
        outcome={(0, 0): (1, 1), (1, 0): (0, 1)},
    ),
    LitmusTest(
        name="WRC",
        description="write-to-read causality: the middle processor saw "
        "the write and then wrote the flag, yet the reader sees the flag "
        "but not the original write",
        streams=(
            (W("x"),),
            (R("x"), W("f")),
            (R("f"), R("x")),
        ),
        outcome={(1, 0): (0, 0), (2, 0): (1, 1), (2, 1): None},
    ),
    LitmusTest(
        name="SB+sync",
        description="store buffering with synchronization edges from each "
        "write to the other processor's read — the weak outcome is now "
        "a stale read past a dag-preceding write, which even coherence "
        "forbids (synchronization = edges, the paper's central move)",
        streams=((W("x"), R("y")), (W("y"), R("x"))),
        outcome={(0, 1): None, (1, 1): None},
        sync_edges=(((0, 0), (1, 1)), ((1, 0), (0, 1))),
    ),
)
"""The classical litmus suite, phrased computation-centrically."""
