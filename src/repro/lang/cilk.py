"""A Cilk-style spawn/sync frontend that unfolds programs into computations.

The paper's motivating setting is Cilk [BJK+95]: a multithreaded program
whose fork/join constructs induce the dependency dag.  This module lets
you write such programs as ordinary Python functions against a
:class:`CilkContext`; running the program *once* records its unfolding —
exactly the paper's notion that "a computation models the way a program
unfolds in a particular execution".

Semantics recorded (matching Cilk's strand model):

* Operations within a frame are serially dependent.
* ``spawn(f, *args)`` starts a child frame whose first operation depends
  on the parent's current position; the parent continues concurrently.
* ``sync()`` makes the parent's next operation depend on the completion
  of every child spawned since the previous sync.
* Returning from a function performs an implicit ``sync`` (as in Cilk).

The resulting dag is always series-parallel (verified by the test suite
via :func:`repro.dag.sp.is_series_parallel`).

Example::

    def prog(ctx: CilkContext) -> None:
        ctx.write("x")
        ctx.spawn(child)
        ctx.read("x")
        ctx.sync()
        ctx.read("x")

    comp, info = unfold(prog)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.builder import ComputationBuilder
from repro.core.computation import Computation
from repro.core.ops import N, Op, R, W, Location
from repro.dag.sp import SPNode

__all__ = ["CilkContext", "UnfoldInfo", "unfold"]


@dataclass
class _Frame:
    """Bookkeeping for one function activation.

    ``current_deps`` is the set of node ids the frame's next operation
    must depend on (more than one immediately after a sync); ``pending``
    collects the final dependency sets of unsynced children.  ``events``
    is the frame's serial history — ``("op", node_id)``,
    ``("spawn", child_frame)`` and ``("sync",)`` entries — from which
    the series-parallel expression of the unfolding is rebuilt for the
    SP-bags race analyzer.  ``path`` names the frame for diagnostics
    ("main", "main/s3", ...); ``op_count`` numbers its ops.
    """

    current_deps: tuple[int, ...]
    pending: list[tuple[int, ...]] = field(default_factory=list)
    events: list[tuple] = field(default_factory=list)
    path: str = "main"
    op_count: int = 0
    spawn_seq: int = 0


@dataclass
class UnfoldInfo:
    """Metadata produced by :func:`unfold` alongside the computation.

    Attributes
    ----------
    names:
        Mapping from node name to node id for nodes given explicit names.
    spawn_count / sync_count:
        Structural statistics of the unfolding (handy for tests and for
        sizing benchmark workloads).
    lock_sections:
        For each lock name, the list of ``(acquire_node, release_node)``
        pairs emitted by :meth:`CilkContext.lock`, in unfold order.  The
        plain computation does *not* order sections on the same lock —
        that is a memory-model-level choice; see :mod:`repro.locks`.
    sp:
        The series-parallel expression of the unfolding: an
        :class:`~repro.dag.sp.SPNode` whose leaf payloads are node ids
        (``None`` for an empty program).  Its precedence relation equals
        the computation dag's (the dag may carry extra transitive
        edges), which is what lets the near-linear SP-bags analyzer
        (:mod:`repro.verify.spbags`) skip the transitive closure.
    node_paths:
        Per node, a human-readable source path ``frame:opindex`` where
        frames are named ``main`` / ``main/s<k>`` by spawn position —
        the "location" field of lint diagnostics.
    """

    names: dict[str, int]
    spawn_count: int
    sync_count: int
    lock_sections: dict[object, list[tuple[int, int]]] = field(
        default_factory=dict
    )
    sp: SPNode | None = None
    node_paths: tuple[str, ...] = ()


class CilkContext:
    """The handle a program uses to emit operations and structure.

    One context exists per frame; :meth:`spawn` creates the child's
    context internally.  Contexts must not be used after their frame
    returns (attempting to is a programming error, unchecked for speed).
    """

    def __init__(self, recorder: "_Recorder", frame: _Frame) -> None:
        self._rec = recorder
        self._frame = frame

    # -- operations ----------------------------------------------------

    def read(self, loc: Location, name: str | None = None) -> int:
        """Emit a read of ``loc``; returns the node id."""
        return self._op(R(loc), name)

    def write(self, loc: Location, name: str | None = None) -> int:
        """Emit a write to ``loc``; returns the node id."""
        return self._op(W(loc), name)

    def nop(self, name: str | None = None) -> int:
        """Emit a no-op (a synchronization-visible step); returns the id."""
        return self._op(N, name)

    def _op(self, op: Op, name: str | None) -> int:
        frame = self._frame
        node = self._rec.builder.add(op, name=name, after=frame.current_deps)
        frame.current_deps = (node.node_id,)
        frame.events.append(("op", node.node_id))
        self._rec.node_paths[node.node_id] = f"{frame.path}:{frame.op_count}"
        frame.op_count += 1
        return node.node_id

    # -- structure -----------------------------------------------------

    def spawn(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Run ``fn(child_ctx, *args, **kwargs)`` as a spawned child.

        The child is recorded as concurrent with the parent's
        continuation; its effects are joined at the next :meth:`sync`
        (or the parent's implicit sync on return).
        """
        parent = self._frame
        child_frame = _Frame(
            current_deps=parent.current_deps,
            path=f"{parent.path}/s{parent.spawn_seq}",
        )
        parent.spawn_seq += 1
        child_ctx = CilkContext(self._rec, child_frame)
        self._rec.spawn_count += 1
        parent.events.append(("spawn", child_frame))
        fn(child_ctx, *args, **kwargs)
        # Implicit sync at child return: its final deps include any
        # children it did not sync itself.
        final = _join(child_frame.current_deps, child_frame.pending)
        parent.pending.append(final)

    def sync(self) -> None:
        """Join all children spawned since the last sync."""
        self._rec.sync_count += 1
        self._frame.events.append(("sync",))
        self._frame.current_deps = _join(
            self._frame.current_deps, self._frame.pending
        )
        self._frame.pending.clear()

    def lock(self, name: object) -> "_LockSection":
        """A critical section on lock ``name`` (use as a context manager).

        Emits an *acquire* node on entry and a *release* node on exit
        (both no-ops from the memory's point of view — locks are
        synchronization, not data) and records the pair in
        :attr:`UnfoldInfo.lock_sections`.  Mutual exclusion between
        sections on the same lock is **not** encoded in the dag; it is a
        per-execution serialization choice, handled by
        :mod:`repro.locks`::

            with ctx.lock("L"):
                ctx.read("ctr")
                ctx.write("ctr")
        """
        return _LockSection(self, name)


class _LockSection:
    """Context manager emitting acquire/release nodes for one section."""

    def __init__(self, ctx: CilkContext, name: object) -> None:
        self._ctx = ctx
        self._name = name
        self._acquire: int | None = None

    def __enter__(self) -> "_LockSection":
        self._acquire = self._ctx.nop()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        release = self._ctx.nop()
        assert self._acquire is not None
        self._ctx._rec.lock_sections.setdefault(self._name, []).append(
            (self._acquire, release)
        )


def _join(
    deps: tuple[int, ...], pending: list[tuple[int, ...]]
) -> tuple[int, ...]:
    """Union of a dependency set with all pending child sets, deduplicated.

    Drops dominated dependencies is *not* attempted — the builder's dag
    construction deduplicates edges, and transitive edges are harmless
    (models are defined on the precedence relation).
    """
    out = set(deps)
    for p in pending:
        out.update(p)
    return tuple(sorted(out))


class _Recorder:
    """Shared mutable state of one unfolding."""

    def __init__(self) -> None:
        self.builder = ComputationBuilder()
        self.spawn_count = 0
        self.sync_count = 0
        self.lock_sections: dict[object, list[tuple[int, int]]] = {}
        self.node_paths: dict[int, str] = {}


def _compose(kind: str, head: SPNode, rest: SPNode | None) -> SPNode:
    """Prepend ``head`` to ``rest`` under ``kind``, flattening.

    Series and parallel composition are associative, so same-kind
    children are spliced in directly.  This keeps the expression tree
    shallow — a serial chain of *k* ops is one series node with *k*
    children rather than a depth-*k* right spine, which matters because
    unfolded programs emit thousands of serial ops and every consumer
    walks the tree iteratively but proportionally to its depth.
    """
    if rest is None:
        return head
    parts: list[SPNode] = []
    for e in (head, rest):
        if e.kind == kind:
            parts.extend(e.children)
        else:
            parts.append(e)
    return SPNode(kind, tuple(parts))


def _frame_sp(
    frame: _Frame, child_sp: dict[int, SPNode | None]
) -> SPNode | None:
    """The SP expression of one frame, given its children's expressions.

    The frame's event list is split into *segments* at syncs (with an
    implicit final sync, as in Cilk); segments compose in series.
    Within a segment the fold runs right to left: an op precedes the
    segment's remainder in series, a spawned child runs in parallel
    with it.  Empty children and empty segments contribute nothing.
    """
    segments: list[list[tuple]] = [[]]
    for ev in frame.events:
        if ev[0] == "sync":
            segments.append([])
        else:
            segments[-1].append(ev)

    seg_sps: list[SPNode] = []
    for seg in segments:
        acc: SPNode | None = None
        for ev in reversed(seg):
            if ev[0] == "op":
                acc = _compose("series", SPNode("leaf", (), ev[1]), acc)
            else:  # spawn
                csp = child_sp[id(ev[1])]
                if csp is not None:
                    acc = _compose("parallel", csp, acc)
        if acc is not None:
            seg_sps.append(acc)

    out: SPNode | None = None
    for s in reversed(seg_sps):
        out = _compose("series", s, out)
    return out


def _build_sp(root: _Frame) -> SPNode | None:
    """Assemble the whole unfolding's SP expression, bottom-up.

    Iterative: frames are listed in DFS preorder (parents before their
    spawned children) and folded in reverse, so every child's
    expression exists before its parent needs it — no recursion, no
    depth limit.
    """
    frames: list[_Frame] = []
    stack = [root]
    while stack:
        f = stack.pop()
        frames.append(f)
        for ev in f.events:
            if ev[0] == "spawn":
                stack.append(ev[1])
    child_sp: dict[int, SPNode | None] = {}
    for f in reversed(frames):
        child_sp[id(f)] = _frame_sp(f, child_sp)
    return child_sp[id(root)]


def unfold(
    program: Callable[..., Any], *args: Any, **kwargs: Any
) -> tuple[Computation, UnfoldInfo]:
    """Run ``program(root_ctx, *args, **kwargs)`` and record its computation.

    The program is executed exactly once, serially; the recorded dag
    captures the concurrency structure the spawn/sync calls declare.
    """
    rec = _Recorder()
    root = _Frame(current_deps=())
    ctx = CilkContext(rec, root)
    program(ctx, *args, **kwargs)
    # Implicit sync at program end (so the unfolding is well-formed even
    # if the program forgot to sync; the dag is unchanged by this unless
    # further ops were to follow, but we keep the counter honest).
    comp = rec.builder.build()
    info = UnfoldInfo(
        names=rec.builder.names(),
        spawn_count=rec.spawn_count,
        sync_count=rec.sync_count,
        lock_sections={k: list(v) for k, v in rec.lock_sections.items()},
        sp=_build_sp(root),
        node_paths=tuple(
            rec.node_paths[i] for i in range(comp.dag.num_nodes)
        ),
    )
    return comp, info
