"""Canonical Cilk-style programs unfolded into computations.

These are the workload generators used by the examples, the BACKER
benchmarks, and the scaling benchmarks.  Each returns a computation whose
memory operations are *meaningful* (reads genuinely depend on writes the
way the algorithm's dataflow dictates), so that post-mortem verification
exercises non-trivial observer structure.

* :func:`fib_computation` — the classic Cilk fibonacci: each call writes
  its result location; parents read children's results after sync.
* :func:`matmul_computation` — blocked matrix multiply ``C = A·B``:
  block tasks read row/column blocks and accumulate into output blocks.
* :func:`scan_computation` — two-phase parallel prefix sum (upsweep /
  downsweep over a binary tree).
* :func:`stencil_computation` — iterated 1-d 3-point stencil with
  double buffering (reads neighbours from the previous generation).
* :func:`tree_sum_computation` — fork/join reduction over an array.
* :func:`racy_counter_computation` — deliberately racy concurrent
  increments of one location (used to show weak-model behaviours:
  LC-consistent but not SC-explainable traces can arise).
"""

from __future__ import annotations

from repro.core.computation import Computation
from repro.lang.cilk import CilkContext, UnfoldInfo, unfold

__all__ = [
    "deadlock_computation",
    "fib_computation",
    "locked_counter_computation",
    "matmul_computation",
    "scan_computation",
    "stencil_computation",
    "tree_sum_computation",
    "racy_counter_computation",
    "store_buffer_computation",
    "iriw_computation",
]


def fib_computation(n: int) -> tuple[Computation, UnfoldInfo]:
    """Cilk fib: ``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)``.

    Each activation owns a result location ``("fib", path)``; after the
    sync it reads both children's results and writes its own.
    """

    def fib(ctx: CilkContext, k: int, path: str) -> None:
        my_loc = ("fib", path)
        if k < 2:
            ctx.write(my_loc)
            return
        ctx.spawn(fib, k - 1, path + "l")
        ctx.spawn(fib, k - 2, path + "r")
        ctx.sync()
        ctx.read(("fib", path + "l"))
        ctx.read(("fib", path + "r"))
        ctx.write(my_loc)

    return unfold(fib, n, "")


def matmul_computation(
    blocks: int = 2,
) -> tuple[Computation, UnfoldInfo]:
    """Blocked matrix multiply: ``C[i,j] += A[i,k] · B[k,j]``.

    ``blocks × blocks`` block grid; the ``(i, j)`` task is spawned for
    every output block, and serially accumulates over ``k`` (reading
    ``A[i,k]``, ``B[k,j]``, reading-then-writing ``C[i,j]``).  Input
    blocks are written up front in parallel.
    """

    def init(ctx: CilkContext, name: tuple) -> None:
        ctx.write(name)

    def block_task(ctx: CilkContext, i: int, j: int) -> None:
        for k in range(blocks):
            ctx.read(("A", i, k))
            ctx.read(("B", k, j))
            ctx.read(("C", i, j))
            ctx.write(("C", i, j))

    def main(ctx: CilkContext) -> None:
        for i in range(blocks):
            for k in range(blocks):
                ctx.spawn(init, ("A", i, k))
                ctx.spawn(init, ("B", i, k))
                ctx.spawn(init, ("C", i, k))
        ctx.sync()
        for i in range(blocks):
            for j in range(blocks):
                ctx.spawn(block_task, i, j)
        ctx.sync()
        for i in range(blocks):
            for j in range(blocks):
                ctx.read(("C", i, j))

    return unfold(main)


def scan_computation(n: int = 8) -> tuple[Computation, UnfoldInfo]:
    """Two-phase parallel prefix sum over ``n`` leaves (n a power of two).

    Upsweep writes partial sums up a binary tree; downsweep pushes
    prefixes back down.  Locations are ``("s", level, index)``.
    """
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    import math

    levels = int(math.log2(n))

    def upsweep(ctx: CilkContext, level: int, idx: int) -> None:
        if level == 0:
            ctx.write(("s", 0, idx))
            return
        ctx.spawn(upsweep, level - 1, 2 * idx)
        ctx.spawn(upsweep, level - 1, 2 * idx + 1)
        ctx.sync()
        ctx.read(("s", level - 1, 2 * idx))
        ctx.read(("s", level - 1, 2 * idx + 1))
        ctx.write(("s", level, idx))

    def downsweep(ctx: CilkContext, level: int, idx: int) -> None:
        if level == 0:
            ctx.read(("p", 0, idx))
            return
        # Children's prefixes derive from mine and the left child's sum.
        ctx.read(("p", level, idx))
        ctx.read(("s", level - 1, 2 * idx))
        ctx.write(("p", level - 1, 2 * idx))
        ctx.write(("p", level - 1, 2 * idx + 1))
        ctx.spawn(downsweep, level - 1, 2 * idx)
        ctx.spawn(downsweep, level - 1, 2 * idx + 1)
        ctx.sync()

    def main(ctx: CilkContext) -> None:
        ctx.spawn(upsweep, levels, 0)
        ctx.sync()
        ctx.write(("p", levels, 0))
        ctx.spawn(downsweep, levels, 0)
        ctx.sync()

    return unfold(main)


def stencil_computation(
    width: int = 6, steps: int = 3
) -> tuple[Computation, UnfoldInfo]:
    """Iterated 1-d 3-point stencil with double buffering.

    Generation ``t`` cell ``i`` reads cells ``i-1, i, i+1`` of generation
    ``t-1`` (clamped at the borders) and writes ``("g", t, i)``.  Each
    generation's cells are spawned in parallel; generations are separated
    by syncs (a layered, BSP-like dag).
    """

    def cell(ctx: CilkContext, t: int, i: int) -> None:
        for j in (i - 1, i, i + 1):
            if 0 <= j < width:
                ctx.read(("g", t - 1, j))
        ctx.write(("g", t, i))

    def seed(ctx: CilkContext, i: int) -> None:
        ctx.write(("g", 0, i))

    def main(ctx: CilkContext) -> None:
        for i in range(width):
            ctx.spawn(seed, i)
        ctx.sync()
        for t in range(1, steps + 1):
            for i in range(width):
                ctx.spawn(cell, t, i)
            ctx.sync()

    return unfold(main)


def tree_sum_computation(n_leaves: int = 8) -> tuple[Computation, UnfoldInfo]:
    """Fork/join reduction: leaves write inputs, internal nodes combine."""

    def node(ctx: CilkContext, lo: int, hi: int) -> None:
        loc = ("t", lo, hi)
        if hi - lo == 1:
            ctx.write(loc)
            return
        mid = (lo + hi) // 2
        ctx.spawn(node, lo, mid)
        ctx.spawn(node, mid, hi)
        ctx.sync()
        ctx.read(("t", lo, mid))
        ctx.read(("t", mid, hi))
        ctx.write(loc)

    def main(ctx: CilkContext) -> None:
        ctx.spawn(node, 0, n_leaves)
        ctx.sync()
        ctx.read(("t", 0, n_leaves))

    return unfold(main)


def racy_counter_computation(
    n_tasks: int = 4, increments: int = 2
) -> tuple[Computation, UnfoldInfo]:
    """Concurrent unsynchronized increments of one counter location.

    Each task performs ``increments`` read-modify-write pairs on ``"ctr"``
    with no cross-task ordering — the archetypal determinacy race.  Under
    a weak memory (BACKER) different tasks may observe different write
    serializations *prefixes*; the trace remains LC but is typically not
    SC-explainable at higher processor counts.
    """

    def task(ctx: CilkContext) -> None:
        for _ in range(increments):
            ctx.read("ctr")
            ctx.write("ctr")

    def main(ctx: CilkContext) -> None:
        ctx.write("ctr")  # initialize
        for _ in range(n_tasks):
            ctx.spawn(task)
        ctx.sync()
        ctx.read("ctr")

    return unfold(main)


def locked_counter_computation(
    n_tasks: int = 4, increments: int = 2, lock: str | None = "L"
) -> tuple[Computation, UnfoldInfo]:
    """The racy counter with every increment inside a critical section.

    Shape-identical to :func:`racy_counter_computation` but each task's
    read-modify-write pairs run under ``with ctx.lock(lock)``, so the
    bare dag's determinacy races are all *lock-mediated*: any
    serialization of the sections (:mod:`repro.locks`) orders them, and
    the lockset analyzer (:mod:`repro.verify.spbags`) classifies the
    program as data-race free.  Pass ``lock=None`` to drop the locks
    and recover the racy variant — handy for lint fixtures needing a
    clean/racy pair of equal shape.
    """

    def task(ctx: CilkContext) -> None:
        for _ in range(increments):
            if lock is None:
                ctx.read("ctr")
                ctx.write("ctr")
            else:
                with ctx.lock(lock):
                    ctx.read("ctr")
                    ctx.write("ctr")

    def main(ctx: CilkContext) -> None:
        ctx.write("ctr")  # initialize
        for _ in range(n_tasks):
            ctx.spawn(task)
        ctx.sync()
        ctx.read("ctr")

    return unfold(main)


def deadlock_computation(
    inverted: bool = True,
) -> tuple[Computation, UnfoldInfo]:
    """The classic ABBA lock-order inversion as a fork/join program.

    Two concurrent workers update a shared counter under *two* nested
    locks.  With ``inverted=True`` (default) one worker acquires
    ``A`` then ``B`` while the other acquires ``B`` then ``A`` — the
    counter races are all lock-mediated (both sides hold both locks),
    but the acquisition orders form a cycle between dag-incomparable
    sections: the textbook potential deadlock the ``DL001`` lint rule
    exists to catch.  ``inverted=False`` makes both workers acquire
    ``A`` then ``B``, the cycle disappears, and the program is clean —
    a matched negative fixture of identical shape.
    """

    def worker(ctx: CilkContext, first: str, second: str) -> None:
        with ctx.lock(first):
            with ctx.lock(second):
                ctx.read("ctr")
                ctx.write("ctr")

    def main(ctx: CilkContext) -> None:
        ctx.write("ctr")  # initialize
        ctx.spawn(worker, "A", "B")
        ctx.spawn(worker, *(("B", "A") if inverted else ("A", "B")))
        ctx.sync()
        ctx.read("ctr")

    return unfold(main)


def store_buffer_computation() -> tuple[Computation, UnfoldInfo]:
    """The store-buffer (Dekker) litmus shape as a fork/join program.

    Two concurrent tasks: one writes ``x`` then reads ``y``; the other
    writes ``y`` then reads ``x``.  Under BACKER with the tasks on
    different processors, both reads can miss the other task's write
    (each write sits dirty in its own cache) — an execution that is
    location consistent but **not** sequentially consistent, realizing
    :func:`repro.paperfigures.lc_not_sc_pair` on real simulated hardware.
    """

    def left(ctx: CilkContext) -> None:
        ctx.write("x")
        ctx.read("y")

    def right(ctx: CilkContext) -> None:
        ctx.write("y")
        ctx.read("x")

    def main(ctx: CilkContext) -> None:
        ctx.spawn(left)
        ctx.spawn(right)
        ctx.sync()

    return unfold(main)


def iriw_computation() -> tuple[Computation, UnfoldInfo]:
    """Independent-reads-of-independent-writes litmus shape.

    Two writer tasks (to ``x`` and ``y``) and two reader tasks reading
    both locations in opposite orders.  Weak memories can let the
    readers disagree on the order of the two writes; with spontaneous
    reconciliation enabled in :class:`~repro.runtime.backer.BackerMemory`
    such outcomes become reachable while remaining location consistent.
    """

    def writer(ctx: CilkContext, loc: str) -> None:
        ctx.write(loc)

    def reader(ctx: CilkContext, first: str, second: str) -> None:
        ctx.read(first)
        ctx.read(second)

    def main(ctx: CilkContext) -> None:
        ctx.spawn(writer, "x")
        ctx.spawn(writer, "y")
        ctx.spawn(reader, "x", "y")
        ctx.spawn(reader, "y", "x")
        ctx.sync()

    return unfold(main)
