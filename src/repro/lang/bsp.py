"""A BSP (bulk-synchronous parallel) frontend.

The computation-centric theory is not tied to fork/join: any program
structure that induces a dependency dag fits Definition 1.  This module
provides the other classical structure — *supersteps separated by
barriers*: within a superstep, per-worker instruction chains run
mutually concurrently; a barrier orders everything in one superstep
before everything in the next.

BSP computations are layered dags (never series-parallel beyond trivial
cases once two workers exist in adjacent supersteps), which exercises
the models and the runtime on a genuinely different dag family than the
Cilk frontend — e.g. BACKER's flush-at-cross-edge discipline degenerates
to flush-at-barrier here, the textbook DSM behaviour.

Example::

    prog = BspProgram(num_workers=3)
    with prog.superstep() as step:
        step.on(0).write("a")
        step.on(1).write("b")
    with prog.superstep() as step:
        step.on(2).read("a")
        step.on(2).read("b")
    comp, info = prog.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.computation import Computation
from repro.core.ops import N, Op, R, W, Location
from repro.dag.digraph import Dag
from repro.errors import ReproError

__all__ = ["BspProgram", "BspInfo", "bsp_exchange_computation"]


@dataclass
class BspInfo:
    """Metadata about a built BSP computation."""

    num_workers: int
    num_supersteps: int
    #: node ids per (superstep, worker), in emission order.
    chains: dict[tuple[int, int], list[int]] = field(default_factory=dict)


class _WorkerHandle:
    """Emission handle for one worker within one superstep."""

    def __init__(self, program: "BspProgram", step: int, worker: int) -> None:
        self._prog = program
        self._step = step
        self._worker = worker

    def _emit(self, op: Op) -> int:
        return self._prog._emit(self._step, self._worker, op)

    def read(self, loc: Location) -> int:
        """Emit a read of ``loc`` on this worker; returns the node id."""
        return self._emit(R(loc))

    def write(self, loc: Location) -> int:
        """Emit a write to ``loc`` on this worker; returns the node id."""
        return self._emit(W(loc))

    def nop(self) -> int:
        """Emit a no-op on this worker; returns the node id."""
        return self._emit(N)


class _Superstep:
    """Context manager scoping one superstep."""

    def __init__(self, program: "BspProgram", index: int) -> None:
        self._prog = program
        self.index = index

    def on(self, worker: int) -> _WorkerHandle:
        """The emission handle for ``worker`` in this superstep."""
        if not (0 <= worker < self._prog.num_workers):
            raise ReproError(f"no such worker {worker}")
        return _WorkerHandle(self._prog, self.index, worker)

    def __enter__(self) -> "_Superstep":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._prog._close_superstep(self.index)


class BspProgram:
    """Builder for barrier-synchronized computations.

    The barrier between supersteps ``s`` and ``s+1`` is realized by
    edges from the *last* node of every worker's step-``s`` chain to the
    *first* node of every worker's step-``s+1`` chain (workers silent in
    a step contribute nothing; a fully silent step is dropped).  This is
    the transitive reduction of "everything before the barrier precedes
    everything after" restricted to the emitted nodes.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ReproError("need at least one worker")
        self.num_workers = num_workers
        self._ops: list[Op] = []
        self._edges: list[tuple[int, int]] = []
        self._info = BspInfo(num_workers=num_workers, num_supersteps=0)
        self._current: int | None = None
        #: last nodes of the previous (non-empty) superstep's chains.
        self._frontier: list[int] = []
        self._step_first: dict[int, int] = {}

    def superstep(self) -> _Superstep:
        """Open the next superstep (use as a context manager)."""
        if self._current is not None:
            raise ReproError("previous superstep still open")
        index = self._info.num_supersteps
        self._current = index
        return _Superstep(self, index)

    def _emit(self, step: int, worker: int, op: Op) -> int:
        if step != self._current:
            raise ReproError("emission outside the open superstep")
        node = len(self._ops)
        self._ops.append(op)
        chain = self._info.chains.setdefault((step, worker), [])
        if chain:
            self._edges.append((chain[-1], node))
        else:
            # First node of this worker's chain: barrier edges from the
            # previous superstep's frontier.
            for prev in self._frontier:
                self._edges.append((prev, node))
        chain.append(node)
        return node

    def _close_superstep(self, index: int) -> None:
        assert self._current == index
        self._current = None
        lasts = [
            chain[-1]
            for (step, _w), chain in self._info.chains.items()
            if step == index and chain
        ]
        if lasts:
            self._frontier = sorted(lasts)
            self._info.num_supersteps = index + 1
        # A silent superstep leaves the frontier (and count) unchanged.

    def build(self) -> tuple[Computation, BspInfo]:
        """Freeze into a computation (open supersteps are an error)."""
        if self._current is not None:
            raise ReproError("cannot build with an open superstep")
        comp = Computation(Dag(len(self._ops), self._edges), self._ops)
        return comp, self._info


def bsp_exchange_computation(
    workers: int = 4, rounds: int = 3
) -> tuple[Computation, BspInfo]:
    """A neighbour-exchange benchmark workload.

    Each round, every worker writes its own cell then (after the
    barrier) reads both neighbours' cells from the previous round —
    the communication pattern of iterative stencil/graph codes on BSP
    machines.
    """
    prog = BspProgram(workers)
    for r in range(rounds):
        with prog.superstep() as step:
            for w in range(workers):
                h = step.on(w)
                if r > 0:
                    h.read(("cell", (w - 1) % workers, r - 1))
                    h.read(("cell", (w + 1) % workers, r - 1))
                h.write(("cell", w, r))
    return prog.build()
