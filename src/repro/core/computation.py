"""Computations (Definition 1 of the paper).

A *computation* ``C = (G, op)`` is a finite dag together with a labelling
of each node by an abstract instruction.  A computation is not a program:
it is the way a program *unfolded* in one particular execution.  Nodes are
instruction instances; edges are the logical dependencies the program
imposed (e.g. Cilk's spawn/sync edges), independent of which processor
executed what.

:class:`Computation` is immutable.  Nodes are the integers
``0 .. num_nodes-1``; the op labelling is a tuple indexed by node id.

The structural notions of Section 2 are all provided as methods:

* prefixes (:meth:`Computation.is_prefix_of`, :meth:`Computation.restrict`,
  :meth:`Computation.prefix_masks`),
* relaxations (:meth:`Computation.relax`, :meth:`Computation.relaxations`),
* extensions (:meth:`Computation.extensions_by`,
  :meth:`Computation.is_extension_of`), and
* augmented computations (:meth:`Computation.augment`, Definition 11).

Prefix/extension relations are defined with respect to the *identity*
embedding of node ids: ``C`` is a prefix of ``C'`` iff the nodes of ``C``
are ``0 .. k-1``, those ids carry the same ops in ``C'``, and the edges of
``C'`` among them are exactly the edges of ``C``.  This loses no
generality for the theory (models here are invariant under relabelling —
see :func:`repro.models.universe` for how universes exploit it) and keeps
observer-function restriction trivial.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro import _caching
from repro.core.ops import N, Op, R, W, Location, locations_of
from repro.dag.digraph import Dag, bit_indices
from repro.errors import InvalidComputationError

__all__ = ["Computation", "EMPTY_COMPUTATION", "relabel_computation"]


class Computation:
    """An immutable computation ``(G, op)``.

    Parameters
    ----------
    dag:
        The dependency dag.
    ops:
        A sequence of :class:`~repro.core.ops.Op`, one per node, indexed by
        node id.

    Raises
    ------
    InvalidComputationError
        If ``len(ops) != dag.num_nodes``.
    """

    __slots__ = ("_dag", "_ops", "_locs", "_writers", "_hash")

    def __init__(self, dag: Dag, ops: Sequence[Op]) -> None:
        ops = tuple(ops)
        if len(ops) != dag.num_nodes:
            raise InvalidComputationError(
                f"op labelling has {len(ops)} entries for {dag.num_nodes} nodes"
            )
        for i, op in enumerate(ops):
            if not isinstance(op, Op):
                raise InvalidComputationError(f"ops[{i}] is not an Op: {op!r}")
        self._dag = dag
        self._ops = ops
        self._locs: tuple[Location, ...] = tuple(locations_of(ops))
        self._writers: dict[Location, int] | None = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def dag(self) -> Dag:
        """The dependency dag ``G_C``."""
        return self._dag

    @property
    def ops(self) -> tuple[Op, ...]:
        """The op labelling, indexed by node id."""
        return self._ops

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V_C|``."""
        return self._dag.num_nodes

    def nodes(self) -> range:
        """The node set ``V_C``."""
        return self._dag.nodes()

    def op(self, u: int) -> Op:
        """The instruction at node ``u``."""
        return self._ops[u]

    @property
    def locations(self) -> tuple[Location, ...]:
        """Sorted tuple of locations referenced by this computation."""
        return self._locs

    @property
    def is_empty(self) -> bool:
        """True iff this is the empty computation ``ε``."""
        return self.num_nodes == 0

    # ------------------------------------------------------------------
    # Location structure
    # ------------------------------------------------------------------

    def _writer_masks(self) -> dict[Location, int]:
        if self._writers is None:
            masks: dict[Location, int] = {}
            for u, op in enumerate(self._ops):
                if op.is_write:
                    masks[op.loc] = masks.get(op.loc, 0) | (1 << u)
            self._writers = masks
        return self._writers

    def writers_mask(self, loc: Location) -> int:
        """Bitset of nodes writing ``loc``."""
        return self._writer_masks().get(loc, 0)

    def writers(self, loc: Location) -> list[int]:
        """Sorted list of nodes writing ``loc``."""
        return list(bit_indices(self.writers_mask(loc)))

    def readers(self, loc: Location) -> list[int]:
        """Sorted list of nodes reading ``loc``."""
        return [u for u, op in enumerate(self._ops) if op.reads(loc)]

    def accessors(self, loc: Location) -> list[int]:
        """Sorted list of nodes reading or writing ``loc``."""
        return [u for u, op in enumerate(self._ops) if op.loc == loc]

    # ------------------------------------------------------------------
    # Precedence (delegated to the dag)
    # ------------------------------------------------------------------

    def precedes(self, u: int, v: int) -> bool:
        """Strict precedence ``u ≺ v`` in ``G_C``."""
        return self._dag.precedes(u, v)

    def precedes_eq(self, u: int, v: int) -> bool:
        """Reflexive precedence ``u ⪯ v``."""
        return self._dag.precedes_eq(u, v)

    # ------------------------------------------------------------------
    # Structural operations (Section 2 and Definition 11)
    # ------------------------------------------------------------------

    def augment(self, o: Op) -> "Computation":
        """The augmented computation ``aug_o(C)`` (Definition 11).

        Adds a fresh node — ``final(C)``, with id ``num_nodes`` — that is a
        successor of every existing node, labelled ``o``.

        Memoized: constructibility sweeps augment the same computation by
        the same op once per model and once per observer candidate, and
        the result (like all computations) is immutable, so sharing one
        instance is safe and skips rebuilding the dag and its closure.
        """
        if not _caching.ENABLED:
            return Computation(self._dag.add_final_node(), self._ops + (o,))
        return _augmented(self, o)

    @property
    def final_node(self) -> int:
        """The id the final node *would* get under :meth:`augment`.

        Note this node does not exist in ``self``; it exists in
        ``self.augment(o)`` for any ``o``.
        """
        return self.num_nodes

    def relax(self, remove_edges: Iterable[tuple[int, int]]) -> "Computation":
        """A relaxation of this computation (same nodes/ops, fewer edges)."""
        return Computation(self._dag.with_edges_removed(remove_edges), self._ops)

    def relaxations(self) -> Iterator["Computation"]:
        """All ``2^|E|`` relaxations, including the computation itself.

        Exponential in the edge count; intended for small computations in
        monotonicity tests.
        """
        edges = sorted(self._dag.edges)
        for k in range(len(edges) + 1):
            for drop in combinations(edges, k):
                yield self.relax(drop)

    def restrict(self, mask: int) -> tuple["Computation", list[int]]:
        """Subcomputation induced by the node bitset ``mask``.

        Returns the subcomputation (nodes renumbered in increasing order of
        old id) and the list mapping new ids to old ids.  If ``mask`` is a
        prefix (downset) of the dag, the result is a prefix computation in
        the paper's sense (modulo renumbering).
        """
        keep = list(bit_indices(mask))
        sub, old_ids = self._dag.induced_subgraph(keep)
        return Computation(sub, tuple(self._ops[u] for u in keep)), old_ids

    def prefix_masks(self) -> Iterator[int]:
        """All downset node-bitsets (prefixes) of this computation's dag."""
        from repro.dag.prefixes import all_prefix_masks

        return all_prefix_masks(self._dag)

    def is_prefix_of(self, other: "Computation") -> bool:
        """True iff ``self`` is a prefix of ``other`` under identity ids.

        Requires: nodes ``0..k-1`` of ``other`` carry the same ops as
        ``self``; the edges of ``other`` among them equal the edges of
        ``self``; and no node ``>= k`` has an edge into a node ``< k``
        (otherwise ``0..k-1`` would not be predecessor-closed).
        """
        k = self.num_nodes
        if k > other.num_nodes:
            return False
        if other._ops[:k] != self._ops:
            return False
        inner = {(u, v) for (u, v) in other._dag.edges if u < k and v < k}
        if inner != set(self._dag.edges):
            return False
        # Predecessor closure: no edge from a new node into the prefix.
        for (u, v) in other._dag.edges:
            if v < k <= u:
                return False
        return True

    def is_extension_of(self, other: "Computation", o: Op | None = None) -> bool:
        """True iff ``self`` extends ``other`` by one node (optionally ``o``).

        An extension of ``C`` by ``o`` adds a single node labelled ``o``
        such that ``C`` remains a prefix.
        """
        if self.num_nodes != other.num_nodes + 1:
            return False
        if not other.is_prefix_of(self):
            return False
        return o is None or self._ops[-1] == o

    def extensions_by(self, o: Op) -> Iterator["Computation"]:
        """All extensions of this computation by one node labelled ``o``.

        The new node (id ``num_nodes``) may have any subset of the existing
        nodes as direct predecessors and must have no successors, so there
        are ``2^num_nodes`` extensions.  The augmented computation
        (Definition 11) is the one with *all* nodes as predecessors; every
        other extension is a relaxation of it, which is what makes
        Theorem 12 work for monotonic models.
        """
        n = self.num_nodes
        base_edges = list(self._dag.edges)
        for mask in range(1 << n):
            edges = base_edges + [(u, n) for u in bit_indices(mask)]
            yield Computation(Dag(n + 1, edges), self._ops + (o,))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "Computation":
        """The empty computation ``ε``."""
        return EMPTY_COMPUTATION

    @staticmethod
    def from_edges(
        ops: Sequence[Op], edges: Iterable[tuple[int, int]]
    ) -> "Computation":
        """Build a computation from an op list and an edge list."""
        return Computation(Dag(len(ops), edges), ops)

    @staticmethod
    def serial(ops: Sequence[Op]) -> "Computation":
        """A totally ordered (single-processor) computation."""
        n = len(ops)
        return Computation(Dag(n, [(i, i + 1) for i in range(n - 1)]), ops)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Computation):
            return NotImplemented
        return self._ops == other._ops and self._dag == other._dag

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._ops, self._dag))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Computation(n={self.num_nodes}, ops={list(self._ops)}, "
            f"edges={sorted(self._dag.edges)})"
        )


@lru_cache(maxsize=1 << 16)
def _augmented(comp: Computation, o: Op) -> Computation:
    """Shared, memoized ``aug_o(C)`` instances (see :meth:`Computation.augment`)."""
    return Computation(comp._dag.add_final_node(), comp._ops + (o,))


EMPTY_COMPUTATION = Computation(Dag(0), ())
"""The empty computation ``ε`` (module-level singleton)."""

# Re-export the op helpers for convenience: `from repro.core.computation
# import R, W, N` reads naturally at call sites building computations.
_ = (R, W, N)


def relabel_computation(
    comp: Computation, perm: Sequence[int]
) -> Computation:
    """The isomorphic computation with node ``u`` renamed ``perm[u]``.

    ``perm`` must be a permutation of the node ids.  Every memory model
    in this library is invariant under such relabellings (the
    iso-invariance property tests quantify this), which is what licenses
    enumerating only order-respecting dags in
    :mod:`repro.models.universe`.
    """
    n = comp.num_nodes
    if sorted(perm) != list(range(n)):
        raise InvalidComputationError("relabel: not a permutation")
    ops: list[Op] = [comp.op(0)] * n if n else []
    for u in range(n):
        ops[perm[u]] = comp.op(u)
    edges = [(perm[u], perm[v]) for (u, v) in comp.dag.edges]
    return Computation(Dag(n, edges), ops)
