"""Core definitions of the computation-centric theory (paper, Section 2).

Exports the vocabulary of the paper: operations (``R``/``W``/``N``),
computations (Definition 1), observer functions (Definition 2), and
last-writer functions (Definition 13).
"""

from repro.core.builder import ComputationBuilder, NodeHandle
from repro.core.computation import (
    EMPTY_COMPUTATION,
    Computation,
    relabel_computation,
)
from repro.core.last_writer import (
    last_writer_function,
    last_writer_row,
    satisfies_last_writer_conditions,
)
from repro.core.observer import (
    ObserverFunction,
    relabel_observer,
    candidate_values,
    count_observer_functions,
)
from repro.core.ops import N, Op, R, W, Location, locations_of

__all__ = [
    "Op",
    "R",
    "W",
    "N",
    "Location",
    "locations_of",
    "Computation",
    "EMPTY_COMPUTATION",
    "relabel_computation",
    "relabel_observer",
    "ComputationBuilder",
    "NodeHandle",
    "ObserverFunction",
    "candidate_values",
    "count_observer_functions",
    "last_writer_function",
    "last_writer_row",
    "satisfies_last_writer_conditions",
]
