"""Observer functions (Definition 2 of the paper).

An observer function ``Φ`` assigns, to every location ``l`` and every node
``u`` of a computation, the *write node whose value u observes at l* — or
``⊥`` when no write has been observed.  Reads receive the value written by
the node they observe; nodes that do not read still carry a "viewpoint" on
memory, which is what lets a no-op act as synchronization.

Definition 2 imposes three conditions:

2.1  every observed node writes the observed location;
2.2  a node never (strictly) precedes the node it observes;
2.3  every write observes itself.

Representation
--------------
``⊥`` is represented by ``None``.  The mapping is stored per location as a
tuple indexed by node id.  Locations absent from the mapping implicitly
map every node to ``⊥`` — this models the paper's (possibly infinite) set
``L`` of locations without materializing it.  ``Φ(l, ⊥) = ⊥`` always
(forced by condition 2.2), so the ``⊥`` row is not stored.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.computation import Computation
from repro.core.ops import Location
from repro.errors import InvalidObserverError

__all__ = [
    "ObserverFunction",
    "candidate_values",
    "count_observer_functions",
    "relabel_observer",
]

BOT = None
"""Alias documenting that ``None`` plays the role of the paper's ``⊥``."""


def candidate_values(
    comp: Computation, loc: Location, u: int
) -> list[int | None]:
    """All values ``Φ(loc, u)`` may legally take (Definition 2, pointwise).

    For a write to ``loc`` the only candidate is ``u`` itself (2.3);
    otherwise the candidates are ``⊥`` and every write ``w`` to ``loc``
    that ``u`` does not strictly precede (2.1 + 2.2).
    """
    op = comp.op(u)
    if op.writes(loc):
        return [u]
    out: list[int | None] = [None]
    for w in comp.writers(loc):
        if not comp.precedes(u, w):
            out.append(w)
    return out


class ObserverFunction:
    """An observer function for a fixed computation.

    Parameters
    ----------
    comp:
        The computation this observer function belongs to.
    mapping:
        ``{location: values}`` where ``values[u]`` is the observed write
        node for node ``u`` (``None`` for ``⊥``).  Locations that every
        node observes as ``⊥`` may be omitted.
    validate:
        When true (default), check Definition 2 and raise
        :class:`~repro.errors.InvalidObserverError` on violation.
    """

    __slots__ = ("_comp", "_map", "_hash", "_locs")

    def __init__(
        self,
        comp: Computation,
        mapping: Mapping[Location, Sequence[int | None]],
        validate: bool = True,
    ) -> None:
        self._comp = comp
        norm: dict[Location, tuple[int | None, ...]] = {}
        n = comp.num_nodes
        for loc, values in mapping.items():
            row = tuple(values)
            if len(row) != n:
                raise InvalidObserverError(
                    f"row for location {loc!r} has {len(row)} entries, expected {n}"
                )
            # Drop all-⊥ rows: they are the implicit default.
            if any(v is not None for v in row):
                norm[loc] = row
        self._map = norm
        self._hash: int | None = None
        self._locs: tuple[Location, ...] | None = None
        if validate:
            self._validate()
        # Even when callers skip full validation, writes must observe
        # themselves for *implicit* rows to be legal: a location with a
        # write can never be an all-⊥ row.
        elif any(
            comp.writers_mask(loc) and loc not in norm for loc in comp.locations
        ):
            raise InvalidObserverError(
                "a location with writes cannot have an implicit all-bottom row"
            )

    def _validate(self) -> None:
        comp = self._comp
        for loc in set(self._map) | set(comp.locations):
            row = self._map.get(loc)
            for u in comp.nodes():
                v = None if row is None else row[u]
                op = comp.op(u)
                if op.writes(loc):
                    if v != u:  # condition 2.3
                        raise InvalidObserverError(
                            f"write node {u} must observe itself at {loc!r}, got {v!r}"
                        )
                    continue
                if v is None:
                    continue
                if not (0 <= v < comp.num_nodes):
                    raise InvalidObserverError(
                        f"Φ({loc!r}, {u}) = {v} is not a node"
                    )
                if not comp.op(v).writes(loc):  # condition 2.1
                    raise InvalidObserverError(
                        f"Φ({loc!r}, {u}) = {v} which does not write {loc!r}"
                    )
                if comp.precedes(u, v):  # condition 2.2
                    raise InvalidObserverError(
                        f"node {u} precedes its observed write {v} at {loc!r}"
                    )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def computation(self) -> Computation:
        """The computation this observer function is for."""
        return self._comp

    @property
    def locations(self) -> tuple[Location, ...]:
        """Locations with an explicit (not all-⊥) row, sorted by repr."""
        if self._locs is None:
            self._locs = tuple(sorted(self._map, key=repr))
        return self._locs

    def value(self, loc: Location, u: int | None) -> int | None:
        """``Φ(loc, u)``; ``u = None`` denotes ``⊥`` (and returns ``⊥``)."""
        if u is None:
            return None
        row = self._map.get(loc)
        return None if row is None else row[u]

    def __call__(self, loc: Location, u: int | None) -> int | None:
        return self.value(loc, u)

    def row(self, loc: Location) -> tuple[int | None, ...]:
        """The full tuple ``(Φ(loc, 0), ..., Φ(loc, n-1))``."""
        row = self._map.get(loc)
        if row is None:
            return (None,) * self._comp.num_nodes
        return row

    def fibers(self, loc: Location) -> dict[int | None, int]:
        """Partition of nodes by observed value at ``loc``, as bitsets.

        Returns ``{observed_value: node_bitset}``; the key ``None`` is the
        ``⊥`` fiber (present only if non-empty).  Fibers are the "blocks"
        of the polynomial LC membership algorithm.
        """
        out: dict[int | None, int] = {}
        for u, v in enumerate(self.row(loc)):
            out[v] = out.get(v, 0) | (1 << u)
        return out

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------

    def restrict_to_prefix(self, prefix: Computation) -> "ObserverFunction":
        """Restriction ``Φ|_C`` to an identity-embedded prefix of the
        computation (the prefix's nodes must be ``0 .. k-1``)."""
        if not prefix.is_prefix_of(self._comp):
            raise InvalidObserverError(
                "restrict_to_prefix: argument is not a prefix of the computation"
            )
        k = prefix.num_nodes
        return ObserverFunction(
            prefix,
            {loc: row[:k] for loc, row in self._map.items()},
            validate=False,
        )

    def extends(self, other: "ObserverFunction") -> bool:
        """True iff ``other`` is the restriction of ``self`` to its
        (identity-embedded, prefix) computation: ``self|_C == other``."""
        if not other._comp.is_prefix_of(self._comp):
            return False
        k = other._comp.num_nodes
        locs = set(self._map) | set(other._map)
        return all(self.row(loc)[:k] == other.row(loc) for loc in locs)

    def with_value(
        self, loc: Location, u: int, v: int | None, validate: bool = True
    ) -> "ObserverFunction":
        """A copy with ``Φ(loc, u)`` replaced by ``v``."""
        row = list(self.row(loc))
        row[u] = v
        mapping = dict(self._map)
        mapping[loc] = tuple(row)
        return ObserverFunction(self._comp, mapping, validate=validate)

    def relabel(
        self, new_comp: Computation, old_ids: Sequence[int]
    ) -> "ObserverFunction":
        """Transport this observer function onto a renumbered subcomputation.

        ``old_ids[new]`` gives the node of ``self.computation`` that node
        ``new`` of ``new_comp`` corresponds to.  Values observed outside
        the kept node set become ``⊥`` is **not** allowed — Definition 2
        would silently break — so such values raise.
        """
        index = {old: new for new, old in enumerate(old_ids)}
        mapping: dict[Location, list[int | None]] = {}
        for loc in self._map:
            new_row: list[int | None] = []
            for old in old_ids:
                v = self.value(loc, old)
                if v is None:
                    new_row.append(None)
                elif v in index:
                    new_row.append(index[v])
                else:
                    raise InvalidObserverError(
                        f"relabel: observed node {v} not in kept node set"
                    )
            mapping[loc] = new_row
        return ObserverFunction(new_comp, mapping, validate=False)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    @staticmethod
    def enumerate_all(
        comp: Computation, locations: Iterable[Location] | None = None
    ) -> Iterator["ObserverFunction"]:
        """Yield every valid observer function for ``comp``.

        ``locations`` defaults to the computation's own locations; adding
        extra locations is pointless (their rows are forced to all-⊥).
        The count is the product over (location, node) of the candidate
        counts, so keep computations small.
        """
        locs = tuple(locations) if locations is not None else comp.locations
        if not locs:
            yield ObserverFunction(comp, {}, validate=False)
            return
        per_loc_rows: list[list[tuple[int | None, ...]]] = []
        for loc in locs:
            node_cands = [candidate_values(comp, loc, u) for u in comp.nodes()]
            per_loc_rows.append([tuple(row) for row in product(*node_cands)])
        for rows in product(*per_loc_rows):
            yield ObserverFunction(
                comp, dict(zip(locs, rows)), validate=False
            )

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObserverFunction):
            return NotImplemented
        return self._comp == other._comp and self._map == other._map

    def __hash__(self) -> int:
        if self._hash is None:
            items = tuple(sorted(self._map.items(), key=lambda kv: repr(kv[0])))
            self._hash = hash((self._comp, items))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = {loc: list(row) for loc, row in sorted(self._map.items(), key=lambda kv: repr(kv[0]))}
        return f"ObserverFunction({rows})"


def count_observer_functions(
    comp: Computation, locations: Iterable[Location] | None = None
) -> int:
    """Number of valid observer functions for ``comp`` (without enumerating)."""
    locs = tuple(locations) if locations is not None else comp.locations
    total = 1
    for loc in locs:
        for u in comp.nodes():
            total *= len(candidate_values(comp, loc, u))
    return total


def relabel_observer(
    phi: "ObserverFunction", perm, new_comp
) -> "ObserverFunction":
    """Transport an observer function along a node relabelling.

    ``new_comp`` must be ``relabel_computation(phi.computation, perm)``.
    ``Φ'(l, perm[u]) = perm[Φ(l, u)]`` (with ⊥ fixed).
    """
    n = phi.computation.num_nodes
    mapping = {}
    for loc in phi.locations:
        row: list[int | None] = [None] * n
        old_row = phi.row(loc)
        for u in range(n):
            v = old_row[u]
            row[perm[u]] = None if v is None else perm[v]
        mapping[loc] = tuple(row)
    return ObserverFunction(new_comp, mapping, validate=True)
