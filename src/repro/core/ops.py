"""Memory operations (the instruction set ``O`` of the paper).

Section 2 fixes the instruction set to read-write memories:

    ``O = { R(l) : l ∈ L } ∪ { W(l) : l ∈ L } ∪ { N }``

where ``N`` is any instruction that does not touch memory (a "no-op" from
the memory's point of view — e.g. pure computation or synchronization).

Locations (``L``) may be any hashable values; examples and tests typically
use small integers or short strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Iterable

from repro import _caching

__all__ = ["Op", "R", "W", "N", "Location", "locations_of", "merged_locations"]

Location = Hashable
"""Type alias for memory locations: any hashable value."""


@dataclass(frozen=True)
class Op:
    """An abstract instruction.

    ``kind`` is ``"R"`` (read), ``"W"`` (write) or ``"N"`` (no-op);
    ``loc`` is the accessed location, or ``None`` for a no-op.

    Instances are immutable and hashable, so ops can key dictionaries and
    appear in frozen computations.  Use the module-level helpers
    :func:`R`, :func:`W` and the constant :data:`N` rather than the
    constructor.
    """

    kind: str
    loc: Location | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("R", "W", "N"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == "N" and self.loc is not None:
            raise ValueError("no-op must not carry a location")
        if self.kind in ("R", "W") and self.loc is None:
            raise ValueError(f"{self.kind} op requires a location")

    @property
    def is_read(self) -> bool:
        """True iff this op is a read."""
        return self.kind == "R"

    @property
    def is_write(self) -> bool:
        """True iff this op is a write."""
        return self.kind == "W"

    @property
    def is_nop(self) -> bool:
        """True iff this op does not access memory."""
        return self.kind == "N"

    def reads(self, loc: Location) -> bool:
        """True iff this op is ``R(loc)``."""
        return self.kind == "R" and self.loc == loc

    def writes(self, loc: Location) -> bool:
        """True iff this op is ``W(loc)``."""
        return self.kind == "W" and self.loc == loc

    def __repr__(self) -> str:
        if self.kind == "N":
            return "N"
        return f"{self.kind}({self.loc!r})"


def R(loc: Location) -> Op:
    """The read instruction ``R(loc)``."""
    return Op("R", loc)


def W(loc: Location) -> Op:
    """The write instruction ``W(loc)``."""
    return Op("W", loc)


N = Op("N")
"""The unique no-op instruction."""


def locations_of(ops: Iterable[Op]) -> list[Location]:
    """The sorted list of distinct locations referenced by ``ops``.

    Locations are sorted by ``repr`` so that heterogeneous location types
    still yield a deterministic order (important for reproducible
    enumeration and reporting).
    """
    locs = {op.loc for op in ops if op.loc is not None}
    return sorted(locs, key=repr)


def merged_locations(
    a: tuple[Location, ...], b: tuple[Location, ...]
) -> tuple[Location, ...]:
    """Sorted (by repr) union of two location tuples, memoized.

    Membership predicates merge ``comp.locations`` with ``phi.locations``
    on every query; universes draw both from a handful of distinct
    tuples, so the merge is worth caching across the whole sweep.
    Consults :data:`repro._caching.ENABLED` like the other sweep caches,
    so uncached baselines report zero consultations and long-running
    processes can reset it via ``clear_sweep_caches()``.
    """
    if _caching.ENABLED:
        return _merged_locations_cached(a, b)
    return _merged_locations_impl(a, b)


def _merged_locations_impl(
    a: tuple[Location, ...], b: tuple[Location, ...]
) -> tuple[Location, ...]:
    if a == b:
        return a
    return tuple(sorted(set(a) | set(b), key=repr))


_merged_locations_cached = lru_cache(maxsize=1 << 12)(_merged_locations_impl)
