"""Last-writer functions (Definition 13) and their properties.

Given a topological sort ``T`` of a computation, the last-writer function
``W_T(l, u)`` is the most recent write to ``l`` at or before ``u`` in ``T``
(or ``⊥`` if there is none).  The paper builds both SC (Definition 17) and
LC (Definition 18) out of last-writer functions, and states three facts we
expose as checkable procedures:

* Theorem 14 — ``W_T`` exists and is unique (here: it is *computed*, which
  is an existence proof; uniqueness is checked by
  :func:`satisfies_last_writer_conditions` in tests).
* Theorem 15 — if ``W_T(l, u) ≺_T v ⪯_T u`` then ``W_T(l, v) = W_T(l, u)``
  (the "between" property).
* Theorem 16 — ``W_T`` is an observer function (validated on construction).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro import _caching
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import Location
from repro.dag.toposort import is_topological_sort
from repro.errors import InvalidObserverError

__all__ = [
    "last_writer_function",
    "last_writer_row",
    "satisfies_last_writer_conditions",
]


def last_writer_row(
    comp: Computation, order: Sequence[int], loc: Location
) -> tuple[int | None, ...]:
    """The tuple ``(W_T(loc, u))_u`` for the topological sort ``order``.

    Single left-to-right sweep: maintain the latest write to ``loc`` seen
    so far; a write updates the tracker *before* recording its own value,
    which realizes condition 13.2's reflexivity (a write is its own last
    writer).

    Memoized on ``(comp, order, loc)``: exhaustive sweeps re-derive the
    same rows across observer candidates and model checks, and both
    :class:`~repro.core.computation.Computation` and the order tuple hash
    by value.
    """
    if not _caching.ENABLED:
        return _last_writer_row_impl(comp, tuple(order), loc)
    return _last_writer_row_cached(comp, tuple(order), loc)


def _last_writer_row_impl(
    comp: Computation, order: tuple[int, ...], loc: Location
) -> tuple[int | None, ...]:
    row: list[int | None] = [None] * comp.num_nodes
    last: int | None = None
    for u in order:
        if comp.op(u).writes(loc):
            last = u
        row[u] = last
    return tuple(row)


_last_writer_row_cached = lru_cache(maxsize=1 << 16)(_last_writer_row_impl)


def last_writer_function(
    comp: Computation,
    order: Sequence[int],
    locations: Iterable[Location] | None = None,
    check_order: bool = True,
) -> ObserverFunction:
    """The last-writer function ``W_T`` as an :class:`ObserverFunction`.

    Theorem 16 states ``W_T`` is an observer function; we construct it with
    validation enabled, so any bug here would surface immediately as an
    :class:`~repro.errors.InvalidObserverError`.
    """
    if check_order and not is_topological_sort(comp.dag, order):
        raise InvalidObserverError(
            "last_writer_function: order is not a topological sort"
        )
    locs = tuple(locations) if locations is not None else comp.locations
    mapping = {loc: last_writer_row(comp, order, loc) for loc in locs}
    return ObserverFunction(comp, mapping, validate=True)


def satisfies_last_writer_conditions(
    comp: Computation,
    order: Sequence[int],
    loc: Location,
    row: Sequence[int | None],
) -> bool:
    """Check conditions 13.1–13.3 of Definition 13 directly.

    Used by tests to certify both Theorem 14's uniqueness (any row passing
    these conditions equals :func:`last_writer_row`) and the correctness of
    the sweep implementation.
    """
    pos = {u: i for i, u in enumerate(order)}
    for u in comp.nodes():
        w = row[u]
        if w is not None:
            if not comp.op(w).writes(loc):  # 13.1
                return False
            if pos[w] > pos[u]:  # 13.2 (W_T(l,u) ⪯_T u)
                return False
            lo = pos[w]
        else:
            lo = -1
        # 13.3: no write to loc strictly after W_T(l,u) and at-or-before u.
        for v in comp.nodes():
            if comp.op(v).writes(loc) and lo < pos[v] <= pos[u]:
                return False
    return True
