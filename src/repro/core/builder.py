"""A fluent builder for computations.

Building a :class:`~repro.core.computation.Computation` from raw edge
lists is fine for tiny examples, but examples and tests read better with
named nodes and explicit dependency declarations::

    b = ComputationBuilder()
    a = b.write("x", name="A")
    c = b.read("x", name="C", after=[a])
    comp = b.build()
    comp.node_id("C")   # -> 1 via the returned handle mapping

The builder assigns node ids in creation order, which therefore always
form a topological sort of the result.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.computation import Computation
from repro.core.ops import N, Op, R, W, Location
from repro.dag.digraph import Dag
from repro.errors import InvalidComputationError

__all__ = ["ComputationBuilder", "NodeHandle"]


class NodeHandle:
    """An opaque reference to a node being built.

    Carries the eventual node id and the optional human-readable name.
    Handles compare by identity; the id is stable once created.
    """

    __slots__ = ("node_id", "name")

    def __init__(self, node_id: int, name: str | None) -> None:
        self.node_id = node_id
        self.name = name

    def __index__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name if self.name is not None else f"#{self.node_id}"
        return f"<node {label}>"


class ComputationBuilder:
    """Incrementally construct a computation.

    Nodes are added with :meth:`read`, :meth:`write`, :meth:`nop` (or the
    generic :meth:`add`); dependencies are declared via the ``after``
    argument or :meth:`add_edge`.  :meth:`build` freezes everything into a
    :class:`~repro.core.computation.Computation`.
    """

    def __init__(self) -> None:
        self._ops: list[Op] = []
        self._edges: list[tuple[int, int]] = []
        self._handles: list[NodeHandle] = []
        self._names: dict[str, NodeHandle] = {}

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------

    def add(
        self,
        op: Op,
        name: str | None = None,
        after: Iterable[NodeHandle | int] = (),
    ) -> NodeHandle:
        """Add a node labelled ``op``, depending on each node in ``after``."""
        node_id = len(self._ops)
        handle = NodeHandle(node_id, name)
        if name is not None:
            if name in self._names:
                raise InvalidComputationError(f"duplicate node name {name!r}")
            self._names[name] = handle
        self._ops.append(op)
        self._handles.append(handle)
        for dep in after:
            self.add_edge(dep, handle)
        return handle

    def read(
        self,
        loc: Location,
        name: str | None = None,
        after: Iterable[NodeHandle | int] = (),
    ) -> NodeHandle:
        """Add a read of ``loc``."""
        return self.add(R(loc), name, after)

    def write(
        self,
        loc: Location,
        name: str | None = None,
        after: Iterable[NodeHandle | int] = (),
    ) -> NodeHandle:
        """Add a write to ``loc``."""
        return self.add(W(loc), name, after)

    def nop(
        self,
        name: str | None = None,
        after: Iterable[NodeHandle | int] = (),
    ) -> NodeHandle:
        """Add a no-op (synchronization-only) node."""
        return self.add(N, name, after)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(self, u: NodeHandle | int, v: NodeHandle | int) -> None:
        """Declare that ``u`` must precede ``v``."""
        ui, vi = int(u), int(v)
        if not (0 <= ui < len(self._ops) and 0 <= vi < len(self._ops)):
            raise InvalidComputationError(f"edge ({ui}, {vi}) references unknown node")
        if ui >= vi:
            raise InvalidComputationError(
                "edges must go from an earlier-created node to a later one "
                f"(got {ui} -> {vi}); create nodes in dependency order"
            )
        self._edges.append((ui, vi))

    # ------------------------------------------------------------------
    # Lookup and build
    # ------------------------------------------------------------------

    def __getitem__(self, name: str) -> NodeHandle:
        """Look up a named node."""
        return self._names[name]

    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._ops)

    def build(self) -> Computation:
        """Freeze the builder into an immutable computation."""
        return Computation(Dag(len(self._ops), self._edges), self._ops)

    def name_of(self, node_id: int) -> str | None:
        """The name of a node id, if one was given."""
        return self._handles[node_id].name

    def names(self) -> dict[str, int]:
        """Mapping from node name to node id for all named nodes."""
        return {name: h.node_id for name, h in self._names.items()}
