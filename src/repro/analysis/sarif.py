"""SARIF 2.1.0 export for analysis reports.

SARIF (Static Analysis Results Interchange Format, OASIS) is the
lingua franca CI systems ingest — GitHub code scanning, VS Code SARIF
viewers, etc.  ``repro lint --format sarif`` renders one *run* with the
registered rules as ``tool.driver.rules`` and one *result* per finding:
severity maps onto SARIF ``level``, node paths become logical
locations, file targets physical ones, and the baseline fingerprint is
carried in ``partialFingerprints`` so external tooling can do its own
result matching.  Baseline-suppressed findings are exported with a
``suppressions`` entry rather than dropped — SARIF's way of saying
"known, accepted".

:func:`validate_sarif` is the shape check CI runs over the artifact
(``scripts/obs_smoke.py sarif``): structural 2.1.0 requirements only —
the full JSON schema needs a validator dependency this repo
deliberately does not take.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from repro.analysis.registry import AnalysisReport, Rule

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "sarif_document", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = ("error", "warning", "note", "none")


def _rule_descriptor(rule: "Rule") -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.doc},
        "defaultConfiguration": {"level": rule.severity},
        "properties": {"engines": list(rule.engines)},
    }


def sarif_document(
    reports: Sequence["AnalysisReport"],
    rules: Iterable["Rule"],
    fingerprints: dict[int, str] | None = None,
) -> dict:
    """Render analysis reports as one SARIF 2.1.0 document (one run).

    ``fingerprints`` optionally maps ``id(finding)`` to its baseline
    fingerprint (the CLI computes them anyway for baseline matching;
    passing them here keeps the two in lockstep).
    """
    from repro import __version__

    rule_list = sorted(rules, key=lambda r: r.id)
    index_of = {r.id: i for i, r in enumerate(rule_list)}
    results = []
    for report in reports:
        for f in report.findings:
            result: dict = {
                "ruleId": f.rule,
                "level": f.severity if f.severity in _LEVELS else "none",
                "message": {"text": f.message},
                "locations": [_location(report.target, f)],
            }
            if f.rule in index_of:
                result["ruleIndex"] = index_of[f.rule]
            fp = (fingerprints or {}).get(id(f))
            if fp is not None:
                result["partialFingerprints"] = {"reproLint/v1": fp}
            if f.suppressed:
                result["suppressions"] = [{"kind": "external"}]
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "informationUri": (
                            "https://dl.acm.org/doi/10.1145/277651.277662"
                        ),
                        "rules": [
                            _rule_descriptor(r) for r in rule_list
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def _location(target: str, finding) -> dict:
    loc: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": target}
        }
    }
    logical = [
        {"fullyQualifiedName": p} for p in finding.paths if p
    ]
    if not logical and finding.nodes:
        logical = [
            {"fullyQualifiedName": f"node/{u}"} for u in finding.nodes
        ]
    if logical:
        loc["logicalLocations"] = logical
    return loc


def validate_sarif(doc: object) -> None:
    """Structurally validate a SARIF 2.1.0 document; raise ``ValueError``.

    Checks the invariants consumers rely on: version pin, at least one
    run with a named driver, unique rule ids, every result referencing
    a declared rule with a recognized level, a non-empty message, and
    ``ruleIndex`` (when present) pointing at the right descriptor.
    """

    def fail(msg: str) -> None:
        raise ValueError(f"invalid SARIF: {msg}")

    if not isinstance(doc, dict):
        fail(f"document must be an object, got {type(doc).__name__}")
    if doc.get("version") != SARIF_VERSION:
        fail(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty array")
    for ri, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{ri}] must be an object")
        driver = run.get("tool", {}).get("driver")
        if not isinstance(driver, dict) or not driver.get("name"):
            fail(f"runs[{ri}].tool.driver.name is required")
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            fail(f"runs[{ri}] driver.rules must be an array")
        ids = [r.get("id") for r in rules]
        if len(set(ids)) != len(ids):
            fail(f"runs[{ri}] has duplicate rule ids")
        known = set(ids)
        results = run.get("results")
        if not isinstance(results, list):
            fail(f"runs[{ri}].results must be an array")
        for i, res in enumerate(results):
            where = f"runs[{ri}].results[{i}]"
            if not isinstance(res, dict):
                fail(f"{where} must be an object")
            rid = res.get("ruleId")
            if not rid or rid not in known:
                fail(f"{where}.ruleId {rid!r} not among driver.rules")
            if res.get("level") not in _LEVELS:
                fail(f"{where}.level {res.get('level')!r} invalid")
            text = res.get("message", {}).get("text")
            if not isinstance(text, str) or not text:
                fail(f"{where}.message.text must be a non-empty string")
            if "ruleIndex" in res:
                idx = res["ruleIndex"]
                if (
                    not isinstance(idx, int)
                    or not 0 <= idx < len(ids)
                    or ids[idx] != rid
                ):
                    fail(f"{where}.ruleIndex does not match ruleId")
