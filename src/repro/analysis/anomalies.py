"""The anomaly catalog: minimal behaviours separating each model pair.

Section 7 recounts how "variants of dag consistency were developed to
forbid 'anomalies' ... as they were discovered".  This module automates
the discovery: for every ordered pair of models (A stronger-claimed,
B weaker) it enumerates *all minimal* separating behaviours — pairs in
B \\ A at the smallest node count where any exist — and catalogs them.
The paper's Figures 2–4 reappear as entries of this catalog, alongside
anomalies the paper describes in prose (e.g. WW's stale-⊥ read, the
criticism of WW discussed in [Fri98]).

Minimality here means node count; within a size no reduction is
attempted (edges/ops already enumerate exhaustively).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.models.base import MemoryModel
from repro.models.universe import Universe

__all__ = ["AnomalyCatalog", "catalog_anomalies", "render_catalog"]


@dataclass
class AnomalyCatalog:
    """All minimal separating behaviours for one ordered model pair."""

    stronger: str
    weaker: str
    minimal_size: int | None = None
    witnesses: list[tuple[Computation, ObserverFunction]] = field(
        default_factory=list
    )
    searched_up_to: int = 0

    @property
    def separated(self) -> bool:
        """Whether any separation exists within the searched bound."""
        return self.minimal_size is not None


def catalog_anomalies(
    stronger: MemoryModel,
    weaker: MemoryModel,
    universe: Universe,
    max_witnesses: int = 64,
) -> AnomalyCatalog:
    """Enumerate all minimal pairs in ``weaker`` \\ ``stronger``.

    Scans sizes in increasing order and stops at the first size with
    witnesses, collecting every witness of that size (up to
    ``max_witnesses``).
    """
    catalog = AnomalyCatalog(
        stronger=stronger.name,
        weaker=weaker.name,
        searched_up_to=universe.max_nodes,
    )
    for n in range(universe.max_nodes + 1):
        found = False
        for comp in universe.computations_of_size(n):
            for phi in universe.observers(comp):
                if weaker.contains(comp, phi) and not stronger.contains(
                    comp, phi
                ):
                    found = True
                    if len(catalog.witnesses) < max_witnesses:
                        catalog.witnesses.append((comp, phi))
        if found:
            catalog.minimal_size = n
            break
    return catalog


def render_catalog(catalog: AnomalyCatalog, show: int = 3) -> str:
    """Human-readable catalog summary with the first few witnesses."""
    from repro.analysis.report import render_pair

    lines = [
        f"anomalies in {catalog.weaker} \\ {catalog.stronger} "
        f"(searched n ≤ {catalog.searched_up_to}):"
    ]
    if not catalog.separated:
        lines.append("  none — models coincide on the searched universe")
        return "\n".join(lines)
    lines.append(
        f"  minimal size {catalog.minimal_size} nodes, "
        f"{len(catalog.witnesses)} minimal witnesses"
    )
    for comp, phi in catalog.witnesses[:show]:
        lines.append(render_pair(comp, phi, indent="    "))
        lines.append("    --")
    return "\n".join(lines)
