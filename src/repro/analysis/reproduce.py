"""One-call reproduction: regenerate every paper artifact programmatically.

``python -m repro reproduce`` (or :func:`full_reproduction`) runs the
whole battery at a configurable scale and renders a single report in the
shape of EXPERIMENTS.md: Figure 1's lattice, Figures 2–4, Theorem 19,
Theorem 23, the BACKER/LC loop, and the open-problem exploration.  Each
section carries a PASS/FAIL verdict; the report ends with an overall
verdict — the artifact-evaluation entry point of this repository.

The ``quick`` profile (default) runs in seconds; ``full`` matches the
benchmark suite's bounds (a couple of minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.models import Universe

__all__ = ["SectionResult", "ReproductionReport", "full_reproduction", "render_report"]


@dataclass
class SectionResult:
    """One artifact's verdict and rendered detail."""

    title: str
    passed: bool
    detail: str


@dataclass
class ReproductionReport:
    """All sections plus the overall verdict."""

    profile: str
    sections: list[SectionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every section passed."""
        return all(s.passed for s in self.sections)


def _sec_figures() -> SectionResult:
    from repro.models import LC, NN, NW, SC, WN, WW, can_extend_to_augmentation
    from repro.paperfigures import (
        figure2_pair,
        figure3_pair,
        figure4_blocking_ops,
        figure4_pair,
        lc_not_sc_pair,
    )

    checks: list[tuple[str, bool]] = []
    c2, p2 = figure2_pair()
    checks.append(("fig2 ∈ WW∩NW", WW.contains(c2, p2) and NW.contains(c2, p2)))
    checks.append(("fig2 ∉ WN∪NN", not WN.contains(c2, p2) and not NN.contains(c2, p2)))
    c3, p3 = figure3_pair()
    checks.append(("fig3 ∈ WW∩WN", WW.contains(c3, p3) and WN.contains(c3, p3)))
    checks.append(("fig3 ∉ NW∪NN", not NW.contains(c3, p3) and not NN.contains(c3, p3)))
    c4, p4 = figure4_pair()
    checks.append(("fig4 ∈ NN ∖ LC", NN.contains(c4, p4) and not LC.contains(c4, p4)))
    checks.append((
        "fig4 stuck for non-writes",
        all(not can_extend_to_augmentation(NN, c4, p4, o) for o in figure4_blocking_ops()),
    ))
    sb, psb = lc_not_sc_pair()
    checks.append(("store buffer ∈ LC ∖ SC", LC.contains(sb, psb) and not SC.contains(sb, psb)))
    detail = "\n".join(f"  {'✓' if ok else '✗'} {label}" for label, ok in checks)
    return SectionResult("Figures 2–4 and the SC/LC separation", all(ok for _l, ok in checks), detail)


def _sec_lattice(
    sweep: Universe, witness: Universe, jobs: int | None = None
) -> SectionResult:
    from repro.analysis.lattice import compute_lattice
    from repro.analysis.report import render_lattice_result

    result = compute_lattice(sweep, witness, jobs=jobs)
    problems = result.matches_paper()
    return SectionResult(
        "Figure 1 — the model lattice",
        not problems,
        render_lattice_result(result),
    )


def _sec_theorem23(universe: Universe, jobs: int | None = None) -> SectionResult:
    from repro.core.ops import N as NOP, R
    from repro.runtime.parallel import parallel_thm23_counts

    (lc_in_nn, total, stuck), _stats = parallel_thm23_counts(
        universe, probes=(R("x"), NOP), jobs=jobs
    )
    ok = total > 0 and stuck == total
    detail = (
        f"  NN ∖ LC pairs: {total}; pruned by one augmentation: {stuck}\n"
        f"  (plus {lc_in_nn} LC pairs verified inside NN — Theorem 22)"
    )
    return SectionResult("Theorem 23 — LC = NN*", ok, detail)


def _sec_backer(runs: int) -> SectionResult:
    from repro.lang import racy_counter_computation, store_buffer_computation
    from repro.runtime import BackerMemory, execute, work_stealing_schedule
    from repro.verify import trace_admits_lc, trace_admits_sc

    comp = racy_counter_computation(4, 2)[0]
    lc_ok = 0
    for seed in range(runs):
        sched = work_stealing_schedule(comp, 4, rng=seed)
        trace = execute(sched, BackerMemory())
        lc_ok += trace_admits_lc(trace.partial_observer())
    sb = store_buffer_computation()[0]
    weak = 0
    for seed in range(runs):
        sched = work_stealing_schedule(sb, 2, rng=seed)
        po = execute(sched, BackerMemory()).partial_observer()
        if trace_admits_lc(po) and trace_admits_sc(po) is None:
            weak += 1
    ok = lc_ok == runs and weak > 0
    detail = (
        f"  {lc_ok}/{runs} racy-counter executions LC-verified\n"
        f"  {weak}/{runs} store-buffer executions LC-but-not-SC"
    )
    return SectionResult("BACKER maintains LC (and exactly LC)", ok, detail)


def _sec_open_problem(max_nodes: int) -> SectionResult:
    from repro.analysis.open_problems import explore_star_vs_lc, render_star_report
    from repro.models import NW

    universe = Universe(max_nodes=max_nodes, locations=("x",), include_nop=False)
    report = explore_star_vs_lc(NW, universe)
    ok = not report.soundness_violations and bool(report.strictness_candidates)
    return SectionResult(
        "§7 open problem — NW* vs LC (new data)",
        ok,
        "  " + render_star_report(report).replace("\n", "\n  "),
    )


def full_reproduction(
    profile: str = "quick", jobs: int | None = None
) -> ReproductionReport:
    """Run the battery; ``profile`` ∈ {"quick", "full"}.

    ``jobs`` is forwarded to the sharded sweep engine for the lattice and
    Theorem-23 sections (``None`` defers to ``REPRO_JOBS``, default
    serial)."""
    if profile == "quick":
        sweep = Universe(max_nodes=2, locations=("x",))
        witness = Universe(max_nodes=4, locations=("x",), include_nop=False)
        thm23_universe = Universe(max_nodes=4, locations=("x",), include_nop=False)
        runs, star_nodes = 5, 4
    elif profile == "full":
        sweep = Universe(max_nodes=3, locations=("x",))
        witness = Universe(max_nodes=4, locations=("x",), include_nop=False)
        thm23_universe = Universe(max_nodes=4, locations=("x",), include_nop=False)
        runs, star_nodes = 20, 5
    else:
        raise ValueError(f"unknown profile {profile!r}")
    report = ReproductionReport(profile=profile)
    sections: list[tuple[str, Callable[[], SectionResult]]] = [
        ("figures", _sec_figures),
        ("lattice", lambda: _sec_lattice(sweep, witness, jobs=jobs)),
        ("theorem23", lambda: _sec_theorem23(thm23_universe, jobs=jobs)),
        ("backer", lambda: _sec_backer(runs)),
        ("open-problem", lambda: _sec_open_problem(star_nodes)),
    ]
    for name, section in sections:
        with obs.span(f"reproduce.{name}", profile=profile) as sp:
            result = section()
            if sp is not None:
                sp.attrs["passed"] = result.passed
        report.sections.append(result)
    return report


def render_report(report: ReproductionReport) -> str:
    """The full text report."""
    bar = "=" * 72
    lines = [
        bar,
        f"Reproduction report — profile {report.profile!r}",
        "Computation-Centric Memory Models (Frigo & Luchangco, SPAA 1998)",
        bar,
    ]
    for sec in report.sections:
        lines.append("")
        lines.append(f"[{'PASS' if sec.passed else 'FAIL'}] {sec.title}")
        lines.append(sec.detail)
    lines.append("")
    lines.append(bar)
    lines.append(
        "OVERALL: "
        + ("all artifacts reproduced ✓" if report.ok else "FAILURES — see above")
    )
    return "\n".join(lines)
