"""The built-in analysis rules.

Registers the rule set of :mod:`repro.analysis.registry`:

* ``RACE001`` — the PR 2 determinacy-race pass (SP-bags or the exact
  closure sweep, lockset classification), re-homed here; data races
  are errors, lock-mediated pairs notes.
* ``RACE002`` — the FastTrack cross-check
  (:mod:`repro.analysis.fasttrack`): runs the epoch/vector-clock
  detector (over the recorded execution order when the target is a
  trace) and fails loudly if its racy-location set ever disagrees with
  the exact sweep — silent when the detectors agree, which the suite
  property-tests they always do.
* ``LC001`` — trace consistency: replays a recorded execution through
  the :class:`~repro.verify.sanitizer.TraceSanitizer` in ``keep_going``
  mode; every violating event is an error with its minimal witness.
* ``DL001`` — lock-order cycles (:mod:`repro.analysis.deadlock`);
  concurrent cycles are potential deadlocks (error), dag-serialized
  inversions notes.
* ``PORT001`` — SC/LC model portability
  (:mod:`repro.analysis.portability`); a proven divergence is a
  warning (the program is not wrong, its outcome just depends on the
  model), an undecided verdict a note.

This module also hosts the race engine itself —
:func:`lint_computation` with its :class:`Diagnostic` /
:class:`LintReport` output — which :mod:`repro.verify.lint` re-exports
for backwards compatibility.  Race detectors are imported from
``repro.verify`` *submodules* directly (never the package) so that the
``repro.verify`` → ``verify.lint`` → ``repro.analysis`` shim chain
cannot form an import cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.deadlock import lock_cycles
from repro.analysis.fasttrack import fasttrack_races
from repro.analysis.portability import check_portability
from repro.analysis.registry import (
    AnalysisContext,
    Finding,
    register_rule,
)
from repro.core.computation import Computation
from repro.dag.sp import SPNode, sp_decompose
from repro.verify.races import find_races, racy_locations
from repro.verify.spbags import (
    classify_races,
    node_locksets,
    spbags_races,
)

__all__ = ["Diagnostic", "LintReport", "lint_computation", "ENGINES"]

ENGINES = ("auto", "sp-bags", "closure")


@dataclass(frozen=True)
class Diagnostic:
    """One racing pair, fully annotated for reporting."""

    loc: str
    kind: str  # "write-write" | "read-write"
    classification: str  # "data-race" | "lock-mediated"
    u: int
    v: int
    u_path: str | None
    v_path: str | None
    locks_u: tuple[str, ...]
    locks_v: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "loc": self.loc,
            "kind": self.kind,
            "classification": self.classification,
            "u": {"node": self.u, "path": self.u_path},
            "v": {"node": self.v, "path": self.v_path},
            "locks_u": list(self.locks_u),
            "locks_v": list(self.locks_v),
        }

    def render(self) -> str:
        def side(node: int, path: str | None) -> str:
            return f"{path} (node {node})" if path else f"node {node}"

        locks = ""
        if self.locks_u or self.locks_v:
            locks = (
                f"  locks {{{', '.join(self.locks_u)}}}"
                f" vs {{{', '.join(self.locks_v)}}}"
            )
        return (
            f"{self.classification} {self.kind} at {self.loc}: "
            f"{side(self.u, self.u_path)} ∥ {side(self.v, self.v_path)}"
            f"{locks}"
        )


@dataclass
class LintReport:
    """Everything the race pass knows about one computation."""

    target: str
    engine: str
    num_nodes: int
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def data_races(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.classification == "data-race"
        ]

    @property
    def clean(self) -> bool:
        """True iff no *data* race was found (lock-mediated pairs pass)."""
        return not self.data_races

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "engine": self.engine,
            "nodes": self.num_nodes,
            "clean": self.clean,
            "races": len(self.diagnostics),
            "data_races": len(self.data_races),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        head = (
            f"{self.target}: {self.num_nodes} nodes, engine={self.engine}"
        )
        if not self.diagnostics:
            return f"{head}: clean — no races"
        lines = [
            f"{head}: {len(self.diagnostics)} race(s), "
            f"{len(self.data_races)} data race(s)"
        ]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)


def lint_computation(
    comp: Computation,
    *,
    target: str = "<computation>",
    engine: str = "auto",
    sp: SPNode | None = None,
    lock_sections: Mapping[object, list[tuple[int, int]]] | None = None,
    node_paths: Sequence[str] | None = None,
    names: Mapping[str, int] | None = None,
) -> LintReport:
    """Run the race analyzers over one computation.

    ``sp``, ``lock_sections``, ``node_paths`` and ``names`` are the
    matching :class:`~repro.lang.cilk.UnfoldInfo` fields when the
    computation came from ``unfold``; all optional (paths fall back to
    node names, locks to the empty set, the SP expression to
    :func:`sp_decompose`).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown lint engine {engine!r} (choose from {ENGINES})"
        )
    if engine in ("auto", "sp-bags") and sp is None:
        sp = sp_decompose(comp.dag)
        if sp is None:
            if engine == "sp-bags":
                raise ValueError(
                    "computation is not series-parallel; "
                    "use engine='closure'"
                )
            engine = "closure"
    with obs.span(
        "verify.lint", target=target, engine=engine, nodes=comp.num_nodes
    ) as spn:
        if engine == "closure":
            races = list(find_races(comp))
        else:
            engine = "sp-bags"
            races = spbags_races(comp, sp)

        locksets = node_locksets(comp, dict(lock_sections or {}))
        classified = classify_races(races, locksets)
        if spn is not None:
            spn.attrs["engine"] = engine
            spn.attrs["races"] = len(classified)

    label: dict[int, str | None] = {}
    if names:
        for name, u in names.items():
            label[u] = name
    if node_paths:
        for u, path in enumerate(node_paths):
            label.setdefault(u, path)

    report = LintReport(target, engine, comp.num_nodes)
    for c in classified:
        report.diagnostics.append(
            Diagnostic(
                loc=repr(c.race.loc),
                kind=c.race.kind,
                classification=c.classification,
                u=c.race.u,
                v=c.race.v,
                u_path=label.get(c.race.u),
                v_path=label.get(c.race.v),
                locks_u=tuple(sorted(map(str, c.locks_u))),
                locks_v=tuple(sorted(map(str, c.locks_v))),
            )
        )
    if obs.enabled():
        obs.add("lint.runs")
        for d in report.diagnostics:
            key = d.classification.replace("-", "_")
            obs.add(f"lint.{key}")
    return report


# ----------------------------------------------------------------------
# Rule registrations
# ----------------------------------------------------------------------


@register_rule(
    "RACE001",
    name="determinacy-race",
    severity="error",
    engines=("sp-bags", "closure"),
    doc="Determinacy races (incomparable conflicting accesses), "
    "classified by the locks held on both sides.",
)
def _rule_determinacy_races(ctx: AnalysisContext) -> list[Finding]:
    report = lint_computation(
        ctx.comp,
        target=ctx.target,
        engine=ctx.engine,
        sp=ctx.sp,
        lock_sections=ctx.lock_sections,
        node_paths=ctx.node_paths,
        names=ctx.names,
    )
    ctx.resolved_engine = report.engine
    findings: list[Finding] = []
    for d in report.diagnostics:
        severity = (
            "error" if d.classification == "data-race" else "note"
        )
        findings.append(
            Finding(
                rule="RACE001",
                severity=severity,
                message=d.render(),
                loc=d.loc,
                nodes=(d.u, d.v),
                paths=(d.u_path or "", d.v_path or ""),
                kind=d.classification,
                extra={"diagnostic": d.to_dict()},
            )
        )
    return findings


@register_rule(
    "RACE002",
    name="fasttrack-cross-check",
    severity="error",
    engines=("fasttrack",),
    doc="FastTrack epoch/vector-clock detector cross-checked against "
    "the exact closure sweep; flags any racy-location disagreement.",
)
def _rule_fasttrack(ctx: AnalysisContext) -> list[Finding]:
    order = (
        ctx.trace.schedule.execution_order()
        if ctx.trace is not None
        else None
    )
    ft = fasttrack_races(ctx.comp, order)
    ft_locs = {repr(r.loc) for r in ft}
    oracle = {repr(loc) for loc in racy_locations(ctx.comp)}
    findings: list[Finding] = []
    for loc in sorted(ft_locs - oracle):
        findings.append(
            Finding(
                rule="RACE002",
                severity="error",
                message=(
                    f"detector divergence at {loc}: FastTrack reports "
                    "a race the exact closure sweep does not"
                ),
                loc=loc,
                kind="detector-divergence",
            )
        )
    for loc in sorted(oracle - ft_locs):
        findings.append(
            Finding(
                rule="RACE002",
                severity="error",
                message=(
                    f"detector divergence at {loc}: the exact closure "
                    "sweep reports a race FastTrack misses"
                ),
                loc=loc,
                kind="detector-divergence",
            )
        )
    return findings


@register_rule(
    "LC001",
    name="trace-consistency",
    severity="error",
    engines=("sanitizer",),
    trace_only=True,
    doc="Replays a recorded execution through the LC sanitizer in "
    "keep-going mode; every violating read is reported with its "
    "minimal witness.",
)
def _rule_trace_consistency(ctx: AnalysisContext) -> list[Finding]:
    # Lazy import: repro.verify's package __init__ pulls in the lint
    # shim, which imports repro.analysis — importing it at module load
    # time would close that cycle.
    from repro.verify.sanitizer import TraceSanitizer

    assert ctx.trace is not None  # trace_only guarantees this
    findings: list[Finding] = []
    for v in TraceSanitizer.collect_violations(ctx.trace):
        findings.append(
            Finding(
                rule="LC001",
                severity="error",
                message=(
                    f"event #{v.event_index} ({ctx.side(v.node)}): "
                    f"{v.reason}; witness nodes {list(v.witness)}"
                ),
                loc=repr(v.loc),
                nodes=tuple(v.witness),
                paths=ctx.paths_for(v.witness),
                kind="lc-violation",
                extra={"event_index": v.event_index},
            )
        )
    return findings


@register_rule(
    "DL001",
    name="lock-order",
    severity="error",
    engines=("lock-graph",),
    doc="Cycles in the lock-acquisition graph; concurrent cycles are "
    "potential deadlocks, dag-serialized inversions notes.",
)
def _rule_lock_order(ctx: AnalysisContext) -> list[Finding]:
    if not ctx.lock_sections:
        return []
    findings: list[Finding] = []
    for cyc in lock_cycles(ctx.comp, ctx.lock_sections):
        ring = " → ".join(cyc.locks + (cyc.locks[0],))
        inner_acquires = tuple(a2 for (_a1, _r1, a2) in cyc.witness)
        if cyc.concurrent:
            sides = "; ".join(
                f"{lock} acquired at {ctx.side(a2)} inside "
                f"{ctx.side(a1)}..{ctx.side(r1)}"
                for lock, (a1, r1, a2) in zip(
                    cyc.locks[1:] + cyc.locks[:1], cyc.witness
                )
            )
            findings.append(
                Finding(
                    rule="DL001",
                    severity="error",
                    message=(
                        f"potential deadlock: lock-order cycle {ring} "
                        f"with concurrent sections ({sides})"
                    ),
                    nodes=inner_acquires,
                    paths=ctx.paths_for(inner_acquires),
                    kind="lock-cycle",
                    extra={"locks": list(cyc.locks)},
                )
            )
        else:
            findings.append(
                Finding(
                    rule="DL001",
                    severity="note",
                    message=(
                        f"lock-order inversion {ring}: the sections "
                        "are serialized by the dag today, but the "
                        "inverted order will deadlock if they ever "
                        "run in parallel"
                    ),
                    nodes=inner_acquires,
                    paths=ctx.paths_for(inner_acquires),
                    kind="lock-cycle-serialized",
                    extra={"locks": list(cyc.locks)},
                )
            )
    return findings


@register_rule(
    "PORT001",
    name="model-portability",
    severity="warning",
    engines=("block-quotient", "enumeration"),
    doc="Flags computations whose observable outcomes differ between "
    "SC and LC — the programmer-centric 'is SC reasoning safe here' "
    "question, decided from the dag.",
)
def _rule_portability(ctx: AnalysisContext) -> list[Finding]:
    verdict = check_portability(ctx.comp)
    if verdict.status == "divergent":
        locs = (
            ", ".join(repr(loc) for loc in verdict.witness.locations)
            if verdict.witness is not None
            else "?"
        )
        return [
            Finding(
                rule="PORT001",
                severity="warning",
                message=(
                    "not SC-portable: an observer function over "
                    f"{locs} is admitted by LC but rejected by SC — "
                    "the outcome depends on the memory model"
                ),
                kind="sc-lc-divergence",
                extra={"checked": verdict.checked},
            )
        ]
    if verdict.status == "undecided":
        return [
            Finding(
                rule="PORT001",
                severity="note",
                message=f"SC/LC portability undecided: {verdict.reason}",
                kind="portability-undecided",
            )
        ]
    return []
