"""Empirical regeneration of the paper's Figure 1 (the model lattice).

Figure 1 asserts, for the six models {SC, LC, NN, NW, WN, WW}:

* the strict-inclusion edges SC ⊊ LC ⊊ NN ⊊ NW, NN ⊊ WN, NW ⊊ WW,
  WN ⊊ WW, with NW and WN incomparable;
* constructibility: SC, LC, WW constructible; NN, NW, WN not;
* LC = NN* (Theorem 23), LC ⊆ NW*, LC ⊆ WN* (strictness open).

:func:`compute_lattice` regenerates all of it on a bounded universe:
inclusion sweeps certify the ⊆ directions (on the universe), witness
searches certify every strictness and incomparability, and Theorem-12
augmentation sweeps decide constructibility empirically (failures are
outright proofs; full closure is evidence matching the paper's
pencil-and-paper proofs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.base import MemoryModel
from repro.models.constructibility import NonconstructibilityWitness
from repro.models.dag_consistency import NN, NW, WN, WW
from repro.models.location_consistency import LC
from repro.models.relations import SeparationWitness
from repro.models.sequential import SC
from repro.models.universe import Universe

__all__ = ["LatticeResult", "compute_lattice", "PAPER_MODELS", "PAPER_EDGES"]

PAPER_MODELS: tuple[MemoryModel, ...] = (SC, LC, NN, NW, WN, WW)
"""The six models of Figure 1, strongest-first."""

PAPER_EDGES: tuple[tuple[str, str], ...] = (
    ("SC", "LC"),
    ("LC", "NN"),
    ("NN", "NW"),
    ("NN", "WN"),
    ("NW", "WW"),
    ("WN", "WW"),
)
"""The strict-inclusion edges of Figure 1 (stronger, weaker)."""

PAPER_INCOMPARABLE: tuple[tuple[str, str], ...] = (("NW", "WN"),)
"""Model pairs Figure 1 draws as incomparable."""

PAPER_CONSTRUCTIBLE: dict[str, bool] = {
    "SC": True,
    "LC": True,
    "NN": False,
    "NW": False,
    "WN": False,
    "WW": True,
}
"""Figure 1's constructibility annotations (the paper's prose claims)."""

KNOWN_DEVIATIONS: dict[str, str] = {
    "WN": (
        "Under the paper's *formal* predicate table (WN ⇔ op(u) = W(l)), "
        "WN is provably constructible: for any (C, Φ) ∈ WN and any o, "
        "extending Φ with Φ'(l, final) = ⊥ (or = final when o writes l) "
        "satisfies every new triple vacuously — a write u always observes "
        "itself, so Φ'(l, u) = u ≠ ⊥ = Φ'(l, final) and condition 20.1 "
        "never fires; Theorem 12 then gives constructibility.  The prose "
        "('among the four models only WW is constructible', 'we were "
        "surprised to discover that WN is not constructible') contradicts "
        "this; the source text's predicate table contains OCR corruption "
        "('NN = false', 'WW = WN ∧ WN'), and the prose claims are "
        "consistent only if WN's predicate anchors the *middle* node — "
        "i.e. the roles of NW and WN are transposed somewhere in the "
        "source.  We implement the formal table and record the measured "
        "truth; the nonconstructible middle-anchored model is present "
        "as NW."
    ),
}
"""Cells where the measured truth deviates from the paper's prose, with
an explanation.  See EXPERIMENTS.md for the full discussion."""

MEASURED_CONSTRUCTIBLE: dict[str, bool] = {
    "SC": True,
    "LC": True,
    "NN": False,
    "NW": False,
    "WN": True,  # deviation, see KNOWN_DEVIATIONS["WN"]
    "WW": True,
}
"""Ground truth under the formal predicate table, as this library
implements and mechanically checks it."""


@dataclass
class LatticeResult:
    """Everything :func:`compute_lattice` established.

    ``inclusions[(a, b)]`` — whether a ⊆ b held over the whole universe.
    ``strictness[(a, b)]`` — witness in b \\ a for each paper edge.
    ``incomparability`` — witnesses both ways for each incomparable pair.
    ``constructibility[m]`` — ``None`` if augmentation-closed on the
    universe (consistent with constructible), else the failing witness.
    ``sweep_stats`` — per-sweep :class:`~repro.runtime.parallel.SweepStats`
    instrumentation (shard timings, cache hit rates), keyed by sweep name.
    """

    universe: Universe
    inclusions: dict[tuple[str, str], bool]
    strictness: dict[tuple[str, str], SeparationWitness | None] = field(
        default_factory=dict
    )
    incomparability: dict[
        tuple[str, str], tuple[SeparationWitness | None, SeparationWitness | None]
    ] = field(default_factory=dict)
    constructibility: dict[str, NonconstructibilityWitness | None] = field(
        default_factory=dict
    )
    sweep_stats: dict[str, object] = field(default_factory=dict)

    def matches_paper(self) -> list[str]:
        """Discrepancies from Figure 1, excluding documented deviations.

        Constructibility cells listed in :data:`KNOWN_DEVIATIONS` are
        compared against :data:`MEASURED_CONSTRUCTIBLE` instead (i.e. we
        require the deviation to reproduce *as documented*).
        """
        problems: list[str] = []
        for a, b in PAPER_EDGES:
            if not self.inclusions.get((a, b), False):
                problems.append(f"inclusion {a} ⊆ {b} FAILED on universe")
            if self.strictness.get((a, b)) is None:
                problems.append(f"no witness that {a} ⊊ {b} is strict")
        for a, b in PAPER_INCOMPARABLE:
            wa, wb = self.incomparability.get((a, b), (None, None))
            if wa is None or wb is None:
                problems.append(f"incomparability {a} vs {b} not witnessed")
        for name in PAPER_CONSTRUCTIBLE:
            expected = MEASURED_CONSTRUCTIBLE[name]
            witness = self.constructibility.get(name, None)
            empirically_constructible = witness is None
            if empirically_constructible != expected:
                problems.append(
                    f"constructibility of {name}: expected {expected}, "
                    f"universe says {empirically_constructible}"
                )
        return problems


def compute_lattice(
    universe: Universe,
    witness_universe: Universe | None = None,
    jobs: int | None = None,
) -> LatticeResult:
    """Run the full Figure-1 battery on a universe.

    ``witness_universe`` (default: same as ``universe``) bounds the
    witness searches separately — witnesses live at n = 4, so a smaller
    search universe keeps the expensive part cheap while inclusions sweep
    the larger one.

    All sweeps run through the sharded engine
    (:mod:`repro.runtime.parallel`): ``jobs=None`` defers to the
    ``REPRO_JOBS`` environment variable (default serial in-process),
    ``jobs=N`` forces ``N`` workers.  The engine's canonical-order merge
    makes every witness identical to the serial per-question sweeps.
    """
    from repro.runtime.parallel import (
        parallel_inclusion_matrix,
        parallel_lattice_battery,
    )

    wuniv = witness_universe or universe
    models = PAPER_MODELS
    by_name = {m.name: m for m in models}

    inclusions, inc_stats = parallel_inclusion_matrix(
        models, universe, jobs=jobs
    )
    result = LatticeResult(universe=universe, inclusions=inclusions)

    def seeded(a_name: str, b_name: str) -> SeparationWitness | None:
        """Witness in b \\ a among the paper's fixed figure pairs.

        The SC/LC separation needs two locations, which single-location
        witness universes cannot provide, so seeding is not merely an
        optimization there.
        """
        a, b = by_name[a_name], by_name[b_name]
        for comp, phi in _seed_pairs():
            if b.contains(comp, phi) and not a.contains(comp, phi):
                return SeparationWitness(comp, phi, b.name, a.name)
        return None

    wanted = list(PAPER_EDGES)
    for a, b in PAPER_INCOMPARABLE:
        wanted += [(b, a), (a, b)]
    separations: dict[tuple[str, str], SeparationWitness | None] = {}
    unresolved: list[tuple[str, str]] = []
    for edge in dict.fromkeys(wanted):
        separations[edge] = seeded(*edge)
        if separations[edge] is None:
            unresolved.append(edge)

    battery, battery_stats = parallel_lattice_battery(
        wuniv,
        edges=unresolved,
        constructibility=models,
        jobs=jobs,
    )
    for edge in unresolved:
        separations[edge] = battery.witnesses[edge]

    for a, b in PAPER_EDGES:
        result.strictness[(a, b)] = separations[(a, b)]
    for a, b in PAPER_INCOMPARABLE:
        result.incomparability[(a, b)] = (
            separations[(b, a)],
            separations[(a, b)],
        )
    for m in models:
        result.constructibility[m.name] = battery.nonconstructibility[m.name]
    result.sweep_stats = {
        "inclusion-matrix": inc_stats,
        "lattice-battery": battery_stats,
    }
    return result


def _seed_pairs():
    """The paper's fixed figure pairs, used to seed witness searches."""
    from repro.paperfigures import (
        figure2_pair,
        figure3_pair,
        figure4_pair,
        lc_not_sc_pair,
    )

    return [figure2_pair(), figure3_pair(), figure4_pair(), lc_not_sc_pair()]
