"""Plain-text rendering of lattice results and computations.

Benchmarks print through these helpers so their output reads like the
paper's figures: an inclusion matrix, the strict edges with their
witnesses, and per-figure verdict lines.
"""

from __future__ import annotations

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.analysis.lattice import (
    KNOWN_DEVIATIONS,
    MEASURED_CONSTRUCTIBLE,
    PAPER_CONSTRUCTIBLE,
    PAPER_EDGES,
    PAPER_MODELS,
    LatticeResult,
)

__all__ = [
    "render_computation",
    "render_pair",
    "render_inclusion_matrix",
    "render_lattice_result",
    "render_dot",
]


def render_computation(comp: Computation, indent: str = "  ") -> str:
    """One line per node: id, op, direct predecessors."""
    lines = []
    for u in comp.nodes():
        preds = sorted(comp.dag.predecessors(u))
        dep = f" after {preds}" if preds else ""
        lines.append(f"{indent}node {u}: {comp.op(u)!r}{dep}")
    if not lines:
        lines.append(f"{indent}(empty computation)")
    return "\n".join(lines)


def render_pair(comp: Computation, phi: ObserverFunction, indent: str = "  ") -> str:
    """Computation plus the observer rows, location by location."""
    out = [render_computation(comp, indent)]
    for loc in sorted(set(comp.locations) | set(phi.locations), key=repr):
        row = phi.row(loc)
        pretty = ", ".join(
            f"{u}→{'⊥' if v is None else v}" for u, v in enumerate(row)
        )
        out.append(f"{indent}Φ({loc!r}): {pretty}")
    return "\n".join(out)


def render_inclusion_matrix(result: LatticeResult) -> str:
    """The full ⊆ matrix over the six paper models."""
    names = [m.name for m in PAPER_MODELS]
    width = max(len(n) for n in names) + 1
    header = " " * width + " ".join(f"{n:>{width}}" for n in names)
    rows = [header]
    for a in names:
        cells = " ".join(
            f"{'⊆' if result.inclusions.get((a, b), False) else '·':>{width}}"
            for b in names
        )
        rows.append(f"{a:>{width}}{cells}")
    return "\n".join(rows)


def render_lattice_result(result: LatticeResult) -> str:
    """The complete Figure-1 report."""
    lines = [
        f"Figure 1 lattice over universe (n ≤ {result.universe.max_nodes}, "
        f"locations = {result.universe.locations!r})",
        "",
        "Inclusion matrix (row ⊆ column):",
        render_inclusion_matrix(result),
        "",
        "Strict edges (paper: stronger ⊊ weaker, witness in weaker only):",
    ]
    for a, b in PAPER_EDGES:
        w = result.strictness.get((a, b))
        verdict = "WITNESSED" if w is not None else "NO WITNESS FOUND"
        lines.append(f"  {a} ⊊ {b}: {verdict}")
        if w is not None:
            lines.append(
                f"    witness: {w.comp.num_nodes} nodes, in {w.in_model} "
                f"not in {w.not_in_model}"
            )
    lines.append("")
    lines.append("Constructibility (Theorem 12 augmentation sweep):")
    for name, claimed in PAPER_CONSTRUCTIBLE.items():
        witness = result.constructibility.get(name)
        got = witness is None
        expected = MEASURED_CONSTRUCTIBLE[name]
        if got != expected:
            mark = "✗ MISMATCH"
        elif name in KNOWN_DEVIATIONS:
            mark = "✓ (documented deviation from the paper's prose)"
        else:
            mark = "✓"
        detail = (
            "closed under augmentation on universe"
            if witness is None
            else f"stuck at {witness.comp.num_nodes} nodes on op {witness.blocking_op!r}"
        )
        lines.append(
            f"  {name}: paper={claimed} measured={got} {mark} ({detail})"
        )
    problems = result.matches_paper()
    lines.append("")
    if problems:
        lines.append("DISCREPANCIES vs. Figure 1:")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append("All Figure 1 claims reproduced on this universe.")
    return "\n".join(lines)


def render_dot(
    comp: Computation, phi: ObserverFunction | None = None, name: str = "computation"
) -> str:
    """Graphviz DOT rendering of a computation (optionally with Φ).

    Node labels show the id and op; with ``phi``, each node's observed
    values are appended and dashed grey "observation" edges point from
    each observed write to its observer — the visual language of the
    paper's figures.  Output renders with ``dot -Tpng``.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    locs = []
    if phi is not None:
        locs = sorted(set(comp.locations) | set(phi.locations), key=repr)
    for u in comp.nodes():
        label = f"{u}: {comp.op(u)!r}"
        if phi is not None:
            views = ", ".join(
                f"{loc}→{'⊥' if phi.value(loc, u) is None else phi.value(loc, u)}"
                for loc in locs
            )
            if views:
                label += f"\\n[{views}]"
        lines.append(f'  n{u} [label="{label}"];')
    for (u, v) in sorted(comp.dag.edges):
        lines.append(f"  n{u} -> n{v};")
    if phi is not None:
        for loc in locs:
            for u in comp.nodes():
                w = phi.value(loc, u)
                if w is not None and w != u:
                    lines.append(
                        f"  n{w} -> n{u} [style=dashed, color=grey, "
                        f'label="{loc}"];'
                    )
    lines.append("}")
    return "\n".join(lines)
