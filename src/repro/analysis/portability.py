"""Model portability: does the outcome depend on the memory model?

Adve & Gharachorloo's programmer-centric question — "may I reason about
this program as if the memory were sequentially consistent?" — becomes
decidable in the computation-centric setting: a computation is
*portable* from LC down to SC iff no observer function is admitted by
LC but rejected by SC.  Running it on the paper's weakest model then
shows nothing a sequentially-consistent programmer would not expect.

The decision ladder, cheapest first:

1. **Race-free** ⇒ portable.  On a race-free computation every model
   of the zoo admits exactly the per-topological-sort last-writer
   functions, so LC and SC coincide (property-tested in the suite).
2. **At most one written location** ⇒ portable.  LC's per-location
   block condition for a single location *is* the existence of one
   witnessing topological sort (:func:`block_witness_order`), which is
   SC's condition outright.
3. **Small observer space** ⇒ decide exactly: enumerate every observer
   function and compare memberships.  The first ``φ ∈ LC \\ SC`` is
   returned as the divergence witness.
4. Otherwise the question is reported as *undecided* — the enumeration
   would be astronomical, and a racy multi-location computation is
   overwhelmingly likely to diverge anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction, count_observer_functions
from repro.models.base import cached_membership
from repro.verify.races import is_race_free

__all__ = ["PortabilityVerdict", "check_portability", "DEFAULT_BUDGET"]

#: Max observer functions the exact phase will enumerate.  The litmus
#: computations this pass exists for (store-buffer, IRIW, small racy
#: counters) sit well below it; unfolded numeric kernels blow past it
#: but are race-free and never reach the enumeration.
DEFAULT_BUDGET = 200_000


@dataclass(frozen=True)
class PortabilityVerdict:
    """The outcome of the SC-vs-LC portability check.

    ``status`` is one of:

    * ``"portable"`` — every LC-admitted observer is SC-admitted;
      ``reason`` names the ladder step that decided it.
    * ``"divergent"`` — ``witness`` is an observer function in
      LC \\ SC, and ``witness_locs`` the locations it constrains.
    * ``"undecided"`` — the observer space exceeded ``budget``.

    ``checked`` counts the observer functions actually enumerated.
    """

    status: str
    reason: str
    witness: ObserverFunction | None = None
    checked: int = 0

    @property
    def portable(self) -> bool:
        return self.status == "portable"


def check_portability(
    comp: Computation, budget: int = DEFAULT_BUDGET
) -> PortabilityVerdict:
    """Decide whether ``comp`` behaves identically under SC and LC."""
    if is_race_free(comp):
        return PortabilityVerdict(
            "portable",
            "race-free: all models admit exactly the serial behaviours",
        )
    written = [
        loc for loc in comp.locations if comp.writers(loc)
    ]
    if len(written) <= 1:
        return PortabilityVerdict(
            "portable",
            "single written location: LC's block witness is an SC order",
        )
    space = count_observer_functions(comp)
    if space > budget:
        return PortabilityVerdict(
            "undecided",
            f"{space} observer functions exceed the enumeration "
            f"budget ({budget})",
        )
    # Import here: repro.models pulls in the whole zoo (lattice,
    # constructibility); keep it off the import path of `import
    # repro.analysis` for consumers that never run this rule.
    from repro.models import LC, SC

    checked = 0
    for phi in ObserverFunction.enumerate_all(comp):
        checked += 1
        if cached_membership(LC, comp, phi) and not cached_membership(
            SC, comp, phi
        ):
            return PortabilityVerdict(
                "divergent",
                "observer admitted by LC but rejected by SC",
                witness=phi,
                checked=checked,
            )
    return PortabilityVerdict(
        "portable",
        f"exhaustive: all {checked} observer functions agree",
        checked=checked,
    )
