"""Characterize an arbitrary memory model against the zoo.

Definition 20 is an open-ended schema — any predicate Q yields a model —
and the paper's Section 7 invites formulating further models in the
framework.  This module is the exploration tool for that: given any
:class:`~repro.models.base.MemoryModel` (typically a
:class:`~repro.models.dag_consistency.QDagConsistency` with a custom
predicate), it locates the model in the lattice empirically:

* inclusion relative to each zoo member, both directions, with
  witnesses for the failures (so the result is a set of certificates,
  not just booleans);
* completeness, monotonicity, and Theorem-12 constructibility on the
  universe;
* the minimal anomalies it admits beyond the strongest zoo member it
  is weaker than.

See ``examples/custom_model.py`` for the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.anomalies import AnomalyCatalog, catalog_anomalies
from repro.models.base import MemoryModel
from repro.models.constructibility import (
    NonconstructibilityWitness,
    find_nonconstructibility_witness,
)
from repro.models.relations import (
    SeparationWitness,
    is_monotonic_on,
    is_stronger_on,
)
from repro.models.universe import Universe

__all__ = ["ModelCharacterization", "characterize_model", "render_characterization"]

_ZOO_ORDER = ("SC", "LC", "NN", "NW", "WN", "WW")


def _zoo():
    from repro.models import LC, NN, NW, SC, WN, WW

    return {"SC": SC, "LC": LC, "NN": NN, "NW": NW, "WN": WN, "WW": WW}


@dataclass
class ModelCharacterization:
    """Everything :func:`characterize_model` established on a universe."""

    name: str
    universe: Universe
    #: zoo name -> witness that the candidate is NOT ⊆ zoo member (None = ⊆).
    not_inside: dict[str, SeparationWitness | None] = field(default_factory=dict)
    #: zoo name -> witness that zoo member is NOT ⊆ candidate (None = ⊆).
    not_containing: dict[str, SeparationWitness | None] = field(
        default_factory=dict
    )
    monotonic: bool = True
    complete: bool = True
    stuck_witness: NonconstructibilityWitness | None = None
    anomalies: AnomalyCatalog | None = None

    def inside(self, zoo_name: str) -> bool:
        """Whether the candidate ⊆ the zoo member held on the universe."""
        return self.not_inside.get(zoo_name) is None

    def contains_zoo(self, zoo_name: str) -> bool:
        """Whether zoo member ⊆ candidate held on the universe."""
        return self.not_containing.get(zoo_name) is None

    def strongest_zoo_above(self) -> str | None:
        """The strongest zoo member that (empirically) contains the model."""
        for name in _ZOO_ORDER:
            if self.inside(name):
                return name
        return None

    def equivalent_zoo(self) -> str | None:
        """A zoo member the model coincided with on the universe, if any."""
        for name in _ZOO_ORDER:
            if self.inside(name) and self.contains_zoo(name):
                return name
        return None


def characterize_model(
    model: MemoryModel, universe: Universe
) -> ModelCharacterization:
    """Run the full battery against the zoo on a bounded universe."""
    zoo = _zoo()
    result = ModelCharacterization(name=model.name, universe=universe)
    for zname, zmodel in zoo.items():
        result.not_inside[zname] = is_stronger_on(model, zmodel, universe)
        result.not_containing[zname] = is_stronger_on(zmodel, model, universe)
    result.monotonic = is_monotonic_on(model, universe) is None
    result.complete = all(
        model.admits(comp) for comp in universe.computations()
    )
    result.stuck_witness = find_nonconstructibility_witness(model, universe)
    # Catalog the anomalies the model admits beyond SC (the behaviours
    # it allows that a serializing memory would not).
    result.anomalies = catalog_anomalies(
        zoo["SC"], model, universe, max_witnesses=16
    )
    return result


def render_characterization(result: ModelCharacterization) -> str:
    """Human-readable characterization summary."""
    lines = [
        f"characterization of {result.name!r} on n ≤ "
        f"{result.universe.max_nodes} "
        f"(locations {result.universe.locations!r}):"
    ]
    inside = [z for z in _ZOO_ORDER if result.inside(z)]
    containing = [z for z in _ZOO_ORDER if result.contains_zoo(z)]
    lines.append(f"  ⊆ (stronger than): {inside or 'none'}")
    lines.append(f"  ⊇ (weaker than):   {containing or 'none'}")
    eq = result.equivalent_zoo()
    if eq:
        lines.append(f"  coincides with {eq} on this universe")
    lines.append(f"  complete: {result.complete}  monotonic: {result.monotonic}")
    if result.stuck_witness is None:
        lines.append("  constructible: yes (augmentation-closed on universe)")
    else:
        lines.append(
            f"  constructible: NO — stuck at "
            f"{result.stuck_witness.comp.num_nodes} nodes on "
            f"{result.stuck_witness.blocking_op!r}"
        )
    if result.anomalies is not None and result.anomalies.separated:
        lines.append(
            f"  admits non-SC behaviour from {result.anomalies.minimal_size} "
            f"nodes ({len(result.anomalies.witnesses)} minimal anomalies)"
        )
    elif result.anomalies is not None:
        lines.append("  admits no non-SC behaviour on this universe")
    return "\n".join(lines)
