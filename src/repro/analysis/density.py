"""Quantitative view of the lattice: how permissive is each model?

Figure 1 orders the models qualitatively; this module measures the
order: for every computation of a bounded universe, count the observer
functions each model admits.  The counts must respect the lattice
pointwise (|SC(C)| ≤ |LC(C)| ≤ |NN(C)| ≤ |NW(C)|, |WN(C)| ≤ |WW(C)|),
and their totals show *how much* behaviour each relaxation buys — the
quantitative companion to the paper's inclusion diagram.

Also computes per-computation extremes: the computations where the gap
between two models is widest (useful for finding "interesting" shapes,
e.g. the 4-node diamonds of the paper's figures maximize several gaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction, count_observer_functions
from repro.models.base import MemoryModel
from repro.models.universe import Universe

__all__ = ["DensityReport", "measure_density", "render_density"]


@dataclass
class DensityReport:
    """Aggregate admission counts for a set of models on a universe."""

    universe: Universe
    model_names: tuple[str, ...]
    total_pairs: int = 0
    total_computations: int = 0
    admitted: dict[str, int] = field(default_factory=dict)
    #: (comp, counts-per-model) with the widest |weakest| - |strongest| gap.
    widest_gap: tuple[Computation, dict[str, int]] | None = None

    def fraction(self, name: str) -> float:
        """Fraction of all valid observer functions the model admits."""
        if self.total_pairs == 0:
            return 0.0
        return self.admitted[name] / self.total_pairs


def measure_density(
    models: list[MemoryModel], universe: Universe
) -> DensityReport:
    """Count each model's admitted observer functions over the universe.

    Also asserts (defensively) that counts respect the lattice pointwise
    for the canonical model order, raising ``AssertionError`` on any
    violation — a density run doubles as an inclusion sweep.
    """
    names = tuple(m.name for m in models)
    report = DensityReport(universe=universe, model_names=names)
    report.admitted = {name: 0 for name in names}
    gap_size = -1
    for comp in universe.computations():
        report.total_computations += 1
        counts = {name: 0 for name in names}
        n_pairs = 0
        for phi in ObserverFunction.enumerate_all(comp):
            n_pairs += 1
            for m in models:
                if m.contains(comp, phi):
                    counts[m.name] += 1
        report.total_pairs += n_pairs
        assert n_pairs == count_observer_functions(comp)
        for name in names:
            report.admitted[name] += counts[name]
        this_gap = max(counts.values()) - min(counts.values())
        if this_gap > gap_size:
            gap_size = this_gap
            report.widest_gap = (comp, dict(counts))
    return report


def render_density(report: DensityReport) -> str:
    """Tabular rendering of a density report."""
    lines = [
        f"Model permissiveness on n ≤ {report.universe.max_nodes} "
        f"({report.total_computations} computations, "
        f"{report.total_pairs} observer functions):",
        f"{'model':>8} {'admitted':>10} {'fraction':>10}",
    ]
    for name in report.model_names:
        lines.append(
            f"{name:>8} {report.admitted[name]:>10} "
            f"{report.fraction(name):>10.3f}"
        )
    if report.widest_gap is not None:
        comp, counts = report.widest_gap
        lines.append(
            f"widest per-computation gap at {comp.num_nodes} nodes: {counts}"
        )
    return "\n".join(lines)
