"""Lock-order analysis: deadlock cycles in the lock-acquisition graph.

The dag cannot deadlock — it is acyclic and lock sections are recorded,
not contended.  But :mod:`repro.locks` serializes each lock's critical
sections at *execution* time, and nested sections acquired in opposite
orders on dag-incomparable branches are exactly the classic ABBA hang
once a real lock implementation runs the program.  This is a static
property of :attr:`repro.lang.cilk.UnfoldInfo.lock_sections`, so we
lint for it.

Construction (the standard lock-order graph, e.g. Havelund's Java
PathFinder analysis, restricted to the recorded dag):

* edge ``L1 → L2`` whenever some acquire ``a2`` of an ``L2`` section
  happens *inside* an ``L1`` section ``(a1, r1)`` — i.e.
  ``a1 ⪯ a2 ⪯ r1`` in the dag.  Each edge keeps its witnessing
  ``(outer section, inner acquire)`` pairs.
* a cycle in this graph is a lock-order inversion.  It is a *potential
  deadlock* (severity ``error``) only if some choice of one witness
  per edge is pairwise dag-incomparable — the nested sections can
  genuinely overlap in an execution.  A cycle whose witnesses are all
  serialized by the dag (one branch finishes before the next starts)
  cannot hang; it is reported as a ``note`` so the inverted order can
  still be cleaned up before someone parallelizes the branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence

from repro.core.computation import Computation

__all__ = ["LockEdge", "lock_graph", "lock_cycles", "LockCycle"]

#: Witness-combination budget per cycle: lock graphs here are tiny, but
#: a pathological program could record many sections per edge.
_MAX_COMBOS = 4096


@dataclass(frozen=True)
class LockEdge:
    """``outer → inner`` nesting with every witnessing section pair.

    Each witness is ``(acquire_outer, release_outer, acquire_inner)``
    — node ids of the outer section's bracket and the nested acquire.
    """

    outer: str
    inner: str
    witnesses: tuple[tuple[int, int, int], ...]


@dataclass(frozen=True)
class LockCycle:
    """One lock-order cycle, plus whether it can actually deadlock.

    ``locks`` lists the cycle in order (first lock repeated at the end
    conceptually, not literally).  ``concurrent`` is True when some
    witness selection is pairwise dag-incomparable; ``witness`` is that
    selection (or the lexicographically first one for serialized
    cycles), one ``(acquire_outer, release_outer, acquire_inner)``
    triple per edge.
    """

    locks: tuple[str, ...]
    concurrent: bool
    witness: tuple[tuple[int, int, int], ...]


def lock_graph(
    comp: Computation,
    lock_sections: Mapping[object, Sequence[tuple[int, int]]],
) -> list[LockEdge]:
    """Build the lock-order graph from recorded sections.

    Locks are identified by ``str(lock)`` (they are lock *names* in the
    Cilk frontend); edges come out sorted for determinism.
    """
    sections = {
        str(lock): sorted(tuple(s) for s in secs)
        for lock, secs in lock_sections.items()
    }
    precedes_eq = comp.dag.precedes_eq
    edges: dict[tuple[str, str], list[tuple[int, int, int]]] = {}
    for outer, outer_secs in sections.items():
        for inner, inner_secs in sections.items():
            if inner == outer:
                continue
            for (a1, r1), (a2, _r2) in product(outer_secs, inner_secs):
                if precedes_eq(a1, a2) and precedes_eq(a2, r1):
                    edges.setdefault((outer, inner), []).append(
                        (a1, r1, a2)
                    )
    return [
        LockEdge(outer, inner, tuple(ws))
        for (outer, inner), ws in sorted(edges.items())
    ]


def _sections_concurrent(
    comp: Computation, ws: Sequence[tuple[int, int, int]]
) -> bool:
    """True iff the witnesses' outer sections pairwise overlap.

    Two sections ``(a, r)`` and ``(a', r')`` are serialized by the dag
    iff one's release precedes the other's acquire; any other
    configuration lets an execution hold both simultaneously.
    """
    precedes = comp.dag.precedes
    for i in range(len(ws)):
        a1, r1, _ = ws[i]
        for j in range(i + 1, len(ws)):
            a2, r2, _ = ws[j]
            if precedes(r1, a2) or precedes(r2, a1):
                return False
    return True


def lock_cycles(
    comp: Computation,
    lock_sections: Mapping[object, Sequence[tuple[int, int]]],
) -> list[LockCycle]:
    """Every elementary cycle of the lock graph, classified.

    Cycles are found by DFS from each lock in sorted order; a cycle is
    emitted only from its lexicographically-smallest lock so each shows
    up once.  Per cycle the witness selections (one section pair per
    edge, capped at a fixed combination budget) are searched for a
    pairwise-concurrent choice; finding one marks the cycle
    ``concurrent`` — a genuine potential deadlock.
    """
    graph = lock_graph(comp, lock_sections)
    adj: dict[str, dict[str, LockEdge]] = {}
    for e in graph:
        adj.setdefault(e.outer, {})[e.inner] = e
    cycles: list[LockCycle] = []

    def dfs(start: str, node: str, path: list[str]) -> None:
        for nxt in sorted(adj.get(node, {})):
            if nxt == start:
                _classify(path[:])
            elif nxt not in path and nxt > start:
                # Only visit locks above the start so each cycle is
                # enumerated exactly once, from its smallest lock.
                path.append(nxt)
                dfs(start, nxt, path)
                path.pop()

    def _classify(locks: list[str]) -> None:
        edge_list = [
            adj[locks[i]][locks[(i + 1) % len(locks)]]
            for i in range(len(locks))
        ]
        pools: list[Sequence[tuple[int, int, int]]] = [
            e.witnesses for e in edge_list
        ]
        combos = 1
        for p in pools:
            combos *= len(p)
        best: tuple[tuple[int, int, int], ...] | None = None
        budget = _MAX_COMBOS
        for choice in product(*pools):
            budget -= 1
            if _sections_concurrent(comp, choice):
                best = tuple(choice)
                break
            if budget <= 0:
                break
        cycles.append(
            LockCycle(
                locks=tuple(locks),
                concurrent=best is not None,
                witness=best
                if best is not None
                else tuple(p[0] for p in pools),
            )
        )

    for start in sorted(adj):
        dfs(start, start, [start])
    return cycles
