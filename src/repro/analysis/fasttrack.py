"""FastTrack-style epoch/vector-clock race detection on computations.

Flanagan & Freund's FastTrack [PLDI 2009] observes that the full
vector-clock race check of Mellor-Crummey's algorithm is almost always
overkill: reads and writes are overwhelmingly *ordered*, so one *epoch*
— a ``(thread, clock)`` pair naming the last access — replaces a whole
clock vector until real concurrency shows up.  This module transplants
that design onto computation dags:

* **Threads** become the chains of a greedy *chain decomposition* of
  the dag into happens-before paths (:func:`chain_decomposition`).  A
  schedule's processor ids would be wrong here — two dag-incomparable
  nodes may run on the same processor, and same-processor execution
  order is *not* happens-before in a computation-centric world.  Each
  chain is totally ordered by dag precedence, which is exactly the
  property epochs need.
* **Vector clocks** index by chain: ``VC_u[c]`` is the clock of the
  last chain-``c`` node that precedes-or-equals ``u``, computed as the
  pointwise join of the predecessors' clocks bumped at ``u``'s own
  chain.  Because a chain is totally ordered, the epoch test
  ``(c, t) ⊑ VC_v  ⇔  VC_v[c] >= t`` is equivalent to dag precedence
  ``u ⪯ v`` — the closure is never materialized.
* **Per-location state** is verbatim FastTrack: a write epoch ``W_x``,
  a read epoch that inflates to a read map on concurrent reads, and
  the same-epoch fast paths.

Guarantee (Theorem 2 of the paper, unchanged by the transplant): every
reported pair is a genuine determinacy race, and the *first* race on
each location in processing order is always caught — so the racy
*location set* matches the exact closure sweep
(:func:`repro.verify.races.find_races`) and SP-bags exactly, which the
suite property-tests on exhaustive SP universes.  Unlike SP-bags it
needs no series-parallel structure, and unlike the closure sweep it is
one pass with no reachability rows — which is what lets rule
``RACE002`` cross-check detectors and run over recorded execution
traces (:func:`fasttrack_trace_races`) at sanitizer-like cost.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.core.computation import Computation
from repro.verify.races import Race

__all__ = [
    "chain_decomposition",
    "fasttrack_races",
    "fasttrack_trace_races",
]


def chain_decomposition(
    comp: Computation, order: Sequence[int] | None = None
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Greedily partition the dag into happens-before chains.

    Returns ``(chain_of, clock_of)`` indexed by node id: the chain each
    node joined and its 1-based position on it.  Walking ``order`` (any
    topological order; default the dag's), a node extends the chain of
    the first predecessor that is still its chain's tail, else it
    starts a fresh chain — the classic greedy path cover.  Chain count
    is at most the dag's width plus merge slack; only the epoch
    *soundness* (each chain totally ordered by ⪯) matters, not
    minimality.
    """
    if order is None:
        order = comp.dag.topological_order
    n = comp.num_nodes
    chain_of = [0] * n
    clock_of = [0] * n
    tail: list[int] = []  # chain id -> current tail node
    for u in order:
        joined = False
        for p in comp.dag.predecessors(u):
            c = chain_of[p]
            if tail[c] == p:
                chain_of[u] = c
                clock_of[u] = clock_of[p] + 1
                tail[c] = u
                joined = True
                break
        if not joined:
            chain_of[u] = len(tail)
            clock_of[u] = 1
            tail.append(u)
    return tuple(chain_of), tuple(clock_of)


def fasttrack_races(
    comp: Computation, order: Sequence[int] | None = None
) -> list[Race]:
    """Run the FastTrack sweep over ``comp`` in ``order``.

    ``order`` must be a topological order of the dag (defaults to the
    dag's own; pass a schedule's execution order to analyze a recorded
    run).  Races come out normalized like :func:`find_races`'s
    (``u < v``, same kinds), in detection order, deduplicated; per racy
    location at least the first race in ``order`` is reported.
    """
    if order is None:
        order = comp.dag.topological_order
    with obs.span("analysis.fasttrack", nodes=comp.num_nodes) as spn:
        races = _fasttrack_sweep(comp, order)
        if spn is not None:
            spn.attrs["races"] = len(races)
    if obs.enabled():
        obs.add("fasttrack.runs")
        obs.add("fasttrack.races", len(races))
    return races


def _fasttrack_sweep(
    comp: Computation, order: Sequence[int]
) -> list[Race]:
    chain_of, clock_of = chain_decomposition(comp, order)
    ops = comp.ops
    preds = comp.dag.predecessors

    # VC per processed node: dict chain -> clock (sparse; most nodes
    # touch few chains).  Epoch (c, t) ⊑ VC_u  ⇔  VC_u.get(c, 0) >= t.
    vcs: dict[int, dict[int, int]] = {}
    # Per location the FastTrack shadow state: the last-write epoch,
    # and the read side in exactly one of two modes — a single epoch
    # (the common, totally-ordered case) or, once genuinely concurrent
    # reads appear, a read map chain -> (clock, node).
    write_epoch: dict[object, tuple[int, int, int]] = {}  # (chain, clk, node)
    read_epoch: dict[object, tuple[int, int, int]] = {}
    read_map: dict[object, dict[int, tuple[int, int]]] = {}

    races: list[Race] = []
    seen: set[tuple[object, int, int]] = set()

    def report(loc: object, a: int, b: int) -> None:
        u, v = (a, b) if a < b else (b, a)
        key = (loc, u, v)
        if key in seen:
            return
        seen.add(key)
        kind = (
            "write-write"
            if ops[u].is_write and ops[v].is_write
            else "read-write"
        )
        races.append(Race(loc, u, v, kind))

    for u in order:
        vc: dict[int, int] = {}
        for p in preds(u):
            for c, t in vcs[p].items():
                if vc.get(c, 0) < t:
                    vc[c] = t
        cu = chain_of[u]
        vc[cu] = clock_of[u]
        vcs[u] = vc

        op = ops[u]
        loc = op.loc
        if loc is None:
            continue
        if op.is_write:
            w = write_epoch.get(loc)
            if w is not None and vc.get(w[0], 0) < w[1]:
                report(loc, w[2], u)
            if loc in read_epoch:
                r = read_epoch[loc]
                if vc.get(r[0], 0) < r[1]:
                    report(loc, r[2], u)
            elif loc in read_map:
                for c, (t, node) in read_map[loc].items():
                    if vc.get(c, 0) < t:
                        report(loc, node, u)
            # Adopt this write's epoch; earlier reads are now either
            # ordered before it or already reported — clear them.
            write_epoch[loc] = (cu, clock_of[u], u)
            read_epoch.pop(loc, None)
            read_map.pop(loc, None)
        else:
            w = write_epoch.get(loc)
            if w is not None and vc.get(w[0], 0) < w[1]:
                report(loc, w[2], u)
            mine = (cu, clock_of[u], u)
            if loc in read_map:
                # A same-chain entry is always older on this chain,
                # hence ordered before ``u`` — overwriting is safe.
                read_map[loc][cu] = (clock_of[u], u)
            elif loc in read_epoch:
                r = read_epoch[loc]
                if vc.get(r[0], 0) >= r[1]:
                    read_epoch[loc] = mine  # ordered: stay an epoch
                else:
                    # Genuinely concurrent reads: inflate to a map.
                    del read_epoch[loc]
                    read_map[loc] = {
                        r[0]: (r[1], r[2]),
                        cu: (clock_of[u], u),
                    }
            else:
                read_epoch[loc] = mine  # first read: epoch fast path
    return races


def fasttrack_trace_races(trace) -> list[Race]:
    """FastTrack over a recorded execution, in its execution order.

    Races are dag properties, so the *racy locations* equal
    :func:`fasttrack_races` on the trace's computation; the reported
    pairs are the ones FastTrack witnesses in the order the run
    actually interleaved — the view a dynamic detector would have had
    inside that execution.
    """
    return fasttrack_races(
        trace.comp, trace.schedule.execution_order()
    )
