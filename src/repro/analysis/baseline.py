"""Baseline files: suppress known findings, fail only on new ones.

Adopting a linter on a codebase with existing findings needs a ratchet:
record today's findings once, then fail CI only when a *new* one
appears.  The record is ``.repro-lint-baseline.json`` — a map from
stable *fingerprints* to a human-readable sketch of the suppressed
finding.

A fingerprint (:func:`finding_fingerprint`) hashes the finding's
*identity*: target, rule id, rule-specific kind, location, and the
source paths of the involved nodes (falling back to node ids only when
no paths are known).  Hashing paths rather than node ids keeps the
fingerprint stable when a program is re-unfolded and node numbering
shifts; messages are deliberately excluded so wording changes do not
invalidate a baseline.

Workflow (also wired into CI)::

    repro lint racy --write-baseline          # seed
    repro lint racy --baseline .repro-lint-baseline.json   # exit 0
    # ...a new race appears...
    repro lint racy --baseline .repro-lint-baseline.json   # exit 2,
    #   reporting only the new finding as unsuppressed
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.analysis.registry import AnalysisReport, Finding

__all__ = [
    "DEFAULT_BASELINE",
    "finding_fingerprint",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]

DEFAULT_BASELINE = ".repro-lint-baseline.json"
_VERSION = 1


def finding_fingerprint(target: str, finding: "Finding") -> str:
    """A 16-hex-digit stable fingerprint of one finding's identity."""
    payload = json.dumps(
        [target, list(map(str, finding.identity()))],
        sort_keys=True,
        ensure_ascii=False,
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(
    path: str, reports: Sequence["AnalysisReport"]
) -> dict:
    """Record every current finding as accepted; returns the document."""
    entries: dict[str, dict] = {}
    for report in reports:
        for f in report.findings:
            fp = finding_fingerprint(report.target, f)
            entries[fp] = {
                "target": report.target,
                "rule": f.rule,
                "severity": f.severity,
                "kind": f.kind,
                "loc": f.loc,
                "message": f.message,
            }
    doc = {
        "version": _VERSION,
        "tool": "repro-lint",
        "findings": dict(sorted(entries.items())),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_baseline(path: str) -> set[str]:
    """The accepted fingerprints recorded in a baseline file."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(
            f"{path!r} is not a repro-lint baseline "
            "(missing 'findings' map)"
        )
    version = doc.get("version")
    if version != _VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path!r} "
            f"(this tool writes version {_VERSION})"
        )
    findings = doc["findings"]
    if not isinstance(findings, dict):
        raise ValueError(f"{path!r}: 'findings' must be an object")
    return set(findings)


def apply_baseline(
    reports: Sequence["AnalysisReport"], accepted: set[str]
) -> int:
    """Mark baseline-accepted findings suppressed; returns the count."""
    suppressed = 0
    for report in reports:
        for f in report.findings:
            if finding_fingerprint(report.target, f) in accepted:
                f.suppressed = True
                suppressed += 1
    return suppressed
