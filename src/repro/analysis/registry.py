"""The multi-rule static-analysis engine behind ``repro lint``.

PR 2's lint ran exactly one analyzer (the determinacy-race pass) with
one output shape.  This module generalizes it into a *rule registry*:
each analyzer registers itself with :func:`register_rule` under a
stable id (``RACE001``, ``DL001``, ...), a default severity, and a
one-line doc; the driver builds one :class:`AnalysisContext` per lint
target, selects rules with ``--select/--ignore`` semantics
(:func:`select_rules`), and folds every rule's :class:`Finding` records
into an :class:`AnalysisReport` that renders as text, JSON, or SARIF
(:mod:`repro.analysis.sarif`) and diffs against a baseline file
(:mod:`repro.analysis.baseline`).

Severity model (mirrors SARIF levels):

* ``error`` — fails the lint (exit 2) unless baseline-suppressed:
  data races, deadlock cycles, trace-consistency violations.
* ``warning`` — reported prominently, never fails: e.g. proven SC/LC
  divergence (the program is correct, just not model-portable).
* ``note`` — informational: lock-mediated races, serialized lock-order
  inversions.

Observability: every rule runs inside an ``analysis.<id>`` span and
bumps ``analysis.findings`` / ``analysis.<id>.findings`` counters, so
``repro lint --trace/--profile`` attributes time per rule.

The registry is populated at import time by the rule modules
(:mod:`repro.analysis.race_rules`, :mod:`repro.analysis.deadlock`,
:mod:`repro.analysis.portability`); importing :mod:`repro.analysis`
loads all of them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro import obs
from repro.core.computation import Computation
from repro.dag.sp import SPNode

if TYPE_CHECKING:
    from repro.runtime.trace import ExecutionTrace

__all__ = [
    "Finding",
    "AnalysisContext",
    "AnalysisReport",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "select_rules",
    "run_analysis",
    "SEVERITIES",
]

#: Recognized severities, strongest first.  Only ``error`` affects the
#: exit code; the order is also the rendering order within a report.
SEVERITIES = ("error", "warning", "note")


@dataclass
class Finding:
    """One diagnostic produced by one rule on one target.

    ``nodes`` are the computation node ids involved (witness order);
    ``paths`` are the matching human-readable source paths when the
    target came from ``unfold`` (empty strings when unknown).  ``kind``
    is a rule-specific subkind (``"data-race"``, ``"write-write"``,
    ``"lock-cycle"``, ...) that participates in the baseline
    fingerprint.  ``suppressed`` is set by the baseline layer; a
    suppressed error does not fail the lint.
    """

    rule: str
    severity: str
    message: str
    loc: str | None = None
    nodes: tuple[int, ...] = ()
    paths: tuple[str, ...] = ()
    kind: str = ""
    extra: dict = field(default_factory=dict)
    suppressed: bool = False

    def identity(self) -> tuple:
        """The stable identity the baseline fingerprint hashes.

        Source paths are preferred over node ids (they survive
        re-unfolding with different node numbering); node ids are the
        fallback for bare serialized computations.
        """
        where: tuple = (
            self.paths
            if self.paths and all(self.paths)
            else self.nodes
        )
        return (self.rule, self.kind, self.loc, where)

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "kind": self.kind,
            "loc": self.loc,
            "message": self.message,
            "nodes": list(self.nodes),
            "paths": list(self.paths),
            "suppressed": self.suppressed,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        tag = f"{self.rule} {self.severity}"
        if self.suppressed:
            tag += " (baseline)"
        return f"[{tag}] {self.message}"


@dataclass
class AnalysisContext:
    """Everything the rules may inspect about one lint target.

    ``sp``, ``lock_sections``, ``node_paths`` and ``names`` are the
    matching :class:`~repro.lang.cilk.UnfoldInfo` fields when the
    target came from ``unfold``; ``trace`` is set when the target is a
    serialized :class:`~repro.runtime.trace.ExecutionTrace` (rules
    marked ``trace_only`` are skipped without one).  ``explicit`` holds
    the rule ids the user named in ``--select`` — opt-in rules run only
    when listed there.
    """

    comp: Computation
    target: str = "<computation>"
    engine: str = "auto"
    sp: SPNode | None = None
    lock_sections: Mapping[object, list[tuple[int, int]]] | None = None
    node_paths: Sequence[str] | None = None
    names: Mapping[str, int] | None = None
    trace: "ExecutionTrace | None" = None
    explicit: frozenset[str] = frozenset()
    #: Set by RACE001 to the engine it actually ran ("sp-bags"/"closure").
    resolved_engine: str | None = None

    def label(self, u: int) -> str | None:
        """The human-readable path of node ``u``, if one is known."""
        if self.names:
            for name, v in self.names.items():
                if v == u:
                    return name
        if self.node_paths and 0 <= u < len(self.node_paths):
            return self.node_paths[u]
        return None

    def side(self, u: int) -> str:
        """Render one node for a message: ``path (node u)`` or ``node u``."""
        path = self.label(u)
        return f"{path} (node {u})" if path else f"node {u}"

    def paths_for(self, nodes: Iterable[int]) -> tuple[str, ...]:
        return tuple(self.label(u) or "" for u in nodes)


@dataclass(frozen=True)
class Rule:
    """One registered analyzer.

    ``engines`` names the algorithm(s) the rule may run (shown in docs
    and ``--list-rules``); ``trace_only`` rules need an execution trace
    target; ``opt_in`` rules run only when named in ``--select``.
    """

    id: str
    name: str
    severity: str
    engines: tuple[str, ...]
    doc: str
    fn: Callable[[AnalysisContext], list[Finding]]
    trace_only: bool = False
    opt_in: bool = False


_RULES: dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    *,
    name: str,
    severity: str,
    engines: tuple[str, ...] = (),
    doc: str = "",
    trace_only: bool = False,
    opt_in: bool = False,
) -> Callable:
    """Class-of-service decorator: register ``fn`` as rule ``rule_id``.

    ``fn`` takes an :class:`AnalysisContext` and returns its findings
    (possibly empty).  Registering the same id twice is a programming
    error — rule ids are the stable public contract of baselines and
    SARIF output.
    """
    if severity not in SEVERITIES:
        raise ValueError(
            f"unknown severity {severity!r} (choose from {SEVERITIES})"
        )

    def deco(fn: Callable[[AnalysisContext], list[Finding]]) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        _RULES[rule_id] = Rule(
            rule_id,
            name,
            severity,
            engines,
            doc or (fn.__doc__ or "").strip().splitlines()[0],
            fn,
            trace_only=trace_only,
            opt_in=opt_in,
        )
        return fn

    return deco


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    if rule_id not in _RULES:
        raise ValueError(
            f"unknown rule {rule_id!r} "
            f"(registered: {', '.join(sorted(_RULES))})"
        )
    return _RULES[rule_id]


def _parse_selection(spec: str | Iterable[str] | None) -> list[str]:
    if spec is None:
        return []
    if isinstance(spec, str):
        return [s.strip() for s in spec.split(",") if s.strip()]
    return [s for s in spec if s]


def _matches(rule_id: str, patterns: list[str]) -> bool:
    """``--select``/``--ignore`` matching: exact id or id prefix.

    ``RACE`` selects ``RACE001`` and ``RACE002``; ``RACE001`` exactly
    one rule.  Prefix matching mirrors ruff's rule-family selection.
    """
    return any(rule_id == p or rule_id.startswith(p) for p in patterns)


def select_rules(
    select: str | Iterable[str] | None = None,
    ignore: str | Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve ``--select``/``--ignore`` to the rules to run, id order.

    No ``select`` means every registered rule (opt-in rules are still
    skipped at run time unless explicitly named).  Unknown patterns —
    matching no registered rule — are an error, so a typo cannot
    silently disable an analyzer.
    """
    sel = _parse_selection(select)
    ign = _parse_selection(ignore)
    known = sorted(_RULES)
    for pat in sel + ign:
        if not any(_matches(rid, [pat]) for rid in known):
            raise ValueError(
                f"unknown rule or rule prefix {pat!r} "
                f"(registered: {', '.join(known)})"
            )
    rules = all_rules()
    if sel:
        rules = [r for r in rules if _matches(r.id, sel)]
    if ign:
        rules = [r for r in rules if not _matches(r.id, ign)]
    return rules


@dataclass
class AnalysisReport:
    """Everything the engine knows about one lint target.

    ``engine`` is the race-pass engine that actually ran (``sp-bags``
    or ``closure``), kept at the top level for compatibility with the
    PR 2 JSON shape; per-rule engines live in the registry.
    """

    target: str
    engine: str
    num_nodes: int
    findings: list[Finding] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()

    def by_rule(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule_id]

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        """Unsuppressed error findings — the ones that fail the lint."""
        return [
            f
            for f in self.findings
            if f.severity == "error" and not f.suppressed
        ]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        """True iff no unsuppressed error finding remains."""
        return not self.errors

    # -- PR 2 compatibility views --------------------------------------
    # ``races``/``data_races``/``diagnostics`` describe the RACE001
    # pass exactly as the old single-engine lint did.

    @property
    def race_findings(self) -> list[Finding]:
        return self.by_rule("RACE001")

    @property
    def data_races(self) -> list[Finding]:
        return [
            f for f in self.race_findings if f.kind == "data-race"
        ]

    def to_dict(self) -> dict:
        out = {
            "target": self.target,
            "engine": self.engine,
            "nodes": self.num_nodes,
            "clean": self.clean,
            "races": len(self.race_findings),
            "data_races": len(self.data_races),
            "diagnostics": [
                f.extra["diagnostic"]
                for f in self.race_findings
                if "diagnostic" in f.extra
            ],
            "rules": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "suppressed": len(self.suppressed),
        }
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        head = f"{self.target}: {self.num_nodes} nodes, engine={self.engine}"
        if not self.findings:
            return f"{head}: clean — no races"
        order = {s: i for i, s in enumerate(SEVERITIES)}
        shown = sorted(
            self.findings,
            key=lambda f: (order.get(f.severity, 99), f.rule),
        )
        counts = ", ".join(
            f"{len(self.by_severity(s))} {s}(s)"
            for s in SEVERITIES
            if self.by_severity(s)
        )
        tail = (
            f" ({len(self.suppressed)} baseline-suppressed)"
            if self.suppressed
            else ""
        )
        lines = [f"{head}: {counts}{tail}"]
        lines += [f"  {f.render()}" for f in shown]
        return "\n".join(lines)


def run_analysis(
    ctx: AnalysisContext, rules: Sequence[Rule] | None = None
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over one context.

    Per rule: ``trace_only`` rules are skipped when the context has no
    execution trace, ``opt_in`` rules unless their id is in
    ``ctx.explicit``.  Each rule runs in an ``analysis.<id>`` span;
    findings are concatenated in rule-id order.
    """
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    ran: list[str] = []
    with obs.span(
        "analysis.run", target=ctx.target, nodes=ctx.comp.num_nodes
    ) as spn:
        for rule in rules:
            if rule.trace_only and ctx.trace is None:
                continue
            if rule.opt_in and rule.id not in ctx.explicit:
                continue
            with obs.span(f"analysis.{rule.id}") as rspn:
                new = rule.fn(ctx)
                if rspn is not None:
                    rspn.attrs["findings"] = len(new)
            findings.extend(new)
            ran.append(rule.id)
            if obs.enabled():
                obs.add("analysis.findings", len(new))
                obs.add(f"analysis.{rule.id}.findings", len(new))
        if spn is not None:
            spn.attrs["findings"] = len(findings)
            spn.attrs["rules"] = len(ran)
    if obs.enabled():
        obs.add("analysis.runs")
    return AnalysisReport(
        target=ctx.target,
        engine=ctx.resolved_engine or ctx.engine,
        num_nodes=ctx.comp.num_nodes,
        findings=findings,
        rules_run=tuple(ran),
    )
