"""Analysis: empirical regeneration of the paper's Figure 1 lattice."""

from repro.analysis.lattice import (
    KNOWN_DEVIATIONS,
    MEASURED_CONSTRUCTIBLE,
    PAPER_CONSTRUCTIBLE,
    PAPER_EDGES,
    PAPER_INCOMPARABLE,
    PAPER_MODELS,
    LatticeResult,
    compute_lattice,
)
from repro.analysis.anomalies import (
    AnomalyCatalog,
    catalog_anomalies,
    render_catalog,
)
from repro.analysis.characterize import (
    ModelCharacterization,
    characterize_model,
    render_characterization,
)
from repro.analysis.density import (
    DensityReport,
    measure_density,
    render_density,
)
from repro.analysis.open_problems import (
    StarVsLcReport,
    explore_star_vs_lc,
    render_star_report,
)
from repro.analysis.reproduce import (
    ReproductionReport,
    SectionResult,
    full_reproduction,
    render_report,
)
from repro.analysis.report import (
    render_computation,
    render_dot,
    render_inclusion_matrix,
    render_lattice_result,
    render_pair,
)

__all__ = [
    "PAPER_MODELS",
    "PAPER_EDGES",
    "PAPER_INCOMPARABLE",
    "PAPER_CONSTRUCTIBLE",
    "MEASURED_CONSTRUCTIBLE",
    "KNOWN_DEVIATIONS",
    "LatticeResult",
    "compute_lattice",
    "render_computation",
    "render_pair",
    "render_inclusion_matrix",
    "render_lattice_result",
    "StarVsLcReport",
    "explore_star_vs_lc",
    "render_star_report",
    "DensityReport",
    "measure_density",
    "render_density",
    "AnomalyCatalog",
    "catalog_anomalies",
    "render_catalog",
    "render_dot",
    "ModelCharacterization",
    "characterize_model",
    "render_characterization",
    "full_reproduction",
    "render_report",
    "ReproductionReport",
    "SectionResult",
]
