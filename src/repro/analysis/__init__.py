"""Analysis: the Figure 1 lattice machinery and the static-analysis engine.

Two families live here: the empirical regeneration of the paper's
Figure 1 lattice (PR 1), and the multi-rule static-analysis framework
behind ``repro lint`` — the rule registry (:mod:`repro.analysis.registry`),
the built-in rules (:mod:`repro.analysis.race_rules`, backed by
:mod:`repro.analysis.fasttrack`, :mod:`repro.analysis.deadlock`,
:mod:`repro.analysis.portability`), SARIF export
(:mod:`repro.analysis.sarif`) and baseline suppression
(:mod:`repro.analysis.baseline`).  Importing this package registers the
built-in rules.
"""

from repro.analysis.lattice import (
    KNOWN_DEVIATIONS,
    MEASURED_CONSTRUCTIBLE,
    PAPER_CONSTRUCTIBLE,
    PAPER_EDGES,
    PAPER_INCOMPARABLE,
    PAPER_MODELS,
    LatticeResult,
    compute_lattice,
)
from repro.analysis.anomalies import (
    AnomalyCatalog,
    catalog_anomalies,
    render_catalog,
)
from repro.analysis.characterize import (
    ModelCharacterization,
    characterize_model,
    render_characterization,
)
from repro.analysis.density import (
    DensityReport,
    measure_density,
    render_density,
)
from repro.analysis.open_problems import (
    StarVsLcReport,
    explore_star_vs_lc,
    render_star_report,
)
from repro.analysis.reproduce import (
    ReproductionReport,
    SectionResult,
    full_reproduction,
    render_report,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.deadlock import LockCycle, LockEdge, lock_cycles, lock_graph
from repro.analysis.fasttrack import (
    chain_decomposition,
    fasttrack_races,
    fasttrack_trace_races,
)
from repro.analysis.portability import (
    PortabilityVerdict,
    check_portability,
)
from repro.analysis.registry import (
    AnalysisContext,
    AnalysisReport,
    Finding,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    run_analysis,
    select_rules,
)
from repro.analysis.report import (
    render_computation,
    render_dot,
    render_inclusion_matrix,
    render_lattice_result,
    render_pair,
)
from repro.analysis.sarif import sarif_document, validate_sarif

# Importing the rules module populates the registry as a side effect.
import repro.analysis.race_rules  # noqa: E402,F401

__all__ = [
    "PAPER_MODELS",
    "PAPER_EDGES",
    "PAPER_INCOMPARABLE",
    "PAPER_CONSTRUCTIBLE",
    "MEASURED_CONSTRUCTIBLE",
    "KNOWN_DEVIATIONS",
    "LatticeResult",
    "compute_lattice",
    "render_computation",
    "render_pair",
    "render_inclusion_matrix",
    "render_lattice_result",
    "StarVsLcReport",
    "explore_star_vs_lc",
    "render_star_report",
    "DensityReport",
    "measure_density",
    "render_density",
    "AnomalyCatalog",
    "catalog_anomalies",
    "render_catalog",
    "render_dot",
    "ModelCharacterization",
    "characterize_model",
    "render_characterization",
    "full_reproduction",
    "render_report",
    "ReproductionReport",
    "SectionResult",
    "AnalysisContext",
    "AnalysisReport",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_analysis",
    "select_rules",
    "chain_decomposition",
    "fasttrack_races",
    "fasttrack_trace_races",
    "LockCycle",
    "LockEdge",
    "lock_cycles",
    "lock_graph",
    "PortabilityVerdict",
    "check_portability",
    "sarif_document",
    "validate_sarif",
    "DEFAULT_BASELINE",
    "apply_baseline",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
]
