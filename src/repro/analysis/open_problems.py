"""Empirical exploration of the paper's open problems (Section 7).

The paper closes with: *"One obvious open problem is finding a simple
characterization of NW* and WN*."*  Figure 1 records only that
``LC ⊆ NW*`` and ``LC ⊆ WN*``, with strictness unknown (the dashed
lines).  This module attacks the question the way the rest of this
reproduction attacks theorems: bounded-universe computation.

For a model Δ we compute the bounded Δ* (greatest-fixpoint pruning,
:func:`repro.models.constructibility.constructible_version`) and compare
it with LC pair-for-pair on the *sound* fragment.  Because frontier
pairs are kept optimistically, the computed star is an
**over-approximation** of the true Δ* on that fragment; therefore

* a pair found in LC \\ Δ*-bounded would *refute* ``LC ⊆ Δ*`` outright
  (none is ever found — consistent with the paper, and forced by
  LC ⊆ Δ + LC constructible);
* pairs found in Δ*-bounded \\ LC are *candidates* for the strictness
  of ``LC ⊆ Δ*``: they survive every augmentation chain expressible in
  the universe.  Growing the bound lets candidates die; ones that
  persist across bounds are evidence (not proof) of strictness.

Under this library's reading of the predicate table WN is constructible
(``WN* = WN`` — see :data:`repro.analysis.lattice.KNOWN_DEVIATIONS`), so
the WN half of the open problem resolves trivially here:
``LC ⊊ WN* = WN``, witnessed by Figure 3's pair.  The NW half is the
live question, and the bench reports what bounded universes say.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.models.base import MemoryModel
from repro.models.constructibility import constructible_version
from repro.models.location_consistency import LC
from repro.models.universe import Universe

__all__ = ["StarVsLcReport", "explore_star_vs_lc", "render_star_report"]


@dataclass
class StarVsLcReport:
    """Outcome of one bounded Δ*-vs-LC comparison.

    ``strictness_candidates`` are pairs in the bounded Δ* but not in LC
    (evidence that ``LC ⊆ Δ*`` may be strict); ``soundness_violations``
    are pairs in LC but missing from the bounded Δ* (must be empty, by
    Theorem 9.3 — their presence would indicate a bug, not mathematics).
    """

    model_name: str
    max_nodes: int
    sound_max_nodes: int
    rounds: int
    pruned_pairs: int
    pairs_compared: int = 0
    strictness_candidates: list[tuple[Computation, ObserverFunction]] = field(
        default_factory=list
    )
    soundness_violations: list[tuple[Computation, ObserverFunction]] = field(
        default_factory=list
    )

    @property
    def star_equals_lc_on_fragment(self) -> bool:
        """True iff the bounded star coincides with LC on sound sizes."""
        return not self.strictness_candidates and not self.soundness_violations


def explore_star_vs_lc(
    model: MemoryModel, universe: Universe, max_witnesses: int = 8
) -> StarVsLcReport:
    """Compute the bounded Δ* of ``model`` and compare it against LC."""
    res = constructible_version(model, universe)
    report = StarVsLcReport(
        model_name=model.name,
        max_nodes=universe.max_nodes,
        sound_max_nodes=res.sound_max_nodes,
        rounds=res.rounds,
        pruned_pairs=res.pruned_pairs,
    )
    for n in range(res.sound_max_nodes + 1):
        for comp in universe.computations_of_size(n):
            for phi in universe.observers(comp):
                report.pairs_compared += 1
                in_star = res.model.contains(comp, phi)
                in_lc = LC.contains(comp, phi)
                if in_star and not in_lc:
                    if len(report.strictness_candidates) < max_witnesses:
                        report.strictness_candidates.append((comp, phi))
                elif in_lc and not in_star:
                    if len(report.soundness_violations) < max_witnesses:
                        report.soundness_violations.append((comp, phi))
    return report


def render_star_report(report: StarVsLcReport) -> str:
    """Human-readable summary for benches and the experiment log."""
    lines = [
        f"{report.model_name}* vs LC on n ≤ {report.max_nodes} "
        f"(sound to n ≤ {report.sound_max_nodes}):",
        f"  fixpoint: {report.rounds} rounds, {report.pruned_pairs} pairs pruned",
        f"  pairs compared: {report.pairs_compared}",
    ]
    if report.soundness_violations:
        lines.append(
            f"  !! {len(report.soundness_violations)} pairs in LC but not in "
            f"{report.model_name}* — violates Theorem 9.3, investigate"
        )
    else:
        lines.append(f"  LC ⊆ {report.model_name}*: holds on the fragment ✓")
    if report.strictness_candidates:
        lines.append(
            f"  {len(report.strictness_candidates)}+ pairs in "
            f"{report.model_name}* \\ LC — strictness candidates "
            f"(LC ⊊ {report.model_name}* plausible)"
        )
        comp, _phi = report.strictness_candidates[0]
        lines.append(f"    smallest candidate has {comp.num_nodes} nodes")
    else:
        lines.append(
            f"  no pair separates {report.model_name}* from LC on this "
            f"fragment — consistent with {report.model_name}* = LC"
        )
    return "\n".join(lines)
