"""The online consistency game — constructibility, operationally.

Section 3 motivates constructibility with a story: an adversary reveals
the computation one node at a time; an online algorithm must commit
observer-function values as it goes; a model is constructible iff the
algorithm can always avoid getting *stuck* (no valid value for the next
node).  This module turns the story into an executable game:

* :class:`OnlineGame` holds the revealed prefix and the committed
  observer values.  :meth:`OnlineGame.reveal` adds a node (with its
  chosen predecessors) and returns, per location, the values that keep
  the pair inside the model; :meth:`OnlineGame.commit` picks them.
* For a **constructible** model, *every* reachable position offers at
  least one continuation — no adversary (choosing ops, edges, and even
  forcing which legal values the algorithm commits) can ever stall the
  game.  The test suite plays random adversarial games against SC, LC,
  WN and WW and never sticks.
* For NN (and NW) the game is losable: replaying Figure 4's script —
  two concurrent writes, two cross-observing reads, then any non-write
  final node — leaves :meth:`OnlineGame.reveal` with an empty candidate
  set.  :func:`figure4_script` packages that adversary.

The game also makes Theorem 12 tangible: by monotonicity it suffices
that the *fully-connected* reveal (the augmented computation) always
has a continuation, which is exactly what
:func:`repro.models.constructibility.can_extend_to_augmentation` checks
pair by pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction, candidate_values
from repro.core.ops import Op, Location
from repro.dag.digraph import Dag
from repro.errors import ReproError
from repro.models.base import MemoryModel

__all__ = ["OnlineGame", "StuckError", "figure4_script", "play_script"]


class StuckError(ReproError):
    """Raised when a reveal admits no value — the online algorithm lost."""


@dataclass(frozen=True)
class _Reveal:
    """One adversary move: an op and the predecessor set."""

    op: Op
    preds: tuple[int, ...]


class OnlineGame:
    """Incremental construction of a (computation, observer) pair.

    The invariant after every :meth:`commit`: the committed pair is in
    the model.  ``strict`` controls what :meth:`reveal` does when no
    value works: raise :class:`StuckError` (default) or return the empty
    candidate list.
    """

    def __init__(self, model: MemoryModel, strict: bool = True) -> None:
        self.model = model
        self.strict = strict
        self._ops: list[Op] = []
        self._edges: list[tuple[int, int]] = []
        self._rows: dict[Location, list[int | None]] = {}
        self._pending: tuple[Computation, dict[Location, list[int | None]]] | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of committed nodes."""
        return len(self._ops)

    def computation(self) -> Computation:
        """The committed prefix as a computation."""
        return Computation(Dag(len(self._ops), self._edges), self._ops)

    def observer(self) -> ObserverFunction:
        """The committed observer function."""
        comp = self.computation()
        return ObserverFunction(
            comp,
            {loc: tuple(row) for loc, row in self._rows.items()},
            validate=False,
        )

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def reveal(
        self, op: Op, preds: Iterable[int] = ()
    ) -> dict[Location, list[int | None]] | None:
        """Adversary move: the next node, with its direct predecessors.

        Returns, per location, the values the algorithm may commit for
        the new node such that the extended pair stays in the model
        (the dict is empty when the computation touches no locations —
        still a continuable position).  When *no* combination works the
        game is lost: raises :class:`StuckError` if ``strict``, else
        returns ``None``.
        """
        node = len(self._ops)
        preds = tuple(sorted(set(preds)))
        for p in preds:
            if not (0 <= p < node):
                raise ReproError(f"reveal: unknown predecessor {p}")
        new_ops = self._ops + [op]
        new_edges = self._edges + [(p, node) for p in preds]
        comp = Computation(Dag(node + 1, new_edges), new_ops)
        locs = sorted(
            set(comp.locations) | set(self._rows), key=repr
        )
        # Enumerate joint candidates (per-location values for the new
        # node) that keep the pair in the model.
        from itertools import product

        per_loc: list[list[int | None]] = [
            candidate_values(comp, loc, node) for loc in locs
        ]
        valid: dict[Location, set[int | None]] = {loc: set() for loc in locs}
        any_valid = False
        for combo in product(*per_loc):
            rows = {}
            for i, loc in enumerate(locs):
                base = self._rows.get(loc, [None] * node)
                rows[loc] = tuple(base) + (combo[i],)
            phi = ObserverFunction(comp, rows, validate=False)
            if self.model.contains(comp, phi):
                any_valid = True
                for i, loc in enumerate(locs):
                    valid[loc].add(combo[i])
        if not any_valid:
            if self.strict:
                raise StuckError(
                    f"no valid observer value for node {node} ({op!r}) — "
                    f"the model {self.model.name!r} is stuck"
                )
            return None
        self._pending = (
            comp,
            {loc: list(self._rows.get(loc, [None] * node)) for loc in locs},
        )
        return {
            loc: sorted(vals, key=lambda v: (v is None, v))
            for loc, vals in valid.items()
        }

    def commit(self, choice: dict[Location, int | None] | None = None) -> None:
        """Algorithm move: fix the new node's observer values.

        ``choice`` maps locations to values; omitted locations take the
        first valid value found.  The combination must itself be valid
        (checked); on success the node becomes part of the prefix.
        """
        if self._pending is None:
            raise ReproError("commit without a pending reveal")
        comp, base_rows = self._pending
        node = comp.num_nodes - 1
        locs = sorted(base_rows, key=repr)
        from itertools import product

        per_loc: list[list[int | None]] = []
        for loc in locs:
            if choice is not None and loc in choice:
                per_loc.append([choice[loc]])
            else:
                per_loc.append(candidate_values(comp, loc, node))
        for combo in product(*per_loc):
            rows = {
                loc: tuple(base_rows[loc]) + (combo[i],)
                for i, loc in enumerate(locs)
            }
            try:
                phi = ObserverFunction(comp, rows, validate=True)
            except ReproError:
                continue  # user-chosen value violates Definition 2
            if self.model.contains(comp, phi):
                self._ops = list(comp.ops)
                self._edges = sorted(comp.dag.edges)
                self._rows = {
                    loc: list(rows[loc]) for loc in locs
                }
                self._pending = None
                return
        raise StuckError("commit: chosen values are not valid for the model")


def figure4_script() -> list[_Reveal]:
    """The adversary that defeats any online NN algorithm (Figure 4).

    Two concurrent writes, a read after each observing the *other* write
    (forced by the adversary exploiting the algorithm's freedom — in
    this scripted version the values are forced because they are the
    only ones making the game interesting; see the tests for the forcing
    argument), then a final read following everything.
    """
    from repro.core.ops import R, W

    return [
        _Reveal(W("x"), ()),
        _Reveal(W("x"), ()),
        _Reveal(R("x"), (0,)),
        _Reveal(R("x"), (1,)),
        _Reveal(R("x"), (0, 1, 2, 3)),
    ]


def play_script(
    model: MemoryModel,
    script: Sequence[_Reveal],
    choices: Sequence[dict[Location, int | None] | None] = (),
) -> OnlineGame | None:
    """Play a scripted adversary; return the finished game or ``None``
    if the algorithm got stuck.

    ``choices`` are adversary *preferences* for the committed values:
    when the preferred value is among the legal candidates it is taken
    (this is how the Figure-4 adversary steers NN into the trap); when
    the model already forbids it — the mark of a constructible model
    protecting itself — the first legal value is committed instead.
    """
    game = OnlineGame(model, strict=False)
    for i, move in enumerate(script):
        cands = game.reveal(move.op, move.preds)
        if cands is None:
            return None
        choice = choices[i] if i < len(choices) else None
        if choice is not None:
            choice = {
                loc: v for loc, v in choice.items() if v in cands.get(loc, [])
            } or None
        game.commit(choice)
    return game
