"""Dag-consistent memory models (Definition 20).

A Q-dag-consistent observer function satisfies, for every location ``l``
and every triple ``u ≺ v ≺ w`` (``u`` possibly ``⊥``) where ``Q`` holds:

    ``Φ(l, u) = Φ(l, w)  ⟹  Φ(l, v) = Φ(l, u)``.

Two implementations are provided and cross-checked by the test suite:

* :meth:`QDagConsistency.contains_reference` — a direct transcription of
  Definition 20 iterating all precedence triples (``O(|L|·n³)``); works
  for *any* predicate.
* fiber-based fast checks for the four named predicates, derived as
  follows.  Write ``S(l, x) = {u : Φ(l, u) = x}`` (the *fiber* of ``x``).

  - **NN** (``Q ≡ true``): each write fiber must be precedence-convex
    (no node outside the fiber has both an ancestor and a descendant in
    it), and the ``⊥`` fiber must be ancestor-closed (taking ``u = ⊥``).
  - **NW** (middle writes): for each write ``v`` to ``l``, no *other*
    fiber may have a member on each side of ``v``; the ``⊥`` fiber only
    needs a member *after* ``v`` (``u = ⊥`` is always available before).
  - **WN** (source writes): the source must then be the fiber's own
    write ``x`` (a write observes itself), so each write fiber must be
    convex *from its write*: descendants of a non-member ``v`` with
    ``x ≺ v`` may not meet ``S(l, x)``.
  - **WW** (both write): the middle must additionally write ``l``: no
    write fiber ``S(l, x)`` may have a member after another write ``v``
    to ``l`` with ``x ≺ v``.

All four reduce to a handful of bitset intersections per (node, fiber)
pair via the cached transitive closure.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import Location, merged_locations
from repro.dag.digraph import bit_indices
from repro.models.base import MemoryModel
from repro.models.predicates import (
    Predicate,
    nn_predicate,
    nw_predicate,
    wn_predicate,
    ww_predicate,
)

__all__ = ["QDagConsistency", "NN", "NW", "WN", "WW", "dag_consistency_triples"]


def dag_consistency_triples(
    comp: Computation,
) -> Iterator[tuple[int | None, int, int]]:
    """All precedence triples ``u ≺ v ≺ w`` of a computation.

    ``u`` ranges over nodes and ``⊥`` (encoded ``None``); ``v`` and ``w``
    are nodes.  ``⊥ ≺ v`` holds for every node ``v``, so the ``u = None``
    triples are exactly the pairs ``v ≺ w``.
    """
    dag = comp.dag
    for v in comp.nodes():
        ancs = list(bit_indices(dag.ancestors_mask(v)))
        for w in bit_indices(dag.descendants_mask(v)):
            yield None, v, w
            for u in ancs:
                yield u, v, w


class QDagConsistency(MemoryModel):
    """The Q-dag consistency model for a given predicate.

    Parameters
    ----------
    predicate:
        The predicate ``Q(C, l, u, v, w)`` (see
        :mod:`repro.models.predicates`).
    name:
        Display name (e.g. ``"NN"``).
    variant:
        One of ``"NN"``, ``"NW"``, ``"WN"``, ``"WW"`` to enable the fast
        fiber-based membership check, or ``None`` to always use the
        reference triple check (for user-supplied predicates).
    """

    def __init__(
        self, predicate: Predicate, name: str, variant: str | None = None
    ) -> None:
        if variant not in (None, "NN", "NW", "WN", "WW"):
            raise ValueError(f"unknown variant {variant!r}")
        self.predicate = predicate
        self.name = name
        self.variant = variant
        self._check = (
            None
            if variant is None
            else {
                "NN": self._check_nn,
                "NW": self._check_nw,
                "WN": self._check_wn,
                "WW": self._check_ww,
            }[variant]
        )

    # ------------------------------------------------------------------
    # Reference implementation (any predicate)
    # ------------------------------------------------------------------

    def contains_reference(
        self, comp: Computation, phi: ObserverFunction
    ) -> bool:
        """Literal Definition 20 check over all precedence triples."""
        locs = set(comp.locations) | set(phi.locations)
        for loc in locs:
            row = phi.row(loc)
            for u, v, w in dag_consistency_triples(comp):
                phi_u = None if u is None else row[u]
                if phi_u != row[w]:
                    continue
                if not self.predicate(comp, loc, u, v, w):
                    continue
                if row[v] != phi_u:
                    return False
        return True

    # ------------------------------------------------------------------
    # Fast fiber-based implementations
    # ------------------------------------------------------------------

    @staticmethod
    def _check_nn(comp: Computation, loc: Location, row) -> bool:
        fibers: dict[int | None, int] = {}
        for u, x in enumerate(row):
            fibers[x] = fibers.get(x, 0) | (1 << u)
        dag = comp.dag
        bot = fibers.get(None, 0)
        for x, members in fibers.items():
            if x is None:
                # ⊥ fiber ancestor-closed: nothing outside it precedes a member.
                for v in comp.nodes():
                    if not (bot & (1 << v)) and (dag.descendants_mask(v) & bot):
                        return False
                continue
            for v in comp.nodes():
                if members & (1 << v):
                    continue
                if (dag.ancestors_mask(v) & members) and (
                    dag.descendants_mask(v) & members
                ):
                    return False
        return True

    @staticmethod
    def _check_nw(comp: Computation, loc: Location, row) -> bool:
        fibers: dict[int | None, int] = {}
        for u, x in enumerate(row):
            fibers[x] = fibers.get(x, 0) | (1 << u)
        dag = comp.dag
        for v in comp.writers(loc):
            for x, members in fibers.items():
                if x == v:
                    continue
                if x is None:
                    # u = ⊥ always precedes v, so a later ⊥-observer suffices.
                    if dag.descendants_mask(v) & members:
                        return False
                elif (dag.ancestors_mask(v) & members) and (
                    dag.descendants_mask(v) & members
                ):
                    return False
        return True

    @staticmethod
    def _check_wn(comp: Computation, loc: Location, row) -> bool:
        fibers: dict[int | None, int] = {}
        for u, x in enumerate(row):
            fibers[x] = fibers.get(x, 0) | (1 << u)
        dag = comp.dag
        for x, members in fibers.items():
            if x is None:
                continue
            desc_x = dag.descendants_mask(x)
            for v in bit_indices(desc_x & ~members):
                if dag.descendants_mask(v) & members:
                    return False
        return True

    @staticmethod
    def _check_ww(comp: Computation, loc: Location, row) -> bool:
        fibers: dict[int | None, int] = {}
        for u, x in enumerate(row):
            fibers[x] = fibers.get(x, 0) | (1 << u)
        dag = comp.dag
        writers_mask = comp.writers_mask(loc)
        for x, members in fibers.items():
            if x is None:
                continue
            desc_x = dag.descendants_mask(x)
            for v in bit_indices(desc_x & writers_mask & ~(1 << x)):
                if dag.descendants_mask(v) & members:
                    return False
        return True

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        check = self._check
        if check is None:
            return self.contains_reference(comp, phi)
        locs = merged_locations(comp.locations, phi.locations)
        return all(check(comp, loc, phi.row(loc)) for loc in locs)


NN = QDagConsistency(nn_predicate, "NN", variant="NN")
"""NN-dag consistency: the strongest dag-consistent model (Theorem 21)."""

NW = QDagConsistency(nw_predicate, "NW", variant="NW")
"""NW-dag consistency (middle node writes)."""

WN = QDagConsistency(wn_predicate, "WN", variant="WN")
"""WN-dag consistency — "dag consistency" of [BFJ+96a]."""

WW = QDagConsistency(ww_predicate, "WW", variant="WW")
"""WW-dag consistency — the original dag consistency of [BFJ+96b]."""
