"""Constructibility (Section 3) and constructible versions (Definition 8).

A model Δ is *constructible* (Definition 6) when every observer function
for a prefix extends to the full computation: an online algorithm never
gets "stuck" having produced an observer function it cannot continue.
Theorem 12 reduces checking constructibility of a *monotonic* model to
its closure under single-node *augmentation* (Definition 11): only the
extension by a final node that succeeds everything must be checkable.

This module provides:

* :func:`augmentation_extensions` — the Φ' candidates for ``aug_o(C)``
  extending a given Φ (only the final node's row entries are free).
* :func:`can_extend_to_augmentation` / :func:`augmentation_closed_at` —
  the Theorem-12 one-step test at a single pair.
* :func:`find_nonconstructibility_witness` — search a bounded universe
  for a pair that cannot be extended (e.g. rediscovers Figure 4 for NN).
* :func:`constructible_version` — the bounded-universe greatest-fixpoint
  computation of Δ* (Definition 8), used by the Theorem 23 benchmark to
  verify ``NN* = LC``.
* :func:`is_constructible_prefix_definition` — the literal Definition 6
  check over all prefixes of a computation (exponential; used in tests to
  validate the Theorem 12 reduction).

Soundness of the bounded Δ*
---------------------------
Δ* is the union of all constructible models inside Δ, equivalently the
greatest fixpoint of the pruning operator

    ``P(Δ)(C) = {Φ ∈ Δ(C) : ∀o ∈ O, ∃Φ' ∈ Δ(aug_o(C)) with Φ'|C = Φ}``

(for monotonic Δ, by Theorem 12).  Restricted to computations of at most
``n`` nodes, augmentations of size-``n`` computations fall outside the
universe; those pairs are kept *optimistically*.  After ``t`` pruning
rounds the result is exact for computations of size ``≤ n - t`` **when
the iteration converged for them**; :func:`constructible_version` tracks
and reports the sound size bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import Iterable, Iterator

from repro import _caching
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import Op, Location
from repro.models.base import ExplicitModel, MemoryModel, cached_membership
from repro.models.universe import Universe

__all__ = [
    "augmentation_extensions",
    "can_extend_to_augmentation",
    "augmentation_closed_at",
    "find_nonconstructibility_witness",
    "constructible_version",
    "ConstructibleVersionResult",
    "is_constructible_prefix_definition",
]


def augmentation_extensions(
    comp: Computation, phi: ObserverFunction, o: Op
) -> Iterator[tuple[Computation, ObserverFunction]]:
    """All valid observer functions for ``aug_o(comp)`` restricting to ``phi``.

    The augmented computation adds one node ``f = final(C)`` succeeding
    every node; an extension Φ' must agree with Φ on old nodes, so only
    the values ``Φ'(l, f)`` are free.  Candidates per location: ``f``
    itself if ``o`` writes the location (condition 2.3), else ``⊥`` or
    any write to the location (``f`` succeeds everything, so condition
    2.2 — ``¬(f ≺ w)`` — never prunes).
    """
    aug = comp.augment(o)
    f = comp.num_nodes
    locs = tuple(
        sorted(set(aug.locations) | set(phi.locations), key=repr)
    )
    cands: list[list[int | None]] = []
    for loc in locs:
        if o.writes(loc):
            cands.append([f])
        else:
            cands.append([None] + aug.writers(loc))
    for choice in product(*cands):
        mapping = {
            loc: phi.row(loc) + (choice[i],) for i, loc in enumerate(locs)
        }
        yield aug, ObserverFunction(aug, mapping, validate=False)


@lru_cache(maxsize=1 << 15)
def _extension_pairs(
    comp: Computation, phi: ObserverFunction, o: Op
) -> tuple[tuple[Computation, ObserverFunction], ...]:
    """Materialized, memoized :func:`augmentation_extensions`.

    The candidate extensions of a pair are model-independent, but every
    model's augmentation-closure test regenerates them; sweeping several
    models over one universe (the Figure 1 battery) hits this cache once
    per model after the first.  Extension counts are tiny (``⊥`` plus the
    writers per location), so materializing is cheap; only intended for
    the small computations of enumeration universes.
    """
    return tuple(augmentation_extensions(comp, phi, o))


def can_extend_to_augmentation(
    model: MemoryModel, comp: Computation, phi: ObserverFunction, o: Op
) -> bool:
    """True iff some Φ' ∈ Δ(aug_o(C)) restricts to Φ.

    Models with a proved closed-form answer (SC and LC override
    ``augmentation_extends``) skip the candidate search; the test suite
    checks those shortcuts against this generic search on whole
    universes.  With caching disabled both shortcuts and memoization are
    bypassed, preserving the baseline code path for benchmarks.
    """
    if not _caching.ENABLED:
        return any(
            model.contains(aug, phi2)
            for aug, phi2 in augmentation_extensions(comp, phi, o)
        )
    fast = model.augmentation_extends
    if fast is not None:
        return fast(comp, phi, o)
    return any(
        cached_membership(model, aug, phi2)
        for aug, phi2 in _extension_pairs(comp, phi, o)
    )


def augmentation_closed_at(
    model: MemoryModel,
    comp: Computation,
    phi: ObserverFunction,
    alphabet: Iterable[Op],
) -> Op | None:
    """Theorem 12's condition at one pair.

    Returns ``None`` if Φ extends to ``aug_o(C)`` within the model for
    every ``o`` in the alphabet, else the first failing ``o`` (a
    non-constructibility certificate for monotonic models).
    """
    for o in alphabet:
        if not can_extend_to_augmentation(model, comp, phi, o):
            return o
    return None


@dataclass(frozen=True)
class NonconstructibilityWitness:
    """A certificate that a (monotonic) model is not constructible.

    ``(comp, phi)`` is in the model, but no observer function for
    ``comp.augment(blocking_op)`` extending ``phi`` is.
    """

    comp: Computation
    phi: ObserverFunction
    blocking_op: Op


def find_nonconstructibility_witness(
    model: MemoryModel, universe: Universe
) -> NonconstructibilityWitness | None:
    """Search a bounded universe for a Theorem-12 failure.

    Returns the first witness in enumeration order (smallest computation
    first), or ``None`` if the model is augmentation-closed on the whole
    universe.  For monotonic models, a witness proves non-constructibility
    outright; absence of a witness is evidence (and, combined with a
    pencil-and-paper closure argument like Theorem 19's, proof) of
    constructibility.
    """
    for comp, phi in universe.model_pairs(model):
        bad = augmentation_closed_at(model, comp, phi, universe.alphabet)
        if bad is not None:
            return NonconstructibilityWitness(comp, phi, bad)
    return None


@dataclass
class ConstructibleVersionResult:
    """Output of :func:`constructible_version`.

    Attributes
    ----------
    model:
        The pruned pairs as an :class:`~repro.models.base.ExplicitModel`.
    sound_max_nodes:
        Sizes up to this bound are *exactly* Δ* restricted to the
        universe's alphabet/locations; larger sizes may still contain
        optimistically-kept pairs.
    rounds:
        Number of pruning sweeps executed (including the final sweep that
        made no change).
    pruned_pairs:
        Total number of pairs removed from the original model.
    """

    model: ExplicitModel
    sound_max_nodes: int
    rounds: int
    pruned_pairs: int


def constructible_version(
    model: MemoryModel, universe: Universe, name: str | None = None
) -> ConstructibleVersionResult:
    """Compute Δ* on a bounded universe by greatest-fixpoint pruning.

    Requires ``model`` to be monotonic for the Theorem-12 augmentation
    test to coincide with Definition 6 (all models shipped in this
    package are; see the monotonicity tests).
    """
    # Materialize Δ restricted to the universe, grouped by computation.
    members: dict[Computation, set[ObserverFunction]] = {}
    for comp, phi in universe.model_pairs(model):
        members.setdefault(comp, set()).add(phi)

    alphabet = universe.alphabet
    max_n = universe.max_nodes

    def survives(comp: Computation, phi: ObserverFunction) -> bool:
        for o in alphabet:
            ok = False
            for aug, phi2 in _extension_pairs(comp, phi, o):
                if phi2 in members.get(aug, ()):
                    ok = True
                    break
            if not ok:
                return False
        return True

    pruned_total = 0
    rounds = 0
    while True:
        rounds += 1
        removed_this_round = 0
        # Frontier pairs (size == max_n) have augmentations outside the
        # universe; keep them optimistically.
        for comp in list(members):
            if comp.num_nodes >= max_n:
                continue
            keep = {phi for phi in members[comp] if survives(comp, phi)}
            removed_this_round += len(members[comp]) - len(keep)
            members[comp] = keep
        pruned_total += removed_this_round
        if removed_this_round == 0:
            break

    result_model = ExplicitModel(
        ((comp, phi) for comp, phis in members.items() for phi in phis),
        name=name or f"({model.name})* on n<={max_n}",
    )
    # Pairs at size k are sound once every chain of forced augmentations
    # from size k has stabilized.  Convergence of the sweep means sizes
    # < max_n reached a fixpoint *given* optimistic frontier pairs, so
    # only the frontier itself is unsound.
    return ConstructibleVersionResult(
        model=result_model,
        sound_max_nodes=max_n - 1,
        rounds=rounds,
        pruned_pairs=pruned_total,
    )


def is_constructible_prefix_definition(
    model: MemoryModel, comp: Computation
) -> bool:
    """Literal Definition 6, restricted to prefixes of one computation.

    For every prefix ``C`` of ``comp`` (via every downset of its dag,
    renumbered) and every Φ ∈ Δ(C), some Φ' ∈ Δ(comp) must restrict to
    Φ.  Exponential in every direction; used in tests on tiny
    computations to validate Theorem 12's reduction.
    """
    full_mask = (1 << comp.num_nodes) - 1
    full_observers = [
        phi for phi in ObserverFunction.enumerate_all(comp)
        if model.contains(comp, phi)
    ]
    for mask in comp.prefix_masks():
        if mask == full_mask:
            continue
        prefix, old_ids = comp.restrict(mask)
        for phi in ObserverFunction.enumerate_all(prefix):
            if not model.contains(prefix, phi):
                continue
            # Does some full observer restrict (under old_ids) to phi?
            ok = False
            for phi_full in full_observers:
                locs = set(phi.locations) | set(phi_full.locations) | set(
                    comp.locations
                )
                if all(
                    phi_full.value(loc, old) == _transport(
                        phi.value(loc, new), old_ids
                    )
                    for loc in locs
                    for new, old in enumerate(old_ids)
                ):
                    ok = True
                    break
            if not ok:
                return False
    return True


def _transport(v: int | None, old_ids: list[int]) -> int | None:
    """Map a prefix-local observer value back to full-computation ids."""
    return None if v is None else old_ids[v]
