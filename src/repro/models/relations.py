"""Empirical model relations: inclusion, separation, completeness,
monotonicity (Definitions 4–5 and the Figure 1 lattice).

These checks are necessarily *bounded*: a membership oracle cannot decide
``Δ ⊆ Δ'`` over all computations.  Inclusions verified on a universe are
certificates for the bounded fragment; separations (witnesses) are full
proofs of non-inclusion.  The Figure 1 benchmark combines both: every
strict edge of the lattice needs an inclusion sweep *and* a witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import kernels
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.models.base import MemoryModel
from repro.models.universe import Universe

__all__ = [
    "SeparationWitness",
    "is_stronger_on",
    "separating_witness",
    "inclusion_matrix",
    "is_complete_on",
    "is_monotonic_on",
    "shrink_witness",
]


@dataclass(frozen=True)
class SeparationWitness:
    """A pair proving ``weaker ⊄ stronger``: it is in ``in_model`` only.

    ``(comp, phi) ∈ in_model`` but ``∉ not_in_model`` — i.e. a behaviour
    the first model allows and the second forbids.
    """

    comp: Computation
    phi: ObserverFunction
    in_model: str
    not_in_model: str


def is_stronger_on(
    a: MemoryModel, b: MemoryModel, universe: Universe
) -> SeparationWitness | None:
    """Check ``a ⊆ b`` ("a is stronger than b", Definition 4) on a universe.

    Returns ``None`` when every pair of ``a`` in the universe is also in
    ``b``; otherwise the first counterexample (a certificate that ``a`` is
    *not* stronger than ``b``).
    """
    for comp, phi in universe.pairs():
        if a.contains(comp, phi) and not b.contains(comp, phi):
            return SeparationWitness(comp, phi, a.name, b.name)
    return None


def separating_witness(
    a: MemoryModel, b: MemoryModel, universe: Universe
) -> SeparationWitness | None:
    """A pair in ``b`` but not in ``a`` (proving the inclusion ``a ⊇ b``
    fails, i.e. that ``b`` is strictly weaker if ``a ⊆ b`` also holds).

    Enumeration is smallest-computation-first, so the returned witness is
    minimal in node count (the library's analogue of the paper's Figures
    2–4, which are all minimal or near-minimal examples).
    """
    for comp, phi in universe.pairs():
        if b.contains(comp, phi) and not a.contains(comp, phi):
            return SeparationWitness(comp, phi, b.name, a.name)
    return None


def inclusion_matrix(
    models: Sequence[MemoryModel],
    universe: Universe,
    jobs: int | None = None,
) -> dict[tuple[str, str], bool]:
    """For every ordered pair, whether ``models[i] ⊆ models[j]`` holds on
    the universe.  A single enumeration pass evaluates all models per
    pair, so the cost is ``|pairs| × |models|`` membership tests.

    ``jobs`` delegates the sweep to the sharded engine
    (:func:`repro.runtime.parallel.parallel_inclusion_matrix`); ``None``
    keeps the serial in-process loop below.  Both produce identical
    matrices — the merge is a conjunction over a partition.
    """
    if jobs is not None:
        from repro.runtime.parallel import parallel_inclusion_matrix

        included, _stats = parallel_inclusion_matrix(
            models, universe, jobs=jobs
        )
        return included
    names = [m.name for m in models]
    # The fold over per-pair verdicts is a kernel: `bad[i]` has bit `j`
    # set iff some pair was in models[i] but not models[j], refuting
    # the inclusion i ⊆ j.
    bad = kernels.inclusion_fold(
        len(models),
        (
            tuple(m.contains(comp, phi) for m in models)
            for comp, phi in universe.pairs()
        ),
    )
    return {
        (x, y): not (bad[i] >> j) & 1
        for i, x in enumerate(names)
        for j, y in enumerate(names)
    }


def is_complete_on(
    model: MemoryModel, computations: Iterable[Computation]
) -> Computation | None:
    """Completeness check: every computation admits some observer function.

    Returns the first computation with no member observer function, or
    ``None`` when the model is complete on the given family.
    """
    for comp in computations:
        if not model.admits(comp):
            return comp
    return None


def is_monotonic_on(
    model: MemoryModel, universe: Universe
) -> tuple[Computation, ObserverFunction, Computation] | None:
    """Monotonicity check (Definition 5) on a bounded universe.

    For every member pair and every relaxation of its computation, the
    pair (with the same Φ) must stay in the model.  Returns the first
    violating ``(comp, phi, relaxation)`` triple, or ``None``.

    Note relaxations of an ordered-dag computation are ordered-dag
    computations, so the check stays inside the universe's closure.
    """
    for comp, phi in universe.model_pairs(model):
        for relaxed in comp.relaxations():
            if relaxed == comp:
                continue
            phi_rel = ObserverFunction(
                relaxed,
                {loc: phi.row(loc) for loc in phi.locations},
                validate=False,
            )
            if not model.contains(relaxed, phi_rel):
                return comp, phi, relaxed
    return None


def shrink_witness(
    a: MemoryModel, b: MemoryModel, witness: SeparationWitness
) -> SeparationWitness:
    """Greedily shrink a separation witness (in ``b``, not in ``a``).

    Tries removing sink nodes and dropping observer rows' computation
    edges while the separation persists, yielding a smaller, more
    readable example.  Removal keeps node sets prefix-closed so observer
    restriction stays valid.
    """
    comp, phi = witness.comp, witness.phi

    def separated(c: Computation, p: ObserverFunction) -> bool:
        return b.contains(c, p) and not a.contains(c, p)

    changed = True
    while changed:
        changed = False
        # Try dropping any node whose removal keeps a downset (i.e. sinks).
        n = comp.num_nodes
        for u in range(n):
            if comp.dag.successor_mask(u):
                continue
            mask = ((1 << n) - 1) & ~(1 << u)
            sub, old_ids = comp.restrict(mask)
            try:
                sub_phi = phi.relabel(sub, old_ids)
            except Exception:
                continue
            if separated(sub, sub_phi):
                comp, phi = sub, sub_phi
                changed = True
                break
        if changed:
            continue
        # Try dropping an edge (relaxation).
        for edge in sorted(comp.dag.edges):
            relaxed = comp.relax([edge])
            phi_rel = ObserverFunction(
                relaxed,
                {loc: phi.row(loc) for loc in phi.locations},
                validate=False,
            )
            if separated(relaxed, phi_rel):
                comp, phi = relaxed, phi_rel
                changed = True
                break
    return SeparationWitness(comp, phi, witness.in_model, witness.not_in_model)
