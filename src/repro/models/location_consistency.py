"""Location consistency (Definition 18).

``LC = {(C, Φ) : ∀l ∃T ∈ TS(C) ∀u, Φ(l, u) = W_T(l, u)}``

Each location behaves as if its writes were serialized, but different
locations may be serialized by *different* topological sorts.  This is
the model the paper proves equal to the constructible version of NN-dag
consistency (Theorem 23), and the model maintained by the BACKER
algorithm (Luchangco 1997; simulated in :mod:`repro.runtime.backer`).

Membership is decided in polynomial time by the block-partition argument
of :mod:`repro.models.membership` — no enumeration of topological sorts
is needed.  :meth:`LocationConsistency.witness_orders` additionally
returns the per-location certificate sorts, and the test suite
cross-checks both against the brute-force definitional check
(:meth:`LocationConsistency.contains_bruteforce`).
"""

from __future__ import annotations

from functools import lru_cache

from repro import _caching
from repro.core.computation import Computation
from repro.core.last_writer import last_writer_row
from repro.core.observer import ObserverFunction
from repro.core.ops import Location, merged_locations
from repro.dag.toposort import cached_topological_sorts
from repro.models.base import MemoryModel, cached_membership
from repro.models.membership import block_witness_order, location_blocks_admissible

__all__ = ["LocationConsistency", "LC"]

#: Node-count bound for deciding membership by materialized per-location
#: row sets (at most ``n!`` sorts per computation — keep it small).
_ROW_SET_MAX_NODES = 6


@lru_cache(maxsize=1 << 15)
def _lc_row_set(
    comp: Computation, loc: Location
) -> frozenset[tuple[int | None, ...]]:
    """Every realizable last-writer row ``W_T(loc, ·)`` for ``comp``.

    Definition 18 decouples locations, so ``(C, Φ) ∈ LC`` iff each
    location's row appears in this set; enumeration sweeps revisit the
    same computation with a handful of observer rows each, and augmented
    computations recur across every extension candidate, which makes the
    materialized set pay for itself quickly.
    """
    return frozenset(
        last_writer_row(comp, order, loc)
        for order in cached_topological_sorts(comp.dag)
    )


class LocationConsistency(MemoryModel):
    """The LC memory model, with polynomial membership."""

    name = "LC"

    @staticmethod
    def _locations(
        comp: Computation, phi: ObserverFunction
    ) -> tuple[Location, ...]:
        # Locations outside this set have all-⊥ rows and no writes in the
        # computation; the empty topological-sort requirement is satisfied
        # by any T, so they never affect membership.
        return merged_locations(comp.locations, phi.locations)

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        if _caching.ENABLED and comp.num_nodes <= _ROW_SET_MAX_NODES:
            return all(
                phi.row(loc) in _lc_row_set(comp, loc)
                for loc in self._locations(comp, phi)
            )
        return all(
            location_blocks_admissible(comp, loc, phi.row(loc))
            for loc in self._locations(comp, phi)
        )

    def augmentation_extends(self, comp, phi, o) -> bool:
        """Closed-form Theorem-12 test: LC closure reduces to membership.

        Definition 18 decouples locations: if each location ``l`` has a
        sort ``T_l`` with ``W_{T_l}(l, ·) = Φ(l, ·)``, then ``T_l·f``
        certifies the extended row on ``aug_o(C)`` (``f`` observes the
        last writer under ``T_l``, or itself when ``o`` writes ``l``),
        and conversely dropping ``f`` from a certificate sort restricts
        an LC extension to an LC member.  This is Theorem 19's closure
        argument, specialized to one augmentation step.
        """
        return cached_membership(self, comp, phi)

    def witness_orders(
        self, comp: Computation, phi: ObserverFunction
    ) -> dict[Location, tuple[int, ...]] | None:
        """Per-location certificate sorts, or ``None`` if ``∉ LC``.

        For each location ``l`` the returned ``T_l`` satisfies
        ``W_{T_l}(l, ·) = Φ(l, ·)`` — exactly Definition 18's existential.
        """
        out: dict[Location, tuple[int, ...]] = {}
        for loc in self._locations(comp, phi):
            order = block_witness_order(comp, loc, phi.row(loc))
            if order is None:
                return None
            out[loc] = order
        return out

    def contains_bruteforce(
        self, comp: Computation, phi: ObserverFunction
    ) -> bool:
        """Definitional check: enumerate ``TS(C)`` per location.

        Exponential; used only to validate the polynomial algorithm on
        small computations.
        """
        for loc in self._locations(comp, phi):
            want = phi.row(loc)
            if not any(
                last_writer_row(comp, order, loc) == want
                for order in cached_topological_sorts(comp.dag)
            ):
                return False
        return True


LC = LocationConsistency()
"""Module-level LC instance (the model is stateless)."""
