"""Causal consistency, formulated computation-centrically (§7 exercise).

The paper closes by inviting other consistency models into the
framework ("Another direction is to formulate other consistency models
in the computation-centric framework").  This module does it for
**causal memory** (Ahamad et al. 1995), whose processor-centric form
says: writes must become visible in an order consistent with potential
causality (program order ∪ reads-from, transitively).

Computation-centric rendering.  Given (C, Φ), define the *causal order*
``κ`` as the transitive closure of the dag edges together with the
observation edges ``Φ(l, u) → u`` (a node is causally after the write
it observed).  Then::

    (C, Φ) ∈ CC  iff  κ is acyclic, and for every l, u:
                      no l-write w' satisfies Φ(l, u) ≺κ w' ≼κ u
                      (taking Φ(l, u) = ⊥ as causally before everything)

i.e. each node observes a write that is not *causally overwritten* in
its own causal past.  The dag's precedence generalizes program order
exactly as the paper's SC/LC definitions generalize Lamport's.

Lattice position (established empirically by the characterization tests
and the litmus bench):

* ``SC ⊆ CC`` — a global serialization is in particular causal;
* CC is *incomparable* with LC and the dag-consistent family: CC admits
  Figure 4's cross-observing pair (concurrent writes carry no causal
  order) which LC forbids, and forbids WW's stale-⊥ read (the write is
  in the reader's causal past) which WW admits;
* CC forbids the classical causality litmus outcomes (CoRR, MP, WRC,
  and LB — reads-from ∪ precedence must be acyclic) but admits SB and
  IRIW — the textbook causal-memory profile.

CC is monotonic (removing dag edges removes κ edges) and — unlike NN —
**constructible**: an online algorithm can always have the final node
observe a κ-*maximal* ``l``-write in its causal past (or ⊥ when there is
none).  Maximality means no write is causally between; the new
observation edge only extends κ *into* the final node, so no earlier
node's condition changes.  The augmentation sweep confirms closure on
every universe tested, and the random-adversary game never sticks.
"""

from __future__ import annotations

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.dag.digraph import bit_indices
from repro.models.base import MemoryModel

__all__ = ["CausalConsistency", "CC"]


class CausalConsistency(MemoryModel):
    """The CC memory model (polynomial membership)."""

    name = "CC"

    @staticmethod
    def causal_order(
        comp: Computation, phi: ObserverFunction
    ) -> list[int] | None:
        """Strict-descendant bitsets of the causal order κ, or ``None``
        if the observation edges make it cyclic."""
        n = comp.num_nodes
        succ = [0] * n
        for (u, v) in comp.dag.edges:
            succ[u] |= 1 << v
        for loc in set(comp.locations) | set(phi.locations):
            row = phi.row(loc)
            for u in comp.nodes():
                w = row[u]
                if w is not None and w != u:
                    succ[w] |= 1 << u
        # Kahn for acyclicity + closure over a topological order.
        indeg = [0] * n
        for u in range(n):
            for v in bit_indices(succ[u]):
                indeg[v] += 1
        frontier = [u for u in range(n) if indeg[u] == 0]
        order: list[int] = []
        while frontier:
            u = frontier.pop()
            order.append(u)
            for v in bit_indices(succ[u]):
                indeg[v] -= 1
                if indeg[v] == 0:
                    frontier.append(v)
        if len(order) != n:
            return None  # κ cyclic
        desc = [0] * n
        for u in reversed(order):
            d = succ[u]
            for v in bit_indices(succ[u]):
                d |= desc[v]
            desc[u] = d
        return desc

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        desc = self.causal_order(comp, phi)
        if desc is None:
            return False
        n = comp.num_nodes
        # κ-ancestors, reflexive ("the causal past"), from the descendants.
        past = [1 << u for u in range(n)]
        for x in range(n):
            for v in bit_indices(desc[x]):
                past[v] |= 1 << x
        for loc in set(comp.locations) | set(phi.locations):
            row = phi.row(loc)
            writers = comp.writers_mask(loc)
            if not writers:
                continue
            for u in comp.nodes():
                w = row[u]
                if w is None:
                    # ⊥ observed: no l-write may be in u's causal past.
                    if writers & past[u]:
                        return False
                else:
                    # No l-write strictly κ-between the observed write
                    # and u (κ-past of u ∩ κ-future of w).
                    if desc[w] & past[u] & writers & ~(1 << w):
                        return False
        return True


CC = CausalConsistency()
"""Module-level CC instance (the model is stateless)."""
