"""Bounded enumeration universes of computations and observer functions.

The paper's theorems quantify over *all* computations.  To check them
mechanically we enumerate every computation up to a size bound — every
dag shape (node ids in topological order, which covers every isomorphism
class; see :mod:`repro.dag.enumerate`) crossed with every op labelling —
and, per computation, every valid observer function.

A :class:`Universe` fixes the location set and the op alphabet and
provides iteration, counting and per-model pair extraction.  Sizes grow
fast (dags ``2^(n choose 2)``, labellings ``|O|^n``, observers up to
``(writes+1)^(n·|L|)``), so the intended range is ``n ≤ 5`` with one
location or ``n ≤ 3``–``4`` with two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator

from repro.core.computation import Computation
from repro.core.observer import ObserverFunction, count_observer_functions
from repro.core.ops import N, Op, R, W, Location
from repro.dag.enumerate import ordered_dags
from repro.errors import UniverseError
from repro.models.base import MemoryModel

__all__ = ["Universe", "default_alphabet", "sample_computation", "sample_pair"]


def default_alphabet(
    locations: Iterable[Location], include_nop: bool = True
) -> tuple[Op, ...]:
    """The paper's instruction set ``O`` for a finite location set."""
    ops: list[Op] = []
    for loc in locations:
        ops.append(R(loc))
        ops.append(W(loc))
    if include_nop:
        ops.append(N)
    return tuple(ops)


@dataclass(frozen=True)
class Universe:
    """All computations on at most ``max_nodes`` nodes over ``locations``.

    Parameters
    ----------
    max_nodes:
        Inclusive bound on computation size.
    locations:
        The finite location set ``L``.
    include_nop:
        Whether the alphabet includes the no-op ``N`` (the paper's ``O``
        always does; excluding it shrinks universes for expensive
        experiments — noted wherever a benchmark does so).
    """

    max_nodes: int
    locations: tuple[Location, ...] = ("x",)
    include_nop: bool = True
    _alphabet: tuple[Op, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_alphabet",
            default_alphabet(self.locations, self.include_nop),
        )

    @property
    def alphabet(self) -> tuple[Op, ...]:
        """The instruction alphabet ``O``."""
        return self._alphabet

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def computations_of_size(
        self, n: int, mask_range: tuple[int, int] | None = None
    ) -> Iterator[Computation]:
        """Every computation with exactly ``n`` nodes (ordered-dag ids).

        ``mask_range=(lo, hi)`` restricts the dag shapes to the edge masks
        in ``[lo, hi)`` — the sharding hook of the parallel sweep engine
        (:mod:`repro.runtime.parallel`).  Enumeration order is edge mask
        ascending, then labelling, so concatenating the shards of a
        partition reproduces the unsharded order exactly.
        """
        if n < 0 or n > self.max_nodes:
            raise UniverseError(
                f"size {n} outside universe bound {self.max_nodes}"
            )
        lo, hi = mask_range if mask_range is not None else (0, None)
        for dag in ordered_dags(n, lo, hi):
            for ops in product(self._alphabet, repeat=n):
                yield Computation(dag, ops)

    def computations(self) -> Iterator[Computation]:
        """Every computation of size ``0 .. max_nodes``, smallest first."""
        for n in range(self.max_nodes + 1):
            yield from self.computations_of_size(n)

    def num_edge_masks(self, n: int) -> int:
        """Number of ordered-dag edge masks at size ``n`` (``2^(n choose 2)``)."""
        from repro.dag.enumerate import num_edge_masks

        return num_edge_masks(n)

    def observers(self, comp: Computation) -> Iterator[ObserverFunction]:
        """Every valid observer function for ``comp`` over this universe's
        locations (restricted to the computation's own locations — other
        rows are forced all-⊥ and carry no information)."""
        return ObserverFunction.enumerate_all(comp)

    def pairs(
        self,
        n: int | None = None,
        mask_range: tuple[int, int] | None = None,
    ) -> Iterator[tuple[Computation, ObserverFunction]]:
        """Every (computation, observer) pair, optionally at one size.

        ``mask_range`` shards the dag shapes and requires ``n`` (a mask
        range is meaningless across sizes).
        """
        if mask_range is not None and n is None:
            raise UniverseError("mask_range requires an explicit size n")
        comps = (
            self.computations()
            if n is None
            else self.computations_of_size(n, mask_range)
        )
        for comp in comps:
            for phi in self.observers(comp):
                yield comp, phi

    def model_pairs(
        self,
        model: MemoryModel,
        n: int | None = None,
        mask_range: tuple[int, int] | None = None,
    ) -> Iterator[tuple[Computation, ObserverFunction]]:
        """The pairs of ``model`` within this universe."""
        for comp, phi in self.pairs(n, mask_range):
            if model.contains(comp, phi):
                yield comp, phi

    # ------------------------------------------------------------------
    # Counting (for reports; avoids materializing pairs)
    # ------------------------------------------------------------------

    def count_computations(self, n: int) -> int:
        """Number of computations of size ``n`` (dags × labellings)."""
        from math import comb

        return (2 ** comb(n, 2)) * (len(self._alphabet) ** n)

    def count_pairs(self, n: int) -> int:
        """Number of (computation, observer) pairs of size ``n``."""
        return sum(
            count_observer_functions(comp)
            for comp in self.computations_of_size(n)
        )


def sample_computation(
    rng, max_nodes: int, locations=("x",), include_nop: bool = True,
    edge_probability: float = 0.4,
):
    """One random computation, uniform size in ``[0, max_nodes]``.

    For statistical sweeps at sizes beyond exhaustive reach.  Uses a
    G(n, p)-style dag (edges respect id order) and uniform op labels.
    """
    from repro.core.computation import Computation
    from repro.dag.digraph import Dag

    alphabet = default_alphabet(locations, include_nop)
    n = rng.randint(0, max_nodes)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < edge_probability
    ]
    ops = [rng.choice(alphabet) for _ in range(n)]
    return Computation(Dag(n, edges), ops)


def sample_pair(
    rng, max_nodes: int, locations=("x",), include_nop: bool = True,
    edge_probability: float = 0.4,
):
    """One random (computation, valid observer function) pair.

    Observer values drawn uniformly from Definition 2's pointwise
    candidates, so every sample is valid by construction.
    """
    from repro.core.observer import ObserverFunction, candidate_values

    comp = sample_computation(
        rng, max_nodes, locations, include_nop, edge_probability
    )
    mapping = {}
    for loc in comp.locations:
        mapping[loc] = tuple(
            rng.choice(candidate_values(comp, loc, u)) for u in comp.nodes()
        )
    return comp, ObserverFunction(comp, mapping, validate=False)
