"""Memory models (Sections 3–6 of the paper).

Exports the model zoo — SC, LC, and the four dag-consistent models — plus
the constructibility machinery (Theorem 12 tests, bounded Δ* computation)
and the empirical relation/separation tooling behind the Figure 1
lattice.
"""

from repro.models.base import (
    ExplicitModel,
    IntersectionModel,
    MemoryModel,
    UnionModel,
)
from repro.models.causal import CC, CausalConsistency
from repro.models.constructibility import (
    ConstructibleVersionResult,
    augmentation_closed_at,
    augmentation_extensions,
    can_extend_to_augmentation,
    constructible_version,
    find_nonconstructibility_witness,
    is_constructible_prefix_definition,
)
from repro.models.dag_consistency import NN, NW, WN, WW, QDagConsistency
from repro.models.location_consistency import LC, LocationConsistency
from repro.models.membership import (
    block_witness_order,
    fibers_of_row,
    location_blocks_admissible,
    quotient_is_acyclic,
)
from repro.models.online import (
    OnlineGame,
    StuckError,
    figure4_script,
    play_script,
)
from repro.models.predicates import (
    Predicate,
    nn_predicate,
    nw_predicate,
    wn_predicate,
    ww_predicate,
)
from repro.models.relations import (
    SeparationWitness,
    inclusion_matrix,
    is_complete_on,
    is_monotonic_on,
    is_stronger_on,
    separating_witness,
    shrink_witness,
)
from repro.models.sequential import SC, SequentialConsistency
from repro.models.universe import (
    Universe,
    default_alphabet,
    sample_computation,
    sample_pair,
)

__all__ = [
    "MemoryModel",
    "IntersectionModel",
    "UnionModel",
    "ExplicitModel",
    "SC",
    "SequentialConsistency",
    "LC",
    "LocationConsistency",
    "CC",
    "CausalConsistency",
    "NN",
    "NW",
    "WN",
    "WW",
    "QDagConsistency",
    "Predicate",
    "nn_predicate",
    "nw_predicate",
    "wn_predicate",
    "ww_predicate",
    "Universe",
    "default_alphabet",
    "sample_computation",
    "sample_pair",
    "augmentation_extensions",
    "can_extend_to_augmentation",
    "augmentation_closed_at",
    "find_nonconstructibility_witness",
    "constructible_version",
    "ConstructibleVersionResult",
    "is_constructible_prefix_definition",
    "SeparationWitness",
    "is_stronger_on",
    "separating_witness",
    "inclusion_matrix",
    "is_complete_on",
    "is_monotonic_on",
    "shrink_witness",
    "fibers_of_row",
    "quotient_is_acyclic",
    "location_blocks_admissible",
    "block_witness_order",
    "OnlineGame",
    "StuckError",
    "figure4_script",
    "play_script",
]
