"""Shared machinery for serialization-based membership checks.

Both LC membership (Definition 18) and the post-mortem trace checkers
reduce to the same combinatorial core, the **block partition**: fix a
location ``l`` and group nodes by the write they observe at ``l`` (the
*fibers* of ``Φ(l, ·)``).  Definition 13's segment structure implies that
``Φ(l, ·) = W_T(l, ·)`` for some topological sort ``T`` iff

1. the fibers can be laid out as contiguous segments of ``T``,
2. the ``⊥`` fiber (if non-empty) comes first, and
3. each write fiber's segment starts with its write.

This holds iff the *quotient graph* — one vertex per fiber, an edge
``B → B'`` whenever some dag edge crosses from ``B`` to ``B'`` — is
acyclic and the ``⊥`` fiber has no in-edges.  (Soundness: a topological
order of the quotient, with each block internally topologically sorted
and its write first, concatenates into a witnessing ``T``.  The write can
go first because condition 2.2 of Definition 2 forbids in-block
predecessors of the write.  Completeness: segments of any witnessing
``T`` orient every crossing edge forward, so the quotient is acyclic, and
a ``⊥``-fiber in-edge would place a ⊥-observing node after a write.)

The functions here work on *rows* (``tuple[int | None, ...]`` indexed by
node id) rather than :class:`ObserverFunction` objects so that the trace
checkers can reuse them on partial assignments.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro.core.computation import Computation
from repro.core.ops import Location
from repro.dag.digraph import bit_indices

__all__ = [
    "fibers_of_row",
    "quotient_is_acyclic",
    "location_blocks_admissible",
    "block_witness_order",
]


def fibers_of_row(row: Sequence[int | None]) -> dict[int | None, int]:
    """Group node ids by row value; returns ``{value: node_bitset}``."""
    out: dict[int | None, int] = {}
    for u, v in enumerate(row):
        out[v] = out.get(v, 0) | (1 << u)
    return out


def _quotient(
    comp: Computation, block_of: Sequence[int | None]
) -> tuple[dict[int | None, set[int | None]], set[int | None]]:
    """Quotient adjacency over blocks, and the set of block ids."""
    adj: dict[int | None, set[int | None]] = {}
    ids: set[int | None] = set(block_of)
    for b in ids:
        adj[b] = set()
    for (u, v) in comp.dag.edges:
        bu, bv = block_of[u], block_of[v]
        if bu != bv:
            adj[bu].add(bv)
    return adj, ids


def quotient_is_acyclic(
    comp: Computation, block_of: Sequence[int | None]
) -> bool:
    """True iff the block quotient graph is acyclic.

    The Kahn sweep itself is a kernel
    (:func:`repro.kernels.quotient_is_acyclic`), fed the crossing edges
    with blocks renumbered densely (``⊥`` included like any other
    block — only reachability structure matters for acyclicity).
    """
    ids = sorted(set(block_of), key=lambda b: (b is None, b))
    index = {b: i for i, b in enumerate(ids)}
    bsrcs: list[int] = []
    bdsts: list[int] = []
    for u, v in comp.dag.edges:
        bu, bv = block_of[u], block_of[v]
        if bu != bv:
            bsrcs.append(index[bu])
            bdsts.append(index[bv])
    return kernels.quotient_is_acyclic(len(ids), bsrcs, bdsts)


def location_blocks_admissible(
    comp: Computation, loc: Location, row: Sequence[int | None]
) -> bool:
    """Decide whether ``row`` equals ``W_T(loc, ·)`` for some ``T ∈ TS(C)``.

    ``row`` must already satisfy Definition 2 pointwise at ``loc`` (writes
    observe themselves; observed nodes write ``loc``; no node precedes its
    observed write) — :class:`~repro.core.observer.ObserverFunction`
    guarantees this.  The decision is then purely the block condition
    described in the module docstring, and runs in ``O(V + E)``.
    """
    fibers = fibers_of_row(row)
    # Every write to loc must head its own fiber (sanity; implied by 2.3).
    for w in comp.writers(loc):
        if row[w] != w:
            return False
    block_of = list(row)
    adj, _ids = _quotient(comp, block_of)
    # Bottom fiber (if present) must have no in-edges.
    if None in fibers:
        for b, outs in adj.items():
            if None in outs:
                return False
    return quotient_is_acyclic(comp, block_of)


def block_witness_order(
    comp: Computation, loc: Location, row: Sequence[int | None]
) -> tuple[int, ...] | None:
    """A topological sort ``T`` with ``W_T(loc, ·) == row``, or ``None``.

    The certificate companion of :func:`location_blocks_admissible`: when
    the blocks are admissible, produce the witnessing sort by ordering the
    quotient (⊥ block first), then topologically sorting each block with
    its write first.
    """
    if not location_blocks_admissible(comp, loc, row):
        return None
    fibers = fibers_of_row(row)
    block_of = list(row)
    adj, ids = _quotient(comp, block_of)
    # Topological order of blocks, bottom block first when present.
    indeg: dict[int | None, int] = {b: 0 for b in ids}
    for b, outs in adj.items():
        for c in outs:
            indeg[c] += 1
    frontier = [b for b in ids if indeg[b] == 0 and b is not None]
    order_blocks: list[int | None] = []
    if None in ids:
        order_blocks.append(None)
        for c in adj[None]:
            indeg[c] -= 1
        frontier = [b for b in ids if indeg[b] == 0 and b is not None]
    while frontier:
        b = frontier.pop()
        order_blocks.append(b)
        for c in adj[b]:
            indeg[c] -= 1
            if indeg[c] == 0:
                frontier.append(c)
    assert len(order_blocks) == len(ids), "acyclicity was checked above"

    order: list[int] = []
    for b in order_blocks:
        members = list(bit_indices(fibers[b]))
        # Kahn restricted to the block, preferring the write first.  The
        # write has no in-block predecessors (condition 2.2), so starting
        # with it is always legal.
        member_set = set(members)
        indeg_n = {
            u: sum(1 for p in comp.dag.predecessors(u) if p in member_set)
            for u in members
        }
        avail = [u for u in members if indeg_n[u] == 0]
        if b is not None:
            avail.sort(key=lambda u: (u != b))  # write first
        sub_order: list[int] = []
        while avail:
            u = avail.pop(0)
            sub_order.append(u)
            for v in comp.dag.successors(u):
                if v in member_set:
                    indeg_n[v] -= 1
                    if indeg_n[v] == 0:
                        avail.append(v)
        assert len(sub_order) == len(members), "block subgraph is acyclic"
        order.extend(sub_order)
    return tuple(order)
