"""Sequential consistency (Definition 17).

``SC = {(C, Φ) : ∃T ∈ TS(C) ∀l ∀u, Φ(l, u) = W_T(l, u)}``

A *single* topological sort must explain the observer function at every
location simultaneously — the computation-centric generalization of
Lamport's sequential consistency (no processors or program order needed;
the dag plays that role).

Membership search
-----------------
Unlike LC, the per-location block segments must interleave consistently,
which couples locations; we decide membership by incremental
construction of the witnessing sort.  A node ``u`` may be appended to a
partial sort iff its dag predecessors are all placed and, for every
location it does not write, ``Φ(l, u)`` equals the last writer placed so
far.  Memoizing failed states on ``(placed_mask, last_writers)`` keeps
typical instances fast; the worst case is exponential (verifying
sequential consistency of a behaviour is NP-complete in general, Gibbons
& Korach 1992, so an exact polynomial algorithm is not expected).
"""

from __future__ import annotations

from functools import lru_cache

from repro import _caching
from repro.core.computation import Computation
from repro.core.last_writer import last_writer_function, last_writer_row
from repro.core.observer import ObserverFunction
from repro.core.ops import Location, merged_locations
from repro.models.base import MemoryModel, cached_membership
from repro.models.location_consistency import LC

__all__ = ["SequentialConsistency", "SC"]

#: Node-count bound under which membership is decided by materializing
#: the full set of last-writer row tuples (one per topological sort) —
#: at most ``n!`` sorts, so this must stay small.
_ROW_SET_MAX_NODES = 6


@lru_cache(maxsize=1 << 14)
def _sc_row_sets(
    comp: Computation, locs: tuple[Location, ...]
) -> frozenset[tuple[tuple[int | None, ...], ...]]:
    """Every realizable ``(W_T(l, ·))_l`` row tuple for ``comp``.

    Membership in SC is exactly "Φ's rows form one of these tuples", so
    for the small computations of enumeration universes one materialized
    set per ``(comp, locs)`` answers every observer query by lookup.
    """
    from repro.dag.toposort import cached_topological_sorts

    return frozenset(
        tuple(last_writer_row(comp, order, loc) for loc in locs)
        for order in cached_topological_sorts(comp.dag)
    )


class SequentialConsistency(MemoryModel):
    """The SC memory model, with exact (worst-case exponential) membership."""

    name = "SC"

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        if _caching.ENABLED and comp.num_nodes <= _ROW_SET_MAX_NODES:
            locs = merged_locations(comp.locations, phi.locations)
            rows = tuple(phi.row(loc) for loc in locs)
            return rows in _sc_row_sets(comp, locs)
        return self.witness_order(comp, phi) is not None

    def witness_order(
        self, comp: Computation, phi: ObserverFunction
    ) -> tuple[int, ...] | None:
        """A topological sort ``T`` with ``W_T = Φ`` everywhere, or ``None``.

        Runs the cheap polynomial LC check first: SC ⊆ LC, so an LC
        failure immediately refutes SC membership without any search.
        The pre-check goes through the membership cache — sweeps that
        query both SC and LC on the same pair pay for LC only once.
        """
        if not cached_membership(LC, comp, phi):
            return None
        locs: tuple[Location, ...] = merged_locations(
            comp.locations, phi.locations
        )
        n = comp.num_nodes
        if n == 0:
            return ()
        rows = {loc: phi.row(loc) for loc in locs}
        pred_mask = [comp.dag.predecessor_mask(u) for u in range(n)]
        writes_at = [
            tuple(i for i, loc in enumerate(locs) if comp.op(u).writes(loc))
            for u in range(n)
        ]
        full = (1 << n) - 1
        failed: set[tuple[int, tuple[int | None, ...]]] = set()

        order: list[int] = []

        def search(mask: int, lasts: tuple[int | None, ...]) -> bool:
            if mask == full:
                return True
            key = (mask, lasts)
            if key in failed:
                return False
            for u in range(n):
                if mask & (1 << u) or (pred_mask[u] & ~mask):
                    continue
                ok = True
                for i, loc in enumerate(locs):
                    if i in writes_at[u]:
                        continue  # last writer becomes u's own view below
                    if rows[loc][u] != lasts[i]:
                        ok = False
                        break
                if not ok:
                    continue
                if writes_at[u]:
                    new_lasts = tuple(
                        u if i in writes_at[u] else lasts[i]
                        for i in range(len(locs))
                    )
                else:
                    new_lasts = lasts
                order.append(u)
                if search(mask | (1 << u), new_lasts):
                    return True
                order.pop()
            failed.add(key)
            return False

        if search(0, (None,) * len(locs)):
            result = tuple(order)
            # Paranoia: certify the witness before returning it.
            witness = last_writer_function(comp, result, locs, check_order=True)
            assert all(witness.row(loc) == rows[loc] for loc in locs)
            return result
        return None

    def augmentation_extends(self, comp, phi, o) -> bool:
        """Closed-form Theorem-12 test: SC closure reduces to membership.

        If ``(C, Φ) ∈ SC`` with witness sort ``T``, then ``T·f`` is a
        topological sort of ``aug_o(C)`` (the final node succeeds
        everything, so it is last in every sort) and ``W_{T·f}`` restricts
        to ``W_T = Φ`` — appending ``f`` changes no existing node's last
        writer.  Conversely any SC extension restricts to an SC member by
        dropping ``f`` from its witness sort.  Hence extendability is
        exactly membership, for every op ``o``.
        """
        return cached_membership(self, comp, phi)

    def observers(self, comp, locations=None):
        """Generate SC observer functions directly from topological sorts.

        Faster and more natural than the filtering default: every
        ``W_T`` for ``T ∈ TS(C)`` is an SC observer function and vice
        versa, so we enumerate sorts and deduplicate.
        """
        from repro.dag.toposort import cached_topological_sorts

        seen: set[ObserverFunction] = set()
        locs = tuple(locations) if locations is not None else comp.locations
        for order in cached_topological_sorts(comp.dag):
            phi = last_writer_function(comp, order, locs, check_order=False)
            if phi not in seen:
                seen.add(phi)
                yield phi


SC = SequentialConsistency()
"""Module-level SC instance (the model is stateless)."""
