"""The predicates parameterizing dag consistency (Section 5).

Definition 20 is parameterized by a predicate ``Q(l, u, v, w)`` over a
location and a precedence triple ``u ≺ v ≺ w``.  The paper's four named
predicates depend only on whether ``u`` and ``v`` write ``l`` ("W" for
"write", "N" for "do not care"):

========  ======================================  ==========================
name      predicate                               resulting model
========  ======================================  ==========================
``NN``    ``true``                                strongest dag consistency
``NW``    ``op(v) = W(l)``                        middle node must write
``WN``    ``op(u) = W(l)``                        source node must write
``WW``    ``op(u) = W(l) ∧ op(v) = W(l)``         original [BFJ+96b] model
========  ======================================  ==========================

Note the direction: *strengthening Q weakens the model*, because the
consistency condition 20.1 is only required where Q holds.

Predicates here take the computation explicitly (to look up ops) and
receive ``u`` as ``None`` when ``u = ⊥`` (``v`` and ``w`` can never be
``⊥`` inside a triple ``u ≺ v ≺ w``, since nothing precedes ``⊥``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.computation import Computation
from repro.core.ops import Location

__all__ = ["Predicate", "nn_predicate", "nw_predicate", "wn_predicate", "ww_predicate"]

Predicate = Callable[[Computation, Location, "int | None", int, int], bool]
"""Signature of a dag-consistency predicate ``Q(C, l, u, v, w)``.

``u`` may be ``None`` (the paper's ``⊥``); ``v`` and ``w`` are node ids.
"""


def nn_predicate(
    comp: Computation, loc: Location, u: int | None, v: int, w: int
) -> bool:
    """``Q ≡ true``: condition 20.1 applies to every triple."""
    return True


def nw_predicate(
    comp: Computation, loc: Location, u: int | None, v: int, w: int
) -> bool:
    """``Q ≡ op(v) = W(l)``: only triples whose middle node writes ``l``."""
    return comp.op(v).writes(loc)


def wn_predicate(
    comp: Computation, loc: Location, u: int | None, v: int, w: int
) -> bool:
    """``Q ≡ op(u) = W(l)``: only triples whose source writes ``l``.

    ``u = ⊥`` is not a write, so the condition never applies there.
    """
    return u is not None and comp.op(u).writes(loc)


def ww_predicate(
    comp: Computation, loc: Location, u: int | None, v: int, w: int
) -> bool:
    """``Q ≡ op(u) = W(l) ∧ op(v) = W(l)`` (the original dag consistency)."""
    return (
        u is not None
        and comp.op(u).writes(loc)
        and comp.op(v).writes(loc)
    )
