"""The memory-model abstraction (Definition 3).

A memory model is a set of (computation, observer function) pairs.  The
sets of interest are infinite (they contain pairs for computations of
every size), so a :class:`MemoryModel` here is an *intensional*
representation: a membership predicate :meth:`MemoryModel.contains`, plus
enumeration helpers that realize the extensional view on bounded
universes (used by the Figure-1 and Theorem-23 benchmarks).

Definition 4's "stronger" relation (Δ ⊆ Δ') and the completeness /
monotonicity properties of Section 2 are provided as *bounded* checks in
:mod:`repro.models.relations`; they cannot be decided in general by a
membership oracle alone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Iterable, Iterator

from repro import _caching
from repro.core.computation import Computation
from repro.core.observer import ObserverFunction
from repro.core.ops import Location

__all__ = [
    "MemoryModel",
    "IntersectionModel",
    "UnionModel",
    "ExplicitModel",
    "cached_membership",
]


@lru_cache(maxsize=1 << 17)
def _membership(model: "MemoryModel", comp, phi) -> bool:
    return model.contains(comp, phi)


def cached_membership(model: "MemoryModel", comp, phi) -> bool:
    """Memoized ``model.contains(comp, phi)`` for stateless models.

    Exhaustive sweeps ask the same membership question repeatedly — SC
    runs the LC pre-check internally, the lattice battery queries every
    model on every pair, and constructibility sweeps revisit augmented
    pairs — and computations/observers hash by value, so a process-wide
    verdict cache collapses all of that.  Models whose verdicts could
    change after construction (``cache_membership = False``, e.g.
    :class:`ExplicitModel`) bypass the cache.
    """
    if not _caching.ENABLED or not model.cache_membership:
        return model.contains(comp, phi)
    return _membership(model, comp, phi)


class MemoryModel(ABC):
    """A memory model Δ, represented by its membership predicate.

    Subclasses implement :meth:`contains`.  The empty computation and its
    unique observer function belong to every model by Definition 3; the
    default :meth:`contains` wrapper (:meth:`__contains__`) does *not*
    special-case it — concrete models must accept it naturally, and the
    test suite checks that they do.
    """

    #: Human-readable name used in reports and reprs.
    name: str = "model"

    #: Whether :func:`cached_membership` may memoize this model's verdicts
    #: (safe for stateless predicate models; subclasses whose membership
    #: can change after construction must set this to False).
    cache_membership: bool = True

    #: Optional closed-form answer to the Theorem-12 one-step test: a
    #: method ``(comp, phi, o) -> bool`` deciding whether some Φ' in the
    #: model on ``aug_o(comp)`` restricts to ``phi``, equivalent to (but
    #: faster than) the candidate search in
    #: :func:`repro.models.constructibility.can_extend_to_augmentation`.
    #: ``None`` means "use the generic search".
    augmentation_extends = None

    @abstractmethod
    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        """True iff ``(comp, phi)`` ∈ Δ.

        ``phi`` must be a valid observer function *for comp*; behaviour on
        mismatched pairs is undefined (callers constructed via this
        library cannot produce them).
        """

    def __contains__(self, pair: tuple[Computation, ObserverFunction]) -> bool:
        comp, phi = pair
        return self.contains(comp, phi)

    def observers(
        self,
        comp: Computation,
        locations: Iterable[Location] | None = None,
    ) -> Iterator[ObserverFunction]:
        """All observer functions Φ with ``(comp, Φ)`` ∈ Δ.

        Default implementation filters the exhaustive enumeration of valid
        observer functions; subclasses with cheaper generators (e.g. SC
        via topological sorts) may override.
        """
        for phi in ObserverFunction.enumerate_all(comp, locations):
            if self.contains(comp, phi):
                yield phi

    def admits(self, comp: Computation) -> bool:
        """True iff Δ defines at least one observer function for ``comp``.

        A model is *complete* iff this holds for every computation; see
        :func:`repro.models.relations.is_complete_on`.
        """
        return next(self.observers(comp), None) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryModel {self.name}>"


class IntersectionModel(MemoryModel):
    """The intersection of several models (their join in "strength").

    Stronger than each operand by construction; used by tests to build
    reference models and by the lattice analysis.
    """

    def __init__(self, parts: Iterable[MemoryModel], name: str | None = None):
        self.parts = tuple(parts)
        if not self.parts:
            raise ValueError("IntersectionModel requires at least one part")
        self.name = name or " ∩ ".join(p.name for p in self.parts)

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        return all(p.contains(comp, phi) for p in self.parts)


class UnionModel(MemoryModel):
    """The union of several models (their meet in "strength").

    Weaker than each operand.  Lemma 7 of the paper: *a union of
    constructible models is constructible* — which is what makes the
    constructible version Δ* (the union of all constructible models
    inside Δ) well-defined.  The test suite checks Lemma 7 empirically
    on unions of the constructible zoo members.
    """

    def __init__(self, parts: Iterable[MemoryModel], name: str | None = None):
        self.parts = tuple(parts)
        if not self.parts:
            raise ValueError("UnionModel requires at least one part")
        self.name = name or " ∪ ".join(p.name for p in self.parts)

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        return any(p.contains(comp, phi) for p in self.parts)


class ExplicitModel(MemoryModel):
    """A finite, extensional model: an explicit set of pairs.

    Used for counterexamples in tests (e.g. non-monotonic or
    non-constructible toy models) and as the output representation of the
    bounded constructible-version computation.  Pairs for computations
    outside the stored domain are *not* members.
    """

    cache_membership = False

    def __init__(
        self,
        pairs: Iterable[tuple[Computation, ObserverFunction]],
        name: str = "explicit",
    ) -> None:
        self.name = name
        self._by_comp: dict[Computation, set[ObserverFunction]] = {}
        for comp, phi in pairs:
            self._by_comp.setdefault(comp, set()).add(phi)

    def contains(self, comp: Computation, phi: ObserverFunction) -> bool:
        return phi in self._by_comp.get(comp, ())

    def computations(self) -> Iterator[Computation]:
        """The computations with at least one stored observer function."""
        return iter(self._by_comp)

    def observers(
        self,
        comp: Computation,
        locations: Iterable[Location] | None = None,
    ) -> Iterator[ObserverFunction]:
        return iter(self._by_comp.get(comp, ()))

    def pair_count(self) -> int:
        """Total number of stored pairs."""
        return sum(len(s) for s in self._by_comp.values())
