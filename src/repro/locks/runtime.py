"""Executing locked computations on the simulated runtime.

A locked computation leaves the order of same-lock critical sections
open; at execution time the runtime *commits* one (whichever order the
schedule happens to realize).  This module implements that commitment
and closes the loop end-to-end:

1. pick an admissible serialization (seeded-random over the admissible
   ones — modelling which task happened to grab the lock first);
2. induce the plain computation (serialization edges become real dag
   edges — "synchronization is edges" is the computation-centric view);
3. schedule and execute it on any memory system;
4. post-mortem: the trace must be LC w.r.t. the *induced* computation
   (BACKER's guarantee), which certifies LockRC membership w.r.t. the
   locked computation with the executed serialization as witness.

The induced edges also mean BACKER reconciles/flushes at lock
boundaries — exactly how a lock-aware BACKER would behave.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dag.random_dags import as_rng
from repro.locks.locked import LockedComputation, LockSerialization
from repro.runtime.executor import execute
from repro.runtime.memory_base import MemorySystem
from repro.runtime.scheduler import work_stealing_schedule
from repro.runtime.trace import ExecutionTrace

__all__ = ["LockedExecution", "execute_locked", "pick_serialization"]


@dataclass
class LockedExecution:
    """Outcome of one locked execution."""

    locked: LockedComputation
    serialization: LockSerialization
    trace: ExecutionTrace

    def lock_consistent(self) -> bool:
        """Post-mortem verdict: is the trace LC over the induced
        computation (hence LockRC-consistent with this serialization)?"""
        from repro.verify.checker import trace_admits_lc

        return trace_admits_lc(self.trace.partial_observer())


def pick_serialization(
    locked: LockedComputation, rng: random.Random | int | None = None
) -> LockSerialization | None:
    """A random admissible serialization (or ``None`` if none exists).

    Shuffles each lock's section order and retries until the induced
    edges are acyclic — modelling nondeterministic lock-acquisition
    order.  Deterministic given the seed.
    """
    r = as_rng(rng)
    locks = locked.locks
    for _attempt in range(64):
        ser: LockSerialization = {}
        for lock in locks:
            order = list(range(len(locked.sections_of(lock))))
            r.shuffle(order)
            ser[lock] = tuple(order)
        if locked.induce(ser) is not None:
            return ser
    # Fall back to exhaustive search (tiny section counts in practice).
    return next(
        (ser for ser, _ in locked.induced_computations()), None
    )


def execute_locked(
    locked: LockedComputation,
    num_procs: int,
    memory: MemorySystem,
    rng: random.Random | int | None = None,
) -> LockedExecution:
    """Serialize, schedule, and run a locked computation.

    Raises :class:`~repro.errors.ScheduleError`-family errors only via
    the underlying scheduler; a locked computation with *no* admissible
    serialization (structural deadlock) raises ``ValueError``.
    """
    r = as_rng(rng)
    ser = pick_serialization(locked, r)
    if ser is None:
        raise ValueError("locked computation has no admissible serialization")
    induced = locked.induce(ser)
    assert induced is not None
    schedule = work_stealing_schedule(induced, num_procs, rng=r)
    trace = execute(schedule, memory)
    return LockedExecution(locked=locked, serialization=ser, trace=trace)
