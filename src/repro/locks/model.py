"""A release-consistency-style model over locked computations.

Computation-centric release consistency, as this extension defines it:
an observer function for a locked computation is *lock-consistent with
respect to a base model* Δ when **some** admissible lock serialization
induces a computation for which the observer function belongs to Δ.
Formally::

    LockRC_Δ = {(LC, Φ) : ∃ serialization S admissible for LC,
                           Φ is an observer function for induce(LC, S)
                           and (induce(LC, S), Φ) ∈ Δ}

The base model defaults to LC — matching the lineage of the paper:
BACKER extended with locks reconciles at acquire/release boundaries, so
the memory it provides *between* critical sections is location
consistency over the serialization that actually happened.

The classical **DRF guarantee** becomes a theorem of the framework,
property-tested in the suite: if the locked computation is data-race
free (:meth:`~repro.locks.locked.LockedComputation.is_drf`) then every
lock-consistent observer's *reads* coincide with the reads of a
sequentially consistent execution of the witnessing induced computation
— properly-synchronized programs cannot tell LC-with-locks from SC.
"""

from __future__ import annotations

from repro.core.observer import ObserverFunction
from repro.errors import InvalidObserverError
from repro.locks.locked import LockedComputation, LockSerialization
from repro.models.base import MemoryModel
from repro.models.location_consistency import LC

__all__ = ["LockReleaseConsistency", "LockRC"]


class LockReleaseConsistency:
    """Existential-over-serializations lifting of a base memory model.

    Not a :class:`~repro.models.base.MemoryModel` — its domain is locked
    computations — but deliberately parallel in shape: a ``contains``
    predicate plus a certificate query.
    """

    def __init__(self, base: MemoryModel | None = None) -> None:
        self.base = base if base is not None else LC
        self.name = f"LockRC[{self.base.name}]"

    def _lift(
        self, locked: LockedComputation, ser: LockSerialization, phi: ObserverFunction
    ) -> ObserverFunction | None:
        """Re-validate Φ against the induced computation's precedence.

        Adding serialization edges strengthens precedence, so an
        observer valid for the bare computation may violate condition
        2.2 (a node now precedes its observed write) in the induced one
        — in which case this serialization cannot explain Φ.
        """
        induced = locked.induce(ser)
        if induced is None:
            return None
        try:
            return ObserverFunction(
                induced,
                {loc: phi.row(loc) for loc in phi.locations},
                validate=True,
            )
        except InvalidObserverError:
            return None

    def contains(self, locked: LockedComputation, phi: ObserverFunction) -> bool:
        """Membership: some admissible serialization explains Φ."""
        return self.witness_serialization(locked, phi) is not None

    def witness_serialization(
        self, locked: LockedComputation, phi: ObserverFunction
    ) -> LockSerialization | None:
        """The certificate: a serialization whose induced computation
        admits Φ under the base model, or ``None``."""
        for ser in locked.serializations():
            lifted = self._lift(locked, ser, phi)
            if lifted is None:
                continue
            if self.base.contains(lifted.computation, lifted):
                return ser
        return None

    def observers_via(
        self, locked: LockedComputation, ser: LockSerialization
    ):
        """All base-model observer functions of one serialization's
        induced computation (delegates to the base model)."""
        induced = locked.induce(ser)
        if induced is None:
            return iter(())
        return self.base.observers(induced)


LockRC = LockReleaseConsistency(LC)
"""The default lock-release-consistency model (base = LC)."""
