"""Lock-augmented computations (Section 7 future work, implemented).

The paper closes with: *"Some models, such as release consistency,
require computations to be augmented with locks, and how to do this is a
matter of active research."*  This module is one concrete way to do it,
staying inside the computation-centric philosophy:

* A :class:`LockedComputation` is a plain computation plus a set of
  *critical sections* — matched (acquire, release) node pairs per lock.
  Acquire/release nodes are ordinary no-ops: locks are synchronization,
  not data, and the paper's observer functions already give no-ops
  memory semantics.
* The dag does **not** order sections on the same lock.  Mutual
  exclusion is a per-execution choice: a *lock serialization* picks a
  total order of each lock's sections, adding a
  ``release(s_i) → acquire(s_{i+1})`` edge per consecutive pair.  Each
  admissible (acyclic) serialization *induces* a plain computation, to
  which every model in the library applies unchanged.
* Data-race freedom (:meth:`LockedComputation.is_drf`) asks that every
  induced computation be race-free — the computation-centric reading of
  "properly synchronized".

The companion model (:mod:`repro.locks.model`) quantifies existentially
over serializations, which is exactly how release-consistent hardware
behaves: *some* order of critical sections happened, and memory is only
guaranteed consistent with respect to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from typing import Iterator

from repro.core.computation import Computation
from repro.errors import CycleError, InvalidComputationError

__all__ = ["CriticalSection", "LockedComputation", "LockSerialization"]


@dataclass(frozen=True)
class CriticalSection:
    """One acquire/release pair on a lock."""

    lock: object
    acquire: int
    release: int


LockSerialization = dict
"""Type alias: ``{lock: tuple[section_index, ...]}`` — for each lock, the
order (by index into :attr:`LockedComputation.sections_of`) in which its
critical sections execute."""


class LockedComputation:
    """A computation with critical sections awaiting serialization."""

    def __init__(
        self,
        comp: Computation,
        sections: dict[object, list[tuple[int, int]]],
    ) -> None:
        self.comp = comp
        self._sections: dict[object, tuple[CriticalSection, ...]] = {}
        for lock, pairs in sections.items():
            secs = []
            for (a, r) in pairs:
                if not (0 <= a < comp.num_nodes and 0 <= r < comp.num_nodes):
                    raise InvalidComputationError(
                        f"critical section ({a}, {r}) out of range"
                    )
                if a != r and not comp.precedes(a, r):
                    raise InvalidComputationError(
                        f"acquire {a} must precede release {r}"
                    )
                secs.append(CriticalSection(lock, a, r))
            if secs:
                self._sections[lock] = tuple(secs)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def locks(self) -> tuple:
        """The locks with at least one section, sorted by repr."""
        return tuple(sorted(self._sections, key=repr))

    def sections_of(self, lock: object) -> tuple[CriticalSection, ...]:
        """The critical sections on one lock, in declaration order."""
        return self._sections.get(lock, ())

    def section_count(self) -> int:
        """Total number of critical sections."""
        return sum(len(s) for s in self._sections.values())

    @staticmethod
    def from_unfold(comp: Computation, info) -> "LockedComputation":
        """Build from :func:`repro.lang.unfold`'s output (uses
        ``info.lock_sections``)."""
        return LockedComputation(comp, info.lock_sections)

    # ------------------------------------------------------------------
    # Serializations
    # ------------------------------------------------------------------

    def serialization_edges(
        self, serialization: LockSerialization
    ) -> list[tuple[int, int]]:
        """The release→acquire edges a serialization adds."""
        edges: list[tuple[int, int]] = []
        for lock, order in serialization.items():
            secs = self.sections_of(lock)
            for i in range(len(order) - 1):
                prev, nxt = secs[order[i]], secs[order[i + 1]]
                edges.append((prev.release, nxt.acquire))
        return edges

    def induce(self, serialization: LockSerialization) -> Computation | None:
        """The plain computation induced by a serialization.

        Returns ``None`` when the added edges create a cycle (the
        serialization is inadmissible — it would deadlock).
        """
        from repro.dag.digraph import Dag

        extra = self.serialization_edges(serialization)
        edges = list(self.comp.dag.edges) + extra
        try:
            return Computation(Dag(self.comp.num_nodes, edges), self.comp.ops)
        except CycleError:
            return None

    def serializations(self) -> Iterator[LockSerialization]:
        """Every candidate serialization (product of per-lock orders).

        Factorial in the per-lock section count — locked workloads in
        benchmarks keep a handful of sections per lock.
        """
        locks = self.locks
        per_lock = [
            list(permutations(range(len(self.sections_of(lock)))))
            for lock in locks
        ]
        for combo in product(*per_lock):
            yield dict(zip(locks, combo))

    def induced_computations(self) -> Iterator[tuple[LockSerialization, Computation]]:
        """Every admissible serialization with its induced computation."""
        for ser in self.serializations():
            induced = self.induce(ser)
            if induced is not None:
                yield ser, induced

    def has_admissible_serialization(self) -> bool:
        """Whether any serialization is acyclic (no structural deadlock)."""
        return next(self.induced_computations(), None) is not None

    # ------------------------------------------------------------------
    # Data-race freedom
    # ------------------------------------------------------------------

    def is_drf(self) -> bool:
        """Properly synchronized: every induced computation is race-free.

        This is the computation-centric "DRF" premise: no matter how the
        critical sections serialize, conflicting accesses are ordered.
        """
        from repro.verify.races import is_race_free

        found_any = False
        for _ser, induced in self.induced_computations():
            found_any = True
            if not is_race_free(induced):
                return False
        return found_any

    def racy_serializations(self) -> Iterator[LockSerialization]:
        """The admissible serializations whose induced computation races."""
        from repro.verify.races import is_race_free

        for ser, induced in self.induced_computations():
            if not is_race_free(induced):
                yield ser

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LockedComputation(n={self.comp.num_nodes}, "
            f"locks={len(self._sections)}, sections={self.section_count()})"
        )
