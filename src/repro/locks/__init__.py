"""Lock-augmented computations and release-consistency-style models.

Implements the future-work direction the paper names in Section 7
("models such as release consistency require computations to be
augmented with locks").  See :mod:`repro.locks.locked` for the design.
"""

from repro.locks.locked import CriticalSection, LockedComputation, LockSerialization
from repro.locks.model import LockRC, LockReleaseConsistency
from repro.locks.runtime import LockedExecution, execute_locked, pick_serialization

__all__ = [
    "CriticalSection",
    "LockedComputation",
    "LockSerialization",
    "LockReleaseConsistency",
    "LockRC",
    "LockedExecution",
    "execute_locked",
    "pick_serialization",
]
