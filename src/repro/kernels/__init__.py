"""Pluggable bitset kernel backends (``REPRO_KERNEL``).

The hot loops of this library — transitive closure, the race sweep's
row-wise reachability arithmetic, the inclusion fold, and the quotient
acyclicity check behind LC membership — all reduce to dense bit-matrix
work.  This package provides two interchangeable implementations:

* :mod:`repro.kernels.pybits` — pure-python integers as bitsets.  Always
  available, always the **oracle**: the property suite pins the numpy
  backend sequence-equal to it, and every dispatch falls back to it when
  numpy is missing.
* :mod:`repro.kernels.npbits` — numpy packed-bit kernels (``uint64``
  words, 64 nodes per word) that batch whole node levels per call
  instead of looping per node.  Same results, bit for bit.

Selection is environment-driven so CI can pin either side of the parity
matrix:

``REPRO_KERNEL=python``
    Force the pure-python oracle everywhere.
``REPRO_KERNEL=numpy``
    Force numpy kernels at every size (import error if numpy is
    missing) — the parity CI leg.
``REPRO_KERNEL=auto`` (or unset)
    Use numpy where measurement says it wins, python ints elsewhere.
    The gates are empirical (see ``EXPERIMENTS.md``): python big-int
    AND/OR already runs word-parallel in C, so numpy only pays once a
    problem is big *and* batches well.  Closure goes to numpy when the
    dag has at least :data:`NUMPY_MIN_NODES` nodes and average degree
    :data:`NUMPY_MIN_AVG_DEGREE` (dense dags — stencils, blocked
    traces — are where level-batched gathers beat per-edge big-int
    ORs); the inclusion fold always vectorizes (it accumulates in
    numpy-land with no per-row conversion); the race sweep and the
    block-quotient check stay on python ints, whose measured cost is
    below the int↔array conversion overhead at every realistic size.

Backends are *value-transparent*: every dispatch returns plain python
objects (int bitsets, lists, tuples) in the exact order the oracle
produces, so callers never see numpy types and cached results compare
equal across backends.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigError
from repro.obs.core import add as _obs_add

__all__ = [
    "backend_name",
    "closure",
    "inclusion_fold",
    "kernel_info",
    "numpy_available",
    "NUMPY_MIN_NODES",
    "quotient_is_acyclic",
    "race_pairs",
    "use_kernel",
]

_ENV_VAR = "REPRO_KERNEL"
_ENV_MIN_NODES = "REPRO_KERNEL_MIN_NODES"
_MODES = ("auto", "python", "numpy")

#: Below this node count, ``auto`` keeps python-int kernels: a python
#: big-int OR is one C call that already runs word-parallel, and the
#: measured closure crossover (EXPERIMENTS.md, "Kernel backends") does
#: not arrive until dags span many machine words — dense n=512 is still
#: 0.8×, dense n=1024 ≈ break-even, n=2048 reaches 1.5×.  Overridable
#: for tests via ``REPRO_KERNEL_MIN_NODES``.
NUMPY_MIN_NODES = 1024

#: ``auto`` sends closure to numpy only when the dag's average degree
#: also reaches this bound.  Sparse deep dags (fork-join chains) favour
#: the python oracle — the level-batched numpy pass moves each edge row
#: twice (gather + reduce) and pads levels to their max degree, which
#: only amortizes on dense dags (measured: n=1024 at avg degree 25 is
#: 0.7×, at 77 it breaks even, at 150+ numpy wins).
NUMPY_MIN_AVG_DEGREE = 64

_forced: str | None = None  # use_kernel() override, wins over the env


def _numpy_module():
    """The numpy module, or ``None`` when not importable (cached)."""
    global _NP_CACHE
    if _NP_CACHE is _UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional backend probe

            _NP_CACHE = numpy
        except ImportError:
            _NP_CACHE = None
    return _NP_CACHE


_UNSET = object()
_NP_CACHE: object = _UNSET


def numpy_available() -> bool:
    """True iff the numpy backend can be used in this process."""
    return _numpy_module() is not None


def _mode() -> str:
    """The requested backend mode, validated."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if raw not in _MODES:
        raise ConfigError(
            f"{_ENV_VAR} must be one of {'/'.join(_MODES)}, got {raw!r}"
        ) from None
    return raw


def _min_nodes() -> int:
    raw = os.environ.get(_ENV_MIN_NODES)
    if raw is None:
        return NUMPY_MIN_NODES
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{_ENV_MIN_NODES} must be an integer, got {raw!r}"
        ) from None


def backend_name(n: int | None = None) -> str:
    """The backend a dispatch would pick: ``"python"`` or ``"numpy"``.

    ``n`` is the problem size in nodes; ``None`` asks for the *sweep*
    backend (what folds and benchmarks report), which ignores the size
    threshold.
    """
    mode = _mode()
    if mode == "python":
        return "python"
    if mode == "numpy":
        if not numpy_available():
            raise ConfigError(
                f"{_ENV_VAR}=numpy but numpy is not importable"
            ) from None
        return "numpy"
    # auto
    if not numpy_available():
        return "python"
    if n is not None and n < _min_nodes():
        return "python"
    return "numpy"


def kernel_info() -> dict[str, str | None]:
    """Backend fingerprint for ledger records and sweep stats."""
    np = _numpy_module()
    return {
        "kernel": backend_name(),
        "numpy": getattr(np, "__version__", None) if np is not None else None,
    }


@contextmanager
def use_kernel(name: str | None) -> Iterator[None]:
    """Force a backend for the duration of the context (tests, benches).

    ``None`` restores environment-driven selection.
    """
    global _forced
    if name is not None and name not in _MODES:
        raise ConfigError(
            f"use_kernel: expected one of {'/'.join(_MODES)} or None, got {name!r}"
        ) from None
    prev = _forced
    _forced = name
    try:
        yield
    finally:
        _forced = prev


def _numpy_impl():
    from repro.kernels import npbits

    return npbits


def _python_impl():
    from repro.kernels import pybits

    return pybits


def _impl(n: int | None = None):
    """The backend module for a problem of ``n`` nodes."""
    if backend_name(n) == "numpy":
        return _numpy_impl()
    return _python_impl()


# ----------------------------------------------------------------------
# Dispatch surface.  Signatures (and result orders) are defined by the
# pure-python oracle in :mod:`repro.kernels.pybits`.  ``auto`` gating
# is per-function because the backends win in different regimes — see
# the module docstring and EXPERIMENTS.md.
# ----------------------------------------------------------------------


def closure(
    n: int, succ: Sequence[int], pred: Sequence[int], topo: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Strict descendant/ancestor bitset rows of a dag.

    See :func:`repro.kernels.pybits.closure` for the contract.  In
    ``auto`` mode the numpy pass is used only for dags that are both
    large and dense (the degree scan below is ~1% of closure cost and
    only runs once the node bound already passed).
    """
    mode = _mode()
    use_numpy = False
    if mode == "numpy":
        backend_name(None)  # raises ConfigError when numpy is missing
        use_numpy = True
    elif mode == "auto" and numpy_available() and n >= _min_nodes():
        num_edges = sum(s.bit_count() for s in succ)
        use_numpy = num_edges >= NUMPY_MIN_AVG_DEGREE * n
    impl = _numpy_impl() if use_numpy else _python_impl()
    _obs_add(f"kernel.closure.{impl.NAME}", 1)
    return impl.closure(n, succ, pred, topo)


def race_pairs(
    n: int,
    desc: Sequence[int],
    anc: Sequence[int],
    loc_masks: Sequence[tuple[int, int]],
) -> list[tuple[int, int, int]]:
    """Racing ``(loc_index, writer, partner)`` triples, oracle order.

    See :func:`repro.kernels.pybits.race_pairs` for the contract.
    ``auto`` always keeps the python oracle — packing per-writer rows
    across the int↔array boundary costs more than the sweep itself at
    every measured size — so only ``REPRO_KERNEL=numpy`` exercises the
    broadcast path (the parity CI leg does).
    """
    if _mode() == "numpy":
        backend_name(None)  # raises ConfigError when numpy is missing
        impl = _numpy_impl()
    else:
        impl = _python_impl()
    _obs_add(f"kernel.races.{impl.NAME}", 1)
    return impl.race_pairs(n, desc, anc, loc_masks)


def inclusion_fold(
    num_models: int, verdict_rows: Iterable[tuple[bool, ...]]
) -> list[int]:
    """Fold member verdicts into a "violation" bitset matrix.

    See :func:`repro.kernels.pybits.inclusion_fold` for the contract.
    """
    impl = _impl(None)
    return impl.inclusion_fold(num_models, verdict_rows)


def quotient_is_acyclic(
    num_blocks: int, bsrcs: Sequence[int], bdsts: Sequence[int]
) -> bool:
    """Kahn acyclicity of a block-quotient edge list.

    See :func:`repro.kernels.pybits.quotient_is_acyclic` for the
    contract.  Dispatch is by block count (quotients are usually tiny).
    """
    return _impl(num_blocks).quotient_is_acyclic(num_blocks, bsrcs, bdsts)
