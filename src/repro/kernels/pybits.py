"""Pure-python bitset kernels — the oracle backend.

Python integers are arbitrary-precision bitsets whose AND/OR run over
machine words in C, so these loops are respectable on their own; more
importantly they are *simple*, and the numpy backend
(:mod:`repro.kernels.npbits`) is property-tested sequence-equal to
every function here.  Each function's docstring is the backend
contract: argument conventions, result types, and result *order* are
all part of it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dag.digraph import bit_indices

__all__ = ["NAME", "closure", "inclusion_fold", "quotient_is_acyclic", "race_pairs"]

NAME = "python"


def closure(
    n: int, succ: Sequence[int], pred: Sequence[int], topo: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Strict descendant and ancestor rows of a dag.

    ``succ``/``pred`` are direct-neighbour bitsets indexed by node id;
    ``topo`` is any topological order.  Returns ``(desc, anc)`` lists of
    int bitsets: bit ``v`` of ``desc[u]`` iff ``u ≺ v`` strictly (and
    symmetrically for ``anc``).
    """
    desc = [0] * n
    for u in reversed(topo):
        d = succ[u]
        for v in bit_indices(succ[u]):
            d |= desc[v]
        desc[u] = d
    anc = [0] * n
    for u in topo:
        a = pred[u]
        for v in bit_indices(pred[u]):
            a |= anc[v]
        anc[u] = a
    return desc, anc


def race_pairs(
    n: int,
    desc: Sequence[int],
    anc: Sequence[int],
    loc_masks: Sequence[tuple[int, int]],
) -> list[tuple[int, int, int]]:
    """Racing pairs against closure rows, in historical sweep order.

    ``loc_masks`` holds one ``(access_mask, write_mask)`` bitset pair
    per location, in the caller's location order.  For each location,
    every writer races with every incomparable accessor; write-write
    pairs are emitted from the smaller node id only.  Returns
    ``(loc_index, w, other)`` triples ordered by location index, then
    writer ascending, then partner ascending — ``w`` is the writer the
    pair was emitted from (not necessarily ``min``), matching
    :func:`repro.verify.races.find_races`.
    """
    out: list[tuple[int, int, int]] = []
    for li, (amask, wmask) in enumerate(loc_masks):
        if not wmask:
            continue
        for w in bit_indices(wmask):
            bit = 1 << w
            incomparable = amask & ~(anc[w] | desc[w] | bit)
            partners = incomparable & ~(wmask & (bit - 1))
            for other in bit_indices(partners):
                out.append((li, w, other))
    return out


def inclusion_fold(
    num_models: int, verdict_rows: Iterable[tuple[bool, ...]]
) -> list[int]:
    """Fold per-pair membership verdicts into a violation matrix.

    Each row holds one bool per model: whether the enumerated pair is a
    member.  Row ``r`` witnesses ``models[i] ⊄ models[j]`` when
    ``r[i] and not r[j]``.  Returns ``bad`` as a list of int bitsets:
    bit ``j`` of ``bad[i]`` set iff some row violated ``i ⊆ j``.
    Merging two folds is elementwise OR.
    """
    bad = [0] * num_models
    for row in verdict_rows:
        out_mask = 0
        for j, v in enumerate(row):
            if not v:
                out_mask |= 1 << j
        if not out_mask:
            continue
        for i, v in enumerate(row):
            if v:
                bad[i] |= out_mask
    return bad


def quotient_is_acyclic(
    num_blocks: int, bsrcs: Sequence[int], bdsts: Sequence[int]
) -> bool:
    """Kahn's algorithm over a dense-id block edge list.

    ``bsrcs[k] -> bdsts[k]`` are quotient edges over block ids
    ``0 .. num_blocks-1`` (duplicates allowed, self-edges excluded by
    the caller).  True iff the quotient digraph is acyclic.
    """
    adj: list[set[int]] = [set() for _ in range(num_blocks)]
    for u, v in zip(bsrcs, bdsts):
        adj[u].add(v)
    indeg = [0] * num_blocks
    for outs in adj:
        for v in outs:
            indeg[v] += 1
    frontier = [b for b in range(num_blocks) if indeg[b] == 0]
    seen = 0
    while frontier:
        b = frontier.pop()
        seen += 1
        for v in adj[b]:
            indeg[v] -= 1
            if indeg[v] == 0:
                frontier.append(v)
    return seen == num_blocks
