"""Numpy packed-bit kernels (``uint64`` words, 64 nodes per word).

Bitset rows live as little-endian ``uint64`` matrices — node ``v`` is
bit ``v & 63`` of word ``v >> 6`` — so whole *levels* of a dag are
combined per numpy call instead of per node:

* :func:`closure` batches the reachability recurrence by longest-path
  level: one fancy-index gather plus one ``bitwise_or`` reduction per
  level folds every node of that level at once.  Rows carry their own
  self-bit during the passes (``reach'[u] = {u} ∪ ⋃ reach'[succ]``),
  which makes the direct-neighbour contribution fall out of the same
  gather and is stripped at the end.  Per-call overhead is
  ``O(levels)``, not ``O(nodes)``, which is what beats python big-int
  loops on *dense* dags (stencils, blocked matmul traces); on sparse
  chains the python oracle stays ahead, which is why ``auto`` mode
  gates on average degree (:data:`repro.kernels.NUMPY_MIN_AVG_DEGREE`).
* :func:`race_pairs` packs the closure rows of *writers only*,
  computes every writer's partner mask in one broadcast expression,
  and recovers (writer, partner) pairs with ``unpackbits`` +
  ``nonzero`` — whose row-major order reproduces the oracle's
  (location, writer asc, partner asc) output order by construction.
* :func:`inclusion_fold` turns the per-pair double loop over models
  into chunked boolean matrix products.

Everything returns plain python ints/lists, bit-identical to
:mod:`repro.kernels.pybits` (property-tested), so backends can be
swapped per-call without contaminating caches with numpy scalars.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.dag.digraph import bit_indices

__all__ = [
    "NAME",
    "closure",
    "inclusion_fold",
    "pack_ints",
    "quotient_is_acyclic",
    "race_pairs",
    "rows_to_ints",
]

NAME = "numpy"

_ONE = np.uint64(1)
_SHIFTS = np.arange(64, dtype="<u8")

#: Word budget per padded gather in :func:`_reach_pass` (32 MiB of
#: uint64); levels whose padded volume exceeds it are processed in
#: degree-sorted chunks so one high-degree node cannot blow up the
#: padding of a whole level.
_GATHER_BUDGET = 1 << 22


def _words(n: int) -> int:
    """Words per row for an ``n``-bit bitset (at least one)."""
    return max(1, (n + 63) >> 6)


def pack_ints(rows: Sequence[int], n: int) -> np.ndarray:
    """Pack int bitsets into a ``(len(rows), W)`` little-endian matrix."""
    w = _words(n)
    nbytes = w * 8
    buf = b"".join(r.to_bytes(nbytes, "little") for r in rows)
    return np.frombuffer(buf, dtype="<u8").reshape(len(rows), w).copy()


def rows_to_ints(packed: np.ndarray) -> list[int]:
    """Inverse of :func:`pack_ints`: one python int bitset per row."""
    rows, w = packed.shape
    nbytes = w * 8
    buf = np.ascontiguousarray(packed).tobytes()
    return [
        int.from_bytes(buf[i * nbytes : (i + 1) * nbytes], "little")
        for i in range(rows)
    ]


def _unpack_bits(packed: np.ndarray, n: int) -> np.ndarray:
    """``(rows, n)`` uint8 0/1 matrix from a packed row matrix."""
    rows = packed.shape[0]
    as_bytes = np.ascontiguousarray(packed).view("u1").reshape(rows, -1)
    return np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :n]


def _edge_arrays(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(srcs, dsts)`` of the neighbour matrix, sorted by (src, dst).

    Expands only the non-zero words (two small ``nonzero`` passes), so
    the cost tracks the edge count rather than ``n²``.
    """
    u_idx, w_idx = np.nonzero(packed)
    if not u_idx.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    words = packed[u_idx, w_idx]
    row, bit = np.nonzero((words[:, None] >> _SHIFTS[None, :]) & _ONE)
    return u_idx[row], w_idx[row] * 64 + bit


def _gather_ranges(
    starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenated ``arange(start, start+count)`` index vector."""
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(offsets[-1] + counts[-1]) if counts.size else 0
    return np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)


def _levels(n: int, off: np.ndarray, dsts: np.ndarray) -> list[np.ndarray]:
    """Longest-path levels by wavefront peeling (Kahn, batched).

    ``levels[d]`` holds every node of longest-path depth ``d``; each
    edge goes from its source's level to a strictly deeper one.
    """
    indeg = np.bincount(dsts, minlength=n)
    frontier = np.flatnonzero(indeg == 0)
    levels: list[np.ndarray] = []
    while frontier.size:
        levels.append(frontier)
        counts = off[frontier + 1] - off[frontier]
        idx = _gather_ranges(off[frontier], counts)
        if not idx.size:
            break  # frontier is all sinks; a dag has nothing left
        targets = dsts[idx]
        indeg -= np.bincount(targets, minlength=n)
        cand = np.unique(targets)
        frontier = cand[indeg[cand] == 0]
    return levels


def _reach_pass(
    n: int,
    off: np.ndarray,
    dsts: np.ndarray,
    levels: Iterable[np.ndarray],
) -> np.ndarray:
    """One reachability matrix: OR of neighbour rows, level by level.

    ``off``/``dsts`` are the CSR edge arrays of the direction being
    closed over; ``levels`` must be ordered so a node's neighbours are
    final before its own level runs (reverse depth for descendants,
    forward for ancestors).  Rows carry self-bits throughout; the
    caller's view has them stripped.
    """
    w = _words(n)
    ids = np.arange(n)
    word_idx = ids >> 6
    self_bits = _ONE << (ids & 63).astype("<u8")
    reach = np.zeros((n + 1, w), dtype="<u8")  # row n: zero padding row
    reach[ids, word_idx] = self_bits
    outdeg = off[1:] - off[:-1]
    last = dsts.size - 1
    for level in levels:
        nodes = level[outdeg[level] > 0]
        if not nodes.size:
            continue
        counts = outdeg[nodes]
        order = np.argsort(counts, kind="stable")
        nodes, counts = nodes[order], counts[order]
        budget_rows = max(1, _GATHER_BUDGET // (int(counts[-1]) * w))
        for lo in range(0, nodes.size, budget_rows):
            chunk = nodes[lo : lo + budget_rows]
            ccounts = counts[lo : lo + budget_rows]
            maxc = int(ccounts[-1])
            col = np.arange(maxc)
            idxmat = off[chunk][:, None] + col[None, :]
            valid = col[None, :] < ccounts[:, None]
            tgt = np.where(valid, dsts[np.minimum(idxmat, last)], n)
            reach[chunk] |= np.bitwise_or.reduce(reach[tgt], axis=1)
    reach[ids, word_idx] ^= self_bits
    return reach[:n]


def closure(
    n: int, succ: Sequence[int], pred: Sequence[int], topo: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Level-batched transitive closure; see the pybits contract."""
    if n == 0:
        return [], []
    srcs, dsts = _edge_arrays(pack_ints(succ, n))
    off = np.searchsorted(srcs, np.arange(n + 1))
    levels = _levels(n, off, dsts)
    desc_p = _reach_pass(n, off, dsts, reversed(levels))
    # The ancestor pass walks the reversed edges, re-sorted by source.
    rev = np.argsort(dsts, kind="stable")
    rsrc, rdst = dsts[rev], srcs[rev]
    roff = np.searchsorted(rsrc, np.arange(n + 1))
    anc_p = _reach_pass(n, roff, rdst, levels)
    return rows_to_ints(desc_p), rows_to_ints(anc_p)


def race_pairs(
    n: int,
    desc: Sequence[int],
    anc: Sequence[int],
    loc_masks: Sequence[tuple[int, int]],
) -> list[tuple[int, int, int]]:
    """Broadcast partner-mask race sweep; see the pybits contract."""
    li_list: list[int] = []
    w_list: list[int] = []
    for li, (_amask, wmask) in enumerate(loc_masks):
        for wnode in bit_indices(wmask):
            li_list.append(li)
            w_list.append(wnode)
    if not w_list:
        return []
    k = len(w_list)
    w_arr = np.asarray(w_list, dtype=np.int64)
    li_arr = np.asarray(li_list, dtype=np.int64)
    wcols = _words(n)

    excl = pack_ints([anc[wnode] for wnode in w_list], n)
    excl |= pack_ints([desc[wnode] for wnode in w_list], n)
    word_idx = w_arr >> 6
    bitpos = (w_arr & 63).astype("<u8")
    excl[np.arange(k), word_idx] |= _ONE << bitpos

    # Lower-id writers of the same location (write-write dedup): keep
    # whole words below the writer's word, mask within it, drop above.
    wmask_p = pack_ints([wm for _am, wm in loc_masks], n)[li_arr]
    cols = np.arange(wcols, dtype=np.int64)[None, :]
    below = (_ONE << bitpos)[:, None] - _ONE
    lower = np.where(
        cols < word_idx[:, None],
        wmask_p,
        np.where(cols == word_idx[:, None], wmask_p & below, np.uint64(0)),
    )

    amask_p = pack_ints([am for am, _wm in loc_masks], n)[li_arr]
    partners = amask_p & ~(excl | lower)
    rows, nodes = np.nonzero(_unpack_bits(partners, n))
    return [
        (li_list[r], w_list[r], int(v))
        for r, v in zip(rows.tolist(), nodes.tolist())
    ]


#: Verdict rows buffered per matrix product in :func:`inclusion_fold`.
_FOLD_CHUNK = 4096


def inclusion_fold(
    num_models: int, verdict_rows: Iterable[tuple[bool, ...]]
) -> list[int]:
    """Chunked boolean-matmul inclusion fold; see the pybits contract."""
    bad = np.zeros((num_models, num_models), dtype=bool)
    buf: list[tuple[bool, ...]] = []

    def flush() -> None:
        verdicts = np.asarray(buf, dtype=np.int32)
        # counts[i, j] = #rows with verdict i true and j false.
        np.logical_or(bad, (verdicts.T @ (1 - verdicts)) > 0, out=bad)
        buf.clear()

    for row in verdict_rows:
        buf.append(row)
        if len(buf) >= _FOLD_CHUNK:
            flush()
    if buf:
        flush()
    weights = _ONE << np.arange(num_models, dtype="<u8")
    return [int(m) for m in (bad * weights).sum(axis=1, dtype="<u8")]


def quotient_is_acyclic(
    num_blocks: int, bsrcs: Sequence[int], bdsts: Sequence[int]
) -> bool:
    """Wavefront Kahn over the block quotient; see the pybits contract."""
    src = np.asarray(bsrcs, dtype=np.int64)
    dst = np.asarray(bdsts, dtype=np.int64)
    if src.size:
        uniq = np.unique(src * num_blocks + dst)  # dedup, sorted by src
        src, dst = uniq // num_blocks, uniq % num_blocks
    indeg = np.bincount(dst, minlength=num_blocks)
    off = np.searchsorted(src, np.arange(num_blocks + 1))
    frontier = np.flatnonzero(indeg == 0)
    seen = 0
    while frontier.size:
        seen += int(frontier.size)
        counts = off[frontier + 1] - off[frontier]
        idx = _gather_ranges(off[frontier], counts)
        if not idx.size:
            break
        targets = dst[idx]
        indeg -= np.bincount(targets, minlength=num_blocks)
        cand = np.unique(targets)
        frontier = cand[indeg[cand] == 0]
    return seen == num_blocks
